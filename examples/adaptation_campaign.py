"""A deployment planner's view: how long until the node has adapted?

Combines the whole library: the student workload's memory plan (Revolve
if needed), the duty-cycle preemption model (training runs only in idle
windows), daily harvest arrival, flash storage limits, and the
ship-vs-local energy breakevens — the operational questions Sections
II+III raise but don't answer.

Run: ``python examples/adaptation_campaign.py``
"""

from repro.edge import (
    CampaignConfig,
    EnergyModel,
    ODROID_XU4,
    TrainingWorkload,
    breakeven_epochs,
    run_campaign,
    streaming_comparison,
)
from repro.units import MB


def main() -> None:
    workload = TrainingWorkload(
        model="student-resnet18ish",
        chain_length=18,
        slot_act_bytes_per_sample=2 * MB,
        fixed_bytes=180 * MB,
        flops_per_sample=3.6e9,
        n_images=1,
        batch_size=8,
    )

    print("Adaptation campaigns on", ODROID_XU4.name)
    print(f"{'traffic/day':>12} {'days to 0.90':>13} {'harvested':>10} {'train h':>8} {'storage':>9}")
    for traffic in (20, 60, 200):
        cfg = CampaignConfig(
            workload=workload,
            target_accuracy=0.90,
            crossings_per_day=float(traffic),
            seed=1,
        )
        res = run_campaign(cfg, ODROID_XU4)
        days = res.target_day if res.reached_target else ">365"
        print(
            f"{traffic:>12} {days:>13} {res.days[-1].harvested_total:>10} "
            f"{res.total_train_hours:>8.1f} {res.storage_bytes / MB:>8.1f}M"
        )

    # Energy context (Section I's power/bandwidth argument, priced).
    model = EnergyModel()
    be = breakeven_epochs(10 * 1024, 3.6e9, model=model)
    stream = streaming_comparison(1.0, 200 * 1024, 3.6e9, model=model)
    print("\nEnergy context (defaults: LTE-class radio, embedded-GPU compute):")
    print(f"  shipping the 10 kB training images costs as much as "
          f"{be:.3f} local epochs -> shipping the *harvested set* is cheap;")
    print(f"  but streaming raw 200 kB frames at 1 fps for a day costs "
          f"{stream.ship_joules / 1000:.0f} kJ vs {stream.local_joules / 1000:.0f} kJ "
          f"for local inference -> the node should process in place")
    print("  (in-situ training buys privacy + freshness; the energy case "
          "rests on never streaming raw data).")


if __name__ == "__main__":
    main()
