"""Kill a training run mid-epoch, recover it, prove nothing was lost.

Two identical trainers run the same seeded workload:

* the **reference** trains uninterrupted;
* the **victim** trains under :func:`repro.resilience.fit_with_recovery`
  with a fault injected mid-epoch (``--fault-step``): the run dies,
  rolls back to its latest durable snapshot, and resumes from the
  snapshot's :class:`~repro.autodiff.trainer.FitCursor`.

Because each epoch's batch order is a pure function of
``(shuffle_seed, epoch)`` and snapshots carry the partial-epoch loss
accumulators, the recovered trajectory is **bit-identical** to the
uninterrupted one — this script asserts it (CI runs it as the
``resilience`` job) and writes the fault/recovery trace next to the
snapshot file.

Run: ``python examples/crash_recovery.py [--outdir DIR] [--fault-step N]``
"""

import argparse
import pathlib

import numpy as np

from repro import obs
from repro.autodiff import (
    DenseLayer,
    Momentum,
    ReLULayer,
    SequentialNet,
    Trainer,
    TrainerConfig,
    gaussian_blobs,
)
from repro.resilience import FaultInjector, FixedIntervalPolicy, fit_with_recovery


def build_net(seed: int) -> SequentialNet:
    rng = np.random.default_rng(seed)
    return SequentialNet(
        [
            DenseLayer(6, 16, rng, name="fc0"),
            ReLULayer(name="r0"),
            DenseLayer(16, 16, rng, name="fc1"),
            ReLULayer(name="r1"),
            DenseLayer(16, 3, rng, name="head"),
        ]
    )


def build_trainer(seed: int, epochs: int) -> Trainer:
    net = build_net(seed)
    return Trainer(
        net,
        Momentum(net.layers, lr=0.02),
        TrainerConfig(epochs=epochs, batch_size=16, shuffle_seed=seed),
    )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--outdir", default=".", help="where to write trace + snapshot")
    ap.add_argument(
        "--fault-step",
        type=int,
        default=14,
        help="global optimizer step the injected crash strikes at",
    )
    ap.add_argument("--epochs", type=int, default=4)
    ap.add_argument("--snapshot-every", type=int, default=5, help="steps between snapshots")
    args = ap.parse_args()
    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    data = gaussian_blobs(n_per_class=32, num_classes=3, dim=6, rng=np.random.default_rng(2))

    reference = build_trainer(seed=7, epochs=args.epochs)
    reference.fit(data)
    ref_losses = [r.mean_loss for r in reference.history]

    victim = build_trainer(seed=7, epochs=args.epochs)
    snapshot_path = outdir / "crash_recovery_snapshot.json"
    with obs.tracing() as tracer:
        report = fit_with_recovery(
            victim,
            data,
            policy=FixedIntervalPolicy(args.snapshot_every),
            injector=FaultInjector([args.fault_step]),
            snapshot_path=snapshot_path,
        )
    rec_losses = [r.mean_loss for r in victim.history]

    metrics = obs.get_metrics()
    trace_path = outdir / "crash_recovery_trace.json"
    obs.write_chrome_trace(trace_path, tracer, metrics)

    print(f"fault injected at step {args.fault_step}; "
          f"crashes {report.faults}, restores {report.restores}, "
          f"snapshots {report.snapshots}, lost steps {report.lost_steps}")
    print(f"reference losses: {['%.6f' % x for x in ref_losses]}")
    print(f"recovered losses: {['%.6f' % x for x in rec_losses]}")

    assert report.faults == 1, "the injected fault must have fired"
    assert rec_losses == ref_losses, "recovered trajectory diverged from the unbroken run"
    for lr, lv in zip(reference.net.layers, victim.net.layers):
        for p in lr.params:
            assert np.array_equal(lr.params[p], lv.params[p]), f"weights differ at {lr.name}.{p}"
    fault_events = [e for e in tracer.events() if e.category == "fault"]
    recovery_events = [e for e in tracer.events() if e.category == "recovery"]
    assert fault_events and recovery_events, "trace must show the crash and the recovery"

    print("recovered run is bit-identical to the uninterrupted run")
    print(f"trace: {len(fault_events)} fault / {len(recovery_events)} recovery events")
    print(f"wrote {trace_path}")
    print(f"wrote {snapshot_path}")


if __name__ == "__main__":
    main()
