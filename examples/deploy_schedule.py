"""Plan off-node, ship the schedule as JSON, execute on the node.

A gateway (or laptop) with the full planner computes the optimal
checkpoint schedule for the node's memory; the node receives a small
JSON document, verifies it on the virtual machine, and drives training
with it.  Demonstrates the serialization round trip and that the
received plan trains with gradients identical to store-all.

Run: ``python examples/deploy_schedule.py``
"""

import numpy as np

from repro.autodiff import DenseLayer, ReLULayer, SequentialNet, run_schedule
from repro.checkpointing import (
    revolve_schedule,
    schedule_from_json,
    schedule_to_json,
    slots_for_rho,
)


def build_net(rng: np.random.Generator, depth: int = 14, width: int = 16) -> SequentialNet:
    layers = []
    prev = 8
    for i in range(depth - 1):
        layers.append(DenseLayer(prev, width, rng, name=f"fc{i}"))
        prev = width
    layers.append(DenseLayer(prev, 3, rng, name="head"))
    return SequentialNet(layers)


def main() -> None:
    depth = 14
    rho_target = 1.4

    # --- gateway side: plan and serialize --------------------------------
    slots = slots_for_rho(depth, rho_target)
    plan = revolve_schedule(depth, slots)
    wire = schedule_to_json(plan)
    print(f"gateway: planned revolve with {slots} slots for rho <= {rho_target}")
    print(f"gateway: schedule is {len(plan)} actions, {len(wire)} bytes of JSON\n")

    # --- node side: parse, verify, train ---------------------------------
    received = schedule_from_json(wire, verify=True)  # machine-checked
    print(f"node: received + verified schedule "
          f"({received.strategy}, {received.length} steps)")

    rng = np.random.default_rng(1)
    net = build_net(rng, depth=depth)
    x = rng.normal(size=(8, 8))
    y = rng.integers(0, 3, size=8)

    res = run_schedule(net, received, x, y)
    loss_ref, grads_ref, _ = net.train_step(x, y)
    identical = all(np.array_equal(res.grads[k], grads_ref[k]) for k in grads_ref)
    print(f"node: loss {res.loss:.6f} (reference {loss_ref:.6f}); "
          f"gradients identical to store-all: {identical}")
    print(f"node: extra forwards this step: {res.forward_steps - (depth - 1)} "
          f"(budgeted for rho <= {rho_target})")


if __name__ == "__main__":
    main()
