"""Fleet planning: which models can each edge device train, and how?

Sweeps the device catalog x the ResNet zoo and prints, per (device,
model, batch): the chosen strategy, checkpoint slots, recompute factor,
and the epoch time including the batch-efficiency effect — the decision
table an Array-of-Things operator would actually want.

Run: ``python examples/plan_edge_fleet.py``
"""

from repro.edge import DEVICE_CATALOG, TrainingWorkload, estimate_epoch
from repro.errors import MemoryBudgetError
from repro.experiments import memory_models
from repro.units import MB
from repro.zoo import RESNET_DEPTHS, build_resnet


def main() -> None:
    header = (
        f"{'device':<14}{'model':<10}{'batch':>5}  {'strategy':<10}"
        f"{'slots':>5}{'rho':>7}{'mem(MB)':>9}{'epoch(h)':>10}"
    )
    print(header)
    print("-" * len(header))
    models = memory_models()
    flops = {d: float(build_resnet(d).total_flops_per_sample()) for d in RESNET_DEPTHS}
    for device in DEVICE_CATALOG.values():
        for depth in RESNET_DEPTHS:
            m = models[depth]
            for batch in (1, 8):
                workload = TrainingWorkload(
                    model=f"ResNet{depth}",
                    chain_length=depth,
                    slot_act_bytes_per_sample=m.account_ref.act_bytes_per_sample // depth,
                    fixed_bytes=m.fixed_bytes,
                    flops_per_sample=flops[depth],
                    n_images=10_000,
                    batch_size=batch,
                )
                try:
                    est = estimate_epoch(workload, device)
                except MemoryBudgetError:
                    print(
                        f"{device.name:<14}ResNet{depth:<4}{batch:>5}  "
                        f"{'IMPOSSIBLE':<10}{'-':>5}{'-':>7}{'-':>9}{'-':>10}"
                    )
                    continue
                print(
                    f"{device.name:<14}ResNet{depth:<4}{batch:>5}  "
                    f"{est.plan.strategy:<10}{est.plan.slots:>5}"
                    f"{est.plan.rho:>7.3f}{est.plan.memory_bytes / MB:>9.0f}"
                    f"{est.epoch_seconds / 3600:>10.2f}"
                )


if __name__ == "__main__":
    main()
