"""Spill checkpoints to the SD card: two-level Revolve on a Waggle node.

The ODROID XU4 pairs 2 GB RAM with a 32 GB SD card.  Pure in-memory
Revolve on LinearResNet-152 with very few RAM slots recomputes heavily;
parking a handful of checkpoints on flash (disk-revolve, the paper's
reference [1]) removes most of that recomputation.  This example sweeps
RAM slots and I/O costs and prints the full trade-off, then verifies one
plan action-by-action on the virtual machine.

Run: ``python examples/two_tier_checkpointing.py``
"""

from repro.checkpointing import (
    disk_revolve_cost,
    disk_revolve_schedule,
    disk_revolve_splits,
    opt_forwards,
    simulate_tiered,
)

L = 152  # LinearResNet-152


def main() -> None:
    print(f"Two-level checkpointing on a {L}-step chain")
    print(f"{'RAM slots':>10} {'I/O cost':>9} {'mem-only':>9} {'two-level':>10} {'saved':>7} {'disk ckpts':>11}")
    for c in (1, 2, 3, 5, 8):
        for d in (0.25, 1.0, 4.0):
            mem_only = opt_forwards(L, c)
            two = disk_revolve_cost(L, c, d, d)
            n_disk = len(disk_revolve_splits(L, c, d, d))
            saved = 1.0 - two / mem_only
            print(
                f"{c:>10} {d:>9.2f} {mem_only:>9} {two:>10.1f} "
                f"{saved:>6.0%} {n_disk:>11}"
            )

    # Verify one plan end to end on the virtual machine.
    c, d = 3, 1.0
    sch = disk_revolve_schedule(L, c, d, d)
    st = simulate_tiered(sch)
    print(f"\nVerified schedule (RAM slots={c}, I/O cost={d}):")
    print(f"  actions             : {len(sch)}")
    print(f"  pure forward steps  : {st.forward_steps}")
    print(f"  disk writes/reads   : {st.disk_writes}/{st.disk_reads}")
    print(f"  peak RAM slots      : {st.peak_memory_slots} (<= {c})")
    print(f"  measured total cost : {st.total_cost(d, d):.1f} "
          f"(DP optimum {disk_revolve_cost(L, c, d, d):.1f})")


if __name__ == "__main__":
    main()
