"""Trace a checkpointed training run and export it for Perfetto.

The :mod:`repro.obs` layer records hierarchical spans — ``fit`` →
``epoch`` → ``batch`` → per-action ``ADVANCE``/``SNAPSHOT``/``ADJOINT``
spans from the schedule executor — plus counters and gauges (losses,
peak bytes, schedule-cache hits).  This example trains a small dense net
under a Revolve schedule with tracing on, prints the plain-text summary,
and writes both export formats:

* ``trace.json``  — Chrome ``trace_event`` JSON; open it at
  https://ui.perfetto.dev or ``chrome://tracing``.
* ``trace.jsonl`` — one JSON object per span/event, easy to grep.

Run: ``python examples/trace_training.py [--outdir DIR]``
"""

import argparse
import pathlib

import numpy as np

from repro import obs
from repro.autodiff import (
    DenseLayer,
    Momentum,
    ReLULayer,
    SequentialNet,
    Trainer,
    TrainerConfig,
    gaussian_blobs,
)


def build_net(rng: np.random.Generator, depth: int = 8) -> SequentialNet:
    layers = []
    prev = 6
    for i in range(depth - 1):
        layers.append(DenseLayer(prev, 12, rng, name=f"fc{i}"))
        layers.append(ReLULayer(name=f"r{i}"))
        prev = 12
    layers.append(DenseLayer(prev, 3, rng, name="head"))
    return SequentialNet(layers)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--outdir", default=".", help="where to write trace.json / trace.jsonl")
    args = ap.parse_args()
    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    rng = np.random.default_rng(0)
    net = build_net(rng)
    data = gaussian_blobs(n_per_class=48, num_classes=3, dim=6, rng=rng)

    with obs.tracing() as tracer:
        trainer = Trainer(
            net,
            Momentum(net.layers, lr=0.02),
            TrainerConfig(epochs=3, batch_size=16, strategy="revolve", slots=4),
        )
        trainer.fit(data)
        accuracy = trainer.evaluate(data)

    metrics = obs.get_metrics()
    chrome_path = outdir / "trace.json"
    jsonl_path = outdir / "trace.jsonl"
    obs.write_chrome_trace(chrome_path, tracer, metrics)
    obs.write_jsonl(jsonl_path, tracer, metrics)

    print(obs.summary(tracer, metrics))
    print()
    print(f"final accuracy: {accuracy:.3f}")
    print(f"categories: {', '.join(sorted(tracer.categories()))}")
    print(f"wrote {chrome_path} (open in https://ui.perfetto.dev)")
    print(f"wrote {jsonl_path}")


if __name__ == "__main__":
    main()
