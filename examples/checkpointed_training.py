"""Train a real (NumPy) CNN under a memory cap with Revolve schedules.

This is the paper's Section VI claim made executable: the checkpointed
backward pass produces gradients numerically identical to store-all while
holding far fewer activations live.  We train a small CNN on synthetic
images three ways — store-all, PyTorch-style uniform, and optimal
Revolve — and report loss trajectories (identical), measured peak bytes,
and forward-step overhead.

Run: ``python examples/checkpointed_training.py``
"""

import numpy as np

from repro.autodiff import (
    ConvLayer,
    DenseLayer,
    FlattenLayer,
    MaxPoolLayer,
    Momentum,
    ReLULayer,
    SequentialNet,
    batches,
    image_blobs,
    run_schedule,
)
from repro.checkpointing import revolve_schedule, store_all_schedule, uniform_schedule
from repro.units import humanize_bytes


def build_net(rng: np.random.Generator) -> SequentialNet:
    """A 12-layer chain: deep enough for checkpointing to matter."""
    return SequentialNet(
        [
            ConvLayer(1, 8, 3, rng, padding=1, name="c1"),
            ReLULayer("r1"),
            ConvLayer(8, 8, 3, rng, padding=1, name="c2"),
            ReLULayer("r2"),
            MaxPoolLayer(2, "p1"),
            ConvLayer(8, 16, 3, rng, padding=1, name="c3"),
            ReLULayer("r3"),
            MaxPoolLayer(2, "p2"),
            FlattenLayer("f"),
            DenseLayer(16 * 4 * 4, 32, rng, "d1"),
            ReLULayer("r4"),
            DenseLayer(32, 4, rng, "d2"),
        ],
        name="edge_cnn",
    )


def train(schedule_name: str, epochs: int = 5, seed: int = 7) -> None:
    rng = np.random.default_rng(seed)
    net = build_net(rng)
    data = image_blobs(n_per_class=40, num_classes=4, size=16, rng=rng, noise=0.9)
    opt = Momentum(net.layers, lr=0.05)

    l = len(net)
    schedules = {
        "store_all": store_all_schedule(l),
        "uniform_s3": uniform_schedule(l, 3),
        "revolve_c3": revolve_schedule(l, 3),
    }
    schedule = schedules[schedule_name]

    peak = 0
    extra = 0
    batch_rng = np.random.default_rng(seed + 1)  # same batch order each run
    last_loss = 0.0
    for _ in range(epochs):
        for xb, yb in batches(data, 16, batch_rng):
            res = run_schedule(net, schedule, xb, yb)
            opt.step(res.grads)
            peak = max(peak, res.peak_bytes)
            extra = max(extra, res.forward_steps - (l - 1))
            last_loss = res.loss
    print(
        f"{schedule_name:>11}: final loss {last_loss:.4f}  "
        f"peak live bytes {humanize_bytes(peak):>10}  "
        f"extra forwards/step {extra}"
    )


def main() -> None:
    print("Training the same CNN under three checkpoint schedules")
    print("(identical batch order and init => identical losses):\n")
    for name in ("store_all", "uniform_s3", "revolve_c3"):
        train(name)


if __name__ == "__main__":
    main()
