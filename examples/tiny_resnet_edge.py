"""Train a real (NumPy) residual CNN under a planned checkpoint schedule.

The closest executable analog of the paper's scenario: a residual conv
network (each block = one chain step, as the symbolic linearizer also
concludes), an artificial memory cap standing in for the 2 GB node, the
planner choosing the Revolve slot count, and the schedule-driven executor
doing the training — with a live memory-over-time trace comparing the
plans at the end.

Run: ``python examples/tiny_resnet_edge.py``
"""

import numpy as np

from repro.autodiff import (
    AvgPoolLayer,
    ConvLayer,
    DenseLayer,
    FlattenLayer,
    Momentum,
    ReLULayer,
    ResidualBlockLayer,
    SequentialNet,
    accuracy,
    batches,
    image_blobs,
    run_schedule,
)
from repro.checkpointing import (
    ChainSpec,
    revolve_schedule,
    store_all_schedule,
    timeline_ascii,
)
from repro.units import humanize_bytes


def build_tiny_resnet(rng: np.random.Generator, channels: int = 8, blocks: int = 4) -> SequentialNet:
    layers = [ConvLayer(1, channels, 3, rng, padding=1, name="stem")]
    for b in range(blocks):
        body = [
            ConvLayer(channels, channels, 3, rng, padding=1, name=f"b{b}c1"),
            ReLULayer(f"b{b}r"),
            ConvLayer(channels, channels, 3, rng, padding=1, name=f"b{b}c2"),
        ]
        # Fixup-style init: zero the block's last conv so every block
        # starts as the identity (residual nets without BatchNorm blow up
        # otherwise).
        body[-1].params["W"][:] = 0.0
        layers.append(ResidualBlockLayer(body, name=f"block{b}"))
    layers += [
        AvgPoolLayer(2, "pool"),
        FlattenLayer("flat"),
        DenseLayer(channels * 8 * 8, 4, rng, "head"),
    ]
    return SequentialNet(layers, name="tiny_resnet")


def main() -> None:
    rng = np.random.default_rng(3)
    net = build_tiny_resnet(rng)
    data = image_blobs(n_per_class=50, num_classes=4, size=16, rng=rng, noise=0.7)
    l = len(net)

    # Measure the real per-activation sizes and let Revolve plan under a
    # cap of ~40% of the store-all activation footprint.
    xb0 = data.x[:16]
    sizes = net.activation_bytes(xb0)
    store_all_bytes = sum(sizes)
    print(f"{net.name}: {l} chain steps, store-all activations "
          f"{humanize_bytes(store_all_bytes)} per batch of 16")

    sch = revolve_schedule(l, 2)
    opt = Momentum(net.layers, lr=0.01)
    peak = 0
    for epoch in range(6):
        epoch_loss, nb = 0.0, 0
        for xb, yb in batches(data, 16, np.random.default_rng(epoch)):
            res = run_schedule(net, sch, xb, yb)
            opt.step(res.grads)
            peak = max(peak, res.peak_bytes)
            epoch_loss += res.loss
            nb += 1
        print(f"  epoch {epoch}: loss {epoch_loss / nb:.4f}")
    acc = accuracy(net.forward(data.x), data.y)
    print(f"final accuracy {acc:.3f}; peak live bytes {humanize_bytes(peak)} "
          f"({peak / store_all_bytes:.0%} of store-all activations)")

    # Memory-over-time: the sawtooth vs the triangle.
    spec = ChainSpec(
        name=net.name,
        act_bytes=tuple(sizes),
        fwd_cost=(1.0,) * l,
        bwd_cost=(1.0,) * l,
    )
    print()
    print(timeline_ascii(
        {"revolve(c=2)": sch, "store_all": store_all_schedule(l)}, spec
    ))


if __name__ == "__main__":
    main()
