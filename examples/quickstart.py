"""Quickstart: can ResNet-101 train on a 2 GB edge node? At what cost?

Walks the library end to end in ~30 lines of API:
1. build the model symbolically and account its training memory;
2. see that batch 8 does not fit the ODROID's 2 GB;
3. let the planner pick the optimal Revolve checkpoint count;
4. generate and execute the schedule on the virtual machine to verify
   the plan's cost and peak memory.

Run: ``python examples/quickstart.py``
"""

from repro.checkpointing import (
    ChainSpec,
    plan_training,
    revolve_schedule,
    simulate,
)
from repro.edge import ODROID_XU4
from repro.graph import homogenize
from repro.memory import account
from repro.units import MB, humanize_bytes
from repro.zoo import resnet101


def main() -> None:
    batch = 8

    # 1. Symbolic model + memory accounting (the paper's Tables I-III).
    net = resnet101()
    acct = account(net)
    store_all = acct.total_bytes(batch)
    print(f"ResNet-101, batch {batch}:")
    print(f"  weights (1 copy)      : {humanize_bytes(acct.weight_bytes)}")
    print(f"  fixed (4 copies+bufs) : {humanize_bytes(acct.fixed_bytes)}")
    print(f"  activations / sample  : {humanize_bytes(acct.act_bytes_per_sample)}")
    print(f"  store-all training    : {humanize_bytes(store_all)}")

    # 2. Does it fit the paper's device?
    device = ODROID_XU4
    fits = store_all <= device.mem_bytes
    print(f"  fits {device.name} ({humanize_bytes(device.mem_bytes)})? {fits}")

    # 3. Homogenize to the paper's LinearResNet-101 and plan checkpointing.
    chain = homogenize(net, depth=101)
    plan = plan_training(
        l=chain.length,
        fixed_bytes=acct.fixed_bytes,
        slot_bytes=batch * chain.act_bytes,
        budget_bytes=device.mem_bytes,
        model="LinearResNet101",
    )
    print(f"\nPlan: {plan.strategy} with {plan.slots} checkpoint slots")
    print(f"  peak memory : {plan.memory_bytes / MB:.0f} MB (budget {device.mem_bytes / MB:.0f} MB)")
    print(f"  recompute   : rho = {plan.rho:.3f} (store-all would need {plan.store_all_bytes / MB:.0f} MB)")
    if plan.uniform_rho is not None:
        print(f"  PyTorch checkpoint_sequential at equal memory: rho = {plan.uniform_rho:.3f}")

    # 4. Materialize + execute the schedule; verify the planner's numbers.
    schedule = revolve_schedule(chain.length, plan.slots)
    spec = ChainSpec.from_linear_chain(chain)
    stats = simulate(schedule, spec)
    print(f"\nExecuted schedule: {len(schedule)} actions")
    print(f"  pure forward steps : {stats.forward_steps} (extra {stats.extra_forward_steps()})")
    print(f"  measured rho       : {stats.recompute_factor(spec):.3f}")
    print(f"  peak slots         : {stats.peak_slots} (<= {plan.slots})")


if __name__ == "__main__":
    main()
