"""Section III end to end: fixing the viewpoint problem in-situ.

A frontal-trained "teacher" collapses at skewed camera angles.  The node
watches subjects cross its frame, tracks them, propagates the teacher's
confident near-frontal identifications backwards along each track, and
trains a "student" on the harvested, auto-labelled data — no training
data ever shipped to the node.  The student recovers almost all the
skew-angle accuracy, and its training runs under a checkpoint schedule as
it would on the 2 GB Waggle node.

Run: ``python examples/viewpoint_adaptation.py``
"""

from repro.edge import ODROID_XU4, ImageStore
from repro.studentteacher import PipelineConfig, StudentConfig, run_pipeline
from repro.units import humanize_bytes


def main() -> None:
    cfg = PipelineConfig(
        num_classes=5,
        n_subjects=120,
        camera_skew_deg=60.0,
        angle_bins=(15.0, 30.0, 45.0, 60.0),
        # rho=1.5: train the student under a Revolve schedule, as a
        # memory-limited node would.
        student=StudentConfig(epochs=30, rho=1.5),
        seed=0,
    )
    res = run_pipeline(cfg)

    print("In-situ student-teacher adaptation (viewpoint problem)")
    print("=" * 56)
    print(res.summary())
    print()
    print(f"accuracy recovered at the most skewed bin: {res.skew_recovery:+.3f}")
    print(f"student peak training memory (checkpointed): {humanize_bytes(res.student.peak_bytes)}")

    # The paper's storage argument: harvested images at ~10 kB each.
    store = ImageStore(capacity_bytes=ODROID_XU4.storage_bytes)
    n = len(res.harvest)
    print(
        f"\nstorage: {n} harvested images -> {humanize_bytes(store.dataset_bytes(n))} "
        f"of {humanize_bytes(store.capacity_bytes)} SD "
        f"(node could hold {store.max_images:,} images)"
    )
    print(
        f"paper's example: 100,000 images -> "
        f"{humanize_bytes(store.dataset_bytes(100_000))} at 10 kB/image"
    )


if __name__ == "__main__":
    main()
