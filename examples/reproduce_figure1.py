"""Regenerate the paper's Figure 1 (all four panels) as ASCII plots + CSV.

Each panel plots peak training memory against the recompute factor ρ for
LinearResNet-{18,34,50,101,152}, with the 2 GB device budget marked.
Panel (b) reproduces the paper's headline observation: at ρ = 1 only
ResNet-18/34 fit 2 GB at batch 8, while by ρ ≈ 1.5-1.6 *every* model
fits.

Run: ``python examples/reproduce_figure1.py [--source ours|paper]``
CSV files are written next to this script as figure1_<panel>.csv.
"""

import argparse
import pathlib

from repro.experiments import PANELS, figure1_ascii, figure1_panel
from repro.units import GB, MB


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--source", choices=("ours", "paper"), default="paper")
    parser.add_argument("--outdir", default=str(pathlib.Path(__file__).parent))
    args = parser.parse_args()

    outdir = pathlib.Path(args.outdir)
    for panel in sorted(PANELS):
        print(figure1_ascii(panel, args.source))
        series = figure1_panel(panel, args.source)
        lines = ["model,rho,memory_mb"]
        for s in series:
            for rho, b in s.points:
                lines.append(f"{s.name},{rho:.4f},{b / MB:.2f}")
        path = outdir / f"figure1_{panel}.csv"
        path.write_text("\n".join(lines) + "\n")
        print(f"wrote {path}")

        # Headline numbers: the rho at which each model first fits 2 GB.
        for s in series:
            rho_fit = s.min_rho_under(2 * GB)
            status = f"fits 2GB from rho >= {rho_fit:.2f}" if rho_fit else "never fits 2GB in [1,3]"
            print(f"  {s.name:<16} {status}")
        print()


if __name__ == "__main__":
    main()
