"""MobileNetV2 — the architecture actually sized for edge nodes.

MobileNetV2 (Sandler et al.) is the natural companion to the paper's
ResNet analysis: inverted residual bottlenecks with depthwise
convolutions cut parameters to 3.50 M (vs ResNet-18's 11.69 M) — but its
*activation* footprint is not proportionally smaller (the expansion
layers are wide), so checkpointing remains relevant.  Layer layout and
parameter counts follow torchvision's ``mobilenet_v2`` (3,504,872
trainable parameters at 1000 classes).
"""

from __future__ import annotations

from ..errors import ShapeError
from ..graph import (
    Add,
    AdaptiveAvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Graph,
    Linear,
    ReLU,
)
from ..graph.tensor import TensorSpec

__all__ = ["MOBILENET_V2_CONFIG", "mobilenet_v2"]

#: Inverted-residual plan: (expansion t, out channels c, repeats n, stride s).
MOBILENET_V2_CONFIG: tuple[tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def _conv_bn_relu(g: Graph, prefix: str, src: str, in_ch: int, out_ch: int, kernel: int, stride: int, groups: int = 1) -> str:
    conv = g.add(
        f"{prefix}.conv",
        Conv2d(
            in_channels=in_ch,
            out_channels=out_ch,
            kernel_size=kernel,
            stride=stride,
            padding=kernel // 2,
            groups=groups,
            bias=False,
        ),
        [src],
    )
    bn = g.add(f"{prefix}.bn", BatchNorm2d(num_features=out_ch), [conv])
    # ReLU6 in the original; the clamp does not change shape/param math.
    return g.add(f"{prefix}.relu", ReLU(), [bn])


def _inverted_residual(g: Graph, prefix: str, src: str, in_ch: int, out_ch: int, stride: int, expand: int) -> tuple[str, int]:
    hidden = in_ch * expand
    y = src
    if expand != 1:
        y = _conv_bn_relu(g, f"{prefix}.expand", y, in_ch, hidden, 1, 1)
    # Depthwise 3x3 (groups == channels).
    y = _conv_bn_relu(g, f"{prefix}.dw", y, hidden, hidden, 3, stride, groups=hidden)
    # Linear projection (no activation).
    proj = g.add(
        f"{prefix}.proj.conv",
        Conv2d(in_channels=hidden, out_channels=out_ch, kernel_size=1, bias=False),
        [y],
    )
    y = g.add(f"{prefix}.proj.bn", BatchNorm2d(num_features=out_ch), [proj])
    if stride == 1 and in_ch == out_ch:
        y = g.add(f"{prefix}.add", Add(), [y, src])
    return y, out_ch


def mobilenet_v2(image_size: int = 224, num_classes: int = 1000, in_channels: int = 3) -> Graph:
    """Build MobileNetV2 for square inputs (min ~33 px)."""
    if image_size < 33:
        raise ShapeError("MobileNetV2 needs image_size >= 33")
    g = Graph(name="MobileNetV2")
    src = g.add_input("input", TensorSpec((in_channels, image_size, image_size)))
    src = _conv_bn_relu(g, "stem", src, in_channels, 32, 3, 2)
    ch = 32
    idx = 0
    for t, c, n, s in MOBILENET_V2_CONFIG:
        for i in range(n):
            stride = s if i == 0 else 1
            src, ch = _inverted_residual(g, f"block{idx}", src, ch, c, stride, t)
            idx += 1
    src = _conv_bn_relu(g, "head", src, ch, 1280, 1, 1)
    src = g.add("pool", AdaptiveAvgPool2d(output_size=1), [src])
    src = g.add("flatten", Flatten(), [src])
    src = g.add("drop", Dropout(p=0.2), [src])
    src = g.add("fc", Linear(in_features=1280, out_features=num_classes), [src])
    g.mark_output(src)
    g.infer()
    return g
