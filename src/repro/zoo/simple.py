"""Small models used by tests, examples and the autodiff substrate.

These are deliberately tiny so property tests and gradient checks run in
milliseconds, while still exercising every layer kind the big models use.
"""

from __future__ import annotations

from ..graph import (
    Add,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Graph,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    TensorSpec,
)

__all__ = ["simple_cnn", "simple_mlp", "tiny_residual", "plain_chain"]


def simple_cnn(image_size: int = 32, num_classes: int = 10, in_channels: int = 3) -> Sequential:
    """A LeNet-scale CNN: 2 conv/pool stages + 2 dense layers."""
    net = Sequential(TensorSpec((in_channels, image_size, image_size)), name="SimpleCNN")
    net.append(Conv2d(in_channels=in_channels, out_channels=16, kernel_size=3, padding=1, bias=True), "conv1")
    net.append(ReLU(), "relu1")
    net.append(MaxPool2d(kernel_size=2), "pool1")
    net.append(Conv2d(in_channels=16, out_channels=32, kernel_size=3, padding=1, bias=True), "conv2")
    net.append(ReLU(), "relu2")
    net.append(MaxPool2d(kernel_size=2), "pool2")
    net.append(Flatten(), "flatten")
    net.append(Linear(in_features=32 * (image_size // 4) ** 2, out_features=64), "fc1")
    net.append(ReLU(), "relu3")
    net.append(Linear(in_features=64, out_features=num_classes), "fc2")
    net.infer()
    return net


def simple_mlp(in_features: int = 32, hidden: int = 64, depth: int = 3, num_classes: int = 10) -> Sequential:
    """An MLP with ``depth`` hidden layers."""
    net = Sequential(TensorSpec((in_features,)), name="SimpleMLP")
    prev = in_features
    for i in range(depth):
        net.append(Linear(in_features=prev, out_features=hidden), f"fc{i}")
        net.append(ReLU(), f"relu{i}")
        prev = hidden
    net.append(Linear(in_features=prev, out_features=num_classes), "head")
    net.infer()
    return net


def tiny_residual(image_size: int = 16, channels: int = 8, num_classes: int = 4) -> Graph:
    """A two-block residual net for DAG/cut-point tests."""
    g = Graph(name="TinyResidual")
    src = g.add_input("input", TensorSpec((3, image_size, image_size)))
    src = g.add("stem", Conv2d(in_channels=3, out_channels=channels, kernel_size=3, padding=1), [src])
    src = g.add("stem_bn", BatchNorm2d(num_features=channels), [src])
    src = g.add("stem_relu", ReLU(), [src])
    for b in range(2):
        y = g.add(f"b{b}_conv1", Conv2d(in_channels=channels, out_channels=channels, kernel_size=3, padding=1), [src])
        y = g.add(f"b{b}_relu1", ReLU(), [y])
        y = g.add(f"b{b}_conv2", Conv2d(in_channels=channels, out_channels=channels, kernel_size=3, padding=1), [y])
        src = g.add(f"b{b}_add", Add(), [y, src])
        src = g.add(f"b{b}_relu2", ReLU(), [src])
    src = g.add("gap", GlobalAvgPool(), [src])
    src = g.add("fc", Linear(in_features=channels, out_features=num_classes), [src])
    g.mark_output(src)
    g.infer()
    return g


def plain_chain(depth: int = 8, features: int = 16) -> Sequential:
    """A homogeneous dense chain — the idealized ``LinearResNet`` shape."""
    net = Sequential(TensorSpec((features,)), name=f"PlainChain{depth}")
    for i in range(depth):
        net.append(Linear(in_features=features, out_features=features), f"step{i}")
    net.infer()
    return net
