"""ResNet builders (He et al.) on the symbolic graph IR.

Architectures follow torchvision's ``resnet{18,34,50,101,152}`` exactly —
same layer layout, kernel/stride/padding, and bias conventions — so that
trainable-parameter counts match the published models (e.g. 11,689,512 for
ResNet-18 and 25,557,032 for ResNet-50 at 1000 classes).  These are the
networks whose memory footprints the paper tabulates in Tables I–III.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ShapeError
from ..graph import (
    AdaptiveAvgPool2d,
    Add,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Graph,
    Linear,
    MaxPool2d,
    ReLU,
    TensorSpec,
)

__all__ = [
    "ResNetConfig",
    "RESNET_CONFIGS",
    "RESNET_DEPTHS",
    "build_resnet",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet101",
    "resnet152",
]


@dataclass(frozen=True)
class ResNetConfig:
    """Depth-specific ResNet configuration."""

    depth: int
    block: str  # "basic" | "bottleneck"
    layers: tuple[int, int, int, int]

    @property
    def expansion(self) -> int:
        return 1 if self.block == "basic" else 4


#: The five variants evaluated in the paper.
RESNET_CONFIGS: dict[int, ResNetConfig] = {
    18: ResNetConfig(18, "basic", (2, 2, 2, 2)),
    34: ResNetConfig(34, "basic", (3, 4, 6, 3)),
    50: ResNetConfig(50, "bottleneck", (3, 4, 6, 3)),
    101: ResNetConfig(101, "bottleneck", (3, 4, 23, 3)),
    152: ResNetConfig(152, "bottleneck", (3, 8, 36, 3)),
}

#: Nominal depths, used as the homogenized chain length ``l`` in Figure 1.
RESNET_DEPTHS: tuple[int, ...] = tuple(sorted(RESNET_CONFIGS))


def _conv_bn(
    g: Graph,
    prefix: str,
    src: str,
    in_ch: int,
    out_ch: int,
    kernel: int,
    stride: int,
    padding: int,
) -> str:
    """conv -> bn; returns the bn node name."""
    conv = g.add(
        f"{prefix}.conv",
        Conv2d(
            in_channels=in_ch,
            out_channels=out_ch,
            kernel_size=kernel,
            stride=stride,
            padding=padding,
            bias=False,
        ),
        [src],
    )
    return g.add(f"{prefix}.bn", BatchNorm2d(num_features=out_ch), [conv])


def _basic_block(g: Graph, prefix: str, src: str, in_ch: int, planes: int, stride: int) -> tuple[str, int]:
    out_ch = planes
    y = _conv_bn(g, f"{prefix}.1", src, in_ch, planes, 3, stride, 1)
    y = g.add(f"{prefix}.relu1", ReLU(), [y])
    y = _conv_bn(g, f"{prefix}.2", y, planes, planes, 3, 1, 1)
    shortcut = src
    if stride != 1 or in_ch != out_ch:
        shortcut = _conv_bn(g, f"{prefix}.down", src, in_ch, out_ch, 1, stride, 0)
    y = g.add(f"{prefix}.add", Add(), [y, shortcut])
    y = g.add(f"{prefix}.relu2", ReLU(), [y])
    return y, out_ch


def _bottleneck_block(g: Graph, prefix: str, src: str, in_ch: int, planes: int, stride: int) -> tuple[str, int]:
    out_ch = planes * 4
    y = _conv_bn(g, f"{prefix}.1", src, in_ch, planes, 1, 1, 0)
    y = g.add(f"{prefix}.relu1", ReLU(), [y])
    y = _conv_bn(g, f"{prefix}.2", y, planes, planes, 3, stride, 1)
    y = g.add(f"{prefix}.relu2", ReLU(), [y])
    y = _conv_bn(g, f"{prefix}.3", y, planes, out_ch, 1, 1, 0)
    shortcut = src
    if stride != 1 or in_ch != out_ch:
        shortcut = _conv_bn(g, f"{prefix}.down", src, in_ch, out_ch, 1, stride, 0)
    y = g.add(f"{prefix}.add", Add(), [y, shortcut])
    y = g.add(f"{prefix}.relu3", ReLU(), [y])
    return y, out_ch


def build_resnet(
    depth: int,
    image_size: int = 224,
    num_classes: int = 1000,
    in_channels: int = 3,
) -> Graph:
    """Build ``ResNet_depth`` for square images of side ``image_size``.

    Raises :class:`~repro.errors.ShapeError` for unknown depths or images
    too small for the stem (minimum ~33 px).
    """
    if depth not in RESNET_CONFIGS:
        raise ShapeError(f"unsupported ResNet depth {depth}; choose from {RESNET_DEPTHS}")
    cfg = RESNET_CONFIGS[depth]
    g = Graph(name=f"ResNet{depth}")
    src = g.add_input("input", TensorSpec((in_channels, image_size, image_size)))

    # Stem: 7x7/2 conv, bn, relu, 3x3/2 maxpool.
    src = _conv_bn(g, "stem", src, in_channels, 64, 7, 2, 3)
    src = g.add("stem.relu", ReLU(), [src])
    src = g.add("stem.pool", MaxPool2d(kernel_size=3, stride=2, padding=1), [src])

    block_fn = _basic_block if cfg.block == "basic" else _bottleneck_block
    ch = 64
    for stage_idx, (planes, blocks) in enumerate(zip((64, 128, 256, 512), cfg.layers), start=1):
        for block_idx in range(blocks):
            stride = 2 if (stage_idx > 1 and block_idx == 0) else 1
            src, ch = block_fn(g, f"layer{stage_idx}.{block_idx}", src, ch, planes, stride)

    src = g.add("head.pool", AdaptiveAvgPool2d(output_size=1), [src])
    src = g.add("head.flatten", Flatten(), [src])
    src = g.add(
        "head.fc",
        Linear(in_features=512 * cfg.expansion, out_features=num_classes, bias=True),
        [src],
    )
    g.mark_output(src)
    g.infer()
    return g


def resnet18(image_size: int = 224, num_classes: int = 1000) -> Graph:
    """ResNet-18 (11.69 M parameters at 1000 classes)."""
    return build_resnet(18, image_size, num_classes)


def resnet34(image_size: int = 224, num_classes: int = 1000) -> Graph:
    """ResNet-34 (21.80 M parameters at 1000 classes)."""
    return build_resnet(34, image_size, num_classes)


def resnet50(image_size: int = 224, num_classes: int = 1000) -> Graph:
    """ResNet-50 (25.56 M parameters at 1000 classes)."""
    return build_resnet(50, image_size, num_classes)


def resnet101(image_size: int = 224, num_classes: int = 1000) -> Graph:
    """ResNet-101 (44.55 M parameters at 1000 classes)."""
    return build_resnet(101, image_size, num_classes)


def resnet152(image_size: int = 224, num_classes: int = 1000) -> Graph:
    """ResNet-152 (60.19 M parameters at 1000 classes)."""
    return build_resnet(152, image_size, num_classes)
