"""Model zoo: the ResNets the paper tabulates, plus validation models."""

from .resnet import (
    RESNET_CONFIGS,
    RESNET_DEPTHS,
    ResNetConfig,
    build_resnet,
    resnet18,
    resnet34,
    resnet50,
    resnet101,
    resnet152,
)
from .mobilenet import MOBILENET_V2_CONFIG, mobilenet_v2
from .vgg import VGG_CONFIGS, build_vgg, vgg11, vgg16
from .simple import plain_chain, simple_cnn, simple_mlp, tiny_residual

__all__ = [
    "ResNetConfig",
    "RESNET_CONFIGS",
    "RESNET_DEPTHS",
    "build_resnet",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet101",
    "resnet152",
    "VGG_CONFIGS",
    "build_vgg",
    "vgg11",
    "vgg16",
    "MOBILENET_V2_CONFIG",
    "mobilenet_v2",
    "simple_cnn",
    "simple_mlp",
    "tiny_residual",
    "plain_chain",
]
