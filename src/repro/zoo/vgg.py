"""VGG builders — secondary validation models for the memory substrate.

VGG-11/13/16/19 ("A/B/D/E" configurations, with batch norm optional)
exercise the plain-sequential path of the graph IR, complementing the
residual DAGs of :mod:`repro.zoo.resnet`.  Parameter counts match
torchvision (e.g. VGG-16 without BN: 138,357,544 at 1000 classes).
"""

from __future__ import annotations

from ..errors import ShapeError
from ..graph import (
    AdaptiveAvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    TensorSpec,
)

__all__ = ["VGG_CONFIGS", "build_vgg", "vgg11", "vgg16"]

#: Channel plans; "M" denotes a 2x2/2 max pool.
VGG_CONFIGS: dict[int, tuple[int | str, ...]] = {
    11: (64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"),
    13: (64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"),
    16: (64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M", 512, 512, 512, "M"),
    19: (64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M", 512, 512, 512, 512, "M", 512, 512, 512, 512, "M"),
}


def build_vgg(
    depth: int,
    image_size: int = 224,
    num_classes: int = 1000,
    batch_norm: bool = False,
    in_channels: int = 3,
) -> Sequential:
    """Build ``VGG-depth``; classifier matches torchvision (4096-4096-N)."""
    if depth not in VGG_CONFIGS:
        raise ShapeError(f"unsupported VGG depth {depth}; choose from {sorted(VGG_CONFIGS)}")
    net = Sequential(TensorSpec((in_channels, image_size, image_size)), name=f"VGG{depth}")
    ch = in_channels
    idx = 0
    for item in VGG_CONFIGS[depth]:
        if item == "M":
            net.append(MaxPool2d(kernel_size=2, stride=2), name=f"pool_{idx}")
        else:
            out_ch = int(item)
            net.append(
                Conv2d(in_channels=ch, out_channels=out_ch, kernel_size=3, padding=1, bias=True),
                name=f"conv_{idx}",
            )
            if batch_norm:
                net.append(BatchNorm2d(num_features=out_ch), name=f"bn_{idx}")
            net.append(ReLU(), name=f"relu_{idx}")
            ch = out_ch
        idx += 1
    net.append(AdaptiveAvgPool2d(output_size=7), name="head_pool")
    net.append(Flatten(), name="head_flatten")
    net.append(Linear(in_features=512 * 7 * 7, out_features=4096), name="fc1")
    net.append(ReLU(), name="fc1_relu")
    net.append(Dropout(p=0.5), name="fc1_drop")
    net.append(Linear(in_features=4096, out_features=4096), name="fc2")
    net.append(ReLU(), name="fc2_relu")
    net.append(Dropout(p=0.5), name="fc2_drop")
    net.append(Linear(in_features=4096, out_features=num_classes), name="fc3")
    net.infer()
    return net


def vgg11(image_size: int = 224, num_classes: int = 1000) -> Sequential:
    """VGG-11 (132.86 M parameters at 1000 classes)."""
    return build_vgg(11, image_size, num_classes)


def vgg16(image_size: int = 224, num_classes: int = 1000) -> Sequential:
    """VGG-16 (138.36 M parameters at 1000 classes)."""
    return build_vgg(16, image_size, num_classes)
