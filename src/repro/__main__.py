"""``python -m repro`` — regenerate the paper's artifacts from the CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
