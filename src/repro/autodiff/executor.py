"""Schedule-driven backpropagation on real tensors.

:func:`run_schedule` executes any :class:`~repro.checkpointing.Schedule`
(Revolve, uniform, heterogeneous-DP, store-all) against a
:class:`~repro.autodiff.network.SequentialNet` and a real batch:

* ADVANCE runs layer forwards, discarding intermediates;
* SNAPSHOT / RESTORE / FREE move activations through checkpoint slots;
* ADJOINT replays the step's forward *inside* the layer's backward (the
  layers recompute their context from the stored input) and chains the
  gradient.

The result's gradients are **numerically identical** to the store-all
reference (``SequentialNet.train_step``) — floating-point operations are
performed in the same order per layer — while the measured live-byte peak
tracks the slot budget.  This is the end-to-end proof that the paper's
optimal checkpointing actually trains networks on a memory-constrained
device.

Every execution runs under the process tracer (:mod:`repro.obs`): one
``exec``-category span for the call, one ``action``-category span per
schedule action (ADVANCE/SNAPSHOT/RESTORE/FREE/ADJOINT) with the
:class:`~.meter.MemoryMeter` peaks attached as tags on the run span.
With the default :class:`~repro.obs.NullTracer` the per-action cost is
a single null check (``benchmarks/bench_obs_overhead.py`` pins ≤ 5%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExecutionError
from ..checkpointing.actions import ActionKind
from ..checkpointing.schedule import Schedule
from ..obs import get_metrics, get_tracer
from .loss import softmax_cross_entropy
from .meter import MemoryMeter
from .network import GradMap, SequentialNet

__all__ = ["CheckpointedResult", "run_schedule"]


@dataclass
class CheckpointedResult:
    """Outcome of a checkpointed training step."""

    loss: float
    grads: GradMap
    #: peak live activation+gradient bytes during execution
    peak_bytes: int
    #: peak bytes held in checkpoint slots only
    peak_slot_bytes: int
    #: forward layer executions due to ADVANCE actions
    forward_steps: int
    #: forward replays inside adjoints (== number of layers)
    replay_steps: int


def run_schedule(
    net: SequentialNet,
    schedule: Schedule,
    x: np.ndarray,
    labels: np.ndarray,
    loss_fn=softmax_cross_entropy,
) -> CheckpointedResult:
    """Execute ``schedule`` to compute loss and gradients for one batch.

    Raises :class:`~repro.errors.ExecutionError` on schedule/network
    length mismatch or invariant violations (same rules as the abstract
    simulator, but on live tensors).
    """
    l = len(net)
    if schedule.length != l:
        raise ExecutionError(
            f"schedule length {schedule.length} != network depth {l}"
        )
    tracer = get_tracer()
    traced = tracer.enabled  # hot loop pays only this null check when off
    meter = MemoryMeter()
    slots: dict[int, tuple[int, np.ndarray]] = {}  # slot -> (index, array)
    cursor_idx = 0
    cursor: np.ndarray = x
    meter.hold("cursor", cursor)
    pending = l
    dy: np.ndarray | None = None
    loss_value: float | None = None
    grads: GradMap = {}
    forward_steps = 0
    replay_steps = 0
    peak_slot_bytes = 0
    t0 = 0.0

    def _slot_bytes() -> int:
        return sum(int(a.nbytes) for _, a in slots.values())

    with tracer.span(
        "run_schedule",
        category="exec",
        strategy=schedule.strategy,
        length=l,
        slots=schedule.slots,
    ) as run_span:
        for pos, action in enumerate(schedule.actions):
            kind = action.kind
            if traced:
                t0 = tracer.now()
            if kind is ActionKind.ADVANCE:
                to = action.arg
                if not cursor_idx < to <= l:
                    raise ExecutionError(f"action {pos}: ADVANCE {cursor_idx}->{to} invalid")
                for i in range(cursor_idx, to):
                    cursor = net.layers[i].forward(cursor)
                    meter.hold("cursor", cursor)
                    forward_steps += 1
                cursor_idx = to
            elif kind is ActionKind.SNAPSHOT:
                if action.arg >= schedule.slots:
                    raise ExecutionError(
                        f"action {pos}: slot {action.arg} exceeds budget {schedule.slots}"
                    )
                slots[action.arg] = (cursor_idx, cursor)
                meter.hold(f"slot{action.arg}", cursor)
                peak_slot_bytes = max(peak_slot_bytes, _slot_bytes())
            elif kind is ActionKind.RESTORE:
                if action.arg not in slots:
                    raise ExecutionError(f"action {pos}: RESTORE from empty slot {action.arg}")
                cursor_idx, cursor = slots[action.arg]
                meter.hold("cursor", cursor)
            elif kind is ActionKind.FREE:
                if action.arg not in slots:
                    raise ExecutionError(f"action {pos}: FREE of empty slot {action.arg}")
                del slots[action.arg]
                meter.release(f"slot{action.arg}")
            elif kind is ActionKind.ADJOINT:
                step = action.arg
                if step != pending:
                    raise ExecutionError(
                        f"action {pos}: ADJOINT({step}) out of order (pending {pending})"
                    )
                if cursor_idx != step - 1:
                    raise ExecutionError(
                        f"action {pos}: ADJOINT({step}) needs cursor at {step - 1}, "
                        f"have {cursor_idx}"
                    )
                layer = net.layers[step - 1]
                if step == l:
                    # Head step: replay forward to get predictions, seed dy.
                    y = layer.forward(cursor)
                    meter.hold("head", y)
                    loss_value, dy = loss_fn(y, labels)
                    meter.release("head")
                    meter.hold("grad", dy)
                if dy is None:  # pragma: no cover - guarded by ordering check
                    raise ExecutionError("gradient flow unseeded")
                replay_steps += 1
                dx, layer_grads = layer.backward(cursor, dy)
                dy = dx
                meter.hold("grad", dy)
                for pname, g in layer_grads.items():
                    grads[(layer.name, pname)] = g
                pending -= 1
            else:  # pragma: no cover - exhaustive
                raise ExecutionError(f"unknown action kind {kind}")
            if traced:
                tracer.record(
                    kind.name,
                    "action",
                    t0,
                    arg=action.arg,
                    pos=pos,
                    live_bytes=meter.current_bytes,
                )

        if pending != 0:
            raise ExecutionError(f"schedule left backward steps {pending}..1 undone")
        assert loss_value is not None
        run_span.set_tag("peak_bytes", meter.peak_bytes)
        run_span.set_tag("peak_slot_bytes", peak_slot_bytes)
        run_span.set_tag("forward_steps", forward_steps)
        run_span.set_tag("replay_steps", replay_steps)
        m = get_metrics()
        m.gauge("executor.peak_bytes").max(meter.peak_bytes)
        m.gauge("executor.peak_slot_bytes").max(peak_slot_bytes)
        m.counter("executor.replays").inc(replay_steps)
        m.counter("executor.forward_steps").inc(forward_steps)
    return CheckpointedResult(
        loss=loss_value,
        grads=grads,
        peak_bytes=meter.peak_bytes,
        peak_slot_bytes=peak_slot_bytes,
        forward_steps=forward_steps,
        replay_steps=replay_steps,
    )
