"""Schedule-driven backpropagation on real tensors (engine facade).

:func:`run_schedule` executes any :class:`~repro.checkpointing.Schedule`
(Revolve, uniform, heterogeneous-DP, store-all) against a
:class:`~repro.autodiff.network.SequentialNet` and a real batch:

* ADVANCE runs layer forwards, discarding intermediates;
* SNAPSHOT / RESTORE / FREE move activations through checkpoint slots;
* ADJOINT replays the step's forward *inside* the layer's backward (the
  layers recompute their context from the stored input) and chains the
  gradient.

The action interpreter lives in :mod:`repro.engine` — the same virtual
machine that backs :func:`repro.checkpointing.simulate`, here driving a
:class:`~repro.engine.tensor.TensorBackend`.  This module is the
compatibility surface: unchanged signature, unchanged
:class:`~repro.errors.ExecutionError` behavior, unchanged
:class:`CheckpointedResult`.

The result's gradients are **numerically identical** to the store-all
reference (``SequentialNet.train_step``) — floating-point operations are
performed in the same order per layer — while the measured live-byte peak
tracks the slot budget.  This is the end-to-end proof that the paper's
optimal checkpointing actually trains networks on a memory-constrained
device.

Every execution runs under the process tracer (:mod:`repro.obs`): one
``exec``-category span for the call, one ``action``-category span per
schedule action (ADVANCE/SNAPSHOT/RESTORE/FREE/ADJOINT) with the
:class:`~.meter.MemoryMeter` peaks attached as tags on the run span.
With the default :class:`~repro.obs.NullTracer` the engine skips all
per-step bookkeeping (``benchmarks/bench_engine.py`` pins ≤ 5%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..checkpointing.schedule import Schedule
from ..obs import get_metrics, get_tracer
from .loss import softmax_cross_entropy
from .network import GradMap, SequentialNet

__all__ = ["CheckpointedResult", "run_schedule"]


@dataclass
class CheckpointedResult:
    """Outcome of a checkpointed training step."""

    loss: float
    grads: GradMap
    #: peak live activation+gradient bytes during execution
    peak_bytes: int
    #: peak bytes held in checkpoint slots only
    peak_slot_bytes: int
    #: forward layer executions due to ADVANCE actions
    forward_steps: int
    #: forward replays inside adjoints (== number of layers)
    replay_steps: int


def run_schedule(
    net: SequentialNet,
    schedule: Schedule,
    x: np.ndarray,
    labels: np.ndarray,
    loss_fn=softmax_cross_entropy,
    *,
    on_step=None,
) -> CheckpointedResult:
    """Execute ``schedule`` to compute loss and gradients for one batch.

    Raises :class:`~repro.errors.ExecutionError` on schedule/network
    length mismatch or invariant violations (same rules — and, since the
    unification, the same messages — as the abstract simulator, but on
    live tensors).  ``on_step`` is an optional VM step callback invoked
    with a :class:`~repro.engine.stats.StepStats` after every schedule
    action.
    """
    # Imported lazily: repro.engine.tensor imports this package's leaves.
    from ..engine.hooks import action_span_hook, compose
    from ..engine.tensor import TensorBackend
    from ..engine.vm import execute

    tracer = get_tracer()
    backend = TensorBackend(net, x, labels, loss_fn)
    with tracer.span(
        "run_schedule",
        category="exec",
        strategy=schedule.strategy,
        length=len(net),
        slots=schedule.slots,
    ) as run_span:
        hook = compose(action_span_hook(tracer) if tracer.enabled else None, on_step)
        run = execute(schedule, backend, on_step=hook)
        assert backend.loss_value is not None
        run_span.set_tag("peak_bytes", run.peak_bytes)
        run_span.set_tag("peak_slot_bytes", run.peak_slot_bytes)
        run_span.set_tag("forward_steps", run.forward_steps)
        run_span.set_tag("replay_steps", run.replay_steps)
        m = get_metrics()
        m.gauge("executor.peak_bytes").max(run.peak_bytes)
        m.gauge("executor.peak_slot_bytes").max(run.peak_slot_bytes)
        m.counter("executor.replays").inc(run.replay_steps)
        m.counter("executor.forward_steps").inc(run.forward_steps)
    return CheckpointedResult(
        loss=backend.loss_value,
        grads=backend.grads,
        peak_bytes=run.peak_bytes,
        peak_slot_bytes=run.peak_slot_bytes,
        forward_steps=run.forward_steps,
        replay_steps=run.replay_steps,
    )
