"""Synthetic datasets for tests, examples and the student-teacher world.

Everything is seeded through an explicit :class:`numpy.random.Generator`
for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["Dataset", "gaussian_blobs", "spirals", "image_blobs", "batches"]


@dataclass(frozen=True)
class Dataset:
    """Features + integer labels."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError("x and y must have equal first dimension")

    def __len__(self) -> int:
        return int(self.x.shape[0])

    @property
    def num_classes(self) -> int:
        return int(self.y.max()) + 1 if len(self) else 0

    def subset(self, idx: np.ndarray) -> "Dataset":
        return Dataset(self.x[idx], self.y[idx])


def gaussian_blobs(
    n_per_class: int,
    num_classes: int,
    dim: int,
    rng: np.random.Generator,
    spread: float = 1.0,
    separation: float = 4.0,
) -> Dataset:
    """Gaussian class clusters at random centers."""
    centers = rng.normal(0.0, separation, size=(num_classes, dim))
    xs, ys = [], []
    for c in range(num_classes):
        xs.append(rng.normal(0.0, spread, size=(n_per_class, dim)) + centers[c])
        ys.append(np.full(n_per_class, c, dtype=np.int64))
    x = np.concatenate(xs)
    y = np.concatenate(ys)
    perm = rng.permutation(len(y))
    return Dataset(x[perm], y[perm])


def spirals(n_per_class: int, num_classes: int, rng: np.random.Generator, noise: float = 0.1) -> Dataset:
    """Interleaved 2-D spirals — a classic nonlinear benchmark."""
    xs, ys = [], []
    for c in range(num_classes):
        t = np.linspace(0.2, 1.0, n_per_class)
        angle = 2.0 * np.pi * (t * 1.5 + c / num_classes)
        pts = np.stack([t * np.cos(angle), t * np.sin(angle)], axis=1)
        pts += rng.normal(0.0, noise, size=pts.shape)
        xs.append(pts)
        ys.append(np.full(n_per_class, c, dtype=np.int64))
    x = np.concatenate(xs)
    y = np.concatenate(ys)
    perm = rng.permutation(len(y))
    return Dataset(x[perm], y[perm])


def image_blobs(
    n_per_class: int,
    num_classes: int,
    size: int,
    rng: np.random.Generator,
    channels: int = 1,
    noise: float = 0.3,
) -> Dataset:
    """Tiny NCHW images whose class determines a bright quadrant pattern."""
    xs, ys = [], []
    half = size // 2
    for c in range(num_classes):
        base = np.zeros((channels, size, size))
        qr, qc = divmod(c % 4, 2)
        base[:, qr * half : qr * half + half, qc * half : qc * half + half] = 1.0 + 0.25 * c
        imgs = base[None] + rng.normal(0.0, noise, size=(n_per_class, channels, size, size))
        xs.append(imgs)
        ys.append(np.full(n_per_class, c, dtype=np.int64))
    x = np.concatenate(xs)
    y = np.concatenate(ys)
    perm = rng.permutation(len(y))
    return Dataset(x[perm], y[perm])


def batches(data: Dataset, batch_size: int, rng: np.random.Generator | None = None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (x, y) minibatches, optionally shuffled."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    order = np.arange(len(data)) if rng is None else rng.permutation(len(data))
    for start in range(0, len(data), batch_size):
        idx = order[start : start + batch_size]
        yield data.x[idx], data.y[idx]
