"""Trainable layers with recompute-from-input backward passes.

Every layer is a *pure function of its input and parameters*:

* ``forward(x) -> y`` allocates no hidden state;
* ``backward(x, dy) -> (dx, grads)`` recomputes whatever forward context
  it needs from ``x`` — exactly the "adjoint replays its own forward"
  semantics of the checkpointing action IR, which is what lets an
  arbitrary :class:`~repro.checkpointing.Schedule` drive training with
  gradients bit-identical to store-all backprop.

Parameters are plain NumPy arrays in ``self.params`` (dict name → array);
``grads`` returned by backward uses the same keys.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .ops import (
    conv2d_backward,
    conv2d_forward,
    maxpool2d_backward,
    maxpool2d_forward,
)

__all__ = [
    "TrainLayer",
    "DenseLayer",
    "ReLULayer",
    "ConvLayer",
    "MaxPoolLayer",
    "FlattenLayer",
    "BatchNormLayer",
    "param_bytes",
]


class TrainLayer:
    """Base class; subclasses fill ``self.params`` at construction."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.params: dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, x: np.ndarray, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        raise NotImplementedError

    def zero_grads(self) -> dict[str, np.ndarray]:
        return {k: np.zeros_like(v) for k, v in self.params.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


def param_bytes(layer: TrainLayer) -> int:
    """Bytes of one copy of a layer's parameters."""
    return sum(int(v.nbytes) for v in layer.params.values())


class DenseLayer(TrainLayer):
    """y = x @ W.T + b over flat inputs (N, in) -> (N, out)."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, name: str = "dense") -> None:
        super().__init__(name)
        scale = np.sqrt(2.0 / in_features)
        self.params["W"] = rng.normal(0.0, scale, size=(out_features, in_features))
        self.params["b"] = np.zeros(out_features)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.params["W"].shape[1]:
            raise ShapeError(f"{self.name}: expected (N, {self.params['W'].shape[1]}), got {x.shape}")
        return x @ self.params["W"].T + self.params["b"]

    def backward(self, x: np.ndarray, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        dW = dy.T @ x
        db = dy.sum(axis=0)
        dx = dy @ self.params["W"]
        return dx, {"W": dW, "b": db}


class ReLULayer(TrainLayer):
    """Elementwise max(x, 0)."""

    def __init__(self, name: str = "relu") -> None:
        super().__init__(name)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def backward(self, x: np.ndarray, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        return dy * (x > 0.0), {}


class ConvLayer(TrainLayer):
    """NCHW convolution with stride/padding (He-initialized)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        name: str = "conv",
    ) -> None:
        super().__init__(name)
        self.stride = stride
        self.padding = padding
        self.with_bias = bias
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.params["W"] = rng.normal(
            0.0, scale, size=(out_channels, in_channels, kernel_size, kernel_size)
        )
        if bias:
            self.params["b"] = np.zeros(out_channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.params["W"].shape[1]:
            raise ShapeError(f"{self.name}: expected NCHW with C={self.params['W'].shape[1]}, got {x.shape}")
        bias = self.params.get("b")
        return conv2d_forward(x, self.params["W"], bias, self.stride, self.padding)

    def backward(self, x: np.ndarray, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        dx, dW, db = conv2d_backward(x, self.params["W"], dy, self.stride, self.padding, self.with_bias)
        grads = {"W": dW}
        if self.with_bias:
            assert db is not None
            grads["b"] = db
        return dx, grads


class MaxPoolLayer(TrainLayer):
    """Max pooling with window ``k`` (stride = k)."""

    def __init__(self, k: int = 2, name: str = "maxpool") -> None:
        super().__init__(name)
        self.k = k

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, _ = maxpool2d_forward(x, self.k)
        return out

    def backward(self, x: np.ndarray, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        _, arg = maxpool2d_forward(x, self.k)  # recompute argmax from input
        return maxpool2d_backward(x.shape, arg, dy, self.k), {}


class FlattenLayer(TrainLayer):
    """(N, C, H, W) -> (N, C*H*W)."""

    def __init__(self, name: str = "flatten") -> None:
        super().__init__(name)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)

    def backward(self, x: np.ndarray, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        return dy.reshape(x.shape), {}


class BatchNormLayer(TrainLayer):
    """Training-mode batch normalization (batch statistics, affine).

    Works on flat (N, F) or NCHW inputs; normalization is over the batch
    (and spatial) axes per channel/feature.  Being a pure function of the
    batch, it replays deterministically under checkpoint schedules.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, name: str = "bn") -> None:
        super().__init__(name)
        self.eps = eps
        self.params["gamma"] = np.ones(num_features)
        self.params["beta"] = np.zeros(num_features)

    def _axes_and_shape(self, x: np.ndarray) -> tuple[tuple[int, ...], tuple[int, ...]]:
        if x.ndim == 2:
            return (0,), (1, -1)
        if x.ndim == 4:
            return (0, 2, 3), (1, -1, 1, 1)
        raise ShapeError(f"{self.name}: expected 2-D or 4-D input, got {x.ndim}-D")

    def forward(self, x: np.ndarray) -> np.ndarray:
        axes, shape = self._axes_and_shape(x)
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        xhat = (x - mean) / np.sqrt(var + self.eps)
        return self.params["gamma"].reshape(shape) * xhat + self.params["beta"].reshape(shape)

    def backward(self, x: np.ndarray, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        axes, shape = self._axes_and_shape(x)
        m = float(np.prod([x.shape[a] for a in axes]))
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean) * inv_std
        gamma = self.params["gamma"].reshape(shape)
        dgamma = (dy * xhat).sum(axis=axes)
        dbeta = dy.sum(axis=axes)
        dxhat = dy * gamma
        dx = (
            inv_std
            / m
            * (m * dxhat - dxhat.sum(axis=axes, keepdims=True) - xhat * (dxhat * xhat).sum(axis=axes, keepdims=True))
        )
        return dx, {"gamma": dgamma, "beta": dbeta}
