"""Composite and stochastic layers: residual blocks, avg-pool, dropout.

:class:`ResidualBlockLayer` makes real ResNet-style training compatible
with chain checkpointing: the whole block (body + skip) is *one* chain
step, so the sequential executor can checkpoint at block boundaries —
exactly the cut points :func:`repro.graph.chain.linearize` finds on the
symbolic side.  Its backward recomputes the block interior from the
block input, like every other layer.

:class:`DropoutLayer` shows how stochastic layers stay replay-exact
under checkpointing: the mask is a pure function of ``(seed, step)``, so
an adjoint's recompute regenerates the identical mask.  Callers bump
``set_step`` once per optimizer step.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .layers import TrainLayer

__all__ = ["ResidualBlockLayer", "AvgPoolLayer", "DropoutLayer"]


class ResidualBlockLayer(TrainLayer):
    """``y = body(x) + proj(x)`` as a single chain step.

    ``body`` is a list of sub-layers applied in sequence; ``proj`` is an
    optional projection layer for the skip path (identity when None).
    Sub-layer parameters are exposed in ``self.params`` under
    ``"<sub>.<param>"`` keys (shared arrays, not copies), so optimizers
    see them like any other layer's parameters.
    """

    def __init__(self, body: list[TrainLayer], proj: TrainLayer | None = None, name: str = "resblock") -> None:
        super().__init__(name)
        if not body:
            raise ShapeError("residual block needs at least one body layer")
        names = [lay.name for lay in body] + ([proj.name] if proj else [])
        if len(set(names)) != len(names):
            raise ShapeError(f"sub-layer names must be unique, got {names}")
        self.body = body
        self.proj = proj
        for sub in self._sublayers():
            for pname, arr in sub.params.items():
                self.params[f"{sub.name}.{pname}"] = arr

    def _sublayers(self) -> list[TrainLayer]:
        return self.body + ([self.proj] if self.proj else [])

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = x
        for sub in self.body:
            y = sub.forward(y)
        skip = self.proj.forward(x) if self.proj else x
        if y.shape != skip.shape:
            raise ShapeError(
                f"{self.name}: body output {y.shape} != skip {skip.shape}; "
                "add a projection layer"
            )
        return y + skip

    def backward(self, x: np.ndarray, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        # Recompute the interior from the block input (replay semantics).
        acts = [x]
        for sub in self.body:
            acts.append(sub.forward(acts[-1]))
        grads: dict[str, np.ndarray] = {}
        g = dy
        for i in range(len(self.body) - 1, -1, -1):
            g, sub_grads = self.body[i].backward(acts[i], g)
            for pname, val in sub_grads.items():
                grads[f"{self.body[i].name}.{pname}"] = val
        if self.proj is not None:
            g_skip, proj_grads = self.proj.backward(x, dy)
            for pname, val in proj_grads.items():
                grads[f"{self.proj.name}.{pname}"] = val
        else:
            g_skip = dy
        return g + g_skip, grads


class AvgPoolLayer(TrainLayer):
    """Average pooling with window ``k`` (stride = k, floor crop)."""

    def __init__(self, k: int = 2, name: str = "avgpool") -> None:
        super().__init__(name)
        if k < 1:
            raise ShapeError("pool window must be >= 1")
        self.k = k

    def _crop(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        oh, ow = h // self.k, w // self.k
        return x[:, :, : oh * self.k, : ow * self.k]

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NCHW, got {x.ndim}-D")
        k = self.k
        xc = self._crop(x)
        n, c, h, w = xc.shape
        return xc.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, x: np.ndarray, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        k = self.k
        dx = np.zeros_like(x)
        n, c, oh, ow = dy.shape
        spread = np.repeat(np.repeat(dy, k, axis=2), k, axis=3) / (k * k)
        dx[:, :, : oh * k, : ow * k] = spread
        return dx, {}


class DropoutLayer(TrainLayer):
    """Inverted dropout with replay-deterministic masks.

    The mask depends only on ``(seed, step, input shape)``; within one
    optimizer step every forward replay (ADVANCE or adjoint-internal)
    regenerates the identical mask, so checkpointed gradients remain
    bit-identical to store-all.  Call :meth:`set_step` once per batch.
    """

    def __init__(self, p: float = 0.5, seed: int = 0, name: str = "dropout") -> None:
        super().__init__(name)
        if not 0.0 <= p < 1.0:
            raise ShapeError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self.seed = seed
        self._step = 0
        self.training = True

    def set_step(self, step: int) -> None:
        """Advance the mask stream (one step = one optimizer update)."""
        if step < 0:
            raise ValueError("step must be >= 0")
        self._step = step

    def _mask(self, shape: tuple[int, ...]) -> np.ndarray:
        rng = np.random.default_rng((self.seed, self._step))
        return (rng.random(shape) >= self.p).astype(np.float64)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            return x
        return x * self._mask(x.shape) / (1.0 - self.p)

    def backward(self, x: np.ndarray, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        if not self.training or self.p == 0.0:
            return dy, {}
        return dy * self._mask(x.shape) / (1.0 - self.p), {}
