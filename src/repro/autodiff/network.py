"""Sequential training network and the reference store-all backprop.

:class:`SequentialNet` chains :class:`~repro.autodiff.layers.TrainLayer`
objects.  :meth:`SequentialNet.train_step` is the *reference* gradient
computation — it stores every activation — against which the checkpointed
executor is verified to be numerically identical.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .layers import TrainLayer, param_bytes
from .loss import softmax_cross_entropy

__all__ = ["SequentialNet", "GradMap"]

GradMap = dict[tuple[str, str], np.ndarray]


class SequentialNet:
    """A chain of layers F_1..F_l — the executable ChainSpec."""

    def __init__(self, layers: list[TrainLayer], name: str = "net") -> None:
        if not layers:
            raise ShapeError("network needs at least one layer")
        names = [lay.name for lay in layers]
        if len(set(names)) != len(names):
            raise ShapeError(f"layer names must be unique, got {names}")
        self.layers = layers
        self.name = name

    def __len__(self) -> int:
        return len(self.layers)

    # -- inference -----------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Full forward pass, discarding intermediates."""
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def activations(self, x: np.ndarray) -> list[np.ndarray]:
        """All activations x_0..x_l (store-all forward)."""
        acts = [x]
        for layer in self.layers:
            acts.append(layer.forward(acts[-1]))
        return acts

    # -- reference training step -----------------------------------------
    def train_step(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        loss_fn=softmax_cross_entropy,
    ) -> tuple[float, GradMap, int]:
        """Store-all forward + backward.

        Returns (loss, grads keyed by (layer, param), peak live bytes of
        the stored activations + gradient — the store-all memory this
        library exists to reduce).
        """
        acts = self.activations(x)
        peak = sum(int(a.nbytes) for a in acts)
        loss, dy = loss_fn(acts[-1], labels)
        peak += int(dy.nbytes)
        grads: GradMap = {}
        for i in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[i]
            dy, layer_grads = layer.backward(acts[i], dy)
            for pname, g in layer_grads.items():
                grads[(layer.name, pname)] = g
        return loss, grads, peak

    # -- introspection ----------------------------------------------------
    @property
    def param_bytes(self) -> int:
        """One copy of all parameters."""
        return sum(param_bytes(layer) for layer in self.layers)

    def activation_bytes(self, x: np.ndarray) -> list[int]:
        """Per-activation byte sizes x_0..x_l for a given input batch."""
        return [int(a.nbytes) for a in self.activations(x)]
