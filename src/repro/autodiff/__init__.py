"""NumPy training substrate with schedule-driven (checkpointed) backprop."""

from .ops import (
    col2im,
    conv2d_backward,
    conv2d_forward,
    im2col,
    maxpool2d_backward,
    maxpool2d_forward,
)
from .layers import (
    BatchNormLayer,
    ConvLayer,
    DenseLayer,
    FlattenLayer,
    MaxPoolLayer,
    ReLULayer,
    TrainLayer,
    param_bytes,
)
from .blocks import AvgPoolLayer, DropoutLayer, ResidualBlockLayer
from .loss import accuracy, mse_loss, softmax, softmax_cross_entropy
from .optim import SGD, Adam, Momentum, Optimizer
from .network import SequentialNet
from .executor import CheckpointedResult, run_schedule
from .rnn import RNNStepLayer, UnrolledRNN
from .trainer import EpochRecord, FitCursor, Trainer, TrainerConfig
from .meter import MemoryMeter
from .data import Dataset, batches, gaussian_blobs, image_blobs, spirals

__all__ = [
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "TrainLayer",
    "DenseLayer",
    "ReLULayer",
    "ConvLayer",
    "MaxPoolLayer",
    "FlattenLayer",
    "BatchNormLayer",
    "ResidualBlockLayer",
    "AvgPoolLayer",
    "DropoutLayer",
    "param_bytes",
    "softmax",
    "softmax_cross_entropy",
    "mse_loss",
    "accuracy",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "SequentialNet",
    "CheckpointedResult",
    "run_schedule",
    "Trainer",
    "TrainerConfig",
    "EpochRecord",
    "FitCursor",
    "RNNStepLayer",
    "UnrolledRNN",
    "MemoryMeter",
    "Dataset",
    "gaussian_blobs",
    "spirals",
    "image_blobs",
    "batches",
]
