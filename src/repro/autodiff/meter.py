"""Live-byte high-water-mark meter for the checkpointed executor.

Tracks named allocations (checkpoint slots, the cursor activation, the
flowing gradient) and records the peak of their sum — the measured analog
of the simulator's analytic ``peak_bytes``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MemoryMeter"]


class MemoryMeter:
    """Names → byte counts with a running peak."""

    def __init__(self) -> None:
        self._live: dict[str, int] = {}
        self.peak_bytes: int = 0
        self.current_bytes: int = 0

    def hold(self, name: str, array: np.ndarray | None) -> None:
        """Register (or replace) a named allocation."""
        self.release(name)
        if array is not None:
            n = int(array.nbytes)
            self._live[name] = n
            self.current_bytes += n
            if self.current_bytes > self.peak_bytes:
                self.peak_bytes = self.current_bytes

    def release(self, name: str) -> None:
        """Drop a named allocation (no-op when absent)."""
        n = self._live.pop(name, None)
        if n is not None:
            self.current_bytes -= n

    def live(self) -> dict[str, int]:
        """Snapshot of current allocations."""
        return dict(self._live)
