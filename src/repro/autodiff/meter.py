"""Live-byte high-water-mark meter for the checkpointed executor.

Tracks named allocations (checkpoint slots, the cursor activation, the
flowing gradient) and records the peak of their sum — the measured analog
of the simulator's analytic ``peak_bytes``.

Releasing a name that is not held is an accounting leak on the caller's
side.  By default the meter counts it on the shared
``meter.unmatched_releases`` obs counter (so executor leaks are visible
in any exported trace); with ``strict=True`` it raises instead.
Re-holding a name replaces the allocation and is *not* an unmatched
release.
"""

from __future__ import annotations

import numpy as np

from ..obs import get_metrics

__all__ = ["MemoryMeter"]

#: Shared counter name for release-without-hold accounting leaks.
UNMATCHED_RELEASES = "meter.unmatched_releases"


class MemoryMeter:
    """Names → byte counts with a running peak."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self._live: dict[str, int] = {}
        self.peak_bytes: int = 0
        self.current_bytes: int = 0
        self.unmatched_releases: int = 0

    def _drop(self, name: str) -> bool:
        """Remove ``name`` if held; True when it was present."""
        n = self._live.pop(name, None)
        if n is None:
            return False
        self.current_bytes -= n
        return True

    def hold(self, name: str, array: np.ndarray | None) -> None:
        """Register (or replace) a named allocation."""
        self._drop(name)
        if array is not None:
            n = int(array.nbytes)
            self._live[name] = n
            self.current_bytes += n
            if self.current_bytes > self.peak_bytes:
                self.peak_bytes = self.current_bytes

    def release(self, name: str) -> None:
        """Drop a named allocation.

        An absent ``name`` counts on :data:`UNMATCHED_RELEASES` (and on
        this meter's ``unmatched_releases``); with ``strict=True`` it
        also raises ``KeyError``.
        """
        if not self._drop(name):
            self.unmatched_releases += 1
            get_metrics().counter(UNMATCHED_RELEASES).inc()
            if self.strict:
                raise KeyError(f"release of unheld allocation {name!r}")

    def live(self) -> dict[str, int]:
        """Snapshot of current allocations."""
        return dict(self._live)
