"""A schedule-aware training loop.

:class:`Trainer` consolidates the loop the examples and the student
module hand-roll: plan the checkpoint schedule once (store-all when the
budget allows, any registered strategy otherwise), iterate epochs and
batches, step the optimizer, bump per-step layers (dropout), and record
history and the live-memory high-water mark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..checkpointing import Schedule, get_strategy, slots_for_rho
from ..checkpointing.planner import max_slots_in_budget
from ..errors import MemoryBudgetError
from ..obs import get_metrics, get_tracer
from .blocks import DropoutLayer
from .data import Dataset, batches
from .executor import run_schedule
from .loss import accuracy, softmax_cross_entropy
from .network import SequentialNet
from .optim import Optimizer

__all__ = ["TrainerConfig", "EpochRecord", "FitCursor", "Trainer"]


@dataclass(frozen=True)
class TrainerConfig:
    """Loop behaviour.

    Memory policy, by priority: explicit ``schedule`` > explicit
    ``slots`` > ``rho`` target > ``activation_budget_bytes`` (per batch)
    > store-all (no schedule).  ``strategy`` names which registered
    checkpoint family builds the schedule once a slot budget is resolved
    (default ``revolve``, the optimum); any name accepted by
    :func:`repro.checkpointing.get_strategy` works.
    """

    epochs: int = 10
    batch_size: int = 16
    shuffle_seed: int = 0
    #: Registered strategy family used whenever a schedule is built.
    strategy: str | None = None
    #: Explicit checkpoint slot budget (Revolve convention, >= 1).
    slots: int | None = None
    rho: float | None = None
    activation_budget_bytes: int | None = None
    schedule: Schedule | None = None
    early_stop_loss: float | None = None
    #: Gradient accumulation: split each batch into micro-batches of this
    #: size, sum gradients, step once.  The standard alternative to
    #: checkpointing — activation memory scales with the micro-batch while
    #: the *optimizer* still sees the full batch.  Composable with any
    #: schedule (the schedule then runs per micro-batch).  Exact only for
    #: batch-independent layers: BatchNorm computes statistics per
    #: micro-batch, so accumulated BN gradients differ from full-batch
    #: ones (checkpointing has no such caveat — a genuine advantage the
    #: ablation tests pin down).
    micro_batch_size: int | None = None

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if self.rho is not None and self.rho < 1.0:
            raise ValueError("rho must be >= 1")
        if self.slots is not None and self.slots < 1:
            raise ValueError("slots must be >= 1")
        if self.strategy is not None:
            get_strategy(self.strategy)  # fail fast on unknown names
        if self.micro_batch_size is not None and not (
            1 <= self.micro_batch_size <= self.batch_size
        ):
            raise ValueError("micro_batch_size must be in [1, batch_size]")


@dataclass(frozen=True)
class EpochRecord:
    """Per-epoch measurements."""

    epoch: int
    mean_loss: float
    peak_bytes: int


@dataclass(frozen=True)
class FitCursor:
    """Exact position inside a :meth:`Trainer.fit` run.

    Captures everything the loop itself carries between optimizer steps:
    the epoch, how many batches of that epoch are already done, the
    global step counter, and the partial-epoch accumulators.  Because
    the per-epoch batch order is a pure function of
    ``(shuffle_seed, epoch)``, a cursor plus the model/optimizer state
    is sufficient to resume a run bit-identically — no replay of earlier
    epochs is needed.  :mod:`repro.resilience` serializes cursors inside
    durable training snapshots.
    """

    epoch: int = 0
    #: batches of ``epoch`` already completed (the next batch index).
    batch: int = 0
    #: global optimizer steps completed (drives stochastic layers).
    step: int = 0
    #: partial-epoch accumulators, so mid-epoch resumes reproduce the
    #: epoch's mean loss and peak exactly.
    loss_sum: float = 0.0
    peak_bytes: int = 0

    def __post_init__(self) -> None:
        if self.epoch < 0 or self.batch < 0 or self.step < 0:
            raise ValueError("cursor fields must be non-negative")


@dataclass
class Trainer:
    """Drives a :class:`SequentialNet` with a chosen memory strategy."""

    net: SequentialNet
    optimizer: Optimizer
    config: TrainerConfig = field(default_factory=TrainerConfig)
    loss_fn: object = softmax_cross_entropy
    history: list[EpochRecord] = field(default_factory=list)
    _schedule: Schedule | None = field(default=None, init=False)
    _step: int = field(default=0, init=False)

    def _resolve_schedule(self, sample_x: np.ndarray) -> Schedule | None:
        cfg = self.config
        if cfg.schedule is not None:
            return cfg.schedule
        if (
            cfg.strategy is None
            and cfg.slots is None
            and cfg.rho is None
            and cfg.activation_budget_bytes is None
        ):
            return None  # store-all train_step, no executor overhead
        l = len(self.net)
        strat = get_strategy(cfg.strategy or "revolve")
        if cfg.slots is not None:
            c = min(cfg.slots, max(1, l - 1))
        elif cfg.rho is not None:
            # Slot budget the optimal schedule needs for the ρ target;
            # non-revolve strategies then compete at that same budget.
            c = slots_for_rho(l, cfg.rho)
        elif cfg.activation_budget_bytes is not None:
            sizes = self.net.activation_bytes(sample_x)
            slot = max(sizes[1:]) if len(sizes) > 1 else sizes[0]
            # Conservative: charge every slot at the largest activation.
            try:
                c = max_slots_in_budget(cfg.activation_budget_bytes, 0.0, float(slot))
            except MemoryBudgetError:
                raise MemoryBudgetError(
                    f"activation budget {cfg.activation_budget_bytes} B cannot "
                    f"hold one checkpoint slot ({slot} B) plus the cursor"
                ) from None
            c = min(c, max(1, l - 1))
        else:
            c = max(1, l - 1)  # strategy named without a size target
        if not strat.feasible(l, c):
            raise MemoryBudgetError(
                f"strategy {strat.name!r} cannot reverse a {l}-step chain "
                f"within {c} checkpoint slots"
            )
        return strat.schedule(l, c)

    def _bump_step(self) -> None:
        self._step += 1
        for layer in self.net.layers:
            if isinstance(layer, DropoutLayer):
                layer.set_step(self._step)

    def _compute(
        self,
        xb: np.ndarray,
        yb: np.ndarray,
        schedule: Schedule | None,
        on_action=None,
    ):
        """One optimizer step's (loss, grads, peak), micro-batched if set."""
        micro = self.config.micro_batch_size
        if micro is None or micro >= len(xb):
            if schedule is None:
                return self.net.train_step(xb, yb, self.loss_fn)
            res = run_schedule(self.net, schedule, xb, yb, self.loss_fn, on_step=on_action)
            return res.loss, res.grads, res.peak_bytes
        # Gradient accumulation: per-micro-batch mean losses/gradients are
        # recombined with n_i/N weights, reproducing the full-batch values.
        n = len(xb)
        total_loss = 0.0
        acc: dict = {}
        peak = 0
        for start in range(0, n, micro):
            xs, ys = xb[start : start + micro], yb[start : start + micro]
            w = len(xs) / n
            if schedule is None:
                loss, grads, p = self.net.train_step(xs, ys, self.loss_fn)
            else:
                res = run_schedule(self.net, schedule, xs, ys, self.loss_fn, on_step=on_action)
                loss, grads, p = res.loss, res.grads, res.peak_bytes
            total_loss += w * loss
            peak = max(peak, p)
            for k, g in grads.items():
                if k in acc:
                    acc[k] += w * g
                else:
                    acc[k] = w * g
        return total_loss, acc, peak

    def fit(
        self,
        data: Dataset,
        *,
        cursor: FitCursor | None = None,
        on_step=None,
        on_action=None,
    ) -> list[EpochRecord]:
        """Train; returns (and appends to) the epoch history.

        Each epoch's batch order is a pure function of
        ``(shuffle_seed, epoch)``, so any position in the run is
        reproducible without replaying earlier epochs.  ``cursor``
        resumes from such a position (restore the model/optimizer state
        first — see :mod:`repro.resilience`); ``on_step`` is called after
        every optimizer step as ``on_step(cursor, loss)`` with the
        :class:`FitCursor` a resume should pass, and may raise (e.g.
        :class:`~repro.errors.FaultError` from a fault injector) to
        abort the run.  ``on_action`` is a schedule-VM step callback
        (:class:`~repro.engine.stats.StepStats` per executed action),
        forwarded to the engine whenever a checkpoint schedule drives
        the batch computation; with the store-all fast path (no
        schedule) there are no actions and it is never called.

        Runs under the process tracer: one ``train``-category span for
        the fit, nested ``epoch``/``batch`` spans, and the shared
        metrics gauges ``trainer.loss`` / ``trainer.peak_bytes`` plus
        counters ``trainer.epochs`` / ``trainer.batches``.
        """
        start = cursor or FitCursor()
        self._step = start.step
        sample = min(self.config.micro_batch_size or self.config.batch_size, self.config.batch_size)
        schedule = self._resolve_schedule(data.x[:sample])
        self._schedule = schedule
        tracer = get_tracer()
        metrics = get_metrics()
        with tracer.span(
            "fit",
            category="train",
            strategy=self.schedule_strategy,
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
            start_epoch=start.epoch,
        ):
            for epoch in range(start.epoch, self.config.epochs):
                resuming = epoch == start.epoch
                skip = start.batch if resuming else 0
                total = start.loss_sum if resuming else 0.0
                nb = skip
                peak = start.peak_bytes if resuming else 0
                # One independent generator per epoch: epoch k's batch
                # order needs no replay of epochs 0..k-1.
                rng = np.random.default_rng((self.config.shuffle_seed, epoch))
                with tracer.span("epoch", category="epoch", epoch=epoch) as ep_span:
                    for bi, (xb, yb) in enumerate(
                        batches(data, self.config.batch_size, rng)
                    ):
                        if bi < skip:
                            continue
                        self._bump_step()
                        with tracer.span(
                            "batch", category="batch", step=self._step, size=len(xb)
                        ) as b_span:
                            loss, grads, step_peak = self._compute(
                                xb, yb, schedule, on_action
                            )
                            self.optimizer.step(grads)
                            b_span.set_tag("loss", loss)
                        metrics.counter("trainer.batches").inc()
                        total += loss
                        nb += 1
                        peak = max(peak, step_peak)
                        if on_step is not None:
                            on_step(
                                FitCursor(
                                    epoch=epoch,
                                    batch=bi + 1,
                                    step=self._step,
                                    loss_sum=total,
                                    peak_bytes=peak,
                                ),
                                loss,
                            )
                    record = EpochRecord(
                        epoch=epoch, mean_loss=total / max(1, nb), peak_bytes=peak
                    )
                    ep_span.set_tag("mean_loss", record.mean_loss)
                    ep_span.set_tag("peak_bytes", record.peak_bytes)
                metrics.counter("trainer.epochs").inc()
                metrics.gauge("trainer.loss").set(record.mean_loss)
                metrics.gauge("trainer.peak_bytes").max(record.peak_bytes)
                self.history.append(record)
                if (
                    self.config.early_stop_loss is not None
                    and record.mean_loss <= self.config.early_stop_loss
                ):
                    break
        return self.history

    # -- reporting ------------------------------------------------------
    @property
    def schedule_strategy(self) -> str:
        """Which memory strategy the trainer resolved to."""
        if self._schedule is None:
            return "store_all"
        return self._schedule.strategy

    @property
    def peak_bytes(self) -> int:
        return max((r.peak_bytes for r in self.history), default=0)

    def evaluate(self, data: Dataset) -> float:
        """Top-1 accuracy on a dataset (recorded on ``trainer.accuracy``)."""
        with get_tracer().span("evaluate", category="train", samples=len(data.x)):
            acc = accuracy(self.net.forward(data.x), data.y)
        get_metrics().gauge("trainer.accuracy").set(acc)
        return acc
