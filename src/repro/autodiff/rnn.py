"""Recurrent chains: checkpointed backpropagation-through-time.

Section IV cites Gruslys et al.'s memory-efficient BPTT — checkpointing's
other classic application.  An RNN unrolled over ``T`` steps *is* a chain
``F_1 .. F_T`` whose steps share weights: each :class:`RNNStepLayer`
consumes the hidden state, reads one timestep of the input sequence
(bound at construction), and produces the next hidden state.  All step
layers alias the *same* parameter arrays, so any checkpoint schedule
drives BPTT unchanged — the only twist is that weight gradients must be
summed across timesteps, which :meth:`UnrolledRNN.combine_grads` does.

The final hidden state feeds a readout; training the whole stack under a
Revolve schedule produces gradients bit-identical to direct BPTT while
holding O(c) instead of O(T) hidden states (property-tested).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .layers import DenseLayer, TrainLayer
from .network import GradMap, SequentialNet

__all__ = ["RNNStepLayer", "UnrolledRNN"]


class RNNStepLayer(TrainLayer):
    """One unrolled timestep: ``h' = tanh(h W_h^T + x_t W_x^T + b)``.

    ``params`` alias the arrays owned by the :class:`UnrolledRNN`; the
    input sequence slice ``x_t`` is bound at construction so the chain
    interface stays unary (hidden state in, hidden state out).
    """

    def __init__(
        self,
        shared: dict[str, np.ndarray],
        x_t: np.ndarray,
        name: str,
    ) -> None:
        super().__init__(name)
        self.params = shared  # aliased, not copied
        self.x_t = x_t

    def forward(self, h: np.ndarray) -> np.ndarray:
        if h.ndim != 2 or h.shape[1] != self.params["Wh"].shape[0]:
            raise ShapeError(f"{self.name}: bad hidden state shape {h.shape}")
        z = h @ self.params["Wh"].T + self.x_t @ self.params["Wx"].T + self.params["b"]
        return np.tanh(z)

    def backward(self, h: np.ndarray, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        z = h @ self.params["Wh"].T + self.x_t @ self.params["Wx"].T + self.params["b"]
        out = np.tanh(z)
        dz = dy * (1.0 - out * out)
        grads = {
            "Wh": dz.T @ h,
            "Wx": dz.T @ self.x_t,
            "b": dz.sum(axis=0),
        }
        return dz @ self.params["Wh"], grads


class UnrolledRNN:
    """An RNN bound to one input sequence, exposed as a layer chain.

    Parameters
    ----------
    hidden, input_size, num_classes : sizes.
    rng : initialization generator.

    Call :meth:`bind` with a batch of sequences ``(N, T, input_size)``
    to get a :class:`SequentialNet` of ``T`` step layers plus a readout;
    run any schedule on it, then fold the per-step weight gradients with
    :meth:`combine_grads` before the optimizer step.
    """

    def __init__(self, input_size: int, hidden: int, num_classes: int, rng: np.random.Generator) -> None:
        if hidden < 1 or input_size < 1 or num_classes < 1:
            raise ShapeError("sizes must be >= 1")
        self.input_size = input_size
        self.hidden = hidden
        self.shared: dict[str, np.ndarray] = {
            "Wh": rng.normal(0.0, 1.0 / np.sqrt(hidden), size=(hidden, hidden)),
            "Wx": rng.normal(0.0, 1.0 / np.sqrt(input_size), size=(hidden, input_size)),
            "b": np.zeros(hidden),
        }
        self.readout = DenseLayer(hidden, num_classes, rng, name="readout")

    def bind(self, x_seq: np.ndarray) -> SequentialNet:
        """Unroll over ``x_seq`` of shape (N, T, input_size)."""
        if x_seq.ndim != 3 or x_seq.shape[2] != self.input_size:
            raise ShapeError(f"expected (N, T, {self.input_size}), got {x_seq.shape}")
        T = x_seq.shape[1]
        if T < 1:
            raise ShapeError("need at least one timestep")
        steps: list[TrainLayer] = [
            RNNStepLayer(self.shared, x_seq[:, t, :], name=f"step{t}") for t in range(T)
        ]
        steps.append(self.readout)
        return SequentialNet(steps, name="unrolled_rnn")

    def initial_state(self, batch: int) -> np.ndarray:
        """The chain input x_0: a zero hidden state."""
        return np.zeros((batch, self.hidden))

    def combine_grads(self, grads: GradMap) -> GradMap:
        """Sum shared-weight gradients across timesteps.

        Returns a map keyed for an optimizer over ``[rnn, readout]``
        pseudo-layers: ``("rnn", Wh/Wx/b)`` and ``("readout", W/b)``.
        """
        out: GradMap = {}
        for (layer, pname), g in grads.items():
            key = ("readout", pname) if layer == "readout" else ("rnn", pname)
            if key in out:
                out[key] = out[key] + g
            else:
                out[key] = g.copy()
        return out

    def apply_grads(self, grads: GradMap, lr: float) -> None:
        """Plain SGD on the shared weights + readout."""
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        combined = self.combine_grads(grads)
        for pname, arr in self.shared.items():
            g = combined.get(("rnn", pname))
            if g is not None:
                arr -= lr * g
        for pname, arr in self.readout.params.items():
            g = combined.get(("readout", pname))
            if g is not None:
                arr -= lr * g

    # -- reference implementation for tests -------------------------------
    def direct_bptt(
        self, x_seq: np.ndarray, labels: np.ndarray, loss_fn
    ) -> tuple[float, GradMap]:
        """Textbook BPTT storing every hidden state (the baseline)."""
        net = self.bind(x_seq)
        loss, grads, _ = net.train_step(self.initial_state(x_seq.shape[0]), labels, loss_fn)
        return loss, self.combine_grads(grads)
