"""Vectorized NumPy primitives for the training substrate.

Convolution uses im2col/col2im (no Python loops over pixels, per the
vectorization guidance for numerical Python); pooling uses stride tricks
via reshape when the window tiles exactly, falling back to im2col
otherwise.  All arrays are NCHW float64 by default for gradient-check
accuracy; the layers cast as configured.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "im2col_indices",
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "pad_nchw",
]


def pad_nchw(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad spatial dims of an NCHW tensor."""
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def im2col_indices(
    h: int, w: int, kh: int, kw: int, stride: int, padding: int
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Row/col gather indices for im2col on padded input.

    Returns ``(rows, cols, oh, ow)`` where ``rows``/``cols`` have shape
    ``(kh*kw, oh*ow)``.
    """
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    r0 = np.repeat(np.arange(kh), kw).reshape(-1, 1)
    c0 = np.tile(np.arange(kw), kh).reshape(-1, 1)
    r1 = stride * np.repeat(np.arange(oh), ow).reshape(1, -1)
    c1 = stride * np.tile(np.arange(ow), oh).reshape(1, -1)
    return r0 + r1, c0 + c1, oh, ow


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> tuple[np.ndarray, int, int]:
    """Unfold NCHW ``x`` into columns of shape ``(N, C*kh*kw, oh*ow)``."""
    n, c, h, w = x.shape
    rows, cols, oh, ow = im2col_indices(h, w, kh, kw, stride, padding)
    xp = pad_nchw(x, padding)
    # gather -> (N, C, kh*kw, oh*ow) -> (N, C*kh*kw, oh*ow)
    patches = xp[:, :, rows, cols]
    return patches.reshape(n, c * kh * kw, oh * ow), oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to NCHW."""
    n, c, h, w = x_shape
    rows, colidx, oh, ow = im2col_indices(h, w, kh, kw, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    xp = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    patches = cols.reshape(n, c, kh * kw, oh * ow)
    # np.add.at performs the required scatter-add over overlapping windows.
    np.add.at(xp, (slice(None), slice(None), rows, colidx), patches)
    if padding == 0:
        return xp
    return xp[:, :, padding:-padding, padding:-padding]


def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None, stride: int, padding: int
) -> np.ndarray:
    """NCHW convolution: weight ``(O, C, kh, kw)``, optional bias ``(O,)``."""
    o, c, kh, kw = weight.shape
    cols, oh, ow = im2col(x, kh, kw, stride, padding)
    wmat = weight.reshape(o, c * kh * kw)
    out = np.einsum("ok,nkp->nop", wmat, cols, optimize=True)
    if bias is not None:
        out += bias.reshape(1, o, 1)
    return out.reshape(x.shape[0], o, oh, ow)


def conv2d_backward(
    x: np.ndarray,
    weight: np.ndarray,
    dy: np.ndarray,
    stride: int,
    padding: int,
    with_bias: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Gradients (dx, dweight, dbias) for :func:`conv2d_forward`."""
    o, c, kh, kw = weight.shape
    n = x.shape[0]
    cols, oh, ow = im2col(x, kh, kw, stride, padding)
    dy2 = dy.reshape(n, o, oh * ow)
    wmat = weight.reshape(o, c * kh * kw)
    dweight = np.einsum("nop,nkp->ok", dy2, cols, optimize=True).reshape(weight.shape)
    dcols = np.einsum("ok,nop->nkp", wmat, dy2, optimize=True)
    dx = col2im(dcols, x.shape, kh, kw, stride, padding)
    dbias = dy2.sum(axis=(0, 2)) if with_bias else None
    return dx, dweight, dbias


def maxpool2d_forward(x: np.ndarray, k: int, stride: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Max pooling; returns (output, argmax index array for backward).

    Window ``k`` with stride ``stride`` (default ``k``); input spatial
    dims must be divisible when stride == k (the common tiling case),
    otherwise trailing rows/cols are cropped like PyTorch's floor mode.
    """
    stride = stride or k
    n, c, h, w = x.shape
    oh = (h - k) // stride + 1
    ow = (w - k) // stride + 1
    if stride == k and h % k == 0 and w % k == 0:
        view = x.reshape(n, c, oh, k, ow, k)
        windows = view.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, oh, ow, k * k)
    else:
        cols, oh2, ow2 = im2col(x.reshape(n * c, 1, h, w), k, k, stride, 0)
        windows = cols.reshape(n, c, k * k, oh2 * ow2).transpose(0, 1, 3, 2).reshape(n, c, oh, ow, k * k)
    arg = windows.argmax(axis=-1)
    out = np.take_along_axis(windows, arg[..., None], axis=-1)[..., 0]
    return out, arg


def maxpool2d_backward(
    x_shape: tuple[int, int, int, int], arg: np.ndarray, dy: np.ndarray, k: int, stride: int | None = None
) -> np.ndarray:
    """Scatter ``dy`` to the argmax positions recorded by the forward."""
    stride = stride or k
    n, c, h, w = x_shape
    oh, ow = arg.shape[2], arg.shape[3]
    dx = np.zeros((n, c, h, w), dtype=dy.dtype)
    # decompose flat window index into (dr, dc)
    dr = arg // k
    dc = arg % k
    base_r = (stride * np.arange(oh)).reshape(1, 1, oh, 1)
    base_c = (stride * np.arange(ow)).reshape(1, 1, 1, ow)
    rows = base_r + dr
    cols = base_c + dc
    nidx = np.arange(n).reshape(n, 1, 1, 1)
    cidx = np.arange(c).reshape(1, c, 1, 1)
    np.add.at(dx, (nidx, cidx, rows, cols), dy)
    return dx
