"""Loss functions returning (scalar loss, gradient w.r.t. predictions)."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax_cross_entropy", "mse_loss", "softmax", "accuracy"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically stable softmax."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean cross-entropy over integer labels; gradient w.r.t. logits."""
    n = logits.shape[0]
    p = softmax(logits)
    eps = 1e-12
    loss = float(-np.log(np.maximum(p[np.arange(n), labels], eps)).mean())
    grad = p.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient."""
    diff = pred - target
    loss = float((diff**2).mean())
    return loss, 2.0 * diff / diff.size


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy for integer labels."""
    return float((logits.argmax(axis=1) == labels).mean())
