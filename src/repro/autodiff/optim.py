"""Optimizers over (layer, param-name) keyed gradients.

Each optimizer reports ``state_bytes`` — the extra per-parameter copies it
keeps — which ties directly into the memory model's ``weight_copies``
convention (SGD: 0 extra, Momentum: 1, Adam: 2).
"""

from __future__ import annotations

import numpy as np

from .layers import TrainLayer

__all__ = ["Optimizer", "SGD", "Momentum", "Adam"]

GradMap = dict[tuple[str, str], np.ndarray]


class Optimizer:
    """Base optimizer over a list of layers."""

    #: extra weight-sized copies per parameter (for memory accounting)
    state_copies: int = 0

    def __init__(self, layers: list[TrainLayer], lr: float = 1e-2) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.layers = layers
        self.lr = lr

    def step(self, grads: GradMap) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Internal state as plain scalars and arrays (copies).

        Together with the layer parameters this fully determines future
        steps, which is what lets :mod:`repro.resilience` snapshots
        resume training bit-identically.  Subclasses with state override
        both this and :meth:`load_state_dict`.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        if state:
            raise ValueError(f"{type(self).__name__} carries no state, got {sorted(state)}")

    @property
    def state_bytes(self) -> int:
        per_copy = sum(int(v.nbytes) for lay in self.layers for v in lay.params.values())
        return self.state_copies * per_copy

    def _iter(self, grads: GradMap):
        for layer in self.layers:
            for pname, value in layer.params.items():
                g = grads.get((layer.name, pname))
                if g is not None:
                    yield layer, pname, value, g


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    state_copies = 0

    def step(self, grads: GradMap) -> None:
        for _, _, value, g in self._iter(grads):
            value -= self.lr * g


class Momentum(Optimizer):
    """SGD with heavy-ball momentum."""

    state_copies = 1

    def __init__(self, layers: list[TrainLayer], lr: float = 1e-2, beta: float = 0.9) -> None:
        super().__init__(layers, lr)
        self.beta = beta
        self._vel: dict[tuple[str, str], np.ndarray] = {}

    def step(self, grads: GradMap) -> None:
        for layer, pname, value, g in self._iter(grads):
            key = (layer.name, pname)
            v = self._vel.setdefault(key, np.zeros_like(value))
            v *= self.beta
            v -= self.lr * g
            value += v

    def state_dict(self) -> dict:
        return {"vel": {k: v.copy() for k, v in self._vel.items()}}

    def load_state_dict(self, state: dict) -> None:
        self._vel = {k: np.array(v, copy=True) for k, v in state["vel"].items()}


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    state_copies = 2

    def __init__(
        self,
        layers: list[TrainLayer],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(layers, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[tuple[str, str], np.ndarray] = {}
        self._v: dict[tuple[str, str], np.ndarray] = {}
        self._t = 0

    def step(self, grads: GradMap) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for layer, pname, value, g in self._iter(grads):
            key = (layer.name, pname)
            m = self._m.setdefault(key, np.zeros_like(value))
            v = self._v.setdefault(key, np.zeros_like(value))
            m += (1 - b1) * (g - m)
            v += (1 - b2) * (g * g - v)
            mhat = m / (1 - b1**self._t)
            vhat = v / (1 - b2**self._t)
            value -= self.lr * mhat / (np.sqrt(vhat) + self.eps)

    def state_dict(self) -> dict:
        return {
            "t": self._t,
            "m": {k: v.copy() for k, v in self._m.items()},
            "v": {k: v.copy() for k, v in self._v.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        self._t = int(state["t"])
        self._m = {k: np.array(v, copy=True) for k, v in state["m"].items()}
        self._v = {k: np.array(v, copy=True) for k, v in state["v"].items()}
