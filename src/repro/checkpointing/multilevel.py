"""Two-level (memory + disk) checkpointing — "disk-revolve".

The paper's reference [1] is INRIA's disk-revolve implementation: edge
nodes have little RAM but plentiful flash (the Waggle node's SD card), so
activations can be checkpointed to a second, slower tier.  Following
Aupy, Herrmann et al.'s multistage adjoint model, we add a disk tier with
unlimited slots and per-access costs ``write_cost`` / ``read_cost``
(in forward-step units) to the ``c_m`` memory slots:

    DR(l, c_m) = min( P(l, c_m),
                      min_{1<=j<l} [ j + w_d + DR(l-j, c_m)
                                       + r_d + P(j, c_m) ] )

``P`` is classic Revolve.  Either reverse the whole chain in memory, or
advance ``j`` steps, park ``x_j`` on disk, reverse the right part
recursively (all memory slots free again), then pay one disk read to
restart the left part.  The outermost ``x_0`` write is charged once when
any split is taken.  Sanity limits are property-tested: free disk
(w=r=0) degenerates to the store-everything sweep ``l − 1``; infinitely
expensive disk degenerates to ``P(l, c_m)``.

:func:`disk_revolve_schedule` emits an executable schedule whose disk
slots are the ids at/above :data:`DISK_SLOT_BASE`;
:func:`simulate_tiered` executes it with tier-aware accounting, and its
measured ``total_cost`` equals :func:`disk_revolve_cost` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..errors import ScheduleError
from .actions import TIER_DISK, Action, advance, free, restore, snapshot, tier_slot
from .chainspec import ChainSpec
from .revolve import _SplitFn, _emit_reverse, opt_forwards, revolve_schedule
from .schedule import Schedule

__all__ = [
    "DISK_SLOT_BASE",
    "disk_revolve_cost",
    "disk_revolve_splits",
    "disk_revolve_schedule",
    "TieredStats",
    "simulate_tiered",
]

#: Slot ids >= this refer to the disk tier — the first slot of
#: :data:`~repro.checkpointing.actions.TIER_DISK` in the shared
#: tier-aware slot alphabet (kept as a module attribute for callers that
#: predate the alphabet).
DISK_SLOT_BASE = tier_slot(TIER_DISK, 0)


@lru_cache(maxsize=None)
def _dr(l: int, c_m: int, write_cost: float, read_cost: float) -> tuple[float, int]:
    """Inner DP: segment whose base is *already on disk*.

    Returns (optimal cost, first split j; 0 = finish in memory).
    """
    best, best_j = float(opt_forwards(l, c_m)), 0
    for j in range(1, l):
        right, _ = _dr(l - j, c_m, write_cost, read_cost)
        left = float(opt_forwards(j, c_m))
        val = j + write_cost + right + read_cost + left
        if val < best - 1e-12:
            best, best_j = val, j
    return best, best_j


@lru_cache(maxsize=None)
def _dr_top(l: int, c_m: int, write_cost: float, read_cost: float) -> tuple[float, int]:
    """Top-level DP: x_0 starts in the cursor, *not* on disk.

    Taking any split requires first parking x_0 on disk (one extra
    write), so that option is priced against pure in-memory Revolve.
    """
    best, best_j = float(opt_forwards(l, c_m)), 0
    for j in range(1, l):
        right, _ = _dr(l - j, c_m, write_cost, read_cost)
        left = float(opt_forwards(j, c_m))
        val = write_cost + j + write_cost + right + read_cost + left
        if val < best - 1e-12:
            best, best_j = val, j
    return best, best_j


def _validate(l: int, c_m: int, write_cost: float, read_cost: float) -> int:
    if l < 1 or c_m < 1:
        raise ScheduleError("require l >= 1 and c_m >= 1")
    if write_cost < 0 or read_cost < 0:
        raise ScheduleError("disk costs must be non-negative")
    return min(c_m, max(1, l - 1))


def disk_revolve_cost(l: int, c_m: int, write_cost: float = 1.0, read_cost: float = 1.0) -> float:
    """Optimal total cost: pure forwards + all disk I/O, in forward units.

    Includes the one-off ``x_0`` write whenever the plan uses the disk.
    """
    c_eff = _validate(l, c_m, write_cost, read_cost)
    return _dr_top(l, c_eff, float(write_cost), float(read_cost))[0]


def disk_revolve_splits(l: int, c_m: int, write_cost: float = 1.0, read_cost: float = 1.0) -> list[int]:
    """Disk-checkpoint positions (absolute indices), left to right."""
    c_eff = _validate(l, c_m, write_cost, read_cost)
    _, j = _dr_top(l, c_eff, float(write_cost), float(read_cost))
    if j == 0:
        return []
    splits = [j]
    base, remaining = j, l - j
    while remaining > 0:
        _, j = _dr(remaining, c_eff, float(write_cost), float(read_cost))
        if j == 0:
            break
        splits.append(base + j)
        base += j
        remaining -= j
    return splits


def disk_revolve_schedule(
    l: int, c_m: int, write_cost: float = 1.0, read_cost: float = 1.0
) -> Schedule:
    """Executable two-tier schedule achieving :func:`disk_revolve_cost`.

    Disk layout: slot ``DISK_SLOT_BASE + i`` holds the i-th disk-resident
    activation (``x_0`` plus the optimal split points).  Memory layout:
    slots ``0 .. c_m-1``, slot 0 holding the active segment's base.
    When the plan takes no splits this is exactly classic Revolve.
    """
    c_eff = _validate(l, c_m, write_cost, read_cost)
    splits = disk_revolve_splits(l, c_eff, write_cost, read_cost)
    if not splits:
        return revolve_schedule(l, c_eff)

    bounds = [0] + splits
    seg_ends = splits + [l]
    actions: list[Action] = []

    # Forward phase: write x_0 and every split point to disk.
    actions.append(snapshot(DISK_SLOT_BASE))
    for i, pos in enumerate(splits, start=1):
        actions.append(advance(pos))
        actions.append(snapshot(DISK_SLOT_BASE + i))

    max_seg = max(e - b for b, e in zip(bounds, seg_ends))
    split_for = _SplitFn(max_seg, c_eff)

    # Backward phase, rightmost segment first.  The rightmost base is
    # still in the cursor (no disk read); every other segment pays one
    # read to bring its base back.
    for i in range(len(bounds) - 1, -1, -1):
        base, end = bounds[i], seg_ends[i]
        seg_len = end - base
        disk_slot = DISK_SLOT_BASE + i
        if i < len(bounds) - 1:
            actions.append(restore(disk_slot))
        # Park the segment base in memory slot 0; remaining memory slots
        # form the Revolve pool (P(seg_len, c_m) convention: the input
        # occupies one of the c_m slots).
        actions.append(snapshot(0))
        c_seg = min(c_eff, max(1, seg_len - 1))
        pool = list(range(1, c_seg))
        _emit_reverse(actions, base, seg_len, 0, pool, split_for)
        # Release the segment base before the next segment re-parks its
        # own base in slot 0 — the VM rejects SNAPSHOT into an occupied
        # slot (FREE is costless, so the DP-cost identity is unchanged).
        actions.append(free(0))
        actions.append(free(disk_slot))

    return Schedule(
        strategy=f"disk_revolve(c_m={c_eff})",
        length=l,
        slots=DISK_SLOT_BASE + len(bounds),
        actions=tuple(actions),
    )


@dataclass(frozen=True)
class TieredStats:
    """Tier-aware measurements of an executed two-level schedule."""

    forward_steps: int
    disk_writes: int
    disk_reads: int
    peak_memory_slots: int
    peak_disk_slots: int
    peak_memory_bytes: int
    peak_disk_bytes: int

    def total_cost(self, write_cost: float, read_cost: float) -> float:
        """Forwards + I/O in forward units (the DP's objective)."""
        return self.forward_steps + write_cost * self.disk_writes + read_cost * self.disk_reads


def simulate_tiered(schedule: Schedule, spec: ChainSpec | None = None) -> TieredStats:
    """Execute with per-tier accounting.

    One engine run on a :class:`~repro.engine.tiered.TieredBackend` (in
    pure-counting mode — no storage profiles, so transfers are free):
    the VM validates ordering, slot discipline and completeness while the
    backend splits the accounting by tier.
    """
    from ..engine.tiered import TieredBackend
    from ..engine.vm import execute

    if spec is None:
        spec = ChainSpec.homogeneous(schedule.length)
    run = execute(schedule, TieredBackend(spec))
    mem = run.tier("memory")
    disk = run.tier("disk")
    return TieredStats(
        forward_steps=run.forward_steps,
        disk_writes=disk.writes,
        disk_reads=disk.reads,
        peak_memory_slots=mem.peak_slots,
        peak_disk_slots=disk.peak_slots,
        peak_memory_bytes=mem.peak_bytes,
        peak_disk_bytes=disk.peak_bytes,
    )
