"""Planning on real (heterogeneous) block chains, interiors included.

The Figure 1 analysis runs on the homogenized ``LinearResNet``.  A real
linearized ResNet (:func:`repro.graph.chain.linearize`) has *unequal*
boundary activations and, inside each block, interior activations that
are live only while that block's adjoint runs.  The true peak of a
checkpointed execution is therefore

    peak(plan) = max over time [ snapshot bytes + working set ]
    working set of block i  =  act(x_{i-1}) + interior_i + act(x_i)

This module plans against that model: the byte budget handed to the
exact heterogeneous DP (:func:`~repro.checkpointing.dynprog.budget_schedule`)
is the device budget minus the worst block working set, which makes the
resulting plan *conservative* — its simulated snapshot peak plus any
block's working set never exceeds the device budget (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MemoryBudgetError
from ..graph import SegmentChain
from .chainspec import ChainSpec
from .dynprog import budget_schedule, opt_forwards_budget
from .schedule import Schedule
from .simulator import simulate

__all__ = ["RealChainPlan", "working_set_bytes", "plan_real_chain"]


def working_set_bytes(chain: SegmentChain, batch_size: int = 1) -> int:
    """Worst per-block working set: input + interior + output bytes."""
    acts = [chain.input_bytes] + [s.act_bytes for s in chain.stages]
    worst = 0
    for i, stage in enumerate(chain.stages):
        worst = max(worst, acts[i] + stage.interior_bytes + stage.act_bytes)
    return worst * batch_size


@dataclass(frozen=True)
class RealChainPlan:
    """A deployable plan for a real block chain."""

    model: str
    batch_size: int
    budget_bytes: int
    fixed_bytes: int
    working_set: int
    snapshot_budget: int
    schedule: Schedule
    extra_forward_cost: float
    baseline_fwd_cost: float
    #: simulated peak snapshot bytes (activations only, batch-scaled)
    peak_snapshot_bytes: int

    @property
    def peak_bytes(self) -> int:
        """Conservative total peak: fixed + snapshots + working set."""
        return self.fixed_bytes + self.peak_snapshot_bytes + self.working_set

    @property
    def fits(self) -> bool:
        return self.peak_bytes <= self.budget_bytes

    @property
    def rho(self) -> float:
        """Recompute factor under fwd-cost-proportional backward (r=1)."""
        if self.baseline_fwd_cost <= 0:
            return 1.0
        return 1.0 + self.extra_forward_cost / (2.0 * self.baseline_fwd_cost)


def plan_real_chain(
    chain: SegmentChain,
    budget_bytes: int,
    fixed_bytes: int | None = None,
    batch_size: int = 1,
    levels: int = 64,
) -> RealChainPlan:
    """Plan optimal checkpointing for a linearized DAG under a budget.

    ``fixed_bytes`` defaults to the 4-copy weight convention on the
    chain's weights.  Raises :class:`~repro.errors.MemoryBudgetError`
    when the budget cannot hold fixed cost + the worst block working set
    + the chain input.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    fixed = 4 * chain.weight_bytes + chain.buffer_bytes if fixed_bytes is None else fixed_bytes
    ws = working_set_bytes(chain, batch_size)
    snapshot_budget = budget_bytes - fixed - ws
    spec_acts = tuple(b * batch_size for b in ((chain.input_bytes,) + tuple(s.act_bytes for s in chain.stages)))
    spec = ChainSpec(
        name=chain.name,
        act_bytes=spec_acts,
        fwd_cost=tuple(float(s.flops or 1) for s in chain.stages),
        bwd_cost=tuple(float(s.flops or 1) for s in chain.stages),
    )
    if snapshot_budget < spec_acts[0]:
        raise MemoryBudgetError(
            f"{chain.name}: budget {budget_bytes} B cannot hold fixed cost "
            f"({fixed} B) + working set ({ws} B) + chain input"
        )
    schedule = budget_schedule(spec, snapshot_budget, levels=levels)
    cost, _ = opt_forwards_budget(spec, snapshot_budget, levels=levels)
    stats = simulate(schedule, spec)
    sweep = spec.total_fwd_cost - spec.fwd_cost[-1]
    return RealChainPlan(
        model=chain.name,
        batch_size=batch_size,
        budget_bytes=budget_bytes,
        fixed_bytes=fixed,
        working_set=ws,
        snapshot_budget=snapshot_budget,
        schedule=schedule,
        extra_forward_cost=stats.forward_cost - sweep,
        baseline_fwd_cost=spec.total_fwd_cost,
        peak_snapshot_bytes=stats.peak_slot_bytes,
    )
