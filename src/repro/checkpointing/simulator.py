"""Analytic schedule execution and validation (engine facade).

:func:`simulate` runs a :class:`~.schedule.Schedule` against a
:class:`~.chainspec.ChainSpec` without any real tensors, enforcing every
structural invariant (cursor preconditions, slot budget and occupancy,
backward order) and measuring exactly what the paper's analysis needs:

* pure forward (ADVANCE) executions and their cost;
* replayed forwards inside adjoints (one per step, Revolve convention);
* peak checkpoint memory in bytes and in slots;
* total time under the chain's cost model.

The interpreter itself lives in :mod:`repro.engine` — this module is the
compatibility surface: same signature, same
:class:`~repro.errors.ExecutionError` behavior, same
:class:`ExecutionStats` result as the original hand-rolled simulator,
now produced by :func:`repro.engine.execute` on a
:class:`~repro.engine.sim.SimBackend`.

``extra_forward_cost`` is measured against the mandatory work of a single
forward sweep — the quantity the paper's recompute factor ρ prices:
``time = baseline + extra_forward_cost`` and ``ρ = time / baseline``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExecutionError
from ..obs import get_tracer
from .chainspec import ChainSpec
from .schedule import Schedule

__all__ = ["ExecutionStats", "simulate", "validate"]


@dataclass(frozen=True)
class ExecutionStats:
    """Measured outcome of executing a schedule."""

    strategy: str
    length: int
    #: pure forward step executions (sum of ADVANCE lengths)
    forward_steps: int
    forward_cost: float
    #: forwards replayed inside adjoints (== length under Revolve semantics)
    replay_steps: int
    replay_cost: float
    backward_cost: float
    #: per-step forward execution counts, index i-1 -> executions of F_i
    executions: tuple[int, ...]
    #: peak bytes held in checkpoint slots (excluding the cursor)
    peak_slot_bytes: int
    #: peak bytes including the cursor's activation
    peak_bytes: int
    #: maximum number of simultaneously occupied slots
    peak_slots: int
    snapshots_taken: int
    restores: int

    @property
    def total_time(self) -> float:
        """Raw machine time: every advance, replay and backward charged."""
        return self.forward_cost + self.replay_cost + self.backward_cost

    @property
    def total_forward_executions(self) -> int:
        return self.forward_steps + self.replay_steps

    def extra_forward_steps(self) -> int:
        """Advance steps beyond the mandatory ``l-1`` sweep.

        The replay inside each adjoint is an executor artifact — a real
        framework fuses that forward into the original sweep — so the
        recomputation overhead is measured on pure ADVANCE steps against
        the ``l-1`` advances even store-all needs.  For Revolve schedules
        this equals :func:`repro.checkpointing.revolve.extra_forwards`.
        """
        return self.forward_steps - (self.length - 1)

    def extra_forward_cost(self, spec: ChainSpec) -> float:
        """Cost-weighted version of :meth:`extra_forward_steps`."""
        sweep = spec.total_fwd_cost - spec.fwd_cost[-1]
        return self.forward_cost - sweep

    def effective_time(self, spec: ChainSpec) -> float:
        """Training-step time under fused-youturn semantics.

        Baseline (store-all) plus the recomputation overhead: the paper's
        time model for Figure 1.
        """
        return spec.baseline_time + self.extra_forward_cost(spec)

    def recompute_factor(self, spec: ChainSpec) -> float:
        """ρ = effective time / store-all baseline time (>= 1)."""
        return self.effective_time(spec) / spec.baseline_time


def simulate(
    schedule: Schedule,
    spec: ChainSpec | None = None,
    *,
    compiled=None,
) -> ExecutionStats:
    """Execute ``schedule`` against ``spec`` and return measurements.

    Raises :class:`~repro.errors.ExecutionError` on any invariant
    violation: advancing backwards, restoring an empty slot, exceeding
    the slot budget, snapshotting into an occupied slot, adjoints out of
    order, or finishing with backwards pending.

    ``compiled`` (a :class:`~repro.engine.program.CompiledProgram` built
    from ``schedule``) routes execution through the engine's compiled
    fast path; the returned stats are bit-identical either way.
    """
    # Imported lazily: repro.engine builds on this package's leaf modules.
    from ..engine.sim import SimBackend
    from ..engine.vm import execute

    if spec is None:
        spec = ChainSpec.homogeneous(schedule.length)
    tracer = get_tracer()
    on_step = None
    if tracer.enabled:
        from ..engine.hooks import sim_event_hook

        on_step = sim_event_hook(tracer)
    run = execute(schedule, SimBackend(spec), on_step=on_step, compiled=compiled)
    stats = ExecutionStats(
        strategy=run.strategy,
        length=run.length,
        forward_steps=run.forward_steps,
        forward_cost=run.forward_cost,
        replay_steps=run.replay_steps,
        replay_cost=run.replay_cost,
        backward_cost=run.backward_cost,
        executions=run.executions,
        peak_slot_bytes=run.peak_slot_bytes,
        peak_bytes=run.peak_bytes,
        peak_slots=run.peak_slots,
        snapshots_taken=run.snapshots_taken,
        restores=run.restores,
    )
    if tracer.enabled:
        tracer.event(
            "simulated",
            category="sim",
            strategy=stats.strategy,
            length=stats.length,
            forward_steps=stats.forward_steps,
            replay_steps=stats.replay_steps,
            peak_slots=stats.peak_slots,
            peak_bytes=stats.peak_bytes,
            snapshots=stats.snapshots_taken,
            restores=stats.restores,
        )
    return stats


def validate(schedule: Schedule, spec: ChainSpec | None = None) -> bool:
    """True when ``schedule`` executes without invariant violations."""
    try:
        simulate(schedule, spec)
    except ExecutionError:
        return False
    return True
