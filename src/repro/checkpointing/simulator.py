"""Virtual machine that executes and validates checkpoint schedules.

The simulator runs a :class:`~.schedule.Schedule` against a
:class:`~.chainspec.ChainSpec` without any real tensors, enforcing every
structural invariant (cursor preconditions, slot budget, backward order)
and measuring exactly what the paper's analysis needs:

* pure forward (ADVANCE) executions and their cost;
* replayed forwards inside adjoints (one per step, Revolve convention);
* peak checkpoint memory in bytes and in slots;
* total time under the chain's cost model.

``extra_forward_cost`` is measured against the mandatory work of a single
forward sweep — the quantity the paper's recompute factor ρ prices:
``time = baseline + extra_forward_cost`` and ``ρ = time / baseline``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExecutionError
from ..obs import get_tracer
from .actions import ActionKind
from .chainspec import ChainSpec
from .schedule import Schedule

__all__ = ["ExecutionStats", "simulate", "validate"]


@dataclass(frozen=True)
class ExecutionStats:
    """Measured outcome of executing a schedule."""

    strategy: str
    length: int
    #: pure forward step executions (sum of ADVANCE lengths)
    forward_steps: int
    forward_cost: float
    #: forwards replayed inside adjoints (== length under Revolve semantics)
    replay_steps: int
    replay_cost: float
    backward_cost: float
    #: per-step forward execution counts, index i-1 -> executions of F_i
    executions: tuple[int, ...]
    #: peak bytes held in checkpoint slots (excluding the cursor)
    peak_slot_bytes: int
    #: peak bytes including the cursor's activation
    peak_bytes: int
    #: maximum number of simultaneously occupied slots
    peak_slots: int
    snapshots_taken: int
    restores: int

    @property
    def total_time(self) -> float:
        """Raw machine time: every advance, replay and backward charged."""
        return self.forward_cost + self.replay_cost + self.backward_cost

    @property
    def total_forward_executions(self) -> int:
        return self.forward_steps + self.replay_steps

    def extra_forward_steps(self) -> int:
        """Advance steps beyond the mandatory ``l-1`` sweep.

        The replay inside each adjoint is an executor artifact — a real
        framework fuses that forward into the original sweep — so the
        recomputation overhead is measured on pure ADVANCE steps against
        the ``l-1`` advances even store-all needs.  For Revolve schedules
        this equals :func:`repro.checkpointing.revolve.extra_forwards`.
        """
        return self.forward_steps - (self.length - 1)

    def extra_forward_cost(self, spec: ChainSpec) -> float:
        """Cost-weighted version of :meth:`extra_forward_steps`."""
        sweep = spec.total_fwd_cost - spec.fwd_cost[-1]
        return self.forward_cost - sweep

    def effective_time(self, spec: ChainSpec) -> float:
        """Training-step time under fused-youturn semantics.

        Baseline (store-all) plus the recomputation overhead: the paper's
        time model for Figure 1.
        """
        return spec.baseline_time + self.extra_forward_cost(spec)

    def recompute_factor(self, spec: ChainSpec) -> float:
        """ρ = effective time / store-all baseline time (>= 1)."""
        return self.effective_time(spec) / spec.baseline_time


@dataclass
class _Machine:
    spec: ChainSpec
    slot_budget: int
    cursor: int | None = None
    slots: dict[int, int] = field(default_factory=dict)
    pending: int = 0  # next backward step to perform

    def __post_init__(self) -> None:
        self.pending = self.spec.length
        # The chain input x_0 starts in the cursor (the batch just arrived).
        self.cursor = 0


def simulate(schedule: Schedule, spec: ChainSpec | None = None) -> ExecutionStats:
    """Execute ``schedule`` against ``spec`` and return measurements.

    Raises :class:`~repro.errors.ExecutionError` on any invariant
    violation: advancing backwards, restoring an empty slot, exceeding the
    slot budget, adjoints out of order, or finishing with backwards
    pending.
    """
    if spec is None:
        spec = ChainSpec.homogeneous(schedule.length)
    if spec.length != schedule.length:
        raise ExecutionError(
            f"schedule length {schedule.length} != chain length {spec.length}"
        )
    tracer = get_tracer()
    traced = tracer.enabled
    m = _Machine(spec=spec, slot_budget=schedule.slots)
    l = spec.length

    forward_steps = 0
    forward_cost = 0.0
    replay_steps = 0
    replay_cost = 0.0
    backward_cost = 0.0
    executions = [0] * l
    snapshots_taken = 0
    restores = 0
    peak_slot_bytes = 0
    peak_bytes = 0
    peak_slots = 0

    def _charge() -> None:
        nonlocal peak_slot_bytes, peak_bytes, peak_slots
        slot_bytes = sum(spec.act_bytes[idx] for idx in m.slots.values())
        cur_bytes = spec.act_bytes[m.cursor] if m.cursor is not None else 0
        peak_slot_bytes = max(peak_slot_bytes, slot_bytes)
        peak_bytes = max(peak_bytes, slot_bytes + cur_bytes)
        peak_slots = max(peak_slots, len(m.slots))

    _charge()
    for pos, act in enumerate(schedule.actions):
        kind = act.kind
        if kind is ActionKind.ADVANCE:
            if m.cursor is None:
                raise ExecutionError(f"action {pos}: ADVANCE with empty cursor")
            if not m.cursor < act.arg <= l:
                raise ExecutionError(
                    f"action {pos}: ADVANCE to {act.arg} from cursor {m.cursor} (l={l})"
                )
            for i in range(m.cursor, act.arg):
                executions[i] += 1
            forward_steps += act.arg - m.cursor
            forward_cost += spec.advance_cost(m.cursor, act.arg)
            m.cursor = act.arg
        elif kind is ActionKind.SNAPSHOT:
            if m.cursor is None:
                raise ExecutionError(f"action {pos}: SNAPSHOT with empty cursor")
            if act.arg >= schedule.slots:
                raise ExecutionError(
                    f"action {pos}: SNAPSHOT into slot {act.arg} exceeds budget "
                    f"{schedule.slots}"
                )
            m.slots[act.arg] = m.cursor
            snapshots_taken += 1
        elif kind is ActionKind.RESTORE:
            if act.arg not in m.slots:
                raise ExecutionError(f"action {pos}: RESTORE from empty slot {act.arg}")
            m.cursor = m.slots[act.arg]
            restores += 1
        elif kind is ActionKind.FREE:
            if act.arg not in m.slots:
                raise ExecutionError(f"action {pos}: FREE of empty slot {act.arg}")
            del m.slots[act.arg]
        elif kind is ActionKind.ADJOINT:
            step = act.arg
            if step != m.pending:
                raise ExecutionError(
                    f"action {pos}: ADJOINT({step}) but pending backward is {m.pending}"
                )
            if m.cursor != step - 1:
                raise ExecutionError(
                    f"action {pos}: ADJOINT({step}) requires cursor at {step - 1}, "
                    f"cursor is {m.cursor}"
                )
            executions[step - 1] += 1
            replay_steps += 1
            replay_cost += spec.fwd_cost[step - 1]
            backward_cost += spec.bwd_cost[step - 1]
            m.pending -= 1
        else:  # pragma: no cover - exhaustive enum
            raise ExecutionError(f"action {pos}: unknown kind {kind}")
        _charge()
        if traced:
            # Mirror the running ExecutionStats state per schedule step.
            tracer.event(
                kind.name,
                category="sim",
                pos=pos,
                arg=act.arg,
                cursor=m.cursor,
                occupied_slots=len(m.slots),
                forward_steps=forward_steps,
                replay_steps=replay_steps,
            )

    if m.pending != 0:
        raise ExecutionError(
            f"schedule finished with backward steps {m.pending}..1 still pending"
        )
    if any(e < 1 for e in executions):
        missing = [i + 1 for i, e in enumerate(executions) if e < 1]
        raise ExecutionError(f"steps never executed forward: {missing}")

    stats = ExecutionStats(
        strategy=schedule.strategy,
        length=l,
        forward_steps=forward_steps,
        forward_cost=forward_cost,
        replay_steps=replay_steps,
        replay_cost=replay_cost,
        backward_cost=backward_cost,
        executions=tuple(executions),
        peak_slot_bytes=peak_slot_bytes,
        peak_bytes=peak_bytes,
        peak_slots=peak_slots,
        snapshots_taken=snapshots_taken,
        restores=restores,
    )
    if traced:
        tracer.event(
            "simulated",
            category="sim",
            strategy=stats.strategy,
            length=stats.length,
            forward_steps=stats.forward_steps,
            replay_steps=stats.replay_steps,
            peak_slots=stats.peak_slots,
            peak_bytes=stats.peak_bytes,
            snapshots=stats.snapshots_taken,
            restores=stats.restores,
        )
    return stats


def validate(schedule: Schedule, spec: ChainSpec | None = None) -> bool:
    """True when ``schedule`` executes without invariant violations."""
    try:
        simulate(schedule, spec)
    except ExecutionError:
        return False
    return True
