"""Joint rematerialization + paging: one DP over recompute *and* tier.

The existing families answer "where does this activation live?" by
fiat — ``revolve`` keeps everything in RAM and recomputes,
``disk_revolve`` pages split points to disk at fixed unit prices.  POET
(see PAPERS.md) frames the two as one optimization: per step, either
recompute an activation when it is needed again, or page it to a storage
tier, under a pluggable objective (wall time, energy).  This module is
that planner for the segment-structured schedules our VM executes.

Model
-----

A plan is a chain of *paged segments*: split positions
``0 = p_0 < p_1 < ... < p_k < l`` with a tier choice ``t_i`` per split.
The forward sweep writes ``x_{p_i}`` to tier ``t_i``; segments are then
reversed right to left, each one a pure in-RAM reversal (the shared
:class:`~repro.checkpointing.dynprog.SegmentDP` core / Revolve closed
form) after one read of its base — except the rightmost, whose base is
still in the cursor.  With ``F(b, t)`` the optimal cost of reversing the
suffix ``[b, l)`` given ``x_b`` already written to tier ``t``:

    F(b, t) = min( inner(b, l),
                   min_{b<m<l, u} [ adv(b, m) + W_u(m) + F(m, u)
                                      + R_t(b) + inner(b, m) ] )

    joint = min( inner(0, l),  min_t [ W_t(0) + F(0, t) ] )

``inner(i, j)`` is the optimal pure-RAM reversal of segment ``[i, j)``
with the ``c``-slot budget; ``W``/``R`` are the objective's per-tier
write/read prices; ``adv`` its advance price.  The option set strictly
contains both pure Revolve (the first branch) and every disk-revolve
plan (unit prices recover Aupy et al.'s ``DR`` recurrence exactly), so
the joint optimum weakly dominates both *by construction* — and beats
them strictly whenever real :class:`~repro.edge.storage.StorageProfile`
prices diverge from the abstract unit costs the pure families assume.

Objectives
----------

:class:`UnitCostObjective` prices I/O in forward units (the
disk-revolve convention), :class:`TimeObjective` in seconds through a
storage profile's read/write paths, :class:`EnergyObjective` in joules —
compute energy per forward unit plus rail power held during storage
transfers (the paper's duty-cycle framing: the node cannot sleep while a
checkpoint is in flight).  Anything with ``step_cost`` / ``write_cost``
/ ``read_cost`` / ``paged_tiers`` plugs in.

Compression — the third action
------------------------------

Giving an objective a :class:`~repro.edge.storage.CompressionModel`
doubles its split alphabet: every paged tier gains a *compressed*
variant (BitTrain/POET's framing — per split the planner now chooses
recompute vs page vs page-compressed).  A compressed write moves
``codec.compressed_bytes(size)`` through the storage profile and pays
the codec's encode seconds; a compressed read mirrors it.  Plain tiers
are tried first, so under the identity codec (ratio 1, zero cost) every
tie breaks to the uncompressed variant and the plan collapses exactly
to the codec-less one.  :func:`joint_schedule` emits compressed splits
through the compressed slot band
(:func:`~repro.checkpointing.actions.compressed_slot`), so a
:class:`~repro.engine.compressed.CompressedBackend` with the same
profile and codec reproduces the planned cost exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import PlanningError, ScheduleError
from .actions import (
    TIER_DISK,
    TIER_RAM,
    Action,
    advance,
    compressed_slot,
    free,
    restore,
    snapshot,
    tier_name,
    tier_slot,
)
from .chainspec import ChainSpec
from .dynprog import SlotSegmentDP
from .revolve import _SplitFn, _emit_reverse, opt_forwards
from .schedule import Schedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..edge.storage import CompressionModel, StorageProfile

__all__ = [
    "JointObjective",
    "UnitCostObjective",
    "TimeObjective",
    "EnergyObjective",
    "JointPlan",
    "joint_plan",
    "joint_cost",
    "joint_schedule",
]

_INF = float("inf")
_TOL = 1e-12

#: Bit flagging a DP tier code as "store compressed on that tier".  The
#: codes are planner-internal — :func:`joint_schedule` lowers them to
#: the shared slot alphabet's compressed band on emission.
_ZIP_FLAG = 1 << 8


def _zip_tier(tier: int) -> int:
    """DP code for the compressed variant of a storage tier."""
    return tier | _ZIP_FLAG


def _tier_store(code: int) -> int:
    """Storage tier of a DP tier code (compression bit stripped)."""
    return code & ~_ZIP_FLAG


def _tier_zipped(code: int) -> bool:
    """Whether a DP tier code carries the compression bit."""
    return bool(code & _ZIP_FLAG)


def _default_disk() -> "StorageProfile":
    from ..edge.storage import SD_CARD

    return SD_CARD


# ---------------------------------------------------------------------------
# Objectives
# ---------------------------------------------------------------------------


class JointObjective:
    """Prices the joint DP's three primitives on one chain.

    Subclasses set :attr:`label` and implement :meth:`step_cost`,
    :meth:`write_cost` and :meth:`read_cost`; advance prices derive from
    the per-step costs.  All built-in objectives price a step
    proportionally to ``spec.fwd_cost`` (constant factor), so the
    optimal *structure* found in objective units is also optimal in raw
    forward units whenever the prices coincide up to scale.
    """

    label: str = "?"
    #: optional codec; setting it doubles :attr:`paged_tiers` with
    #: compressed variants (see the module docstring)
    codec: "CompressionModel | None" = None

    def __init__(self, spec: ChainSpec) -> None:
        self.spec = spec
        prefix = [0.0]
        for k in range(1, spec.length + 1):
            prefix.append(prefix[-1] + self.step_cost(k))
        self._prefix = tuple(prefix)

    # -- required ---------------------------------------------------------
    def step_cost(self, k: int) -> float:
        """Objective cost of one execution of ``F_k`` (``k`` in 1..l)."""
        raise NotImplementedError

    def write_cost(self, tier: int, index: int) -> float:
        """Cost of writing ``x_index`` to ``tier``."""
        raise NotImplementedError

    def read_cost(self, tier: int, index: int) -> float:
        """Cost of reading ``x_index`` back from ``tier``."""
        raise NotImplementedError

    # -- shared -----------------------------------------------------------
    @property
    def paged_tiers(self) -> tuple[int, ...]:
        """Tier codes the planner may page to (RAM is always implicit).

        Plain tiers come first so that, on exact ties, the DP's
        strict-improvement rule keeps the uncompressed variant — the
        lossless-collapse guarantee.
        """
        base = (TIER_DISK,)
        if self.codec is None:
            return base
        return base + tuple(_zip_tier(t) for t in base)

    def advance_cost(self, i: int, j: int) -> float:
        """Objective cost of advancing the cursor from ``x_i`` to ``x_j``."""
        return self._prefix[j] - self._prefix[i]

    @property
    def uniform_step(self) -> float | None:
        """The common per-step cost, or ``None`` when steps differ."""
        costs = {self.step_cost(k) for k in range(1, self.spec.length + 1)}
        return next(iter(costs)) if len(costs) == 1 else None


class UnitCostObjective(JointObjective):
    """Abstract pricing in forward units — the disk-revolve convention.

    A step costs its ``fwd_cost`` entry; any paged write/read costs a
    flat ``write_cost`` / ``read_cost`` regardless of size.  With the
    defaults this is exactly the pricing under which
    :func:`~repro.checkpointing.multilevel.disk_revolve_cost` plans, so
    the joint optimum provably equals it on homogeneous chains.
    """

    def __init__(
        self,
        spec: ChainSpec,
        write_cost: float = 1.0,
        read_cost: float = 1.0,
        codec: "CompressionModel | None" = None,
    ) -> None:
        if write_cost < 0 or read_cost < 0:
            raise PlanningError("paging costs must be non-negative")
        self._write = write_cost
        self._read = read_cost
        self.codec = codec
        self.label = f"unit(w={write_cost:g},r={read_cost:g})"
        if codec is not None:
            self.label = f"unit(w={write_cost:g},r={read_cost:g},zip={codec.name})"
        super().__init__(spec)

    def step_cost(self, k: int) -> float:
        return self.spec.fwd_cost[k - 1]

    def write_cost(self, tier: int, index: int) -> float:
        # Abstract units are byte-proportional: a compressed page moves
        # ``ratio`` of the bytes, codec CPU is free in this currency.
        if _tier_zipped(tier):
            return self._write * self.codec.ratio
        return 0.0 if tier == TIER_RAM else self._write

    def read_cost(self, tier: int, index: int) -> float:
        if _tier_zipped(tier):
            return self._read * self.codec.ratio
        return 0.0 if tier == TIER_RAM else self._read


class TimeObjective(JointObjective):
    """Wall-clock pricing: steps in seconds, I/O through a storage profile.

    ``unit_seconds`` converts ``spec.fwd_cost`` units (e.g. FLOPs) to
    seconds; paged transfers are priced by the profile's
    ``write_seconds`` / ``read_seconds`` of the activation's true byte
    size — the same accounting :class:`~repro.engine.tiered.TieredBackend`
    charges when the schedule actually executes, so planned and measured
    wall time agree exactly.
    """

    def __init__(
        self,
        spec: ChainSpec,
        disk: "StorageProfile | None" = None,
        unit_seconds: float = 1.0,
        codec: "CompressionModel | None" = None,
    ) -> None:
        if unit_seconds <= 0:
            raise PlanningError("unit_seconds must be positive")
        self.disk = disk if disk is not None else _default_disk()
        self.unit_seconds = unit_seconds
        self.codec = codec
        self.label = f"time({self.disk.name})"
        if codec is not None:
            self.label = f"time({self.disk.name}+{codec.name})"
        super().__init__(spec)

    def step_cost(self, k: int) -> float:
        return self.spec.fwd_cost[k - 1] * self.unit_seconds

    def write_cost(self, tier: int, index: int) -> float:
        raw = self.spec.act_bytes[index]
        if _tier_zipped(tier):
            # Same accounting CompressedBackend charges when executing:
            # the shrunk payload through the storage path plus the codec.
            return (
                self.disk.write_seconds(self.codec.compressed_bytes(raw))
                + self.codec.compress_seconds(raw)
            )
        if tier == TIER_RAM:
            return 0.0
        return self.disk.write_seconds(raw)

    def read_cost(self, tier: int, index: int) -> float:
        raw = self.spec.act_bytes[index]
        if _tier_zipped(tier):
            return (
                self.disk.read_seconds(self.codec.compressed_bytes(raw))
                + self.codec.decompress_seconds(raw)
            )
        if tier == TIER_RAM:
            return 0.0
        return self.disk.read_seconds(raw)


class EnergyObjective(JointObjective):
    """Energy pricing: compute joules per step, rail power during I/O.

    A forward unit costs ``compute_j_per_unit`` joules (default: the
    :class:`~repro.edge.power.EnergyModel` per-FLOP coefficient, for
    chains whose ``fwd_cost`` is in FLOPs).  A paged transfer holds the
    node awake for the profile's transfer seconds at ``io_w`` watts —
    the duty-cycle framing: storage I/O draws far less than a busy core,
    but the rail cannot gate off while a checkpoint is in flight
    (default: the energy model's idle draw).
    """

    def __init__(
        self,
        spec: ChainSpec,
        disk: "StorageProfile | None" = None,
        compute_j_per_unit: float | None = None,
        io_w: float | None = None,
        codec: "CompressionModel | None" = None,
    ) -> None:
        from ..edge.power import EnergyModel

        model = EnergyModel()
        if compute_j_per_unit is None:
            compute_j_per_unit = model.compute_j_per_flop
        if io_w is None:
            io_w = model.idle_w
        if compute_j_per_unit < 0 or io_w < 0:
            raise PlanningError("energy coefficients must be non-negative")
        self.disk = disk if disk is not None else _default_disk()
        self.compute_j_per_unit = compute_j_per_unit
        self.io_w = io_w
        self.codec = codec
        self.label = f"energy({self.disk.name})"
        if codec is not None:
            self.label = f"energy({self.disk.name}+{codec.name})"
        super().__init__(spec)

    def step_cost(self, k: int) -> float:
        return self.spec.fwd_cost[k - 1] * self.compute_j_per_unit

    def write_cost(self, tier: int, index: int) -> float:
        raw = self.spec.act_bytes[index]
        if _tier_zipped(tier):
            # The rail stays awake through the storage transfer *and*
            # the codec pass (the codec runs on-node, same duty-cycle
            # framing as the I/O itself).
            seconds = (
                self.disk.write_seconds(self.codec.compressed_bytes(raw))
                + self.codec.compress_seconds(raw)
            )
            return self.io_w * seconds
        if tier == TIER_RAM:
            return 0.0
        return self.io_w * self.disk.write_seconds(raw)

    def read_cost(self, tier: int, index: int) -> float:
        raw = self.spec.act_bytes[index]
        if _tier_zipped(tier):
            seconds = (
                self.disk.read_seconds(self.codec.compressed_bytes(raw))
                + self.codec.decompress_seconds(raw)
            )
            return self.io_w * seconds
        if tier == TIER_RAM:
            return 0.0
        return self.io_w * self.disk.read_seconds(raw)


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JointPlan:
    """Outcome of :func:`joint_plan`.

    ``splits`` lists ``(position, tier code)`` pairs in ascending
    position order — including ``(0, t)`` for the chain input when the
    plan pages at all; an empty tuple means pure in-RAM Revolve.  A tier
    code is the storage tier, optionally flagged compressed (codec-armed
    objectives only).  ``cost`` is in the objective's units and is
    exactly what executing the emitted schedule on a matching
    :class:`~repro.engine.tiered.TieredBackend` (or
    :class:`~repro.engine.compressed.CompressedBackend`) measures (pure
    advances priced per step plus every paged transfer).
    """

    objective: str
    length: int
    slots: int
    cost: float
    splits: tuple[tuple[int, int], ...]

    @property
    def paged(self) -> bool:
        return bool(self.splits)

    @property
    def tiers_used(self) -> tuple[int, ...]:
        """Storage tiers paged to (compression bit stripped)."""
        return tuple(sorted({_tier_store(t) for _, t in self.splits}))

    @property
    def compressed_splits(self) -> int:
        """How many splits are stored through the codec."""
        return sum(1 for _, t in self.splits if _tier_zipped(t))


class _InnerRevolve:
    """Closed-form inner solver for uniform per-step objective cost."""

    def __init__(self, c: int, unit: float) -> None:
        self.c = c
        self.unit = unit

    def cost(self, i: int, j: int) -> float:
        return opt_forwards(j - i, self.c) * self.unit if j > i else 0.0

    def emit(self, actions: list[Action], i: int, j: int, split_for: _SplitFn) -> None:
        seg_len = j - i
        c_seg = min(self.c, max(1, seg_len - 1))
        pool = list(range(1, c_seg))
        _emit_reverse(actions, i, seg_len, 0, pool, split_for)


class _InnerSegmentDP:
    """Exact segment-DP inner solver for heterogeneous objective cost."""

    def __init__(self, costs: tuple[float, ...], c: int) -> None:
        self.dp = SlotSegmentDP(costs)
        self.c = c

    def cost(self, i: int, j: int) -> float:
        return self.dp.solve(i, j, self.c)[0] if j > i else 0.0

    def emit(self, actions: list[Action], i: int, j: int, split_for: None) -> None:
        pool = list(range(1, self.c))
        self.dp.emit(actions, i, j, self.c, 0, pool)


def _make_inner(spec: ChainSpec, c: int, objective: JointObjective):
    unit = objective.uniform_step
    if unit is not None:
        return _InnerRevolve(min(c, max(1, spec.length - 1)), unit)
    costs = tuple(objective.step_cost(k) for k in range(1, spec.length + 1))
    return _InnerSegmentDP(costs, c)


def _solve(spec: ChainSpec, c: int, objective: JointObjective):
    """Bottom-up outer DP; returns (cost, splits, inner solver)."""
    l = spec.length
    inner = _make_inner(spec, c, objective)
    tiers = objective.paged_tiers
    # table[(b, t)] = (cost of reversing [b, l) with x_b on tier t,
    #                  first further split m or 0, its tier or -1)
    table: dict[tuple[int, int], tuple[float, int, int]] = {}
    suffix_inner = [inner.cost(b, l) for b in range(l + 1)]
    for b in range(l - 1, -1, -1):
        for t in tiers:
            best, best_m, best_u = suffix_inner[b], 0, -1
            read_b = objective.read_cost(t, b)
            for m in range(b + 1, l):
                base = (
                    objective.advance_cost(b, m)
                    + read_b
                    + inner.cost(b, m)
                )
                for u in tiers:
                    val = base + objective.write_cost(u, m) + table[(m, u)][0]
                    if val < best - _TOL:
                        best, best_m, best_u = val, m, u
            table[(b, t)] = (best, best_m, best_u)

    best, t0 = suffix_inner[0], -1
    for t in tiers:
        val = objective.write_cost(t, 0) + table[(0, t)][0]
        if val < best - _TOL:
            best, t0 = val, t

    splits: list[tuple[int, int]] = []
    if t0 >= 0:
        b, t = 0, t0
        while True:
            splits.append((b, t))
            _, m, u = table[(b, t)]
            if m == 0:
                break
            b, t = m, u
    return best, tuple(splits), inner


def joint_plan(
    spec: ChainSpec, c: int, objective: JointObjective | None = None
) -> JointPlan:
    """Optimal joint rematerialization+paging plan for ``spec``.

    ``c`` is the RAM slot budget (Revolve's convention — it includes the
    slot holding the active segment's base); paged tiers have unbounded
    slots, priced per access by the objective.  Defaults to
    :class:`UnitCostObjective` (disk-revolve's abstract pricing).
    """
    if c < 1:
        raise ScheduleError("slot count must be >= 1")
    if objective is None:
        objective = UnitCostObjective(spec)
    if objective.spec is not spec and objective.spec != spec:
        raise PlanningError("objective was built for a different chain")
    cost, splits, _ = _solve(spec, c, objective)
    return JointPlan(
        objective=objective.label,
        length=spec.length,
        slots=c,
        cost=cost,
        splits=splits,
    )


def joint_cost(
    spec: ChainSpec, c: int, objective: JointObjective | None = None
) -> float:
    """Objective cost of the optimal joint plan (see :func:`joint_plan`)."""
    return joint_plan(spec, c, objective).cost


def joint_schedule(
    spec: ChainSpec,
    c: int,
    objective: JointObjective | None = None,
    family: str = "joint_time",
) -> Schedule:
    """Executable schedule achieving :func:`joint_cost`.

    Paged checkpoints use the shared tier-aware slot alphabet
    (:func:`~repro.checkpointing.actions.tier_slot` — split ``i`` on
    tier ``t`` lives in slot ``t·stride + i``, compressed splits in the
    compressed band on top); RAM slots stay ``0 .. c-1`` with slot 0
    parking the active segment's base, exactly the disk-revolve layout.
    Executing it on a :class:`~repro.engine.tiered.TieredBackend` (or,
    for codec-armed objectives, a
    :class:`~repro.engine.compressed.CompressedBackend`) whose profiles
    match the objective reproduces the planned cost
    measurement-for-measurement.
    """
    if c < 1:
        raise ScheduleError("slot count must be >= 1")
    if objective is None:
        objective = UnitCostObjective(spec)
    l = spec.length
    cost, splits, inner = _solve(spec, c, objective)
    label = f"{family}(c={c})"

    split_for = None
    if isinstance(inner, _InnerRevolve):
        if splits:
            bounds = [p for p, _ in splits]
            max_seg = max(
                e - b for b, e in zip(bounds, bounds[1:] + [l])
            )
        else:
            max_seg = l
        split_for = _SplitFn(max_seg, inner.c)

    actions: list[Action] = []
    if not splits:
        actions.append(snapshot(0))
        inner.emit(actions, 0, l, split_for)
        # The closed-form inner caps its pool at the useful slot count;
        # the segment-DP inner draws on the full budget (hetero_schedule's
        # convention), so the declared budget must match the emitter.
        c_eff = min(c, max(1, l - 1)) if split_for is not None else c
        return Schedule(strategy=label, length=l, slots=c_eff, actions=tuple(actions))

    positions = [p for p, _ in splits]
    seg_ends = positions[1:] + [l]
    # Lower DP tier codes to the shared slot alphabet: split i on tier t
    # lives in slot t·stride + i, pushed into the compressed band when
    # the planner chose the codec variant.
    paged_slots = [
        compressed_slot(tier_slot(_tier_store(t), i))
        if _tier_zipped(t)
        else tier_slot(_tier_store(t), i)
        for i, (_, t) in enumerate(splits)
    ]

    # Forward phase: page x_0 and every split point out.
    actions.append(snapshot(paged_slots[0]))
    for i in range(1, len(splits)):
        actions.append(advance(positions[i]))
        actions.append(snapshot(paged_slots[i]))

    # Backward phase, rightmost segment first; every segment but the
    # rightmost pays one paged read to bring its base back.  The base is
    # then parked in RAM slot 0 (free — same tier as the cursor) so the
    # in-RAM reversal can re-advance from it.
    for i in range(len(splits) - 1, -1, -1):
        base, end = positions[i], seg_ends[i]
        if i < len(splits) - 1:
            actions.append(restore(paged_slots[i]))
        actions.append(snapshot(0))
        inner.emit(actions, base, end, split_for)
        actions.append(free(0))
        actions.append(free(paged_slots[i]))

    return Schedule(
        strategy=label,
        length=l,
        slots=max(paged_slots) + 1,
        actions=tuple(actions),
    )
