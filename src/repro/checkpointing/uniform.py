"""PyTorch-style ``checkpoint_sequential`` (uniform segmentation).

The network is split into ``s`` segments of ``⌊l/s⌋`` steps each, the last
segment absorbing the remainder.  During the forward pass only segment
*inputs* are checkpointed, except the last segment whose activations are
all kept; during backward, each earlier segment is recomputed in full
before being reversed.  The paper's Section V formula for the activation
slots this strategy holds at peak is

    Mem(l, s) = (s − 1) + (l − ⌊l/s⌋·(s − 1))

— the ``s−1`` stored segment inputs (the first segment's input is the
batch itself) plus the fully-stored last segment — minimized near
``s = √l`` with lower bound ``2√l``.  Revolve reaches logarithmic memory
at bounded overhead instead: the paper's Section VI comparison, measured
in ``benchmarks/bench_ablation_strategies.py``.

Two recompute counts are provided:

* :func:`uniform_extra_forwards` — PyTorch-faithful: backward re-runs the
  *whole* segment forward, so ``⌊l/s⌋·(s−1)`` extra executions;
* :func:`uniform_extra_forwards_fused` — fused-youturn convention used by
  our executor (each adjoint replays its own step internally), i.e.
  ``(⌊l/s⌋−1)·(s−1)`` pure advances; this is what
  :func:`uniform_schedule`'s simulation measures.
"""

from __future__ import annotations

import math

from ..errors import PlanningError, ScheduleError
from .actions import Action, adjoint, advance, free, restore, snapshot
from .schedule import Schedule

__all__ = [
    "segment_lengths",
    "uniform_memory_slots",
    "uniform_extra_forwards",
    "uniform_extra_forwards_fused",
    "uniform_lower_bound",
    "best_segments",
    "uniform_schedule",
]


def segment_lengths(l: int, s: int) -> list[int]:
    """Per-segment step counts: ``s-1`` segments of ``⌊l/s⌋`` + remainder.

    Mirrors ``torch.utils.checkpoint.checkpoint_sequential``: all segments
    equal except the last, which takes what is left.
    """
    if l < 1:
        raise ScheduleError("chain length must be >= 1")
    if not 1 <= s <= l:
        raise ScheduleError(f"segments must be in [1, {l}], got {s}")
    size = l // s
    lengths = [size] * (s - 1)
    lengths.append(l - size * (s - 1))
    return lengths


def uniform_memory_slots(l: int, s: int) -> int:
    """The paper's Section V activation-slot count for ``s`` segments."""
    if l < 1:
        raise ScheduleError("chain length must be >= 1")
    if not 1 <= s <= l:
        raise ScheduleError(f"segments must be in [1, {l}], got {s}")
    return (s - 1) + (l - (l // s) * (s - 1))


def uniform_extra_forwards(l: int, s: int) -> int:
    """PyTorch-faithful recompute count: whole segments re-run."""
    return (l // s) * (s - 1)


def uniform_extra_forwards_fused(l: int, s: int) -> int:
    """Fused-youturn recompute count (matches the executable schedule)."""
    size = l // s
    return max(0, size - 1) * (s - 1)


def uniform_lower_bound(l: int) -> float:
    """The paper's ``2·sqrt(l)`` lower bound on ``min_s Mem(l, s)``."""
    return 2.0 * math.sqrt(l)


def best_segments(l: int, slot_budget: int | None = None) -> int:
    """Segment count minimizing slots, optionally under a budget.

    With no budget, returns the ``s`` minimizing ``Mem(l, s)`` (ties to
    the smaller ``s``, which recomputes less).  With a budget, returns the
    smallest ``s`` with ``Mem(l, s) <= slot_budget``; raises
    :class:`~repro.errors.PlanningError` when no segmentation fits.
    """
    candidates = range(1, l + 1)
    if slot_budget is None:
        return min(candidates, key=lambda s: (uniform_memory_slots(l, s), s))
    for s in candidates:
        if uniform_memory_slots(l, s) <= slot_budget:
            return s
    raise PlanningError(
        f"no uniform segmentation of l={l} fits {slot_budget} slots "
        f"(minimum is {min(uniform_memory_slots(l, s) for s in candidates)})"
    )


def uniform_schedule(l: int, s: int) -> Schedule:
    """Executable ``checkpoint_sequential`` schedule with ``s`` segments.

    Slot layout: slots ``0..s-1`` hold segment inputs (slot ``i`` holds
    ``x_{start_i}``, slot 0 the chain input); slots ``s..`` hold the
    active segment's interior activations, reused across segments.  Peak
    occupancy is ``s + L_last - 1`` slots — identical to the paper's
    ``(s−1) + L_last`` once the never-stored ``x_l`` and the stored
    ``x_0`` cancel.
    """
    lengths = segment_lengths(l, s)
    starts = [0]
    for ln in lengths[:-1]:
        starts.append(starts[-1] + ln)

    interior_base = s
    max_interior = max(max(lengths) - 1, 0)
    actions: list[Action] = []

    # Forward sweep: checkpoint each segment input; store the last
    # segment's interior.  The final activation x_l is never computed by
    # an advance — the adjoint of step l replays it (fused youturn).
    for i, start in enumerate(starts):
        actions.append(snapshot(i))
        end = start + lengths[i]
        if i < s - 1:
            actions.append(advance(end))
        else:
            for j, idx in enumerate(range(start + 1, end)):
                actions.append(advance(idx))
                actions.append(snapshot(interior_base + j))

    # Backward sweep, segment by segment.
    for i in range(s - 1, -1, -1):
        start = starts[i]
        end = start + lengths[i]
        if i < s - 1:
            # Recompute this segment's interior from its input checkpoint.
            actions.append(restore(i))
            for j, idx in enumerate(range(start + 1, end)):
                actions.append(advance(idx))
                actions.append(snapshot(interior_base + j))
        for b in range(end, start, -1):
            src = b - 1
            if src == start:
                actions.append(restore(i))
            else:
                actions.append(restore(interior_base + (src - start - 1)))
            actions.append(adjoint(b))
        for j in range(lengths[i] - 1):
            actions.append(free(interior_base + j))
        actions.append(free(i))

    return Schedule(
        strategy=f"uniform(s={s})",
        length=l,
        slots=s + max_interior,
        actions=tuple(actions),
    )
