"""Optimal binomial checkpointing (Revolve, Griewank & Walther Alg. 799).

For a homogeneous chain of ``l`` steps reversed with ``c`` checkpoint
slots (slot count *includes* the slot holding a segment's input), the
minimal number of pure forward executions ``P(l, c)`` satisfies

    P(1, c) = 0
    P(l, 1) = l(l-1)/2
    P(l, c) = min_{1<=m<l} [ m + P(l-m, c-1) + P(m, c) ]

with the closed form (Griewank & Walther 2000, Prop. 1): with
``β(c, r) = C(c+r, c)`` and ``r`` the unique repetition number such that
``β(c, r-1) < l <= β(c, r)``,

    P(l, c) = r·l − β(c+1, r−1).

Every adjoint step additionally replays its own forward (Revolve
semantics), so a chain always executes at least one forward per step;
:func:`extra_forwards` subtracts the mandatory single sweep, giving the
*recomputation overhead* that the paper's recompute factor ρ prices:
``time = (l + extra)·u_f + l·u_b`` against the store-all baseline
``l·u_f + l·u_b``.  With ``u_f = u_b`` the paper's budget "2ρl total
computations" is exactly ``extra ≤ 2l(ρ−1)``.

:func:`revolve_schedule` materializes the optimal schedule as an
executable :class:`~.schedule.Schedule`; the simulator verifies that its
measured forward count equals ``P(l, c)`` (see tests).
"""

from __future__ import annotations

import math
from functools import lru_cache

from ..errors import PlanningError, ScheduleError
from .actions import Action, adjoint, advance, free, restore, snapshot
from .schedule import Schedule

__all__ = [
    "beta",
    "repetition_number",
    "opt_forwards",
    "opt_forwards_dp",
    "extra_forwards",
    "min_slots_for_extra",
    "revolve_schedule",
    "store_all_schedule",
]


def beta(c: int, r: int) -> int:
    """β(c, r) = C(c+r, c): max chain length reversible with c slots and
    at most r repetitions per step."""
    if c < 0 or r < 0:
        return 0
    return math.comb(c + r, c)


def repetition_number(l: int, c: int) -> int:
    """Minimal r with l <= β(c, r).

    β(c, r) is strictly increasing in r, so the answer is found by
    doubling r until β(c, r) >= l and binary-searching the bracket —
    O(log r) β evaluations instead of the naive O(r) scan, which matters
    for deep-chain sweeps at small c (r grows like l at c = 1).
    """
    if l < 1:
        raise ScheduleError("chain length must be >= 1")
    if c < 1:
        raise ScheduleError("slot count must be >= 1")
    if beta(c, 0) >= l:
        return 0
    hi = 1
    while beta(c, hi) < l:
        hi *= 2
    lo = hi // 2  # beta(c, lo) < l: either hi's predecessor bracket or 0
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if beta(c, mid) < l:
            lo = mid
        else:
            hi = mid
    return hi


def opt_forwards(l: int, c: int) -> int:
    """Closed-form minimal pure forward executions P(l, c)."""
    if l < 1:
        raise ScheduleError("chain length must be >= 1")
    if c < 1:
        raise ScheduleError("slot count must be >= 1")
    if l == 1:
        return 0
    r = repetition_number(l, c)
    return r * l - beta(c + 1, r - 1)


@lru_cache(maxsize=None)
def _dp_tables(l_max: int, c_max: int) -> tuple[list[list[int]], list[list[int]]]:
    """Bottom-up DP: cost[c][l] and argmin split point m[c][l].

    cost[c][l] uses 1-based c in 1..c_max and l in 0..l_max; split[c][l]
    is 0 where no split applies (l <= 1 or c == 1).
    """
    INF = float("inf")
    cost = [[0] * (l_max + 1) for _ in range(c_max + 1)]
    split = [[0] * (l_max + 1) for _ in range(c_max + 1)]
    for l in range(l_max + 1):
        cost[1][l] = l * (l - 1) // 2
    for c in range(2, c_max + 1):
        for l in range(2, l_max + 1):
            best = INF
            best_m = 0
            for m in range(1, l):
                val = m + cost[c - 1][l - m] + cost[c][m]
                if val < best:
                    best = val
                    best_m = m
            cost[c][l] = int(best)
            split[c][l] = best_m
    return cost, split


def opt_forwards_dp(l: int, c: int) -> int:
    """DP value of P(l, c) — cross-checks the closed form in tests."""
    if l < 1 or c < 1:
        raise ScheduleError("require l >= 1 and c >= 1")
    c_eff = min(c, max(1, l - 1))  # extra slots beyond l-1 are useless
    cost, _ = _dp_tables(l, c_eff)
    return cost[c_eff][l]


def extra_forwards(l: int, c: int) -> int:
    """Recomputation overhead beyond the mandatory single forward sweep.

    Zero when ``c >= l - 1`` (store-all); ``(l-1)(l-2)/2`` when ``c = 1``.
    """
    if l == 1:
        return 0
    if c >= l - 1:
        return 0
    return opt_forwards(l, c) - (l - 1)


def min_slots_for_extra(l: int, max_extra: float) -> int:
    """Smallest slot count whose recompute overhead is <= ``max_extra``.

    ``extra_forwards`` is non-increasing in c, so binary search applies.
    Raises :class:`~repro.errors.PlanningError` for negative budgets.
    """
    if max_extra < 0:
        raise PlanningError(f"extra-forwards budget must be >= 0, got {max_extra}")
    lo, hi = 1, max(1, l - 1)
    if extra_forwards(l, lo) <= max_extra:
        return lo
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if extra_forwards(l, mid) <= max_extra:
            hi = mid
        else:
            lo = mid
    return hi


def _emit_reverse(
    actions: list[Action],
    base: int,
    length: int,
    base_slot: int,
    pool: list[int],
    split_for: "_SplitFn",
) -> None:
    """Emit actions reversing steps ``base+1 .. base+length``.

    ``x_base`` is stored in ``base_slot``; ``pool`` holds free slot ids.
    Tail-iterates on the left segment to bound recursion depth by the
    slot count rather than the chain length.
    """
    while True:
        if length == 0:
            return
        if length == 1:
            actions.append(restore(base_slot))
            actions.append(adjoint(base + 1))
            return
        if not pool:
            # Single-slot quadratic reversal of this segment.
            for b in range(length, 0, -1):
                actions.append(restore(base_slot))
                if b > 1:
                    actions.append(advance(base + b - 1))
                actions.append(adjoint(base + b))
            return
        avail = 1 + len(pool)
        m = split_for(length, avail)
        actions.append(restore(base_slot))
        actions.append(advance(base + m))
        s = pool.pop()
        actions.append(snapshot(s))
        _emit_reverse(actions, base + m, length - m, s, pool, split_for)
        actions.append(free(s))
        pool.append(s)
        length = m


class _SplitFn:
    """Optimal split-point lookup backed by the DP tables."""

    def __init__(self, l: int, c: int) -> None:
        c_eff = min(c, max(1, l - 1))
        self._cost, self._split = _dp_tables(l, c_eff)
        self._c_max = c_eff

    def __call__(self, length: int, avail: int) -> int:
        if length == 2:
            return 1  # the only possible split
        avail = min(avail, self._c_max, length - 1)
        m = self._split[avail][length]
        if m < 1:
            # avail == 1 is handled by the caller's no-pool branch; for
            # length 3+ with avail >= 2 the DP always records a split.
            raise ScheduleError(f"no split recorded for length={length}, avail={avail}")
        return m


def revolve_schedule(l: int, c: int) -> Schedule:
    """Generate the optimal Revolve schedule for ``l`` steps, ``c`` slots.

    The measured pure-forward count of the returned schedule equals
    :func:`opt_forwards`\\ ``(l, c)`` and its peak slot usage is ``<= c``.
    """
    if l < 1 or c < 1:
        raise ScheduleError("require l >= 1 and c >= 1")
    c_eff = min(c, max(1, l - 1))
    actions: list[Action] = []
    pool = list(range(c_eff))
    s0 = pool.pop(0)
    actions.append(snapshot(s0))  # cursor holds x_0 at start
    split_for = _SplitFn(l, c_eff)
    _emit_reverse(actions, base=0, length=l, base_slot=s0, pool=pool, split_for=split_for)
    return Schedule(strategy="revolve", length=l, slots=c_eff, actions=tuple(actions))


def store_all_schedule(l: int) -> Schedule:
    """The no-recomputation schedule: snapshot every prefix activation.

    Uses ``l`` slots (x_0 .. x_{l-1}); the final activation is consumed
    directly from the cursor.  Pure forward count is ``l - 1`` — the
    mandatory sweep — so :func:`extra_forwards` measures 0 against it.
    """
    if l < 1:
        raise ScheduleError("chain length must be >= 1")
    actions: list[Action] = [snapshot(0)]
    for i in range(1, l):
        actions.append(advance(i))
        actions.append(snapshot(i))
    actions.append(adjoint(l))
    for b in range(l - 1, 0, -1):
        actions.append(restore(b - 1))
        actions.append(adjoint(b))
    return Schedule(strategy="store_all", length=l, slots=l, actions=tuple(actions))
