"""Planning: recompute factor ρ ↔ checkpoint slots ↔ peak memory.

This implements the paper's Section VI analysis.  For a homogeneous chain
of depth ``l`` with per-slot activation size ``slot_bytes`` (= batch ×
per-layer activation) and batch-independent ``fixed_bytes`` (weights ×
optimizer copies):

* a slot count ``c`` costs ``extra_forwards(l, c)`` recomputed steps, so
  its recompute factor is ``ρ(c) = 1 + extra/(l·(1+r))`` with ``r`` the
  backward/forward cost ratio (the paper takes r = 1, giving the "2ρl"
  budget);
* its peak memory is ``fixed_bytes + (c + 1)·slot_bytes`` — the ``c``
  snapshots plus the in-flight activation, which at ``c = l−1`` recovers
  exactly the store-all footprint of Tables I–III;
* :func:`slots_for_rho` inverts the first map (binary search, since extra
  is monotone in c) and :func:`rho_for_budget` inverts the second.

:func:`plan_training` combines them into the user-facing decision: given a
device budget, pick store-all if it fits, otherwise the optimal Revolve
slot count, reporting the ρ paid — with the uniform
(``checkpoint_sequential``) alternative quantified for comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING

import numpy as np

from ..errors import MemoryBudgetError, PlanningError
from .chainspec import ChainSpec
from .revolve import extra_forwards, min_slots_for_extra
from .strategies import available_strategies, get_strategy, rho_from_extra

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..edge.storage import CompressionModel, StorageProfile

__all__ = [
    "PlanPoint",
    "TrainingPlan",
    "FrontierPoint",
    "CompressedFrontierPoint",
    "rho_for_slots",
    "slots_for_rho",
    "slots_for_rhos",
    "memory_for_slots",
    "max_slots_in_budget",
    "memory_curve",
    "rho_for_budget",
    "plan_training",
    "compare_strategies",
    "joint_frontier",
    "compressed_frontier",
]


def rho_for_slots(l: int, c: int, bwd_ratio: float = 1.0) -> float:
    """Recompute factor achieved by the optimal schedule with ``c`` slots."""
    return rho_from_extra(l, extra_forwards(l, c), bwd_ratio)


def slots_for_rho(l: int, rho: float, bwd_ratio: float = 1.0) -> int:
    """Minimal slot count with recompute factor ≤ ``rho``.

    ``rho`` must be ≥ 1; ``rho = 1`` demands no recomputation and returns
    ``l − 1`` (store-all, the ``c+1 = l`` slot footprint).
    """
    if rho < 1.0:
        raise PlanningError(f"recompute factor must be >= 1, got {rho}")
    budget = (rho - 1.0) * l * (1.0 + bwd_ratio)
    return min_slots_for_extra(l, budget)


@lru_cache(maxsize=256)
def _extras_by_slots(l: int) -> tuple[int, ...]:
    """``extra_forwards(l, c)`` for ``c`` in ``1 .. max(1, l-1)``.

    Non-increasing in ``c`` and ending at 0 (``c >= l-1`` needs no
    recomputation), which is what lets a whole ρ grid be inverted with
    one sorted search.
    """
    return tuple(extra_forwards(l, c) for c in range(1, max(1, l - 1) + 1))


def slots_for_rhos(
    l: int,
    rhos: list[float] | tuple[float, ...],
    bwd_ratio: float = 1.0,
) -> list[int]:
    """Batched :func:`slots_for_rho`: minimal slots for every ρ at once.

    One pass builds the extra-forwards table for ``l``; a single
    ``np.searchsorted`` then answers the whole grid, replacing one
    binary search (each re-evaluating the β closed form per probe) per
    ρ.  Element-for-element identical to calling :func:`slots_for_rho`
    in a loop, including the validation error for any ρ < 1.
    """
    for rho in rhos:
        if rho < 1.0:
            raise PlanningError(f"recompute factor must be >= 1, got {rho}")
    if not rhos:
        return []
    extras = _extras_by_slots(l)
    n = len(extras)
    # Reversed, extras are non-decreasing: index c-1 holds extra(l, c),
    # so position j in the reversed view is extra(l, n - j).
    ascending = np.asarray(extras[::-1], dtype=np.float64)
    budgets = np.asarray(
        [(rho - 1.0) * l * (1.0 + bwd_ratio) for rho in rhos], dtype=np.float64
    )
    # Count extras <= budget; the smallest feasible c is n - count + 1.
    # count >= 1 always because extra(l, max(1, l-1)) == 0 <= budget.
    counts = np.searchsorted(ascending, budgets, side="right")
    return [int(n - count + 1) for count in counts]


def memory_for_slots(c: int, fixed_bytes: float, slot_bytes: float) -> float:
    """Peak bytes: fixed + (c snapshots + 1 in-flight) activations."""
    if c < 0:
        raise PlanningError("slot count must be >= 0")
    return fixed_bytes + (c + 1) * slot_bytes


def max_slots_in_budget(budget_bytes: float, fixed_bytes: float, slot_bytes: float) -> int:
    """Largest ``c`` with ``memory_for_slots(c) <= budget``.

    Raises :class:`~repro.errors.MemoryBudgetError` when not even one slot
    plus the in-flight activation fits (``c = 1`` is the Revolve minimum).
    """
    if slot_bytes <= 0:
        raise PlanningError("slot_bytes must be positive")
    c = math.floor((budget_bytes - fixed_bytes) / slot_bytes) - 1
    if c < 1:
        need = memory_for_slots(1, fixed_bytes, slot_bytes)
        raise MemoryBudgetError(
            f"budget {budget_bytes:.0f} B cannot hold even 1 checkpoint slot "
            f"(needs {need:.0f} B)"
        )
    return c


@dataclass(frozen=True)
class PlanPoint:
    """One point of the paper's Figure 1 curves."""

    rho: float
    slots: int
    extra_forwards: int
    memory_bytes: float


def memory_curve(
    l: int,
    fixed_bytes: float,
    slot_bytes: float,
    rhos: list[float] | tuple[float, ...],
    bwd_ratio: float = 1.0,
) -> list[PlanPoint]:
    """Peak memory as a function of ρ — one Figure 1 line.

    The whole ρ grid is inverted in one :func:`slots_for_rhos` batch;
    ``extra_forwards`` values come from the same precomputed table.
    """
    slots = slots_for_rhos(l, tuple(rhos), bwd_ratio)
    extras = _extras_by_slots(l)
    return [
        PlanPoint(
            rho=rho,
            slots=c,
            extra_forwards=extras[c - 1],
            memory_bytes=memory_for_slots(c, fixed_bytes, slot_bytes),
        )
        for rho, c in zip(rhos, slots)
    ]


def rho_for_budget(
    l: int,
    fixed_bytes: float,
    slot_bytes: float,
    budget_bytes: float,
    bwd_ratio: float = 1.0,
) -> PlanPoint:
    """Best achievable ρ within a byte budget (inverse of the curve)."""
    c = min(max_slots_in_budget(budget_bytes, fixed_bytes, slot_bytes), max(1, l - 1))
    return PlanPoint(
        rho=rho_for_slots(l, c, bwd_ratio),
        slots=c,
        extra_forwards=extra_forwards(l, c),
        memory_bytes=memory_for_slots(c, fixed_bytes, slot_bytes),
    )


@dataclass(frozen=True)
class TrainingPlan:
    """Outcome of :func:`plan_training`."""

    model: str
    budget_bytes: float
    strategy: str  # "store_all" | "revolve"
    slots: int
    rho: float
    memory_bytes: float
    store_all_bytes: float
    #: ρ the uniform (checkpoint_sequential) strategy would pay in the
    #: same budget, or None when no segmentation fits.
    uniform_rho: float | None = None

    @property
    def fits(self) -> bool:
        return self.memory_bytes <= self.budget_bytes

    @property
    def savings_fraction(self) -> float:
        """Fraction of the store-all footprint eliminated."""
        if self.store_all_bytes <= 0:
            return 0.0
        return 1.0 - self.memory_bytes / self.store_all_bytes


def plan_training(
    l: int,
    fixed_bytes: float,
    slot_bytes: float,
    budget_bytes: float,
    bwd_ratio: float = 1.0,
    model: str = "chain",
) -> TrainingPlan:
    """Choose a training strategy for a device budget.

    Store-all when it fits (ρ = 1); otherwise the largest Revolve slot
    count that fits, with the ρ it costs.  Raises
    :class:`~repro.errors.MemoryBudgetError` when even ``c = 1`` does not
    fit — then no chain-checkpointing strategy can train this model.
    """
    store_all = memory_for_slots(max(1, l - 1), fixed_bytes, slot_bytes)
    if store_all <= budget_bytes:
        return TrainingPlan(
            model=model,
            budget_bytes=budget_bytes,
            strategy="store_all",
            slots=max(1, l - 1),
            rho=1.0,
            memory_bytes=store_all,
            store_all_bytes=store_all,
            uniform_rho=1.0,
        )
    point = rho_for_budget(l, fixed_bytes, slot_bytes, budget_bytes, bwd_ratio)
    uniform = get_strategy("uniform")
    # The uniform alternative at equal memory: c slots + the in-flight
    # activation give it c+1 resident activations to segment into.
    uniform_rho = (
        uniform.rho(l, point.slots + 1, bwd_ratio)
        if uniform.feasible(l, point.slots + 1)
        else None
    )
    return TrainingPlan(
        model=model,
        budget_bytes=budget_bytes,
        strategy="revolve",
        slots=point.slots,
        rho=point.rho,
        memory_bytes=point.memory_bytes,
        store_all_bytes=store_all,
        uniform_rho=uniform_rho,
    )


def compare_strategies(
    l: int,
    slot_budget: int,
    bwd_ratio: float = 1.0,
    strategies: tuple[str, ...] | list[str] | None = None,
) -> dict[str, float]:
    """ρ of each registered strategy at an equal slot budget (∞ when
    infeasible).

    By default every strategy in the registry is priced — ``revolve``
    (optimal), ``uniform`` (best ``checkpoint_sequential`` fitting the
    budget), ``sqrt`` (Chen's √l, only when its footprint fits),
    ``store_all`` (only when l−1 slots fit), plus the DP and two-tier
    families; pass ``strategies`` to restrict the comparison.  The
    paper's Section VI claim is revolve ≤ uniform everywhere, with the
    gap widest at small budgets.
    """
    if slot_budget < 1:
        raise PlanningError("slot budget must be >= 1")
    names = available_strategies() if strategies is None else tuple(strategies)
    out: dict[str, float] = {}
    for name in names:
        strat = get_strategy(name)
        out[name] = (
            strat.rho(l, slot_budget, bwd_ratio)
            if strat.feasible(l, slot_budget)
            else math.inf
        )
    return out


@dataclass(frozen=True)
class FrontierPoint:
    """One strategy's *measured* position on the joint memory/time/energy
    frontier — produced by executing its schedule on a tiered backend,
    not by trusting the planner's own cost model."""

    strategy: str
    slots: int
    extra_forwards: int
    peak_memory_bytes: int
    peak_disk_bytes: int
    disk_writes: int
    disk_reads: int
    transfer_seconds: float
    wall_seconds: float
    energy_joules: float


def joint_frontier(
    spec: ChainSpec,
    c: int,
    disk: "StorageProfile | None" = None,
    *,
    unit_seconds: float = 1.0,
    compute_j_per_unit: float | None = None,
    io_w: float | None = None,
) -> list[FrontierPoint]:
    """Execute pure revolve, pure disk-revolve and the two joint plans on
    one tiered device and measure them on a common (wall, energy) scale.

    All four schedules get the same RAM slot budget ``c`` and the same
    storage profile (default SD card).  Wall seconds are compute cost ×
    ``unit_seconds`` plus measured transfer seconds; energy is compute
    cost × ``compute_j_per_unit`` plus ``io_w`` × transfer seconds
    (defaults from :class:`~repro.edge.power.EnergyModel`, the idle-rail
    duty-cycle framing).  Because the joint DP's option set contains both
    pure families' plans as special cases, ``joint_time`` weakly
    dominates both on wall seconds and ``joint_energy`` on joules — this
    function is how that claim is *checked* rather than assumed.
    """
    if c < 1:
        raise PlanningError("slot budget must be >= 1")
    from ..engine.tiered import TieredBackend
    from ..engine.vm import execute
    from .joint import EnergyObjective, TimeObjective, joint_schedule
    from .multilevel import disk_revolve_schedule
    from .revolve import revolve_schedule

    if disk is None:
        from ..edge.storage import SD_CARD

        disk = SD_CARD
    tobj = TimeObjective(spec, disk=disk, unit_seconds=unit_seconds)
    eobj = EnergyObjective(
        spec, disk=disk, compute_j_per_unit=compute_j_per_unit, io_w=io_w
    )
    l = spec.length
    c_eff = min(c, max(1, l - 1))
    schedules = (
        ("revolve", revolve_schedule(l, c_eff)),
        ("disk_revolve", disk_revolve_schedule(l, c_eff)),
        ("joint_time", joint_schedule(spec, c, tobj)),
        ("joint_energy", joint_schedule(spec, c, eobj, family="joint_energy")),
    )
    points: list[FrontierPoint] = []
    for name, sched in schedules:
        stats = execute(sched, TieredBackend(spec, disk=disk))
        compute = stats.forward_cost + stats.replay_cost + stats.backward_cost
        mem = stats.tier("memory")
        dsk = stats.tier("disk")
        points.append(
            FrontierPoint(
                strategy=name,
                slots=c,
                extra_forwards=stats.forward_steps - (l - 1),
                peak_memory_bytes=mem.peak_bytes,
                peak_disk_bytes=dsk.peak_bytes,
                disk_writes=dsk.writes,
                disk_reads=dsk.reads,
                transfer_seconds=stats.transfer_seconds,
                wall_seconds=compute * unit_seconds + stats.transfer_seconds,
                energy_joules=compute * eobj.compute_j_per_unit
                + eobj.io_w * stats.transfer_seconds,
            )
        )
    return points


@dataclass(frozen=True)
class CompressedFrontierPoint:
    """One strategy's *measured* position on the compression-aware
    frontier: peak bytes × wall time × gradient fidelity, produced by
    executing its schedule on a tiered / compressed backend."""

    strategy: str
    codec: str
    slots: int
    extra_forwards: int
    peak_bytes: int
    peak_memory_bytes: int
    peak_disk_bytes: int
    bytes_saved: int
    fidelity_loss: float
    transfer_seconds: float
    wall_seconds: float
    energy_joules: float


def compressed_frontier(
    spec: ChainSpec,
    c: int,
    disk: "StorageProfile | None" = None,
    *,
    codec: "CompressionModel | None" = None,
    unit_seconds: float = 1.0,
    compute_j_per_unit: float | None = None,
    io_w: float | None = None,
) -> list[CompressedFrontierPoint]:
    """Execute the pure, paged and compressed families on one device and
    measure them on a common (peak bytes, wall, fidelity) scale.

    Four points: ``revolve`` (everything raw in RAM, the Figure-1
    baseline), ``revolve_zip`` (the same binomial pattern with every
    checkpoint run through ``codec``), ``joint_time`` (recompute vs
    page-to-disk DP) and ``joint_zip`` (the full three-action DP:
    recompute vs page vs page-compressed).  The compressed revolve
    variant is granted the slot count that fits the *same RAM byte
    envelope* as the baseline's ``c`` raw slots —
    ``floor(c / ratio)`` — which is the compression lever's entire
    point: ratio-scaled checkpoints buy extra slots, extra slots buy
    off recomputation, and whether that wins on wall time once codec
    seconds are charged is measured, not assumed.  Under the identity
    codec every compressed point collapses onto its pure family.

    Defaults: SD-card storage and the BitTrain-like sparsity model
    (``ratio`` 0.28, lossless).  ``fidelity_loss`` carries the codec's
    declared gradient-fidelity bound into the frontier so lossy codecs
    (e.g. fp16 casting) are a third lever, not a free win.
    """
    if c < 1:
        raise PlanningError("slot budget must be >= 1")
    from ..engine.compressed import CompressedBackend
    from ..engine.tiered import TieredBackend
    from ..engine.vm import execute
    from .joint import EnergyObjective, TimeObjective, joint_schedule
    from .revolve import revolve_schedule
    from .strategies import compressed_variant

    if disk is None:
        from ..edge.storage import SD_CARD

        disk = SD_CARD
    if codec is None:
        from ..edge.storage import BITTRAIN_SPARSE

        codec = BITTRAIN_SPARSE
    l = spec.length
    cap = max(1, l - 1)
    c_eff = min(c, cap)
    tobj = TimeObjective(spec, disk=disk, unit_seconds=unit_seconds)
    zobj = TimeObjective(spec, disk=disk, unit_seconds=unit_seconds, codec=codec)
    # Energy pricing only (rail wattage + J/unit defaults).
    eobj = EnergyObjective(
        spec, disk=disk, compute_j_per_unit=compute_j_per_unit, io_w=io_w
    )

    base_stats = execute(revolve_schedule(l, c_eff), TieredBackend(spec, disk=disk))
    envelope = base_stats.tier("memory").peak_bytes
    # The byte envelope is measured, not derived: real chains carry a
    # small input activation, so ``floor(c / ratio)`` overshoots — walk
    # down from it until the compressed run fits under revolve's peak.
    c_zip = min(cap, max(c_eff, int(c_eff / codec.ratio)))
    zip_stats = execute(
        compressed_variant(revolve_schedule(l, c_zip), "revolve_zip"),
        CompressedBackend(spec, codec, disk=disk),
    )
    while c_zip > c_eff and zip_stats.tier("memory").peak_bytes > envelope:
        c_zip -= 1
        zip_stats = execute(
            compressed_variant(revolve_schedule(l, c_zip), "revolve_zip"),
            CompressedBackend(spec, codec, disk=disk),
        )

    runs = (
        ("revolve", c_eff, base_stats),
        ("revolve_zip", c_zip, zip_stats),
        (
            "joint_time",
            c,
            execute(joint_schedule(spec, c, tobj), TieredBackend(spec, disk=disk)),
        ),
        (
            "joint_zip",
            c,
            execute(
                joint_schedule(spec, c, zobj, family="joint_zip"),
                CompressedBackend(spec, codec, disk=disk),
            ),
        ),
    )
    points: list[CompressedFrontierPoint] = []
    for name, slots, stats in runs:
        compute = stats.forward_cost + stats.replay_cost + stats.backward_cost
        mem = stats.tier("memory")
        dsk = stats.tier("disk")
        z = stats.compression
        points.append(
            CompressedFrontierPoint(
                strategy=name,
                codec=z.codec if z is not None else "none",
                slots=slots,
                extra_forwards=stats.forward_steps - (l - 1),
                peak_bytes=stats.peak_bytes,
                peak_memory_bytes=mem.peak_bytes,
                peak_disk_bytes=dsk.peak_bytes,
                bytes_saved=z.bytes_saved if z is not None else 0,
                fidelity_loss=z.fidelity_loss if z is not None else 0.0,
                transfer_seconds=stats.transfer_seconds,
                wall_seconds=compute * unit_seconds + stats.transfer_seconds,
                energy_joules=compute * eobj.compute_j_per_unit
                + eobj.io_w * stats.transfer_seconds,
            )
        )
    return points
