"""Checkpointing strategies, schedules and planning — the core library.

The package exposes:

* :class:`ChainSpec` — sizes/costs of a reversible chain;
* an action IR (:mod:`~repro.checkpointing.actions`) and
  :class:`Schedule` container;
* strategies: Revolve (optimal binomial), uniform
  (``checkpoint_sequential``), √l (Chen), exact heterogeneous DPs, and
  the joint rematerialization+paging planner over the tier-aware slot
  alphabet (:mod:`~repro.checkpointing.joint`) — all behind one registry
  (:func:`get_strategy`, :func:`available_strategies`) with a memoized
  schedule cache;
* a validating :func:`simulate` virtual machine measuring cost and peak
  memory of any schedule;
* the planner mapping recompute factor ρ ↔ slots ↔ bytes (Figure 1) and
  choosing strategies for device budgets.
"""

from .actions import (
    COMPRESS_SLOT_BASE,
    TIER_DISK,
    TIER_RAM,
    TIER_SLOT_STRIDE,
    Action,
    ActionKind,
    adjoint,
    advance,
    compressed_slot,
    free,
    is_compressed_slot,
    local_slot,
    restore,
    snapshot,
    storage_slot,
    tier_name,
    tier_of_slot,
    tier_slot,
)
from .chainspec import ChainSpec
from .schedule import Schedule
from .realchain import RealChainPlan, plan_real_chain, working_set_bytes
from .serialize import FORMAT_VERSION, schedule_from_json, schedule_to_json
from .timeline import TimelinePoint, memory_timeline, timeline_ascii
from .simulator import ExecutionStats, simulate, validate
from .revolve import (
    beta,
    extra_forwards,
    min_slots_for_extra,
    opt_forwards,
    opt_forwards_dp,
    repetition_number,
    revolve_schedule,
    store_all_schedule,
)
from .uniform import (
    best_segments,
    segment_lengths,
    uniform_extra_forwards,
    uniform_extra_forwards_fused,
    uniform_lower_bound,
    uniform_memory_slots,
    uniform_schedule,
)
from .sqrt import sqrt_memory_slots, sqrt_schedule, sqrt_segments
from .dynprog import (
    budget_schedule,
    hetero_schedule,
    opt_forwards_budget,
    opt_forwards_hetero,
    quantize_sizes,
)
from .analysis import (
    ParetoPoint,
    pareto_frontier,
    regime_table,
    slots_for_repetitions,
    slots_logarithmic_bound,
)
from .multilevel import (
    DISK_SLOT_BASE,
    TieredStats,
    disk_revolve_cost,
    disk_revolve_schedule,
    disk_revolve_splits,
    simulate_tiered,
)
from .joint import (
    EnergyObjective,
    JointObjective,
    JointPlan,
    TimeObjective,
    UnitCostObjective,
    joint_cost,
    joint_plan,
    joint_schedule,
)
from .strategies import (
    CacheInfo,
    CheckpointStrategy,
    ProgramCacheInfo,
    available_strategies,
    clear_schedule_cache,
    compressed_variant,
    get_strategy,
    program_cache_info,
    program_key_digest,
    register,
    resolve_strategy_name,
    rho_from_extra,
    schedule_cache_info,
    set_program_store,
    uniform_rho,
)
from .planner import (
    CompressedFrontierPoint,
    FrontierPoint,
    PlanPoint,
    TrainingPlan,
    compare_strategies,
    compressed_frontier,
    joint_frontier,
    max_slots_in_budget,
    memory_curve,
    memory_for_slots,
    plan_training,
    rho_for_budget,
    rho_for_slots,
    slots_for_rho,
    slots_for_rhos,
)

__all__ = [
    "Action",
    "ActionKind",
    "advance",
    "snapshot",
    "restore",
    "free",
    "adjoint",
    "TIER_SLOT_STRIDE",
    "TIER_RAM",
    "TIER_DISK",
    "tier_of_slot",
    "tier_slot",
    "local_slot",
    "tier_name",
    "COMPRESS_SLOT_BASE",
    "is_compressed_slot",
    "compressed_slot",
    "storage_slot",
    "ChainSpec",
    "Schedule",
    "FORMAT_VERSION",
    "schedule_to_json",
    "schedule_from_json",
    "RealChainPlan",
    "plan_real_chain",
    "working_set_bytes",
    "TimelinePoint",
    "memory_timeline",
    "timeline_ascii",
    "ExecutionStats",
    "simulate",
    "validate",
    "beta",
    "repetition_number",
    "opt_forwards",
    "opt_forwards_dp",
    "extra_forwards",
    "min_slots_for_extra",
    "revolve_schedule",
    "store_all_schedule",
    "segment_lengths",
    "uniform_memory_slots",
    "uniform_extra_forwards",
    "uniform_extra_forwards_fused",
    "uniform_lower_bound",
    "best_segments",
    "uniform_schedule",
    "sqrt_segments",
    "sqrt_memory_slots",
    "sqrt_schedule",
    "opt_forwards_hetero",
    "hetero_schedule",
    "quantize_sizes",
    "opt_forwards_budget",
    "budget_schedule",
    "DISK_SLOT_BASE",
    "disk_revolve_cost",
    "disk_revolve_splits",
    "disk_revolve_schedule",
    "TieredStats",
    "simulate_tiered",
    "JointObjective",
    "UnitCostObjective",
    "TimeObjective",
    "EnergyObjective",
    "JointPlan",
    "joint_plan",
    "joint_cost",
    "joint_schedule",
    "CheckpointStrategy",
    "register",
    "get_strategy",
    "available_strategies",
    "compressed_variant",
    "resolve_strategy_name",
    "rho_from_extra",
    "uniform_rho",
    "CacheInfo",
    "ProgramCacheInfo",
    "schedule_cache_info",
    "program_cache_info",
    "program_key_digest",
    "clear_schedule_cache",
    "set_program_store",
    "regime_table",
    "ParetoPoint",
    "pareto_frontier",
    "slots_for_repetitions",
    "slots_logarithmic_bound",
    "PlanPoint",
    "TrainingPlan",
    "FrontierPoint",
    "CompressedFrontierPoint",
    "joint_frontier",
    "compressed_frontier",
    "rho_for_slots",
    "slots_for_rho",
    "slots_for_rhos",
    "memory_for_slots",
    "max_slots_in_budget",
    "memory_curve",
    "rho_for_budget",
    "plan_training",
    "compare_strategies",
]
