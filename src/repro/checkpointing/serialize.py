"""Schedule serialization: ship a plan to the node as JSON.

A deployment planner computes the optimal schedule off-node (or on a
gateway) and sends the action list to the edge device; the device's
executor replays it verbatim.  The format is a single JSON object:

    {"version": 1, "strategy": "revolve", "length": 50, "slots": 5,
     "actions": [["snapshot", 0], ["advance", 7], ...]}

Round trips are exact (property-tested), and loading validates both the
JSON structure and — via the virtual machine — the schedule itself when
``verify=True``.
"""

from __future__ import annotations

import json

from ..errors import PlanningError, ScheduleError
from .actions import Action, ActionKind
from .schedule import Schedule
from .simulator import simulate
from .strategies import resolve_strategy_name

__all__ = ["schedule_to_json", "schedule_from_json", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def schedule_to_json(schedule: Schedule, indent: int | None = None) -> str:
    """Serialize a schedule to the versioned JSON format."""
    payload = {
        "version": FORMAT_VERSION,
        "strategy": schedule.strategy,
        "length": schedule.length,
        "slots": schedule.slots,
        "actions": [[a.kind.value, a.arg] for a in schedule.actions],
    }
    return json.dumps(payload, indent=indent)


def schedule_from_json(
    text: str, verify: bool = True, require_registered: bool = True
) -> Schedule:
    """Parse (and optionally machine-verify) a serialized schedule.

    Raises :class:`~repro.errors.ScheduleError` on malformed input;
    with ``verify=True`` an :class:`~repro.errors.ExecutionError` is
    raised if the schedule violates machine invariants.  With
    ``require_registered=True`` (the default) the ``strategy`` field
    must resolve to a registered strategy family — a node should refuse
    a plan from a planner it cannot account for; pass ``False`` to admit
    experimental labels.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScheduleError(f"invalid schedule JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ScheduleError("schedule JSON must be an object")
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ScheduleError(f"unsupported schedule format version {version!r}")
    for key in ("strategy", "length", "slots", "actions"):
        if key not in payload:
            raise ScheduleError(f"schedule JSON missing {key!r}")
    strategy = str(payload["strategy"])
    if require_registered:
        try:
            resolve_strategy_name(strategy)
        except PlanningError as exc:
            raise ScheduleError(
                f"schedule strategy {strategy!r} is not a registered family: {exc}"
            ) from exc
    kinds = {k.value: k for k in ActionKind}
    actions = []
    raw = payload["actions"]
    if not isinstance(raw, list):
        raise ScheduleError("actions must be a list")
    for i, item in enumerate(raw):
        if not (isinstance(item, list) and len(item) == 2):
            raise ScheduleError(f"action {i} must be a [kind, arg] pair")
        kind, arg = item
        if kind not in kinds:
            raise ScheduleError(f"action {i}: unknown kind {kind!r}")
        if not isinstance(arg, int) or arg < 0:
            raise ScheduleError(f"action {i}: arg must be a non-negative int")
        actions.append(Action(kinds[kind], arg))
    schedule = Schedule(
        strategy=strategy,
        length=int(payload["length"]),
        slots=int(payload["slots"]),
        actions=tuple(actions),
    )
    if verify:
        simulate(schedule)
    return schedule
