"""Closed-form analysis helpers: regimes, asymptotics, Pareto frontiers.

Everything here is derived from Revolve's binomial structure:

* the *repetition regimes* — for slots ``c``, chains of length up to
  ``β(c, r)`` are reversible with every step recomputed at most ``r``
  times; :func:`regime_table` tabulates the thresholds;
* :func:`pareto_frontier` — the exact memory/recompute trade-off curve
  ``{(c, extra(l, c))}`` with dominated points removed: the object
  Figure 1 projects into bytes, exposed as data;
* :func:`slots_logarithmic_bound` — the paper's Section VI point in
  closed form: to keep ρ ≤ 1 + r·u_f share, ``c = O(l^{1/r})`` slots
  suffice, dropping to ``O(log l)`` at ρ near 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlanningError
from .revolve import beta, extra_forwards, repetition_number

__all__ = [
    "regime_table",
    "ParetoPoint",
    "pareto_frontier",
    "slots_for_repetitions",
    "slots_logarithmic_bound",
]


def regime_table(c: int, max_r: int = 8) -> list[tuple[int, int]]:
    """[(r, max chain length reversible with ≤ r repetitions per step)].

    Row ``r`` is the Griewank–Walther bound ``β(c, r) = C(c+r, c)``.
    """
    if c < 1 or max_r < 1:
        raise PlanningError("need c >= 1 and max_r >= 1")
    return [(r, beta(c, r)) for r in range(1, max_r + 1)]


@dataclass(frozen=True)
class ParetoPoint:
    """One point on the exact memory/recompute frontier."""

    slots: int
    extra_forwards: int
    repetition: int

    def rho(self, l: int, bwd_ratio: float = 1.0) -> float:
        return 1.0 + self.extra_forwards / (l * (1.0 + bwd_ratio))


def pareto_frontier(l: int) -> list[ParetoPoint]:
    """The full non-dominated (slots, extra) curve for a chain of ``l``.

    Strictly decreasing in ``extra`` as ``slots`` grows; consecutive slot
    counts with equal cost are collapsed to the smaller count.
    """
    if l < 1:
        raise PlanningError("chain length must be >= 1")
    points: list[ParetoPoint] = []
    prev_extra: int | None = None
    for c in range(1, max(2, l)):
        extra = extra_forwards(l, c)
        if prev_extra is not None and extra == prev_extra:
            continue
        points.append(
            ParetoPoint(slots=c, extra_forwards=extra, repetition=repetition_number(l, c))
        )
        prev_extra = extra
        if extra == 0:
            break
    return points


def slots_for_repetitions(l: int, r: int) -> int:
    """Minimal slots keeping every step's recompute count ≤ ``r``.

    Inverts ``β(c, r) >= l`` in ``c`` — the closed-form companion of
    :func:`~repro.checkpointing.revolve.min_slots_for_extra`.
    """
    if l < 1 or r < 1:
        raise PlanningError("need l >= 1 and r >= 1")
    c = 1
    while beta(c, r) < l:
        c += 1
    return c


def slots_logarithmic_bound(l: int) -> int:
    """Slots sufficient for ρ ≤ 2 on a homogeneous chain (u_f = u_b).

    At ρ = 2 the budget is ``extra ≤ 2l``, i.e. on average each step may
    be recomputed twice; ``β(c, 2) = C(c+2, 2) ≥ l`` gives
    ``c ≈ √(2l)`` — and for each extra repetition allowed the requirement
    drops geometrically, reaching O(log l) slots at r ≈ log l.  Returned
    value is the exact minimal c for r = 2.
    """
    return slots_for_repetitions(l, 2)
