"""Optimal checkpointing for *heterogeneous* chains — the paper's
"proposed improvements" direction, generalized.

Classic Revolve assumes every step has equal cost and every activation
equal size — true for the paper's idealized ``LinearResNet`` but not for a
real ResNet block chain, where early blocks have large activations and
late blocks large weights.  This module provides two exact dynamic
programs over segments ``[i, j)`` of a :class:`~.chainspec.ChainSpec`:

* :func:`opt_forwards_hetero` — per-step forward *costs* differ, all
  activations occupy one slot (slot-count budget ``c``); reduces exactly
  to Revolve on homogeneous chains (property-tested).
* :func:`opt_forwards_budget` — activation *sizes* differ and the budget
  is in bytes; sizes are conservatively quantized to ``levels`` integer
  units (ceiling), so a reported plan never exceeds the byte budget.

Both are thin parameterizations of one memoized core,
:class:`SegmentDP`, over the recurrence

    solve(i, j, b) = min( quad(i, j),
                          min_m [ adv(i, m) + solve(m, j, b − units(m))
                                            + solve(i, m, b) ] )

where the two families differ only in how a budget translates to *free
capacity* (:meth:`SegmentDP.free_units`) and what a snapshot at ``m``
*charges* against it (:meth:`SegmentDP.snapshot_units`).  The joint
rematerialization+paging planner (:mod:`repro.checkpointing.joint`)
instantiates the same core with objective-priced step costs for its
in-RAM segment reversals.

Both return optimal extra-forward cost and can materialize executable
schedules.  Complexity is O(l³·c) / O(l³·levels); intended for block
chains (l ≲ 60), not the homogenized 152-step chains (use Revolve there).
"""

from __future__ import annotations

import math

from ..errors import PlanningError, ScheduleError
from .actions import Action, adjoint, advance, free, restore, snapshot
from .chainspec import ChainSpec
from .schedule import Schedule

__all__ = [
    "SegmentDP",
    "SlotSegmentDP",
    "opt_forwards_hetero",
    "hetero_schedule",
    "quantize_sizes",
    "opt_forwards_budget",
    "budget_schedule",
]

_INF = float("inf")


# ---------------------------------------------------------------------------
# The parameterized segment-DP core
# ---------------------------------------------------------------------------


class SegmentDP:
    """Memoized segment DP over per-step forward costs.

    Subclasses define the capacity model via :meth:`free_units` (how many
    snapshot units a budget leaves free inside a segment) and
    :meth:`snapshot_units` (what parking ``x_m`` charges).  ``solve``
    returns the optimal pure-advance cost and the argmin first checkpoint;
    :meth:`emit` materializes the corresponding actions.
    """

    def __init__(self, fwd_cost: tuple[float, ...]) -> None:
        self.u = fwd_cost
        self.l = len(fwd_cost)
        # prefix[i] = cost of F_1..F_i
        self.prefix = [0.0]
        for ucost in fwd_cost:
            self.prefix.append(self.prefix[-1] + ucost)
        self._memo: dict[tuple[int, int, int], tuple[float, int]] = {}

    # -- capacity model (the only per-family hooks) ------------------------
    def free_units(self, budget: int) -> int:
        """Units available for snapshots strictly inside a segment."""
        raise NotImplementedError

    def snapshot_units(self, m: int) -> int:
        """Units a snapshot of ``x_m`` charges against the budget."""
        raise NotImplementedError

    def can_split(self, budget: int) -> bool:
        """Whether any interior checkpoint is even worth considering.

        A pure fast-path guard: families where a snapshot always costs at
        least one unit skip straight to the quadratic reversal when
        nothing is free (zero-size snapshots make it family-specific).
        """
        return True

    # -- shared scaffolding ------------------------------------------------
    def adv(self, i: int, j: int) -> float:
        """Cost of advancing from x_i to x_j."""
        return self.prefix[j] - self.prefix[i]

    def quad(self, i: int, j: int) -> float:
        """Pure-advance cost of the one-slot reversal of [i, j)."""
        # For b = j..i+1 we advance i -> b-1: sum_{b} (prefix[b-1]-prefix[i])
        total = 0.0
        for b in range(j, i, -1):
            total += self.adv(i, b - 1)
        return total

    def child_budget(self, budget: int, m: int) -> int:
        """Budget left for the right part after parking ``x_m``."""
        return budget - self.snapshot_units(m)

    def solve(self, i: int, j: int, budget: int) -> tuple[float, int]:
        """(min advance cost, best first-checkpoint m; 0 = no split).

        ``budget`` is interpreted through :meth:`free_units` — the
        segment input ``x_i`` is charged by the caller, never here.
        """
        if j - i <= 1:
            return 0.0, 0
        if not self.can_split(budget):
            return self.quad(i, j), 0
        key = (i, j, budget)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        avail = self.free_units(budget)
        best, best_m = self.quad(i, j), 0
        for m in range(i + 1, j):
            units = self.snapshot_units(m)
            if units > avail:
                continue
            val = (
                self.adv(i, m)
                + self.solve(m, j, budget - units)[0]
                + self.solve(i, m, budget)[0]
            )
            if val < best - 1e-12:
                best, best_m = val, m
        self._memo[key] = (best, best_m)
        return best, best_m

    def emit(
        self,
        actions: list[Action],
        i: int,
        j: int,
        budget: int,
        base_slot: int,
        pool: list[int],
    ) -> None:
        """Emit the reversal of ``[i, j)`` with ``x_i`` in ``base_slot``.

        ``pool`` holds the free slot ids; tail-iterates on the left
        segment so recursion depth is bounded by the checkpoint count.
        """
        while True:
            if j - i == 0:
                return
            if j - i == 1:
                actions.append(restore(base_slot))
                actions.append(adjoint(i + 1))
                return
            _, m = self.solve(i, j, budget)
            if m == 0 or not pool:
                for b in range(j, i, -1):
                    actions.append(restore(base_slot))
                    if b - 1 > i:
                        actions.append(advance(b - 1))
                    actions.append(adjoint(b))
                return
            actions.append(restore(base_slot))
            actions.append(advance(m))
            s = pool.pop()
            actions.append(snapshot(s))
            self.emit(actions, m, j, self.child_budget(budget, m), s, pool)
            actions.append(free(s))
            pool.append(s)
            j = m


class SlotSegmentDP(SegmentDP):
    """Slot-count capacity: every activation occupies exactly one slot.

    ``budget`` counts slots *including* the one holding the segment input
    (Revolve's ``P(l, c)`` convention), so a segment with budget ``c``
    has ``c − 1`` slots free for interior checkpoints.
    """

    def free_units(self, budget: int) -> int:
        return budget - 1

    def snapshot_units(self, m: int) -> int:
        return 1

    def can_split(self, budget: int) -> bool:
        return budget > 1


class _HeteroDP(SlotSegmentDP):
    """Heterogeneous step costs under a slot-count budget."""


class _BudgetDP(SegmentDP):
    """Heterogeneous activation sizes under a unit (quantized byte) budget.

    ``budget`` is the number of units free for snapshots inside the
    segment — the input's own units are charged by the caller.
    """

    def __init__(self, fwd_cost: tuple[float, ...], size_units: tuple[int, ...]) -> None:
        super().__init__(fwd_cost)
        self.sizes = size_units  # length l+1, x_0..x_l

    def free_units(self, budget: int) -> int:
        return budget

    def snapshot_units(self, m: int) -> int:
        return self.sizes[m]


# ---------------------------------------------------------------------------
# Heterogeneous costs, slot-count budget
# ---------------------------------------------------------------------------


def _hetero_dp(spec: ChainSpec) -> _HeteroDP:
    return _HeteroDP(spec.fwd_cost)


def opt_forwards_hetero(spec: ChainSpec, c: int) -> float:
    """Minimal pure-advance cost to reverse ``spec`` with ``c`` slots.

    Matches Revolve's ``P(l, c)`` (as cost) when the chain is homogeneous
    with unit step cost.
    """
    if c < 1:
        raise ScheduleError("slot count must be >= 1")
    return _hetero_dp(spec).solve(0, spec.length, c)[0]


def hetero_schedule(spec: ChainSpec, c: int) -> Schedule:
    """Optimal executable schedule for heterogeneous step costs."""
    if c < 1:
        raise ScheduleError("slot count must be >= 1")
    dp = _hetero_dp(spec)
    actions: list[Action] = []
    pool = list(range(1, c))
    actions.append(snapshot(0))
    dp.emit(actions, 0, spec.length, c, 0, pool)
    return Schedule(strategy="hetero_dp", length=spec.length, slots=c, actions=tuple(actions))


# ---------------------------------------------------------------------------
# Heterogeneous sizes, byte budget
# ---------------------------------------------------------------------------


def quantize_sizes(act_bytes: tuple[int, ...], levels: int = 64) -> tuple[tuple[int, ...], int]:
    """Quantize byte sizes to integer units (ceiling — conservative).

    Returns (units, bytes_per_unit).  A plan feasible in units is feasible
    in bytes because every size is rounded *up*.
    """
    if levels < 2:
        raise PlanningError("quantization levels must be >= 2")
    biggest = max(act_bytes)
    if biggest == 0:
        return tuple(0 for _ in act_bytes), 1
    unit = max(1, math.ceil(biggest / levels))
    return tuple(math.ceil(b / unit) for b in act_bytes), unit


def opt_forwards_budget(
    spec: ChainSpec, budget_bytes: int, levels: int = 64
) -> tuple[float, int]:
    """Minimal pure-advance cost under a checkpoint *byte* budget.

    The chain input ``x_0`` is charged against the budget first (it must
    stay resident).  Returns ``(cost, bytes_per_unit)``; raises
    :class:`~repro.errors.PlanningError` when even ``x_0`` does not fit.
    """
    units, per_unit = quantize_sizes(spec.act_bytes, levels)
    free_units = budget_bytes // per_unit - units[0]
    if free_units < 0:
        raise PlanningError(
            f"budget {budget_bytes} B cannot hold the chain input "
            f"({spec.act_bytes[0]} B)"
        )
    dp = _BudgetDP(spec.fwd_cost, units)
    return dp.solve(0, spec.length, free_units)[0], per_unit


def budget_schedule(spec: ChainSpec, budget_bytes: int, levels: int = 64) -> Schedule:
    """Optimal executable schedule under a checkpoint byte budget.

    The returned schedule's simulated ``peak_slot_bytes`` never exceeds
    ``budget_bytes`` (quantization rounds sizes up).
    """
    units, per_unit = quantize_sizes(spec.act_bytes, levels)
    free_units = budget_bytes // per_unit - units[0]
    if free_units < 0:
        raise PlanningError(
            f"budget {budget_bytes} B cannot hold the chain input "
            f"({spec.act_bytes[0]} B)"
        )
    dp = _BudgetDP(spec.fwd_cost, units)
    actions: list[Action] = []
    pool = list(range(1, spec.length + 1))
    actions.append(snapshot(0))
    dp.emit(actions, 0, spec.length, free_units, 0, pool)
    return Schedule(
        strategy="budget_dp",
        length=spec.length,
        slots=spec.length + 1,
        actions=tuple(actions),
    )
