"""Optimal checkpointing for *heterogeneous* chains — the paper's
"proposed improvements" direction, generalized.

Classic Revolve assumes every step has equal cost and every activation
equal size — true for the paper's idealized ``LinearResNet`` but not for a
real ResNet block chain, where early blocks have large activations and
late blocks large weights.  This module provides two exact dynamic
programs over segments ``[i, j)`` of a :class:`~.chainspec.ChainSpec`:

* :func:`opt_forwards_hetero` — per-step forward *costs* differ, all
  activations occupy one slot (slot-count budget ``c``); reduces exactly
  to Revolve on homogeneous chains (property-tested).
* :func:`opt_forwards_budget` — activation *sizes* differ and the budget
  is in bytes; sizes are conservatively quantized to ``levels`` integer
  units (ceiling), so a reported plan never exceeds the byte budget.

Both return optimal extra-forward cost and can materialize executable
schedules.  Complexity is O(l³·c) / O(l³·levels); intended for block
chains (l ≲ 60), not the homogenized 152-step chains (use Revolve there).
"""

from __future__ import annotations

import math

from ..errors import PlanningError, ScheduleError
from .actions import Action, adjoint, advance, free, restore, snapshot
from .chainspec import ChainSpec
from .schedule import Schedule

__all__ = [
    "opt_forwards_hetero",
    "hetero_schedule",
    "quantize_sizes",
    "opt_forwards_budget",
    "budget_schedule",
]

_INF = float("inf")


# ---------------------------------------------------------------------------
# Heterogeneous costs, slot-count budget
# ---------------------------------------------------------------------------


class _HeteroDP:
    """Memoized segment DP with per-step forward costs."""

    def __init__(self, fwd_cost: tuple[float, ...]) -> None:
        self.u = fwd_cost
        self.l = len(fwd_cost)
        # prefix[i] = cost of F_1..F_i
        self.prefix = [0.0]
        for ucost in fwd_cost:
            self.prefix.append(self.prefix[-1] + ucost)
        self._memo: dict[tuple[int, int, int], tuple[float, int]] = {}

    def adv(self, i: int, j: int) -> float:
        """Cost of advancing from x_i to x_j."""
        return self.prefix[j] - self.prefix[i]

    def quad(self, i: int, j: int) -> float:
        """Pure-advance cost of the one-slot reversal of [i, j)."""
        # For b = j..i+1 we advance i -> b-1: sum_{b} (prefix[b-1]-prefix[i])
        total = 0.0
        for b in range(j, i, -1):
            total += self.adv(i, b - 1)
        return total

    def child_budget(self, budget: int, m: int) -> int:
        """Right segment gets one fewer slot (its input occupies one)."""
        return budget - 1

    def solve(self, i: int, j: int, c: int) -> tuple[float, int]:
        """(min advance cost, best first-checkpoint m; 0 = no split)."""
        if j - i <= 1:
            return 0.0, 0
        if c <= 1:
            return self.quad(i, j), 0
        key = (i, j, c)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        best, best_m = self.quad(i, j), 0
        for m in range(i + 1, j):
            val = (
                self.adv(i, m)
                + self.solve(m, j, c - 1)[0]
                + self.solve(i, m, c)[0]
            )
            if val < best - 1e-12:
                best, best_m = val, m
        self._memo[key] = (best, best_m)
        return best, best_m


def _hetero_dp(spec: ChainSpec) -> _HeteroDP:
    return _HeteroDP(spec.fwd_cost)


def opt_forwards_hetero(spec: ChainSpec, c: int) -> float:
    """Minimal pure-advance cost to reverse ``spec`` with ``c`` slots.

    Matches Revolve's ``P(l, c)`` (as cost) when the chain is homogeneous
    with unit step cost.
    """
    if c < 1:
        raise ScheduleError("slot count must be >= 1")
    return _hetero_dp(spec).solve(0, spec.length, c)[0]


def _emit_hetero(
    dp: "_HeteroDP | _BudgetDP",
    actions: list[Action],
    i: int,
    j: int,
    budget: int,
    base_slot: int,
    pool: list[int],
) -> None:
    """Shared emission for both DPs; ``budget`` is c or byte-units."""
    while True:
        if j - i == 0:
            return
        if j - i == 1:
            actions.append(restore(base_slot))
            actions.append(adjoint(i + 1))
            return
        _, m = dp.solve(i, j, budget)
        if m == 0 or not pool:
            for b in range(j, i, -1):
                actions.append(restore(base_slot))
                if b - 1 > i:
                    actions.append(advance(b - 1))
                actions.append(adjoint(b))
            return
        actions.append(restore(base_slot))
        actions.append(advance(m))
        s = pool.pop()
        actions.append(snapshot(s))
        _emit_hetero(dp, actions, m, j, dp.child_budget(budget, m), s, pool)
        actions.append(free(s))
        pool.append(s)
        j = m


def hetero_schedule(spec: ChainSpec, c: int) -> Schedule:
    """Optimal executable schedule for heterogeneous step costs."""
    if c < 1:
        raise ScheduleError("slot count must be >= 1")
    dp = _hetero_dp(spec)
    actions: list[Action] = []
    pool = list(range(1, c))
    actions.append(snapshot(0))
    _emit_hetero(dp, actions, 0, spec.length, c, 0, pool)
    return Schedule(strategy="hetero_dp", length=spec.length, slots=c, actions=tuple(actions))


# ---------------------------------------------------------------------------
# Heterogeneous sizes, byte budget
# ---------------------------------------------------------------------------


def quantize_sizes(act_bytes: tuple[int, ...], levels: int = 64) -> tuple[tuple[int, ...], int]:
    """Quantize byte sizes to integer units (ceiling — conservative).

    Returns (units, bytes_per_unit).  A plan feasible in units is feasible
    in bytes because every size is rounded *up*.
    """
    if levels < 2:
        raise PlanningError("quantization levels must be >= 2")
    biggest = max(act_bytes)
    if biggest == 0:
        return tuple(0 for _ in act_bytes), 1
    unit = max(1, math.ceil(biggest / levels))
    return tuple(math.ceil(b / unit) for b in act_bytes), unit


class _BudgetDP:
    """Segment DP with heterogeneous activation sizes and a unit budget."""

    def __init__(self, fwd_cost: tuple[float, ...], size_units: tuple[int, ...]) -> None:
        self.u = fwd_cost
        self.sizes = size_units  # length l+1, x_0..x_l
        self.l = len(fwd_cost)
        self.prefix = [0.0]
        for ucost in fwd_cost:
            self.prefix.append(self.prefix[-1] + ucost)
        self._memo: dict[tuple[int, int, int], tuple[float, int]] = {}

    def adv(self, i: int, j: int) -> float:
        return self.prefix[j] - self.prefix[i]

    def quad(self, i: int, j: int) -> float:
        total = 0.0
        for b in range(j, i, -1):
            total += self.adv(i, b - 1)
        return total

    def child_budget(self, budget: int, m: int) -> int:
        return budget - self.sizes[m]

    def solve(self, i: int, j: int, budget: int) -> tuple[float, int]:
        """(min advance cost, best m; 0 = reverse without snapshots).

        ``budget`` is the free units available for snapshots inside
        ``[i, j)``; the segment input ``x_i`` is charged by the caller.
        """
        if j - i <= 1:
            return 0.0, 0
        key = (i, j, budget)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        best, best_m = self.quad(i, j), 0
        for m in range(i + 1, j):
            sz = self.sizes[m]
            if sz > budget:
                continue
            val = (
                self.adv(i, m)
                + self.solve(m, j, budget - sz)[0]
                + self.solve(i, m, budget)[0]
            )
            if val < best - 1e-12:
                best, best_m = val, m
        self._memo[key] = (best, best_m)
        return best, best_m


def opt_forwards_budget(
    spec: ChainSpec, budget_bytes: int, levels: int = 64
) -> tuple[float, int]:
    """Minimal pure-advance cost under a checkpoint *byte* budget.

    The chain input ``x_0`` is charged against the budget first (it must
    stay resident).  Returns ``(cost, bytes_per_unit)``; raises
    :class:`~repro.errors.PlanningError` when even ``x_0`` does not fit.
    """
    units, per_unit = quantize_sizes(spec.act_bytes, levels)
    free_units = budget_bytes // per_unit - units[0]
    if free_units < 0:
        raise PlanningError(
            f"budget {budget_bytes} B cannot hold the chain input "
            f"({spec.act_bytes[0]} B)"
        )
    dp = _BudgetDP(spec.fwd_cost, units)
    return dp.solve(0, spec.length, free_units)[0], per_unit


def budget_schedule(spec: ChainSpec, budget_bytes: int, levels: int = 64) -> Schedule:
    """Optimal executable schedule under a checkpoint byte budget.

    The returned schedule's simulated ``peak_slot_bytes`` never exceeds
    ``budget_bytes`` (quantization rounds sizes up).
    """
    units, per_unit = quantize_sizes(spec.act_bytes, levels)
    free_units = budget_bytes // per_unit - units[0]
    if free_units < 0:
        raise PlanningError(
            f"budget {budget_bytes} B cannot hold the chain input "
            f"({spec.act_bytes[0]} B)"
        )
    dp = _BudgetDP(spec.fwd_cost, units)
    actions: list[Action] = []
    pool = list(range(1, spec.length + 1))
    actions.append(snapshot(0))
    _emit_hetero(dp, actions, 0, spec.length, free_units, 0, pool)
    return Schedule(
        strategy="budget_dp",
        length=spec.length,
        slots=spec.length + 1,
        actions=tuple(actions),
    )
