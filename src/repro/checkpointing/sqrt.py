"""Chen et al.'s √l checkpointing heuristic ("sublinear memory cost").

A special case of uniform segmentation with ``s ≈ √l`` segments: memory
``O(√l)`` at one extra forward per step (ρ ≈ 1.33 with backward = 2×
forward, ρ = 1.5 with backward = forward).  Included as the standard
middle ground between PyTorch's arbitrary-``s`` uniform strategy and
Revolve's optimal binomial schedule.
"""

from __future__ import annotations

import math

from .schedule import Schedule
from .uniform import uniform_memory_slots, uniform_schedule

__all__ = ["sqrt_segments", "sqrt_memory_slots", "sqrt_schedule"]


def sqrt_segments(l: int) -> int:
    """Chen's segment count: ``round(√l)``, clamped to [1, l]."""
    if l < 1:
        raise ValueError("chain length must be >= 1")
    return max(1, min(l, round(math.sqrt(l))))


def sqrt_memory_slots(l: int) -> int:
    """Activation slots used by the √l strategy (Section V formula)."""
    return uniform_memory_slots(l, sqrt_segments(l))


def sqrt_schedule(l: int) -> Schedule:
    """Executable √l schedule (uniform schedule at ``s = √l``)."""
    sch = uniform_schedule(l, sqrt_segments(l))
    return Schedule(
        strategy="sqrt",
        length=sch.length,
        slots=sch.slots,
        actions=sch.actions,
    )
