"""Memory-over-time traces of schedule execution.

Checkpointing papers plot live memory against execution progress — the
store-all triangle versus Revolve's sawtooth.  :func:`memory_timeline`
replays a schedule action by action and records the live checkpoint bytes
(and cursor) after each action;
:func:`timeline_ascii` renders several schedules on one plot for direct
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExecutionError
from .chainspec import ChainSpec
from .schedule import Schedule

__all__ = ["TimelinePoint", "memory_timeline", "timeline_ascii"]


@dataclass(frozen=True)
class TimelinePoint:
    """Live state after one action."""

    index: int  # action index
    kind: str
    live_slot_bytes: int
    live_bytes: int  # slots + cursor
    backwards_done: int


def memory_timeline(schedule: Schedule, spec: ChainSpec | None = None) -> list[TimelinePoint]:
    """Per-action live-byte trace (raises on invalid schedules).

    One engine run with a collecting step callback — the VM validates
    while the :class:`~repro.engine.sim.SimBackend` does the byte
    accounting, so this stays consistent with :func:`~.simulator.simulate`
    by construction.
    """
    from ..engine.sim import SimBackend
    from ..engine.vm import execute

    if spec is None:
        spec = ChainSpec.homogeneous(schedule.length)
    out: list[TimelinePoint] = []

    def collect(step) -> None:
        out.append(
            TimelinePoint(
                index=step.pos,
                kind=step.kind.value,
                live_slot_bytes=step.slot_bytes,
                live_bytes=step.live_bytes,
                backwards_done=step.backwards_done,
            )
        )

    execute(schedule, SimBackend(spec), on_step=collect)
    return out


def timeline_ascii(
    schedules: dict[str, Schedule],
    spec: ChainSpec | None = None,
    width: int = 72,
    height: int = 16,
) -> str:
    """Plot live bytes vs normalized execution progress for several
    schedules (each schedule's x-axis is rescaled to [0, 1] so plans of
    different lengths are comparable)."""
    from ..experiments.report import ascii_plot

    if not schedules:
        raise ExecutionError("need at least one schedule")
    series: dict[str, list[tuple[float, float]]] = {}
    for name, sch in schedules.items():
        trace = memory_timeline(sch, spec)
        n = max(1, len(trace) - 1)
        series[name] = [(p.index / n, float(p.live_bytes)) for p in trace]
    return ascii_plot(
        series,
        width=width,
        height=height,
        title="Live checkpoint memory over execution",
        x_label="execution progress",
        y_label="live bytes",
    )
