"""Chain specifications consumed by checkpointing algorithms.

A :class:`ChainSpec` describes an ``l``-step chain ``F_1 .. F_l`` mapping
``x_0 -> x_l``:

* ``act_bytes[i]`` — size of activation ``x_i`` for ``i`` in ``0..l``
  (``x_0`` is the chain input);
* ``fwd_cost[i]`` / ``bwd_cost[i]`` — cost of ``F_i`` / ``B_i`` for ``i``
  in ``1..l`` (stored 0-indexed as step ``i`` at position ``i-1``).

Homogeneous chains (the paper's ``LinearResNet``) have all-equal entries;
heterogeneous chains (real ResNet block chains) feed the general DP in
:mod:`repro.checkpointing.dynprog`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..errors import ScheduleError
from ..graph import LinearChain, SegmentChain

__all__ = ["ChainSpec"]


@dataclass(frozen=True)
class ChainSpec:
    """Sizes and costs of an ``l``-step reversible chain."""

    name: str
    act_bytes: tuple[int, ...]  # length l+1: x_0 .. x_l
    fwd_cost: tuple[float, ...]  # length l: F_1 .. F_l
    bwd_cost: tuple[float, ...]  # length l: B_1 .. B_l

    def __post_init__(self) -> None:
        l = len(self.fwd_cost)
        if l < 1:
            raise ScheduleError("chain must have at least one step")
        if len(self.act_bytes) != l + 1:
            raise ScheduleError(
                f"act_bytes must have length l+1={l + 1}, got {len(self.act_bytes)}"
            )
        if len(self.bwd_cost) != l:
            raise ScheduleError(f"bwd_cost must have length l={l}")
        if any(b < 0 for b in self.act_bytes):
            raise ScheduleError("activation sizes must be non-negative")
        if any(c < 0 for c in self.fwd_cost) or any(c < 0 for c in self.bwd_cost):
            raise ScheduleError("step costs must be non-negative")

    # -- constructors -----------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        length: int,
        act_bytes: int = 1,
        fwd_cost: float = 1.0,
        bwd_cost: float = 1.0,
        name: str = "chain",
    ) -> "ChainSpec":
        """Unit chain with ``length`` identical steps."""
        return cls(
            name=name,
            act_bytes=(act_bytes,) * (length + 1),
            fwd_cost=(fwd_cost,) * length,
            bwd_cost=(bwd_cost,) * length,
        )

    @classmethod
    def from_linear_chain(cls, chain: LinearChain, bwd_ratio: float = 1.0) -> "ChainSpec":
        """From a homogenized :class:`~repro.graph.LinearChain`.

        ``x_0`` gets the true input size; every other activation the
        homogenized per-step size.  ``bwd_ratio`` scales backward cost
        relative to forward (the paper's Figure 1 uses 1.0).
        """
        acts = (chain.input_bytes,) + (chain.act_bytes,) * chain.length
        fwd = (float(chain.step_flops or 1),) * chain.length
        return cls(
            name=chain.name,
            act_bytes=acts,
            fwd_cost=fwd,
            bwd_cost=tuple(f * bwd_ratio for f in fwd),
        )

    @classmethod
    def from_segment_chain(cls, chain: SegmentChain, bwd_ratio: float = 2.0) -> "ChainSpec":
        """From a real linearized DAG (heterogeneous sizes and costs)."""
        acts = (chain.input_bytes,) + tuple(s.act_bytes for s in chain.stages)
        fwd = tuple(float(s.flops or 1) for s in chain.stages)
        return cls(
            name=chain.name,
            act_bytes=acts,
            fwd_cost=fwd,
            bwd_cost=tuple(f * bwd_ratio for f in fwd),
        )

    # -- queries -----------------------------------------------------------
    @property
    def length(self) -> int:
        return len(self.fwd_cost)

    @property
    def is_homogeneous(self) -> bool:
        return (
            len(set(self.act_bytes[1:])) == 1
            and len(set(self.fwd_cost)) == 1
            and len(set(self.bwd_cost)) == 1
        )

    @property
    def total_fwd_cost(self) -> float:
        return sum(self.fwd_cost)

    @property
    def total_bwd_cost(self) -> float:
        return sum(self.bwd_cost)

    @property
    def baseline_time(self) -> float:
        """Store-all training time: one forward plus one backward sweep."""
        return self.total_fwd_cost + self.total_bwd_cost

    @property
    def store_all_bytes(self) -> int:
        """Bytes to hold every activation ``x_1..x_l`` simultaneously."""
        return sum(self.act_bytes[1:])

    @cached_property
    def fwd_prefix(self) -> tuple[float, ...]:
        """Running forward cost: ``fwd_prefix[i]`` = cost of ``F_1 .. F_i``.

        Accumulated left to right with plain float addition, so both
        :meth:`advance_cost` and the vectorized compiled-program path
        (which turns this tuple into an array and takes differences)
        produce bit-identical costs.
        """
        prefix = [0.0]
        running = 0.0
        for c in self.fwd_cost:
            running += c
            prefix.append(running)
        return tuple(prefix)

    def advance_cost(self, start: int, stop: int) -> float:
        """Cost of computing ``x_{start+1} .. x_stop`` from ``x_start``."""
        if not 0 <= start < stop <= self.length:
            raise ScheduleError(f"invalid advance {start}->{stop} on chain of length {self.length}")
        prefix = self.fwd_prefix
        return prefix[stop] - prefix[start]
