"""First-class checkpoint strategies: one registry, one schedule cache.

The paper's core comparison (Section VI, Figure 1) is a comparison
*across strategies* — optimal Revolve against PyTorch's uniform
``checkpoint_sequential`` against Chen's √l heuristic — yet each caller
used to dispatch on free-form strings and re-derive the recompute factor
locally.  This module makes a strategy a first-class object:

* :class:`CheckpointStrategy` — the interface every family implements:
  ``build_schedule(l, c)``, ``extra_forwards(l, c)``, ``peak_slots(l, c)``,
  ``feasible(l, slot_budget)`` and ``rho(l, c, bwd_ratio)``;
* a process-wide registry (:func:`register`, :func:`get_strategy`,
  :func:`available_strategies`) holding the built-in families:
  ``revolve``, ``uniform``, ``sqrt``, ``store_all``, ``hetero``,
  ``budget``, ``disk_revolve``, the joint remat+paging planners
  (``joint_time``, ``joint_energy``) and the compressed variants
  (``revolve_zip``, ``joint_zip``);
* a memoized schedule/stats cache keyed by ``(strategy, l, c)`` whose
  hit/miss counts live on the shared :mod:`repro.obs` metrics registry
  (:func:`schedule_cache_info` stays as the reading facade), so
  experiment sweeps that revisit the same (l, c) points stop rebuilding
  identical schedules and re-running the virtual machine — and the
  counts show up in any exported trace.

Conventions shared by every adapter (all homogeneous-chain semantics):

* ``c`` is the checkpoint *slot budget* including the slot holding a
  segment's input (Revolve's convention), never a segment count;
* ``extra_forwards`` counts pure ADVANCE steps beyond the mandatory
  ``l − 1`` sweep — exactly what :meth:`ExecutionStats
  <repro.checkpointing.simulator.ExecutionStats>`\\ ``.extra_forward_steps``
  measures, so predictions and measurements are directly comparable
  (property-tested in ``tests/test_ckpt_strategies.py``);
* ``rho`` prices that overhead with the paper's formula
  ``1 + extra / (l·(1 + bwd_ratio))`` via :func:`rho_from_extra` — the
  single home of the expression previously duplicated across the
  planner and the ablation;
* ``disk_revolve``'s ρ prices recompute only; its disk I/O is costed
  separately by :func:`~repro.checkpointing.multilevel.disk_revolve_cost`.

The base class backs ``extra_forwards``/``peak_slots`` by executing the
(cached) schedule on the virtual machine, so a new strategy is correct
the moment ``build_schedule`` works; families with closed forms override
them for O(1) planning.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import PlanningError
from ..obs import get_metrics, get_tracer
from .actions import Action, ActionKind, compressed_slot
from .chainspec import ChainSpec
from .dynprog import budget_schedule, hetero_schedule
from .joint import UnitCostObjective, joint_schedule
from .multilevel import disk_revolve_schedule
from .revolve import extra_forwards as revolve_extra_forwards
from .revolve import revolve_schedule, store_all_schedule
from .schedule import Schedule
from .simulator import ExecutionStats, simulate
from .sqrt import sqrt_memory_slots, sqrt_schedule, sqrt_segments
from .uniform import (
    best_segments,
    uniform_extra_forwards_fused,
    uniform_memory_slots,
    uniform_schedule,
)

if TYPE_CHECKING:  # pragma: no cover - layering: engine imports this package
    from ..engine.program import CompiledProgram

__all__ = [
    "CheckpointStrategy",
    "register",
    "get_strategy",
    "available_strategies",
    "resolve_strategy_name",
    "rho_from_extra",
    "uniform_rho",
    "compressed_variant",
    "CacheInfo",
    "ProgramCacheInfo",
    "schedule_cache_info",
    "program_cache_info",
    "clear_schedule_cache",
    "set_program_store",
    "program_key_digest",
]


# ---------------------------------------------------------------------------
# The ρ formula, in one place
# ---------------------------------------------------------------------------


def rho_from_extra(l: int, extra: float, bwd_ratio: float = 1.0) -> float:
    """Recompute factor ρ = 1 + extra / (l·(1 + bwd_ratio)).

    The paper's Section VI pricing of ``extra`` recomputed forward steps
    against the store-all baseline ``l·u_f + l·u_b`` with
    ``bwd_ratio = u_b/u_f``.
    """
    if bwd_ratio < 0:
        raise PlanningError("bwd_ratio must be >= 0")
    return 1.0 + extra / (l * (1.0 + bwd_ratio))


def uniform_rho(l: int, s: int, bwd_ratio: float = 1.0) -> float:
    """ρ of uniform segmentation at ``s`` segments (fused convention)."""
    return rho_from_extra(l, uniform_extra_forwards_fused(l, s), bwd_ratio)


# ---------------------------------------------------------------------------
# Memoized schedule / stats cache
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of the process-wide schedule cache counters."""

    hits: int
    misses: int
    schedules: int
    stats: int


@dataclass(frozen=True)
class ProgramCacheInfo:
    """Snapshot of the compiled-program cache layer counters.

    ``hits``/``misses`` count in-memory lookups; ``store_hits`` counts
    programs rehydrated from the attached content-addressed store and
    ``store_writes`` programs persisted to it (so
    ``misses - store_hits`` is the number of actual compilations).
    """

    hits: int
    misses: int
    store_hits: int
    store_writes: int
    programs: int


#: Shared metric names for the cache's hit/miss counters — the bespoke
#: integers the cache used to keep now live in the obs registry, where
#: exported traces and summaries pick them up alongside everything else.
CACHE_HITS = "ckpt.schedule_cache.hits"
CACHE_MISSES = "ckpt.schedule_cache.misses"

#: Metric names for the compiled-program layer.
PROGRAM_CACHE_HITS = "ckpt.program_cache.hits"
PROGRAM_CACHE_MISSES = "ckpt.program_cache.misses"
PROGRAM_STORE_HITS = "ckpt.program_store.hits"
PROGRAM_STORE_WRITES = "ckpt.program_store.writes"

#: Attached cross-process program store (see :func:`set_program_store`).
_PROGRAM_STORE = None
_PROGRAM_STORE_LOCK = threading.Lock()


def program_key_digest(key: tuple) -> str:
    """Stable address of a compiled program for a given cache key.

    Derived from the canonical JSON of the cache key (the same
    ``(strategy, l[, c])`` tuple the schedule cache uses) plus the
    payload format version — NOT from the program bytes, so the store
    can be probed before the schedule is ever built.  Integrity of what
    the address returns is enforced separately by the payload's content
    digest (see :func:`repro.engine.program.program_from_payload`).
    """
    from ..engine.program import PROGRAM_VERSION

    canon = json.dumps(["program", PROGRAM_VERSION, list(key)], separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


class _PathProgramStore:
    """Lazy :class:`~repro.lab.store.ArtifactStore` wrapper for a path.

    Lets callers attach a plain directory without this module importing
    :mod:`repro.lab` at module scope (checkpointing sits below lab).
    """

    def __init__(self, root) -> None:
        self._root = root
        self._store = None

    def _resolve(self):
        if self._store is None:
            from ..lab.store import ArtifactStore

            self._store = ArtifactStore(self._root)
        return self._store

    def load_program(self, digest: str):
        return self._resolve().load_program(digest)

    def save_program(self, digest: str, payload: dict):
        return self._resolve().save_program(digest, payload)


def set_program_store(store):
    """Attach a cross-process store for compiled programs; return the old one.

    ``store`` may be ``None`` (detach), any object with
    ``load_program(digest) -> dict | None`` and
    ``save_program(digest, payload)``, or a filesystem path (wrapped in
    a lazily constructed :class:`~repro.lab.store.ArtifactStore`).
    """
    global _PROGRAM_STORE
    with _PROGRAM_STORE_LOCK:
        previous = _PROGRAM_STORE
        if store is None or hasattr(store, "load_program"):
            _PROGRAM_STORE = store
        else:
            _PROGRAM_STORE = _PathProgramStore(store)
    return previous


class _ScheduleCache:
    """Process-wide memo of built schedules and their simulator stats.

    Keys are ``(strategy_name, l, c)`` (strategies whose plan ignores
    ``c`` normalize it away in :meth:`CheckpointStrategy.cache_key`).
    Lookups are lock-protected; builds run outside the lock — builders
    are pure, so a racing double-build resolves via ``setdefault``.
    Hit/miss counts route to the :mod:`repro.obs` metrics registry
    (:data:`CACHE_HITS` / :data:`CACHE_MISSES`), plus a
    ``cache``-category trace event per lookup when tracing is enabled.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._schedules: dict[tuple, Schedule] = {}
        self._stats: dict[tuple, ExecutionStats] = {}
        self._programs: dict[tuple, "CompiledProgram"] = {}

    def _get(self, table: dict, key: tuple):
        with self._lock:
            value = table.get(key)
        hit = value is not None
        get_metrics().counter(CACHE_HITS if hit else CACHE_MISSES).inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("hit" if hit else "miss", category="cache", key=str(key))
        return value

    def schedule(self, key: tuple, build) -> Schedule:
        found = self._get(self._schedules, key)
        if found is not None:
            return found
        built = build()
        with self._lock:
            return self._schedules.setdefault(key, built)

    def stats(self, key: tuple, build) -> ExecutionStats:
        found = self._get(self._stats, key)
        if found is not None:
            return found
        built = build()
        with self._lock:
            return self._stats.setdefault(key, built)

    def program(self, key: tuple, get_schedule) -> "CompiledProgram":
        """Compiled program for ``key``: memory, then store, then compile.

        A store hit rehydrates (and revalidates) the persisted payload
        and also seeds the schedule table with the decompiled schedule,
        so workers sharing a store skip both the build and the compile.
        A corrupt or stale payload is silently recompiled — the store is
        a cache, never a source of truth.
        """
        from ..engine.program import (
            compile_schedule,
            decompile,
            program_from_payload,
        )
        from ..errors import ReproError

        with self._lock:
            found = self._programs.get(key)
        m = get_metrics()
        tracer = get_tracer()
        if found is not None:
            m.counter(PROGRAM_CACHE_HITS).inc()
            if tracer.enabled:
                tracer.event("hit", category="cache", key=f"program:{key}")
            return found
        m.counter(PROGRAM_CACHE_MISSES).inc()
        if tracer.enabled:
            tracer.event("miss", category="cache", key=f"program:{key}")
        store = _PROGRAM_STORE
        built = None
        if store is not None:
            payload = store.load_program(program_key_digest(key))
            if payload is not None:
                try:
                    built = program_from_payload(payload)
                except ReproError:
                    built = None
                if built is not None:
                    m.counter(PROGRAM_STORE_HITS).inc()
        if built is None:
            built = compile_schedule(get_schedule())
            if store is not None:
                store.save_program(program_key_digest(key), built.to_payload())
                m.counter(PROGRAM_STORE_WRITES).inc()
        with self._lock:
            built = self._programs.setdefault(key, built)
            self._schedules.setdefault(key, decompile(built))
        return built

    def program_info(self) -> ProgramCacheInfo:
        m = get_metrics()
        with self._lock:
            return ProgramCacheInfo(
                hits=m.counter(PROGRAM_CACHE_HITS).value,
                misses=m.counter(PROGRAM_CACHE_MISSES).value,
                store_hits=m.counter(PROGRAM_STORE_HITS).value,
                store_writes=m.counter(PROGRAM_STORE_WRITES).value,
                programs=len(self._programs),
            )

    def info(self) -> CacheInfo:
        m = get_metrics()
        with self._lock:
            return CacheInfo(
                hits=m.counter(CACHE_HITS).value,
                misses=m.counter(CACHE_MISSES).value,
                schedules=len(self._schedules),
                stats=len(self._stats),
            )

    def clear(self) -> None:
        with self._lock:
            self._schedules.clear()
            self._stats.clear()
            self._programs.clear()
        m = get_metrics()
        m.counter(CACHE_HITS).reset()
        m.counter(CACHE_MISSES).reset()
        m.counter(PROGRAM_CACHE_HITS).reset()
        m.counter(PROGRAM_CACHE_MISSES).reset()
        m.counter(PROGRAM_STORE_HITS).reset()
        m.counter(PROGRAM_STORE_WRITES).reset()


_CACHE = _ScheduleCache()


def schedule_cache_info() -> CacheInfo:
    """Hit/miss counters and entry counts of the shared schedule cache."""
    return _CACHE.info()


def program_cache_info() -> ProgramCacheInfo:
    """Counters and entry count of the compiled-program cache layer."""
    return _CACHE.program_info()


def clear_schedule_cache() -> None:
    """Drop every cached schedule/stats/program entry, reset all counters."""
    _CACHE.clear()


# ---------------------------------------------------------------------------
# The strategy interface
# ---------------------------------------------------------------------------


class CheckpointStrategy:
    """One checkpointing family, adapted to the common (l, c) surface.

    Subclasses must set :attr:`name` and implement
    :meth:`build_schedule`; everything else has simulator-backed
    defaults.  Instances are stateless — all memoization lives in the
    shared cache — so one registered instance serves the whole process.
    """

    #: Registry key; also the ``Schedule.strategy`` family label.
    name: str = "?"

    # -- required ---------------------------------------------------------
    def build_schedule(self, l: int, c: int) -> Schedule:
        """Construct a fresh executable schedule (uncached)."""
        raise NotImplementedError

    # -- caching surface --------------------------------------------------
    def cache_key(self, l: int, c: int) -> tuple:
        """Cache key; families whose plan ignores ``c`` drop it here."""
        return (self.name, l, c)

    def schedule(self, l: int, c: int) -> Schedule:
        """Memoized :meth:`build_schedule` through the shared cache."""
        return _CACHE.schedule(self.cache_key(l, c), lambda: self.build_schedule(l, c))

    def compiled(self, l: int, c: int) -> "CompiledProgram":
        """Memoized flat-IR compilation of the cached schedule.

        Served from the in-memory layer, then the attached
        cross-process store (:func:`set_program_store`), and only then
        compiled from a freshly built schedule.
        """
        return _CACHE.program(self.cache_key(l, c), lambda: self.schedule(l, c))

    def measured(self, l: int, c: int) -> ExecutionStats:
        """Memoized virtual-machine measurements of the cached schedule.

        Runs through the compiled fast path — the stats are bit-identical
        to interpreting the schedule (property-tested), but the program
        is compiled once and shareable across processes.
        """

        def build() -> ExecutionStats:
            program = self.compiled(l, c)
            return simulate(self.schedule(l, c), compiled=program)

        return _CACHE.stats(self.cache_key(l, c), build)

    # -- predictions (override with closed forms where they exist) --------
    def extra_forwards(self, l: int, c: int) -> int:
        """Pure forward steps beyond the mandatory ``l − 1`` sweep."""
        return self.measured(l, c).extra_forward_steps()

    def peak_slots(self, l: int, c: int) -> int:
        """Maximum simultaneously occupied checkpoint slots."""
        return self.measured(l, c).peak_slots

    def feasible(self, l: int, slot_budget: int) -> bool:
        """Whether the family can reverse an ``l``-chain in the budget."""
        return slot_budget >= 1

    def rho(self, l: int, c: int, bwd_ratio: float = 1.0) -> float:
        """Recompute factor at slot budget ``c`` (the paper's ρ)."""
        return rho_from_extra(l, self.extra_forwards(l, c), bwd_ratio)


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, CheckpointStrategy] = {}
_ALIASES: dict[str, str] = {}
_REGISTRY_LOCK = threading.Lock()


def register(
    strategy: CheckpointStrategy,
    *,
    aliases: tuple[str, ...] = (),
    overwrite: bool = False,
) -> CheckpointStrategy:
    """Add ``strategy`` to the registry under its name (plus aliases).

    Returns the strategy so the call can be used as a decorator-style
    one-liner.  Re-registering a taken name raises unless ``overwrite``.
    """
    name = strategy.name
    if not name or name == "?":
        raise PlanningError("strategy must define a name before registration")
    with _REGISTRY_LOCK:
        for key in (name, *aliases):
            taken = key in _REGISTRY or key in _ALIASES
            if taken and not overwrite:
                raise PlanningError(f"strategy name {key!r} is already registered")
        _REGISTRY[name] = strategy
        for alias in aliases:
            _ALIASES[alias] = name
    return strategy


def get_strategy(name: str) -> CheckpointStrategy:
    """Resolve a registered strategy by name or alias."""
    with _REGISTRY_LOCK:
        canonical = _ALIASES.get(name, name)
        strategy = _REGISTRY.get(canonical)
    if strategy is None:
        raise PlanningError(
            f"unknown strategy {name!r}; available: {', '.join(available_strategies())}"
        )
    return strategy


def available_strategies() -> tuple[str, ...]:
    """Registered strategy names, in registration order."""
    with _REGISTRY_LOCK:
        return tuple(_REGISTRY)


def resolve_strategy_name(label: str) -> str:
    """Canonical family name for a schedule's strategy label.

    Labels may carry parameters — ``"uniform(s=4)"``,
    ``"disk_revolve(c_m=3)"`` — and legacy spellings (``"hetero_dp"``);
    the part before ``(`` is resolved through the registry.  Raises
    :class:`~repro.errors.PlanningError` for unknown families.
    """
    return get_strategy(label.split("(", 1)[0]).name


# ---------------------------------------------------------------------------
# Built-in family adapters
# ---------------------------------------------------------------------------


class RevolveStrategy(CheckpointStrategy):
    """Optimal binomial checkpointing (Griewank & Walther Alg. 799)."""

    name = "revolve"

    def build_schedule(self, l: int, c: int) -> Schedule:
        return revolve_schedule(l, c)

    def extra_forwards(self, l: int, c: int) -> int:
        return revolve_extra_forwards(l, c)


class UniformStrategy(CheckpointStrategy):
    """PyTorch ``checkpoint_sequential``: best segmentation in budget."""

    name = "uniform"

    def build_schedule(self, l: int, c: int) -> Schedule:
        return uniform_schedule(l, best_segments(l, slot_budget=c))

    def extra_forwards(self, l: int, c: int) -> int:
        return uniform_extra_forwards_fused(l, best_segments(l, slot_budget=c))

    def peak_slots(self, l: int, c: int) -> int:
        return uniform_memory_slots(l, best_segments(l, slot_budget=c))

    def feasible(self, l: int, slot_budget: int) -> bool:
        try:
            best_segments(l, slot_budget=slot_budget)
        except PlanningError:
            return False
        return True


class SqrtStrategy(CheckpointStrategy):
    """Chen's √l heuristic — a fixed segmentation, so ``c`` is ignored."""

    name = "sqrt"

    def cache_key(self, l: int, c: int) -> tuple:
        return (self.name, l)

    def build_schedule(self, l: int, c: int) -> Schedule:
        return sqrt_schedule(l)

    def extra_forwards(self, l: int, c: int) -> int:
        return uniform_extra_forwards_fused(l, sqrt_segments(l))

    def peak_slots(self, l: int, c: int) -> int:
        return sqrt_memory_slots(l)

    def feasible(self, l: int, slot_budget: int) -> bool:
        return sqrt_memory_slots(l) <= slot_budget


class StoreAllStrategy(CheckpointStrategy):
    """No recomputation: snapshot every prefix activation."""

    name = "store_all"

    def cache_key(self, l: int, c: int) -> tuple:
        return (self.name, l)

    def build_schedule(self, l: int, c: int) -> Schedule:
        return store_all_schedule(l)

    def extra_forwards(self, l: int, c: int) -> int:
        return 0

    def peak_slots(self, l: int, c: int) -> int:
        return l

    def feasible(self, l: int, slot_budget: int) -> bool:
        # The c+1'th activation lives in the cursor, so l−1 slots suffice.
        return slot_budget >= max(1, l - 1)


class HeteroStrategy(CheckpointStrategy):
    """Exact segment DP over per-step costs, run on the unit chain.

    On homogeneous chains the DP provably matches Revolve's ``P(l, c)``
    (property-tested in ``tests/test_ckpt_dynprog.py``), so planning
    queries use the closed form; only ``build_schedule`` pays the
    O(l³·c) DP.
    """

    name = "hetero"

    def build_schedule(self, l: int, c: int) -> Schedule:
        return hetero_schedule(ChainSpec.homogeneous(l), c)

    def extra_forwards(self, l: int, c: int) -> int:
        return revolve_extra_forwards(l, c)


class BudgetStrategy(CheckpointStrategy):
    """Exact byte-budget DP, run on the unit chain at ``c`` size units.

    With unit activation sizes a budget of ``c`` units (``x_0`` charged
    first, ``c − 1`` free) is exactly the slot-count DP, hence Revolve's
    closed form prices it.
    """

    name = "budget"

    def build_schedule(self, l: int, c: int) -> Schedule:
        return budget_schedule(ChainSpec.homogeneous(l), budget_bytes=c)

    def extra_forwards(self, l: int, c: int) -> int:
        return revolve_extra_forwards(l, c)


class DiskRevolveStrategy(CheckpointStrategy):
    """Two-level (memory + disk) checkpointing with ``c`` memory slots.

    ``peak_slots`` counts both tiers; ``rho`` prices recompute only —
    disk I/O is costed by :func:`~.multilevel.disk_revolve_cost`.
    """

    name = "disk_revolve"

    def __init__(self, write_cost: float = 1.0, read_cost: float = 1.0) -> None:
        self.write_cost = write_cost
        self.read_cost = read_cost

    def build_schedule(self, l: int, c: int) -> Schedule:
        return disk_revolve_schedule(l, c, self.write_cost, self.read_cost)


_SLOT_KINDS = (ActionKind.SNAPSHOT, ActionKind.RESTORE, ActionKind.FREE)


def compressed_variant(base: Schedule, family: str) -> Schedule:
    """Rewrite every slot-touching action into the compressed band.

    The action *structure* is untouched — same recompute pattern, same
    peak slot count — only the how-stored flag changes, so the variant
    inherits the base family's closed forms.  The declared budget is
    inflated past the banded ids, the same convention ``disk_revolve``
    and ``joint`` use for their tier bands.
    """
    actions = tuple(
        Action(a.kind, compressed_slot(a.arg)) if a.kind in _SLOT_KINDS else a
        for a in base.actions
    )
    max_slot = max(
        (a.arg for a in actions if a.kind in _SLOT_KINDS), default=-1
    )
    return Schedule(
        strategy=family,
        length=base.length,
        slots=max(base.slots, max_slot + 1),
        actions=actions,
    )


class RevolveZipStrategy(CheckpointStrategy):
    """Revolve with every checkpoint stored through the codec.

    Identical action structure to ``revolve`` — same binomial recompute
    pattern, same ``extra_forwards`` closed form — but every SNAPSHOT
    lands in the compressed slot band, so a
    :class:`~repro.engine.compressed.CompressedBackend` holds
    ``ratio``-scaled bytes per slot (peak-memory reduction at codec
    cost) while plain backends execute it as ordinary Revolve.  Under
    the identity codec the measured bytes collapse to ``revolve``'s.
    """

    name = "revolve_zip"

    def build_schedule(self, l: int, c: int) -> Schedule:
        return compressed_variant(revolve_schedule(l, c), self.name)

    def extra_forwards(self, l: int, c: int) -> int:
        return revolve_extra_forwards(l, c)


class JointStrategy(CheckpointStrategy):
    """Joint rematerialization+paging DP over the tiered action alphabet.

    Per split point the planner chooses recompute-vs-page-to-tier under
    an abstract per-operation paging price in forward units (the
    registry operates on homogeneous unit chains, so profile-priced
    objectives live behind the spec-level API —
    :func:`~repro.checkpointing.joint.joint_schedule` with a
    :class:`~repro.checkpointing.joint.TimeObjective` /
    :class:`~repro.checkpointing.joint.EnergyObjective`).  ``joint_time``
    prices a paged op at one forward unit — ``disk_revolve``'s
    convention, which it provably weakly dominates; ``joint_energy`` at
    a quarter unit (storage I/O holds only the ~2 W rail while a busy
    core draws ~4x that, so equal-duration transfers cost a quarter of
    the energy — the duty-cycle framing of
    :class:`~repro.edge.power.EnergyModel`), so it pages more eagerly.
    Like ``disk_revolve``, ``rho`` prices recompute only; paging I/O is
    costed by the objective.
    """

    def __init__(self, name: str, write_cost: float = 1.0, read_cost: float = 1.0) -> None:
        self.name = name
        self.write_cost = write_cost
        self.read_cost = read_cost

    def build_schedule(self, l: int, c: int) -> Schedule:
        spec = ChainSpec.homogeneous(l)
        objective = UnitCostObjective(spec, self.write_cost, self.read_cost)
        return joint_schedule(spec, c, objective, family=self.name)


class JointZipStrategy(JointStrategy):
    """Joint DP with compression as the third action per split.

    Arms the unit-cost objective with a codec, doubling the split
    alphabet: recompute vs page vs page-compressed.  A compressed page
    moves ``ratio`` of the bytes (BitTrain's sparse-bitmap default), so
    the plan weakly dominates ``joint_time`` by construction and pages
    more eagerly; emitted compressed splits use the compressed slot
    band, executing with codec-priced transfers on a
    :class:`~repro.engine.compressed.CompressedBackend`.
    """

    def __init__(
        self,
        name: str,
        write_cost: float = 1.0,
        read_cost: float = 1.0,
        codec_name: str = "bittrain",
    ) -> None:
        super().__init__(name, write_cost, read_cost)
        self.codec_name = codec_name

    def build_schedule(self, l: int, c: int) -> Schedule:
        # Lazy: repro.edge imports this package (layering, not a cycle).
        from ..edge.storage import compression_models

        spec = ChainSpec.homogeneous(l)
        objective = UnitCostObjective(
            spec,
            self.write_cost,
            self.read_cost,
            codec=compression_models()[self.codec_name],
        )
        return joint_schedule(spec, c, objective, family=self.name)


# Registration order is the presentation order everywhere (ablation
# columns, CLI listing) and keeps compare_strategies' seed key order:
# revolve, uniform, sqrt, store_all first.
register(RevolveStrategy())
register(UniformStrategy())
register(SqrtStrategy())
register(StoreAllStrategy())
register(HeteroStrategy(), aliases=("hetero_dp",))
register(BudgetStrategy(), aliases=("budget_dp",))
register(DiskRevolveStrategy())
register(JointStrategy("joint_time"), aliases=("joint",))
register(JointStrategy("joint_energy", write_cost=0.25, read_cost=0.25))
register(RevolveZipStrategy())
register(JointZipStrategy("joint_zip"))
