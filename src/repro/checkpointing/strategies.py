"""First-class checkpoint strategies: one registry, one schedule cache.

The paper's core comparison (Section VI, Figure 1) is a comparison
*across strategies* — optimal Revolve against PyTorch's uniform
``checkpoint_sequential`` against Chen's √l heuristic — yet each caller
used to dispatch on free-form strings and re-derive the recompute factor
locally.  This module makes a strategy a first-class object:

* :class:`CheckpointStrategy` — the interface every family implements:
  ``build_schedule(l, c)``, ``extra_forwards(l, c)``, ``peak_slots(l, c)``,
  ``feasible(l, slot_budget)`` and ``rho(l, c, bwd_ratio)``;
* a process-wide registry (:func:`register`, :func:`get_strategy`,
  :func:`available_strategies`) holding the seven built-in families:
  ``revolve``, ``uniform``, ``sqrt``, ``store_all``, ``hetero``,
  ``budget`` and ``disk_revolve``;
* a memoized schedule/stats cache keyed by ``(strategy, l, c)`` whose
  hit/miss counts live on the shared :mod:`repro.obs` metrics registry
  (:func:`schedule_cache_info` stays as the reading facade), so
  experiment sweeps that revisit the same (l, c) points stop rebuilding
  identical schedules and re-running the virtual machine — and the
  counts show up in any exported trace.

Conventions shared by every adapter (all homogeneous-chain semantics):

* ``c`` is the checkpoint *slot budget* including the slot holding a
  segment's input (Revolve's convention), never a segment count;
* ``extra_forwards`` counts pure ADVANCE steps beyond the mandatory
  ``l − 1`` sweep — exactly what :meth:`ExecutionStats
  <repro.checkpointing.simulator.ExecutionStats>`\\ ``.extra_forward_steps``
  measures, so predictions and measurements are directly comparable
  (property-tested in ``tests/test_ckpt_strategies.py``);
* ``rho`` prices that overhead with the paper's formula
  ``1 + extra / (l·(1 + bwd_ratio))`` via :func:`rho_from_extra` — the
  single home of the expression previously duplicated across the
  planner and the ablation;
* ``disk_revolve``'s ρ prices recompute only; its disk I/O is costed
  separately by :func:`~repro.checkpointing.multilevel.disk_revolve_cost`.

The base class backs ``extra_forwards``/``peak_slots`` by executing the
(cached) schedule on the virtual machine, so a new strategy is correct
the moment ``build_schedule`` works; families with closed forms override
them for O(1) planning.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..errors import PlanningError
from ..obs import get_metrics, get_tracer
from .chainspec import ChainSpec
from .dynprog import budget_schedule, hetero_schedule
from .multilevel import disk_revolve_schedule
from .revolve import extra_forwards as revolve_extra_forwards
from .revolve import revolve_schedule, store_all_schedule
from .schedule import Schedule
from .simulator import ExecutionStats, simulate
from .sqrt import sqrt_memory_slots, sqrt_schedule, sqrt_segments
from .uniform import (
    best_segments,
    uniform_extra_forwards_fused,
    uniform_memory_slots,
    uniform_schedule,
)

__all__ = [
    "CheckpointStrategy",
    "register",
    "get_strategy",
    "available_strategies",
    "resolve_strategy_name",
    "rho_from_extra",
    "uniform_rho",
    "CacheInfo",
    "schedule_cache_info",
    "clear_schedule_cache",
]


# ---------------------------------------------------------------------------
# The ρ formula, in one place
# ---------------------------------------------------------------------------


def rho_from_extra(l: int, extra: float, bwd_ratio: float = 1.0) -> float:
    """Recompute factor ρ = 1 + extra / (l·(1 + bwd_ratio)).

    The paper's Section VI pricing of ``extra`` recomputed forward steps
    against the store-all baseline ``l·u_f + l·u_b`` with
    ``bwd_ratio = u_b/u_f``.
    """
    if bwd_ratio < 0:
        raise PlanningError("bwd_ratio must be >= 0")
    return 1.0 + extra / (l * (1.0 + bwd_ratio))


def uniform_rho(l: int, s: int, bwd_ratio: float = 1.0) -> float:
    """ρ of uniform segmentation at ``s`` segments (fused convention)."""
    return rho_from_extra(l, uniform_extra_forwards_fused(l, s), bwd_ratio)


# ---------------------------------------------------------------------------
# Memoized schedule / stats cache
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of the process-wide schedule cache counters."""

    hits: int
    misses: int
    schedules: int
    stats: int


#: Shared metric names for the cache's hit/miss counters — the bespoke
#: integers the cache used to keep now live in the obs registry, where
#: exported traces and summaries pick them up alongside everything else.
CACHE_HITS = "ckpt.schedule_cache.hits"
CACHE_MISSES = "ckpt.schedule_cache.misses"


class _ScheduleCache:
    """Process-wide memo of built schedules and their simulator stats.

    Keys are ``(strategy_name, l, c)`` (strategies whose plan ignores
    ``c`` normalize it away in :meth:`CheckpointStrategy.cache_key`).
    Lookups are lock-protected; builds run outside the lock — builders
    are pure, so a racing double-build resolves via ``setdefault``.
    Hit/miss counts route to the :mod:`repro.obs` metrics registry
    (:data:`CACHE_HITS` / :data:`CACHE_MISSES`), plus a
    ``cache``-category trace event per lookup when tracing is enabled.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._schedules: dict[tuple, Schedule] = {}
        self._stats: dict[tuple, ExecutionStats] = {}

    def _get(self, table: dict, key: tuple):
        with self._lock:
            value = table.get(key)
        hit = value is not None
        get_metrics().counter(CACHE_HITS if hit else CACHE_MISSES).inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("hit" if hit else "miss", category="cache", key=str(key))
        return value

    def schedule(self, key: tuple, build) -> Schedule:
        found = self._get(self._schedules, key)
        if found is not None:
            return found
        built = build()
        with self._lock:
            return self._schedules.setdefault(key, built)

    def stats(self, key: tuple, build) -> ExecutionStats:
        found = self._get(self._stats, key)
        if found is not None:
            return found
        built = build()
        with self._lock:
            return self._stats.setdefault(key, built)

    def info(self) -> CacheInfo:
        m = get_metrics()
        with self._lock:
            return CacheInfo(
                hits=m.counter(CACHE_HITS).value,
                misses=m.counter(CACHE_MISSES).value,
                schedules=len(self._schedules),
                stats=len(self._stats),
            )

    def clear(self) -> None:
        with self._lock:
            self._schedules.clear()
            self._stats.clear()
        m = get_metrics()
        m.counter(CACHE_HITS).reset()
        m.counter(CACHE_MISSES).reset()


_CACHE = _ScheduleCache()


def schedule_cache_info() -> CacheInfo:
    """Hit/miss counters and entry counts of the shared schedule cache."""
    return _CACHE.info()


def clear_schedule_cache() -> None:
    """Drop every cached schedule/stats entry and reset the counters."""
    _CACHE.clear()


# ---------------------------------------------------------------------------
# The strategy interface
# ---------------------------------------------------------------------------


class CheckpointStrategy:
    """One checkpointing family, adapted to the common (l, c) surface.

    Subclasses must set :attr:`name` and implement
    :meth:`build_schedule`; everything else has simulator-backed
    defaults.  Instances are stateless — all memoization lives in the
    shared cache — so one registered instance serves the whole process.
    """

    #: Registry key; also the ``Schedule.strategy`` family label.
    name: str = "?"

    # -- required ---------------------------------------------------------
    def build_schedule(self, l: int, c: int) -> Schedule:
        """Construct a fresh executable schedule (uncached)."""
        raise NotImplementedError

    # -- caching surface --------------------------------------------------
    def cache_key(self, l: int, c: int) -> tuple:
        """Cache key; families whose plan ignores ``c`` drop it here."""
        return (self.name, l, c)

    def schedule(self, l: int, c: int) -> Schedule:
        """Memoized :meth:`build_schedule` through the shared cache."""
        return _CACHE.schedule(self.cache_key(l, c), lambda: self.build_schedule(l, c))

    def measured(self, l: int, c: int) -> ExecutionStats:
        """Memoized virtual-machine measurements of the cached schedule."""
        return _CACHE.stats(self.cache_key(l, c), lambda: simulate(self.schedule(l, c)))

    # -- predictions (override with closed forms where they exist) --------
    def extra_forwards(self, l: int, c: int) -> int:
        """Pure forward steps beyond the mandatory ``l − 1`` sweep."""
        return self.measured(l, c).extra_forward_steps()

    def peak_slots(self, l: int, c: int) -> int:
        """Maximum simultaneously occupied checkpoint slots."""
        return self.measured(l, c).peak_slots

    def feasible(self, l: int, slot_budget: int) -> bool:
        """Whether the family can reverse an ``l``-chain in the budget."""
        return slot_budget >= 1

    def rho(self, l: int, c: int, bwd_ratio: float = 1.0) -> float:
        """Recompute factor at slot budget ``c`` (the paper's ρ)."""
        return rho_from_extra(l, self.extra_forwards(l, c), bwd_ratio)


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, CheckpointStrategy] = {}
_ALIASES: dict[str, str] = {}
_REGISTRY_LOCK = threading.Lock()


def register(
    strategy: CheckpointStrategy,
    *,
    aliases: tuple[str, ...] = (),
    overwrite: bool = False,
) -> CheckpointStrategy:
    """Add ``strategy`` to the registry under its name (plus aliases).

    Returns the strategy so the call can be used as a decorator-style
    one-liner.  Re-registering a taken name raises unless ``overwrite``.
    """
    name = strategy.name
    if not name or name == "?":
        raise PlanningError("strategy must define a name before registration")
    with _REGISTRY_LOCK:
        for key in (name, *aliases):
            taken = key in _REGISTRY or key in _ALIASES
            if taken and not overwrite:
                raise PlanningError(f"strategy name {key!r} is already registered")
        _REGISTRY[name] = strategy
        for alias in aliases:
            _ALIASES[alias] = name
    return strategy


def get_strategy(name: str) -> CheckpointStrategy:
    """Resolve a registered strategy by name or alias."""
    with _REGISTRY_LOCK:
        canonical = _ALIASES.get(name, name)
        strategy = _REGISTRY.get(canonical)
    if strategy is None:
        raise PlanningError(
            f"unknown strategy {name!r}; available: {', '.join(available_strategies())}"
        )
    return strategy


def available_strategies() -> tuple[str, ...]:
    """Registered strategy names, in registration order."""
    with _REGISTRY_LOCK:
        return tuple(_REGISTRY)


def resolve_strategy_name(label: str) -> str:
    """Canonical family name for a schedule's strategy label.

    Labels may carry parameters — ``"uniform(s=4)"``,
    ``"disk_revolve(c_m=3)"`` — and legacy spellings (``"hetero_dp"``);
    the part before ``(`` is resolved through the registry.  Raises
    :class:`~repro.errors.PlanningError` for unknown families.
    """
    return get_strategy(label.split("(", 1)[0]).name


# ---------------------------------------------------------------------------
# Built-in family adapters
# ---------------------------------------------------------------------------


class RevolveStrategy(CheckpointStrategy):
    """Optimal binomial checkpointing (Griewank & Walther Alg. 799)."""

    name = "revolve"

    def build_schedule(self, l: int, c: int) -> Schedule:
        return revolve_schedule(l, c)

    def extra_forwards(self, l: int, c: int) -> int:
        return revolve_extra_forwards(l, c)


class UniformStrategy(CheckpointStrategy):
    """PyTorch ``checkpoint_sequential``: best segmentation in budget."""

    name = "uniform"

    def build_schedule(self, l: int, c: int) -> Schedule:
        return uniform_schedule(l, best_segments(l, slot_budget=c))

    def extra_forwards(self, l: int, c: int) -> int:
        return uniform_extra_forwards_fused(l, best_segments(l, slot_budget=c))

    def peak_slots(self, l: int, c: int) -> int:
        return uniform_memory_slots(l, best_segments(l, slot_budget=c))

    def feasible(self, l: int, slot_budget: int) -> bool:
        try:
            best_segments(l, slot_budget=slot_budget)
        except PlanningError:
            return False
        return True


class SqrtStrategy(CheckpointStrategy):
    """Chen's √l heuristic — a fixed segmentation, so ``c`` is ignored."""

    name = "sqrt"

    def cache_key(self, l: int, c: int) -> tuple:
        return (self.name, l)

    def build_schedule(self, l: int, c: int) -> Schedule:
        return sqrt_schedule(l)

    def extra_forwards(self, l: int, c: int) -> int:
        return uniform_extra_forwards_fused(l, sqrt_segments(l))

    def peak_slots(self, l: int, c: int) -> int:
        return sqrt_memory_slots(l)

    def feasible(self, l: int, slot_budget: int) -> bool:
        return sqrt_memory_slots(l) <= slot_budget


class StoreAllStrategy(CheckpointStrategy):
    """No recomputation: snapshot every prefix activation."""

    name = "store_all"

    def cache_key(self, l: int, c: int) -> tuple:
        return (self.name, l)

    def build_schedule(self, l: int, c: int) -> Schedule:
        return store_all_schedule(l)

    def extra_forwards(self, l: int, c: int) -> int:
        return 0

    def peak_slots(self, l: int, c: int) -> int:
        return l

    def feasible(self, l: int, slot_budget: int) -> bool:
        # The c+1'th activation lives in the cursor, so l−1 slots suffice.
        return slot_budget >= max(1, l - 1)


class HeteroStrategy(CheckpointStrategy):
    """Exact segment DP over per-step costs, run on the unit chain.

    On homogeneous chains the DP provably matches Revolve's ``P(l, c)``
    (property-tested in ``tests/test_ckpt_dynprog.py``), so planning
    queries use the closed form; only ``build_schedule`` pays the
    O(l³·c) DP.
    """

    name = "hetero"

    def build_schedule(self, l: int, c: int) -> Schedule:
        return hetero_schedule(ChainSpec.homogeneous(l), c)

    def extra_forwards(self, l: int, c: int) -> int:
        return revolve_extra_forwards(l, c)


class BudgetStrategy(CheckpointStrategy):
    """Exact byte-budget DP, run on the unit chain at ``c`` size units.

    With unit activation sizes a budget of ``c`` units (``x_0`` charged
    first, ``c − 1`` free) is exactly the slot-count DP, hence Revolve's
    closed form prices it.
    """

    name = "budget"

    def build_schedule(self, l: int, c: int) -> Schedule:
        return budget_schedule(ChainSpec.homogeneous(l), budget_bytes=c)

    def extra_forwards(self, l: int, c: int) -> int:
        return revolve_extra_forwards(l, c)


class DiskRevolveStrategy(CheckpointStrategy):
    """Two-level (memory + disk) checkpointing with ``c`` memory slots.

    ``peak_slots`` counts both tiers; ``rho`` prices recompute only —
    disk I/O is costed by :func:`~.multilevel.disk_revolve_cost`.
    """

    name = "disk_revolve"

    def __init__(self, write_cost: float = 1.0, read_cost: float = 1.0) -> None:
        self.write_cost = write_cost
        self.read_cost = read_cost

    def build_schedule(self, l: int, c: int) -> Schedule:
        return disk_revolve_schedule(l, c, self.write_cost, self.read_cost)


# Registration order is the presentation order everywhere (ablation
# columns, CLI listing) and keeps compare_strategies' seed key order:
# revolve, uniform, sqrt, store_all first.
register(RevolveStrategy())
register(UniformStrategy())
register(SqrtStrategy())
register(StoreAllStrategy())
register(HeteroStrategy(), aliases=("hetero_dp",))
register(BudgetStrategy(), aliases=("budget_dp",))
register(DiskRevolveStrategy())
