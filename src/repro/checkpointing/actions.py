"""The action IR for checkpoint schedules.

A schedule is a flat list of actions driving an abstract reversal machine
(and, in :mod:`repro.autodiff.executor`, a real NumPy training run):

``ADVANCE(to)``
    Run forward steps from the cursor's activation index up to ``to``,
    discarding intermediates (the cursor ends holding ``x_to``).
``SNAPSHOT(slot)``
    Copy the cursor's activation into checkpoint slot ``slot``.
``RESTORE(slot)``
    Load the cursor from slot ``slot`` (the slot keeps its contents).
``FREE(slot)``
    Release a slot (memory-accounting hygiene; Revolve also overwrites).
``ADJOINT(step)``
    Perform the combined forward+backward of ``step`` ("youturn"):
    requires the cursor at ``x_{step-1}`` and the pending backward counter
    equal to ``step``; internally replays ``F_step`` then applies
    ``B_step``.

Conventions follow Griewank & Walther's Revolve: the adjoint always
replays its own step's forward, so a schedule's *pure* forward count (sum
of ADVANCE lengths) is the classic Revolve cost ``P(l, c)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ScheduleError

__all__ = ["ActionKind", "Action", "advance", "snapshot", "restore", "free", "adjoint"]


class ActionKind(enum.Enum):
    """Discriminator for :class:`Action`."""

    ADVANCE = "advance"
    SNAPSHOT = "snapshot"
    RESTORE = "restore"
    FREE = "free"
    ADJOINT = "adjoint"


@dataclass(frozen=True)
class Action:
    """One schedule instruction.  ``arg`` is the target index or slot id."""

    kind: ActionKind
    arg: int

    def __post_init__(self) -> None:
        if self.arg < 0:
            raise ScheduleError(f"{self.kind.value} argument must be >= 0, got {self.arg}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}({self.arg})"


def advance(to: int) -> Action:
    """Forward the cursor to activation index ``to``."""
    return Action(ActionKind.ADVANCE, to)


def snapshot(slot: int) -> Action:
    """Store the cursor's activation into ``slot``."""
    return Action(ActionKind.SNAPSHOT, slot)


def restore(slot: int) -> Action:
    """Load the cursor from ``slot``."""
    return Action(ActionKind.RESTORE, slot)


def free(slot: int) -> Action:
    """Release ``slot``."""
    return Action(ActionKind.FREE, slot)


def adjoint(step: int) -> Action:
    """Forward+backward of ``step`` (requires cursor at ``x_{step-1}``)."""
    return Action(ActionKind.ADJOINT, step)
