"""The action IR for checkpoint schedules.

A schedule is a flat list of actions driving an abstract reversal machine
(and, in :mod:`repro.autodiff.executor`, a real NumPy training run):

``ADVANCE(to)``
    Run forward steps from the cursor's activation index up to ``to``,
    discarding intermediates (the cursor ends holding ``x_to``).
``SNAPSHOT(slot)``
    Copy the cursor's activation into checkpoint slot ``slot``.
``RESTORE(slot)``
    Load the cursor from slot ``slot`` (the slot keeps its contents).
``FREE(slot)``
    Release a slot (memory-accounting hygiene; Revolve also overwrites).
``ADJOINT(step)``
    Perform the combined forward+backward of ``step`` ("youturn"):
    requires the cursor at ``x_{step-1}`` and the pending backward counter
    equal to ``step``; internally replays ``F_step`` then applies
    ``B_step``.

Conventions follow Griewank & Walther's Revolve: the adjoint always
replays its own step's forward, so a schedule's *pure* forward count (sum
of ADVANCE lengths) is the classic Revolve cost ``P(l, c)``.

Tiers
-----

Slot ids encode *where a checkpoint lives*.  The id space is partitioned
into bands of :data:`TIER_SLOT_STRIDE` consecutive ids: tier ``t`` owns
``[t·stride, (t+1)·stride)``, so tier 0 (:data:`TIER_RAM`) is plain RAM
slots ``0, 1, 2, ...`` and tier 1 (:data:`TIER_DISK`) starts at
``1_000_000`` — the historical ``DISK_SLOT_BASE`` convention of
:mod:`repro.checkpointing.multilevel`, now shared as one alphabet by the
schedule VM (:mod:`repro.engine.vm`), the tiered backend
(:mod:`repro.engine.tiered`) and the flat program IR
(:mod:`repro.engine.program`).  :func:`tier_of_slot` /
:func:`tier_slot` / :func:`local_slot` convert between the flat id and
the (tier, local) pair; the encoding stays well inside int32 so compiled
programs round-trip paged schedules exactly.

Compression
-----------

Orthogonally to the tier bands, a slot id at or above
:data:`COMPRESS_SLOT_BASE` marks the checkpoint as *stored compressed*:
``compressed_slot(s) == COMPRESS_SLOT_BASE + s`` flags any storage slot
``s`` (RAM or disk band alike), :func:`storage_slot` strips the flag and
:func:`is_compressed_slot` tests it.  The tier helpers strip the flag
first, so a compressed disk slot still routes to the disk ledger — *how*
an activation is stored (raw vs through a
:class:`~repro.edge.storage.CompressionModel`) is part of the plan, not
a backend implementation detail.  ``COMPRESS_SLOT_BASE + tier_slot(1,
local)`` tops out near ``1.01e8``, still comfortably inside int32, so
compressed schedules compile, cache and decompile exactly like plain
ones with no ``PROGRAM_VERSION`` bump.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ScheduleError

__all__ = [
    "ActionKind",
    "Action",
    "advance",
    "snapshot",
    "restore",
    "free",
    "adjoint",
    "TIER_SLOT_STRIDE",
    "TIER_RAM",
    "TIER_DISK",
    "TIER_NAMES",
    "tier_of_slot",
    "tier_slot",
    "local_slot",
    "tier_name",
    "COMPRESS_SLOT_BASE",
    "is_compressed_slot",
    "compressed_slot",
    "storage_slot",
]

#: Width of each tier's slot-id band; tier ``t`` owns ``[t·stride, (t+1)·stride)``.
TIER_SLOT_STRIDE = 1_000_000

#: Slot ids at or above this are stored compressed; subtracting the base
#: yields the underlying tier-banded storage slot.
COMPRESS_SLOT_BASE = 100_000_000

#: Tier index of ordinary in-memory checkpoint slots.
TIER_RAM = 0

#: Tier index of the (flash/SD/eMMC) paging tier.
TIER_DISK = 1

#: Display names of the known tiers, indexed by tier id.
TIER_NAMES: tuple[str, ...] = ("memory", "disk")


def is_compressed_slot(slot: int) -> bool:
    """Whether a flat slot id carries the compressed-storage flag."""
    if slot < 0:
        raise ScheduleError(f"slot id must be >= 0, got {slot}")
    return slot >= COMPRESS_SLOT_BASE


def compressed_slot(slot: int) -> int:
    """Flag a tier-banded storage slot id as stored compressed."""
    if not 0 <= slot < COMPRESS_SLOT_BASE:
        raise ScheduleError(
            f"storage slot must be in [0, {COMPRESS_SLOT_BASE}), got {slot}"
        )
    return COMPRESS_SLOT_BASE + slot


def storage_slot(slot: int) -> int:
    """The underlying tier-banded slot id, compression flag stripped."""
    if slot < 0:
        raise ScheduleError(f"slot id must be >= 0, got {slot}")
    return slot - COMPRESS_SLOT_BASE if slot >= COMPRESS_SLOT_BASE else slot


def tier_of_slot(slot: int) -> int:
    """Tier index encoded in a flat slot id (compression flag ignored)."""
    return storage_slot(slot) // TIER_SLOT_STRIDE


def tier_slot(tier: int, local: int) -> int:
    """Flat slot id of the ``local``-th slot on ``tier``."""
    if tier < 0:
        raise ScheduleError(f"tier must be >= 0, got {tier}")
    if not 0 <= local < TIER_SLOT_STRIDE:
        raise ScheduleError(
            f"local slot must be in [0, {TIER_SLOT_STRIDE}), got {local}"
        )
    return tier * TIER_SLOT_STRIDE + local


def local_slot(slot: int) -> int:
    """Position of a flat slot id within its tier's band (flag ignored)."""
    return storage_slot(slot) % TIER_SLOT_STRIDE


def tier_name(tier: int) -> str:
    """Display name of a tier (``tier2``, ``tier3``, ... beyond the known two)."""
    if tier < 0:
        raise ScheduleError(f"tier must be >= 0, got {tier}")
    if tier < len(TIER_NAMES):
        return TIER_NAMES[tier]
    return f"tier{tier}"


class ActionKind(enum.Enum):
    """Discriminator for :class:`Action`."""

    ADVANCE = "advance"
    SNAPSHOT = "snapshot"
    RESTORE = "restore"
    FREE = "free"
    ADJOINT = "adjoint"


@dataclass(frozen=True)
class Action:
    """One schedule instruction.  ``arg`` is the target index or slot id."""

    kind: ActionKind
    arg: int

    def __post_init__(self) -> None:
        if self.arg < 0:
            raise ScheduleError(f"{self.kind.value} argument must be >= 0, got {self.arg}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}({self.arg})"


def advance(to: int) -> Action:
    """Forward the cursor to activation index ``to``."""
    return Action(ActionKind.ADVANCE, to)


def snapshot(slot: int) -> Action:
    """Store the cursor's activation into ``slot``."""
    return Action(ActionKind.SNAPSHOT, slot)


def restore(slot: int) -> Action:
    """Load the cursor from ``slot``."""
    return Action(ActionKind.RESTORE, slot)


def free(slot: int) -> Action:
    """Release ``slot``."""
    return Action(ActionKind.FREE, slot)


def adjoint(step: int) -> Action:
    """Forward+backward of ``step`` (requires cursor at ``x_{step-1}``)."""
    return Action(ActionKind.ADJOINT, step)
