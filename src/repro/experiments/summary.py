"""The one-screen overview, assembled from cached dependency payloads.

``summary`` is the only registered spec with dependencies: it renders
Table I (ours), the Section V sweep at 8 segments, Figure 1b (paper
coefficients) and a reduced strategy ablation — each pulled from the
lab cache when warm, so a cached ``repro-edge summary`` touches no
experiment code at all.
"""

from __future__ import annotations

from ..lab import UnitDef, experiment, get_spec
from .report import render_json

__all__ = ["SUMMARY_DEPS"]

#: (spec, params) of each section, in display order.
SUMMARY_DEPS = (
    ("table1", {"source": "ours"}),
    ("section5", {"max_segments": 8}),
    ("figure1", {"panel": "b", "source": "paper"}),
    ("ablation", {"lengths": (50, 152), "slot_budgets": (3, 8, 21)}),
)


def _summary_ascii(doc: dict) -> str:
    return "\n".join(s["text"] for s in doc["sections"])


@experiment(
    "summary",
    "one-screen overview of all artifacts",
    deps=SUMMARY_DEPS,
    renderers={"ascii": _summary_ascii, "json": render_json},
    default_units=(UnitDef({}, (("summary.txt", "ascii"),)),),
)
def _summary_spec(params, inputs):
    sections = []
    for (dep_name, _), payload in zip(SUMMARY_DEPS, inputs):
        text = get_spec(dep_name).renderers["ascii"](payload)
        sections.append({"spec": dep_name, "text": text})
    return {"sections": sections}
