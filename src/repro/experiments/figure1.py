"""Figure 1 reproduction: peak memory vs recompute factor ρ.

For each ``LinearResNet_x`` (the homogenized chain of depth x with the
same weight and total-activation memory as ResNet_x) and each panel
(batch, image) ∈ {(1,224), (8,224), (1,500), (8,500)}, we sweep ρ and at
each ρ binary-search the minimal Revolve slot count whose recompute
overhead fits the ``2ρl`` budget, then convert slots to bytes:
``M(ρ) = M_fixed + (c+1)·k·M_act(img)/l``.

Two coefficient sources, as for the tables: ``"ours"`` (first-principles
graphs, homogenized) and ``"paper"`` (Table-I-fitted coefficients — at
ρ = 1 these reproduce the published store-all footprints exactly).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..checkpointing import memory_for_slots, slots_for_rhos
from ..lab import Param, UnitDef, experiment
from ..memory import calibrated_models
from ..units import GB, MB
from ..zoo import RESNET_DEPTHS
from .report import ascii_plot, render_json
from .tables import memory_models

__all__ = ["PANELS", "Figure1Series", "figure1_panel", "figure1_ascii", "default_rhos"]

#: The paper's four panels: (label, batch size, image size).
PANELS: dict[str, tuple[int, int]] = {
    "a": (1, 224),
    "b": (8, 224),
    "c": (1, 500),
    "d": (8, 500),
}


def default_rhos(n: int = 41, lo: float = 1.0, hi: float = 3.0) -> tuple[float, ...]:
    """The ρ grid used for the curves (paper plots roughly ρ ∈ [1, 3])."""
    if n < 2:
        raise ValueError("need at least 2 grid points")
    step = (hi - lo) / (n - 1)
    return tuple(lo + i * step for i in range(n))


@dataclass(frozen=True)
class Figure1Series:
    """One model's memory-vs-ρ curve in one panel."""

    depth: int
    batch_size: int
    image_size: int
    source: str
    points: tuple[tuple[float, float], ...]  # (rho, bytes)

    @property
    def name(self) -> str:
        return f"LinearResNet{self.depth}"

    def memory_at(self, rho: float) -> float:
        """Bytes at the grid point closest to ``rho``."""
        return min(self.points, key=lambda p: abs(p[0] - rho))[1]

    def min_rho_under(self, budget_bytes: float) -> float | None:
        """Smallest swept ρ whose footprint fits ``budget_bytes``."""
        fitting = [r for r, b in self.points if b <= budget_bytes]
        return min(fitting) if fitting else None


def _coefficients(depth: int, image: int, source: str) -> tuple[float, float]:
    """(fixed_bytes, per-sample activation bytes at ``image``)."""
    if source == "paper":
        cal = calibrated_models()[depth]
        return cal.fixed_bytes, cal.act_bytes(image)
    model = memory_models()[depth]
    return float(model.fixed_bytes), float(model.act_bytes(image))


def figure1_panel(
    panel: str,
    source: str = "paper",
    rhos: tuple[float, ...] | None = None,
    depths: tuple[int, ...] = RESNET_DEPTHS,
) -> list[Figure1Series]:
    """All model curves for one panel ('a'..'d')."""
    if panel not in PANELS:
        raise KeyError(f"panel must be one of {sorted(PANELS)}, got {panel!r}")
    batch, image = PANELS[panel]
    rhos = rhos or default_rhos()
    out = []
    for depth in depths:
        fixed, act = _coefficients(depth, image, source)
        l = depth  # LinearResNet_x depth == nominal layer count
        slot_bytes = batch * act / l
        # One batched inversion answers the whole ρ grid for this depth
        # (a single sorted search over the extra-forwards table instead
        # of one binary search per ρ probe).
        slots = slots_for_rhos(l, tuple(rhos))
        out.append(
            Figure1Series(
                depth=depth,
                batch_size=batch,
                image_size=image,
                source=source,
                points=tuple(
                    (rho, memory_for_slots(c, fixed, slot_bytes))
                    for rho, c in zip(rhos, slots)
                ),
            )
        )
    return out


def _ascii_from_points(
    panel: str, source: str, named_points: list[tuple[str, list[tuple[float, float]]]]
) -> str:
    """Shared plot rendering for live series and cached payloads."""
    batch, image = PANELS[panel]
    data = {name: [(r, b / MB) for r, b in pts] for name, pts in named_points}
    return ascii_plot(
        data,
        title=(
            f"Figure 1{panel}: peak memory vs recompute factor "
            f"(batch {batch}, image {image}, {source} coefficients)"
        ),
        x_label="recompute factor rho",
        y_label="peak memory (MB)",
        hline=2 * GB / MB,
        hline_label="2GB budget",
    )


def figure1_ascii(panel: str, source: str = "paper", log_mb: bool = False) -> str:
    """Render one panel as an ASCII plot with the 2 GB budget line."""
    series = figure1_panel(panel, source)
    return _ascii_from_points(panel, source, [(s.name, list(s.points)) for s in series])


# -- repro.lab registration ------------------------------------------------


def _figure1_ascii_renderer(doc: dict) -> str:
    return _ascii_from_points(
        doc["panel"],
        doc["source"],
        [(s["name"], [tuple(p) for p in s["points"]]) for s in doc["series"]],
    )


def _figure1_csv_renderer(doc: dict) -> str:
    lines = ["model,rho,memory_mb"]
    for s in doc["series"]:
        for rho, b in s["points"]:
            lines.append(f"{s['name']},{rho:.4f},{b / MB:.2f}")
    return "\n".join(lines) + "\n"


@experiment(
    "figure1",
    "Figure 1 memory-vs-rho curves",
    params=(
        Param("panel", str, default="b", choices=tuple(sorted(PANELS))),
        Param("source", str, default="paper", choices=("ours", "paper")),
    ),
    renderers={
        "ascii": _figure1_ascii_renderer,
        "csv": _figure1_csv_renderer,
        "json": render_json,
    },
    default_units=tuple(
        UnitDef(
            {"panel": p, "source": "paper"},
            ((f"figure1_{p}.txt", "ascii"), (f"figure1_{p}.csv", "csv")),
        )
        for p in sorted(PANELS)
    ),
)
def _figure1_spec(params, inputs):
    series = figure1_panel(params["panel"], params["source"])
    return {
        "panel": params["panel"],
        "source": params["source"],
        "series": [
            {
                "name": s.name,
                "depth": s.depth,
                "batch_size": s.batch_size,
                "image_size": s.image_size,
                "points": [[r, b] for r, b in s.points],
            }
            for s in series
        ],
        "records": [
            {"model": s.name, "rho": r, "memory_mb": b / MB}
            for s in series
            for r, b in s.points
        ],
    }
