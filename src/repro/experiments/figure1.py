"""Figure 1 reproduction: peak memory vs recompute factor ρ.

For each ``LinearResNet_x`` (the homogenized chain of depth x with the
same weight and total-activation memory as ResNet_x) and each panel
(batch, image) ∈ {(1,224), (8,224), (1,500), (8,500)}, we sweep ρ and at
each ρ binary-search the minimal Revolve slot count whose recompute
overhead fits the ``2ρl`` budget, then convert slots to bytes:
``M(ρ) = M_fixed + (c+1)·k·M_act(img)/l``.

Two coefficient sources, as for the tables: ``"ours"`` (first-principles
graphs, homogenized) and ``"paper"`` (Table-I-fitted coefficients — at
ρ = 1 these reproduce the published store-all footprints exactly).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..checkpointing import (
    ChainSpec,
    compressed_frontier,
    joint_frontier,
    memory_for_slots,
    slots_for_rhos,
)
from ..edge.device import ODROID_XU4
from ..edge.storage import EMMC, SD_CARD, compression_models
from ..graph import homogenize
from ..lab import Param, UnitDef, experiment
from ..memory import calibrated_models
from ..units import GB, MB
from ..zoo import RESNET_DEPTHS, build_resnet
from .report import ascii_plot, render_json
from .tables import memory_models

__all__ = [
    "PANELS",
    "Figure1Series",
    "figure1_panel",
    "figure1_ascii",
    "default_rhos",
    "JOINT_STORAGE",
    "figure1_joint_panel",
    "figure1_compressed_panel",
]

#: The paper's four panels: (label, batch size, image size).
PANELS: dict[str, tuple[int, int]] = {
    "a": (1, 224),
    "b": (8, 224),
    "c": (1, 500),
    "d": (8, 500),
}


def default_rhos(n: int = 41, lo: float = 1.0, hi: float = 3.0) -> tuple[float, ...]:
    """The ρ grid used for the curves (paper plots roughly ρ ∈ [1, 3])."""
    if n < 2:
        raise ValueError("need at least 2 grid points")
    step = (hi - lo) / (n - 1)
    return tuple(lo + i * step for i in range(n))


@dataclass(frozen=True)
class Figure1Series:
    """One model's memory-vs-ρ curve in one panel."""

    depth: int
    batch_size: int
    image_size: int
    source: str
    points: tuple[tuple[float, float], ...]  # (rho, bytes)

    @property
    def name(self) -> str:
        return f"LinearResNet{self.depth}"

    def memory_at(self, rho: float) -> float:
        """Bytes at the grid point closest to ``rho``."""
        return min(self.points, key=lambda p: abs(p[0] - rho))[1]

    def min_rho_under(self, budget_bytes: float) -> float | None:
        """Smallest swept ρ whose footprint fits ``budget_bytes``."""
        fitting = [r for r, b in self.points if b <= budget_bytes]
        return min(fitting) if fitting else None


def _coefficients(depth: int, image: int, source: str) -> tuple[float, float]:
    """(fixed_bytes, per-sample activation bytes at ``image``)."""
    if source == "paper":
        cal = calibrated_models()[depth]
        return cal.fixed_bytes, cal.act_bytes(image)
    model = memory_models()[depth]
    return float(model.fixed_bytes), float(model.act_bytes(image))


def figure1_panel(
    panel: str,
    source: str = "paper",
    rhos: tuple[float, ...] | None = None,
    depths: tuple[int, ...] = RESNET_DEPTHS,
) -> list[Figure1Series]:
    """All model curves for one panel ('a'..'d')."""
    if panel not in PANELS:
        raise KeyError(f"panel must be one of {sorted(PANELS)}, got {panel!r}")
    batch, image = PANELS[panel]
    rhos = rhos or default_rhos()
    out = []
    for depth in depths:
        fixed, act = _coefficients(depth, image, source)
        l = depth  # LinearResNet_x depth == nominal layer count
        slot_bytes = batch * act / l
        # One batched inversion answers the whole ρ grid for this depth
        # (a single sorted search over the extra-forwards table instead
        # of one binary search per ρ probe).
        slots = slots_for_rhos(l, tuple(rhos))
        out.append(
            Figure1Series(
                depth=depth,
                batch_size=batch,
                image_size=image,
                source=source,
                points=tuple(
                    (rho, memory_for_slots(c, fixed, slot_bytes))
                    for rho, c in zip(rhos, slots)
                ),
            )
        )
    return out


def _ascii_from_points(
    panel: str, source: str, named_points: list[tuple[str, list[tuple[float, float]]]]
) -> str:
    """Shared plot rendering for live series and cached payloads."""
    batch, image = PANELS[panel]
    data = {name: [(r, b / MB) for r, b in pts] for name, pts in named_points}
    return ascii_plot(
        data,
        title=(
            f"Figure 1{panel}: peak memory vs recompute factor "
            f"(batch {batch}, image {image}, {source} coefficients)"
        ),
        x_label="recompute factor rho",
        y_label="peak memory (MB)",
        hline=2 * GB / MB,
        hline_label="2GB budget",
    )


def figure1_ascii(panel: str, source: str = "paper", log_mb: bool = False) -> str:
    """Render one panel as an ASCII plot with the 2 GB budget line."""
    series = figure1_panel(panel, source)
    return _ascii_from_points(panel, source, [(s.name, list(s.points)) for s in series])


# -- repro.lab registration ------------------------------------------------


def _figure1_ascii_renderer(doc: dict) -> str:
    return _ascii_from_points(
        doc["panel"],
        doc["source"],
        [(s["name"], [tuple(p) for p in s["points"]]) for s in doc["series"]],
    )


def _figure1_csv_renderer(doc: dict) -> str:
    lines = ["model,rho,memory_mb"]
    for s in doc["series"]:
        for rho, b in s["points"]:
            lines.append(f"{s['name']},{rho:.4f},{b / MB:.2f}")
    return "\n".join(lines) + "\n"


@experiment(
    "figure1",
    "Figure 1 memory-vs-rho curves",
    params=(
        Param("panel", str, default="b", choices=tuple(sorted(PANELS))),
        Param("source", str, default="paper", choices=("ours", "paper")),
    ),
    renderers={
        "ascii": _figure1_ascii_renderer,
        "csv": _figure1_csv_renderer,
        "json": render_json,
    },
    default_units=tuple(
        UnitDef(
            {"panel": p, "source": "paper"},
            ((f"figure1_{p}.txt", "ascii"), (f"figure1_{p}.csv", "csv")),
        )
        for p in sorted(PANELS)
    ),
)
def _figure1_spec(params, inputs):
    series = figure1_panel(params["panel"], params["source"])
    return {
        "panel": params["panel"],
        "source": params["source"],
        "series": [
            {
                "name": s.name,
                "depth": s.depth,
                "batch_size": s.batch_size,
                "image_size": s.image_size,
                "points": [[r, b] for r, b in s.points],
            }
            for s in series
        ],
        "records": [
            {"model": s.name, "rho": r, "memory_mb": b / MB}
            for s in series
            for r, b in s.points
        ],
    }


# -- joint rematerialization+paging frontier -------------------------------

#: Storage profiles the joint frontier is measured against, by CLI name.
JOINT_STORAGE = {"sd-card": SD_CARD, "emmc": EMMC}


def _joint_spec(depth: int, batch: int, image: int) -> ChainSpec:
    """Homogenized ResNet chain with batch-scaled sizes and real flops."""
    base = ChainSpec.from_linear_chain(homogenize(build_resnet(depth, image_size=image), depth))
    return ChainSpec(
        name=f"{base.name}xb{batch}",
        act_bytes=tuple(b * batch for b in base.act_bytes),
        fwd_cost=tuple(f * batch for f in base.fwd_cost),
        bwd_cost=tuple(f * batch for f in base.bwd_cost),
    )


def figure1_joint_panel(
    panel: str,
    storage: str = "sd-card",
    slots: int = 3,
    depths: tuple[int, ...] = RESNET_DEPTHS,
) -> list[dict]:
    """Measured joint frontier for one Figure-1 panel on one storage tier.

    For each LinearResNet depth the four strategies (pure revolve, pure
    disk-revolve, ``joint_time``, ``joint_energy``) are *executed* on a
    :class:`~repro.engine.tiered.TieredBackend` priced by the chosen
    storage profile, with compute timed at the ODROID-XU4 rate.  Each
    returned row carries the per-strategy measurements plus the joint
    planner's margins over the best pure family — the dominance numbers
    the paper-level claim rests on.
    """
    if panel not in PANELS:
        raise KeyError(f"panel must be one of {sorted(PANELS)}, got {panel!r}")
    if storage not in JOINT_STORAGE:
        raise KeyError(f"storage must be one of {sorted(JOINT_STORAGE)}, got {storage!r}")
    batch, image = PANELS[panel]
    profile = JOINT_STORAGE[storage]
    unit_seconds = 1.0 / ODROID_XU4.flops_per_s
    rows = []
    for depth in depths:
        spec = _joint_spec(depth, batch, image)
        points = {
            p.strategy: p
            for p in joint_frontier(spec, slots, profile, unit_seconds=unit_seconds)
        }
        pure_wall = min(points["revolve"].wall_seconds, points["disk_revolve"].wall_seconds)
        pure_energy = min(
            points["revolve"].energy_joules, points["disk_revolve"].energy_joules
        )
        rows.append(
            {
                "depth": depth,
                "batch_size": batch,
                "image_size": image,
                "storage": storage,
                "slots": slots,
                "strategies": {name: asdict(p) for name, p in points.items()},
                "wall_margin_s": pure_wall - points["joint_time"].wall_seconds,
                "energy_margin_j": pure_energy - points["joint_energy"].energy_joules,
            }
        )
    return rows


def _figure1_joint_ascii(doc: dict) -> str:
    head = (
        f"Figure 1{doc['panel']} joint frontier: batch {PANELS[doc['panel']][0]}, "
        f"image {PANELS[doc['panel']][1]}, {doc['storage']}, c={doc['slots']}"
    )
    lines = [head, "=" * len(head)]
    lines.append(
        f"{'model':>16} {'strategy':>13} {'extra':>6} {'disk W/R':>9} "
        f"{'xfer s':>8} {'wall s':>9} {'energy J':>9}"
    )
    for row in doc["rows"]:
        for name in ("revolve", "disk_revolve", "joint_time", "joint_energy"):
            p = row["strategies"][name]
            lines.append(
                f"{'LinearResNet' + str(row['depth']):>16} {name:>13} "
                f"{p['extra_forwards']:>6} {p['disk_writes']:>4}/{p['disk_reads']:<4} "
                f"{p['transfer_seconds']:>8.2f} {p['wall_seconds']:>9.2f} "
                f"{p['energy_joules']:>9.2f}"
            )
        lines.append(
            f"{'':>16} {'margin':>13} wall {row['wall_margin_s']:+.2f} s, "
            f"energy {row['energy_margin_j']:+.2f} J vs best pure family"
        )
    return "\n".join(lines) + "\n"


def _figure1_joint_csv(doc: dict) -> str:
    lines = [
        "depth,strategy,slots,extra_forwards,disk_writes,disk_reads,"
        "transfer_s,wall_s,energy_j"
    ]
    for row in doc["rows"]:
        for name, p in row["strategies"].items():
            lines.append(
                f"{row['depth']},{name},{p['slots']},{p['extra_forwards']},"
                f"{p['disk_writes']},{p['disk_reads']},{p['transfer_seconds']:.4f},"
                f"{p['wall_seconds']:.4f},{p['energy_joules']:.4f}"
            )
    return "\n".join(lines) + "\n"


@experiment(
    "figure1_joint",
    "Joint remat+paging frontier vs pure revolve / disk-revolve",
    params=(
        Param("panel", str, default="b", choices=tuple(sorted(PANELS))),
        Param("storage", str, default="sd-card", choices=tuple(sorted(JOINT_STORAGE))),
        Param("slots", int, default=3),
    ),
    renderers={
        "ascii": _figure1_joint_ascii,
        "csv": _figure1_joint_csv,
        "json": render_json,
    },
    default_units=tuple(
        UnitDef(
            {"panel": p, "storage": s, "slots": 3},
            (
                (f"figure1_joint_{p}_{s.replace('-', '')}.txt", "ascii"),
                (f"figure1_joint_{p}_{s.replace('-', '')}.csv", "csv"),
            ),
        )
        for p in sorted(PANELS)
        for s in ("sd-card", "emmc")
    ),
)
def _figure1_joint_spec(params, inputs):
    rows = figure1_joint_panel(params["panel"], params["storage"], params["slots"])
    return {
        "panel": params["panel"],
        "storage": params["storage"],
        "slots": params["slots"],
        "rows": rows,
        "records": [
            {
                "model": f"LinearResNet{row['depth']}",
                "strategy": name,
                "wall_s": p["wall_seconds"],
                "energy_j": p["energy_joules"],
                "extra_forwards": p["extra_forwards"],
            }
            for row in rows
            for name, p in row["strategies"].items()
        ],
    }


# -- compression-aware frontier ---------------------------------------------

#: The four strategies every compressed-frontier row carries, in order.
COMPRESSED_FAMILIES = ("revolve", "revolve_zip", "joint_time", "joint_zip")


def figure1_compressed_panel(
    panel: str,
    storage: str = "sd-card",
    codec: str = "bittrain",
    slots: int = 3,
    depths: tuple[int, ...] = RESNET_DEPTHS,
) -> list[dict]:
    """Measured compression-aware frontier for one Figure-1 panel.

    For each LinearResNet depth the four families (pure revolve, codec'd
    revolve, the paging DP, the full recompute-vs-page-vs-compress DP)
    are *executed* — compressed ones on a
    :class:`~repro.engine.compressed.CompressedBackend` — and placed on
    a common (peak bytes, wall seconds, gradient fidelity) scale.  Each
    row also names which compressed families Pareto-dominate pure
    revolve (strictly fewer peak bytes at equal-or-better wall time),
    the claim :mod:`benchmarks.bench_compression` gates on.
    """
    if panel not in PANELS:
        raise KeyError(f"panel must be one of {sorted(PANELS)}, got {panel!r}")
    if storage not in JOINT_STORAGE:
        raise KeyError(f"storage must be one of {sorted(JOINT_STORAGE)}, got {storage!r}")
    models = compression_models()
    if codec not in models:
        raise KeyError(f"codec must be one of {sorted(models)}, got {codec!r}")
    batch, image = PANELS[panel]
    profile = JOINT_STORAGE[storage]
    model = models[codec]
    unit_seconds = 1.0 / ODROID_XU4.flops_per_s
    rows = []
    for depth in depths:
        spec = _joint_spec(depth, batch, image)
        points = {
            p.strategy: p
            for p in compressed_frontier(
                spec, slots, profile, codec=model, unit_seconds=unit_seconds
            )
        }
        base = points["revolve"]
        dominating = [
            name
            for name in ("revolve_zip", "joint_zip")
            if points[name].peak_bytes < base.peak_bytes
            and points[name].wall_seconds <= base.wall_seconds
        ]
        best = min(
            (points[n] for n in ("revolve_zip", "joint_zip")),
            key=lambda p: (p.peak_bytes, p.wall_seconds),
        )
        rows.append(
            {
                "depth": depth,
                "batch_size": batch,
                "image_size": image,
                "storage": storage,
                "codec": codec,
                "slots": slots,
                "strategies": {name: asdict(p) for name, p in points.items()},
                "dominating": dominating,
                "peak_margin_bytes": base.peak_bytes - best.peak_bytes,
                "wall_margin_s": base.wall_seconds - best.wall_seconds,
            }
        )
    return rows


def _figure1_compressed_ascii(doc: dict) -> str:
    head = (
        f"Figure 1{doc['panel']} compressed frontier: batch {PANELS[doc['panel']][0]}, "
        f"image {PANELS[doc['panel']][1]}, {doc['storage']}, codec {doc['codec']}, "
        f"c={doc['slots']}"
    )
    lines = [head, "=" * len(head)]
    lines.append(
        f"{'model':>16} {'strategy':>12} {'slots':>5} {'extra':>6} "
        f"{'peak MB':>8} {'wall s':>9} {'fidelity':>9} {'saved MB':>9}"
    )
    for row in doc["rows"]:
        for name in COMPRESSED_FAMILIES:
            p = row["strategies"][name]
            mark = " *" if name in row["dominating"] else ""
            lines.append(
                f"{'LinearResNet' + str(row['depth']):>16} {name:>12} "
                f"{p['slots']:>5} {p['extra_forwards']:>6} "
                f"{p['peak_bytes'] / MB:>8.1f} {p['wall_seconds']:>9.2f} "
                f"{p['fidelity_loss']:>9.4g} {p['bytes_saved'] / MB:>9.1f}{mark}"
            )
        lines.append(
            f"{'':>16} {'margin':>12} peak {row['peak_margin_bytes'] / MB:+.1f} MB, "
            f"wall {row['wall_margin_s']:+.2f} s vs pure revolve"
        )
    lines.append("* dominates revolve: fewer peak bytes at equal-or-better wall time")
    return "\n".join(lines) + "\n"


def _figure1_compressed_csv(doc: dict) -> str:
    lines = [
        "depth,strategy,codec,slots,extra_forwards,peak_bytes,peak_memory_bytes,"
        "peak_disk_bytes,bytes_saved,fidelity_loss,transfer_s,wall_s,energy_j,dominates"
    ]
    for row in doc["rows"]:
        for name in COMPRESSED_FAMILIES:
            p = row["strategies"][name]
            lines.append(
                f"{row['depth']},{name},{p['codec']},{p['slots']},"
                f"{p['extra_forwards']},{p['peak_bytes']},{p['peak_memory_bytes']},"
                f"{p['peak_disk_bytes']},{p['bytes_saved']},{p['fidelity_loss']},"
                f"{p['transfer_seconds']:.4f},{p['wall_seconds']:.4f},"
                f"{p['energy_joules']:.4f},{int(name in row['dominating'])}"
            )
    return "\n".join(lines) + "\n"


@experiment(
    "figure1_compressed",
    "Compression-aware frontier: peak bytes x wall time x gradient fidelity",
    params=(
        Param("panel", str, default="b", choices=tuple(sorted(PANELS))),
        Param("storage", str, default="sd-card", choices=tuple(sorted(JOINT_STORAGE))),
        Param("codec", str, default="bittrain", choices=("bittrain", "fp16", "lossless")),
        Param("slots", int, default=3),
    ),
    renderers={
        "ascii": _figure1_compressed_ascii,
        "csv": _figure1_compressed_csv,
        "json": render_json,
    },
    default_units=(
        UnitDef(
            {"panel": "b", "storage": "sd-card", "codec": "bittrain", "slots": 3},
            (
                ("figure1_compressed_b.txt", "ascii"),
                ("figure1_compressed_b.csv", "csv"),
            ),
        ),
        # The low-precision ablation: same panel, lossy fp16 casting.
        UnitDef(
            {"panel": "b", "storage": "sd-card", "codec": "fp16", "slots": 3},
            (
                ("figure1_compressed_b_fp16.txt", "ascii"),
                ("figure1_compressed_b_fp16.csv", "csv"),
            ),
        ),
    ),
)
def _figure1_compressed_spec(params, inputs):
    rows = figure1_compressed_panel(
        params["panel"], params["storage"], params["codec"], params["slots"]
    )
    return {
        "panel": params["panel"],
        "storage": params["storage"],
        "codec": params["codec"],
        "slots": params["slots"],
        "rows": rows,
        "records": [
            {
                "model": f"LinearResNet{row['depth']}",
                "strategy": name,
                "peak_bytes": p["peak_bytes"],
                "wall_s": p["wall_seconds"],
                "fidelity_loss": p["fidelity_loss"],
                "dominates": name in row["dominating"],
            }
            for row in rows
            for name, p in row["strategies"].items()
        ],
    }
