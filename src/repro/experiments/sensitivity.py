"""Sensitivity of the Figure 1 reproduction to modelling conventions.

The paper's Figure 1 leaves two conventions unstated: the
backward/forward cost ratio inside the ρ budget, and how checkpoint
slots map to bytes (whether the in-flight activation is charged).  The
reproduction uses bwd_ratio = 1 and ``(c + 1)`` slots; this module sweeps
both and reports how the headline quantity — the smallest ρ at which a
model fits 2 GB — moves.  This is how EXPERIMENTS.md bounds the Figure 1d
delta (our 2.0 vs the paper's stated 1.6 for ResNet-152).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..checkpointing import min_slots_for_extra
from ..lab import Param, UnitDef, experiment
from ..memory import calibrated_models
from ..units import GB
from .report import Table, render_json, table_from_payload, table_to_payload

__all__ = ["SensitivityPoint", "fit_rho", "sensitivity_sweep", "sensitivity_table"]


@dataclass(frozen=True)
class SensitivityPoint:
    """Fitting ρ for one (model, convention) combination."""

    depth: int
    bwd_ratio: float
    inflight_slots: int  # 0 or 1 extra slot charged beyond the snapshots
    fit_rho: float | None


def fit_rho(
    depth: int,
    batch: int,
    image: int,
    budget_bytes: float,
    bwd_ratio: float = 1.0,
    inflight_slots: int = 1,
    rho_grid: tuple[float, ...] | None = None,
) -> float | None:
    """Smallest grid ρ at which the model fits, under given conventions."""
    cal = calibrated_models()[depth]
    l = depth
    slot_bytes = batch * cal.act_bytes(image) / l
    grid = rho_grid or tuple(1.0 + 0.05 * i for i in range(41))
    for rho in grid:
        budget_extra = (rho - 1.0) * l * (1.0 + bwd_ratio)
        c = min_slots_for_extra(l, budget_extra)
        mem = cal.fixed_bytes + (c + inflight_slots) * slot_bytes
        if mem <= budget_bytes:
            return rho
    return None


def sensitivity_sweep(
    batch: int = 8,
    image: int = 500,
    budget_bytes: float = 2 * GB,
    depths: tuple[int, ...] = (18, 34, 50, 101, 152),
    bwd_ratios: tuple[float, ...] = (0.5, 1.0, 2.0),
    inflight: tuple[int, ...] = (0, 1),
) -> list[SensitivityPoint]:
    """Fitting ρ across all convention combinations (default: panel d)."""
    out = []
    for depth in depths:
        for r in bwd_ratios:
            for w in inflight:
                out.append(
                    SensitivityPoint(
                        depth=depth,
                        bwd_ratio=r,
                        inflight_slots=w,
                        fit_rho=fit_rho(
                            depth, batch, image, budget_bytes, bwd_ratio=r, inflight_slots=w
                        ),
                    )
                )
    return out


def sensitivity_table(
    batch: int = 8, image: int = 500, points: list[SensitivityPoint] | None = None
) -> Table:
    """Render the sweep as rows = model, cols = convention."""
    if points is None:
        points = sensitivity_sweep(batch=batch, image=image)
    combos = sorted({(p.bwd_ratio, p.inflight_slots) for p in points})
    depths = sorted({p.depth for p in points})
    lookup = {(p.depth, p.bwd_ratio, p.inflight_slots): p.fit_rho for p in points}
    cells = []
    for d in depths:
        row = []
        for r, w in combos:
            v = lookup[(d, r, w)]
            row.append(f"{v:.2f}" if v is not None else ">3")
        cells.append(row)
    return Table(
        title=f"Fitting rho sensitivity (batch {batch}, image {image}, 2 GB)",
        col_labels=[f"r={r},w={w}" for r, w in combos],
        row_labels=[f"ResNet{d}" for d in depths],
        cells=cells,
        row_header="model",
    )


# -- repro.lab registration ------------------------------------------------


@experiment(
    "sensitivity",
    "Figure 1 convention-sensitivity sweep",
    params=(
        Param("batch", int, default=8),
        Param("image", int, default=500),
    ),
    renderers={
        "ascii": lambda doc: table_from_payload(doc["table"]).render(),
        "csv": lambda doc: table_from_payload(doc["table"]).to_csv(),
        "json": render_json,
    },
    default_units=(UnitDef({}, (("sensitivity.txt", "ascii"),)),),
)
def _sensitivity_spec(params, inputs):
    batch, image = params["batch"], params["image"]
    points = sensitivity_sweep(batch=batch, image=image)
    return {
        "batch": batch,
        "image": image,
        "table": table_to_payload(
            sensitivity_table(batch=batch, image=image, points=points)
        ),
        "records": [
            {
                "depth": p.depth,
                "bwd_ratio": p.bwd_ratio,
                "inflight_slots": p.inflight_slots,
                "fit_rho": p.fit_rho,
            }
            for p in points
        ],
    }
