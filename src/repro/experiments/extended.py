"""Beyond the paper's zoo: MobileNetV2 and VGG through the same pipeline.

The paper tabulates only ResNets.  Running the identical accounting and
planning machinery over an edge-native model (MobileNetV2) and a
weight-heavy classic (VGG-16) checks that the framework's conclusions
are architecture-generic — and surfaces the non-obvious one: parameter
efficiency does not imply activation efficiency, so MobileNetV2 *also*
needs checkpointing at moderate batch sizes on a 2 GB node.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..checkpointing import plan_training
from ..errors import MemoryBudgetError
from ..graph import Graph, homogenize
from ..lab import Param, UnitDef, experiment
from ..memory import account
from ..units import GB, MB
from ..zoo import build_resnet, mobilenet_v2, vgg16
from .report import Table, render_json, table_from_payload, table_to_payload

__all__ = ["ExtendedRow", "extended_model_rows", "extended_model_table"]

#: nominal chain depths used for homogenization
_DEPTHS = {"ResNet18": 18, "MobileNetV2": 53, "VGG16": 16}


def _models() -> dict[str, Graph]:
    return {
        "ResNet18": build_resnet(18),
        "MobileNetV2": mobilenet_v2(),
        "VGG16": vgg16(),
    }


@dataclass(frozen=True)
class ExtendedRow:
    """One (model, batch) evaluation against the 2 GB node."""

    model: str
    batch_size: int
    weight_mb: float
    fixed_mb: float
    act_mb_per_sample: float
    store_all_mb: float
    strategy: str
    rho: float
    planned_mb: float


def extended_model_rows(batch_sizes: tuple[int, ...] = (1, 8, 32, 64)) -> list[ExtendedRow]:
    """Account + plan every model at every batch size on a 2 GB budget."""
    rows = []
    for name, graph in _models().items():
        acct = account(graph)
        chain = homogenize(graph, depth=_DEPTHS[name])
        for k in batch_sizes:
            store_all = acct.total_bytes(k)
            try:
                plan = plan_training(
                    l=chain.length,
                    fixed_bytes=acct.fixed_bytes,
                    slot_bytes=k * chain.act_bytes,
                    budget_bytes=2 * GB,
                    model=name,
                )
                strategy, rho, planned = plan.strategy, plan.rho, plan.memory_bytes
            except MemoryBudgetError:
                strategy, rho, planned = "impossible", float("inf"), float("nan")
            rows.append(
                ExtendedRow(
                    model=name,
                    batch_size=k,
                    weight_mb=acct.weight_bytes / MB,
                    fixed_mb=acct.fixed_bytes / MB,
                    act_mb_per_sample=acct.act_bytes_per_sample / MB,
                    store_all_mb=store_all / MB,
                    strategy=strategy,
                    rho=rho,
                    planned_mb=planned / MB,
                )
            )
    return rows


def extended_model_table(
    batch_sizes: tuple[int, ...] = (1, 8, 32, 64),
    rows: list[ExtendedRow] | None = None,
) -> Table:
    if rows is None:
        rows = extended_model_rows(batch_sizes)
    cells = []
    labels = []
    for r in rows:
        labels.append(f"{r.model}@{r.batch_size}")
        cells.append(
            [
                f"{r.weight_mb:.0f}",
                f"{r.act_mb_per_sample:.0f}",
                f"{r.store_all_mb:.0f}",
                r.strategy,
                f"{r.rho:.3f}" if r.rho != float("inf") else "-",
                f"{r.planned_mb:.0f}" if r.planned_mb == r.planned_mb else "-",
            ]
        )
    return Table(
        title="Extended zoo on a 2 GB node (MB; plan = minimal-rho fit)",
        col_labels=["weights", "act/sample", "store-all", "strategy", "rho", "planned"],
        row_labels=labels,
        cells=cells,
        row_header="model@batch",
    )


# -- repro.lab registration ------------------------------------------------


@experiment(
    "extended",
    "MobileNetV2/VGG16 through the paper's pipeline",
    params=(
        Param("batch_sizes", int, default=(1, 8, 32, 64), repeated=True, cli="batch-size"),
    ),
    renderers={
        "ascii": lambda doc: table_from_payload(doc["table"]).render(),
        "csv": lambda doc: table_from_payload(doc["table"]).to_csv(),
        "json": render_json,
    },
    default_units=(UnitDef({}, (("extended_models.txt", "ascii"),)),),
)
def _extended_spec(params, inputs):
    batch_sizes = tuple(params["batch_sizes"])
    rows = extended_model_rows(batch_sizes)
    return {
        "batch_sizes": list(batch_sizes),
        "table": table_to_payload(extended_model_table(batch_sizes, rows=rows)),
        "records": [
            {
                "model": r.model,
                "batch_size": r.batch_size,
                "weight_mb": r.weight_mb,
                "fixed_mb": r.fixed_mb,
                "act_mb_per_sample": r.act_mb_per_sample,
                "store_all_mb": r.store_all_mb,
                "strategy": r.strategy,
                "rho": None if r.rho == float("inf") else r.rho,
                # planned_mb is NaN exactly when the plan is infeasible
                "planned_mb": None if r.planned_mb != r.planned_mb else r.planned_mb,
            }
            for r in rows
        ],
    }
