"""Rendering utilities: ASCII tables, CSV export, ASCII line plots.

All experiment generators produce plain data structures; this module turns
them into the artifacts a terminal user or a CI log can read.  No plotting
dependency is required (the environment is offline).
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "Table",
    "ascii_plot",
    "table_to_payload",
    "table_from_payload",
    "render_json",
]


@dataclass
class Table:
    """A titled grid of cells with optional per-cell shading marks."""

    title: str
    col_labels: list[str]
    row_labels: list[str]
    cells: list[list[str]]
    row_header: str = ""

    def __post_init__(self) -> None:
        if len(self.cells) != len(self.row_labels):
            raise ValueError("cells rows must match row_labels")
        for row in self.cells:
            if len(row) != len(self.col_labels):
                raise ValueError("cells cols must match col_labels")

    def render(self) -> str:
        """Fixed-width ASCII rendering."""
        widths = [max(len(self.row_header), *(len(r) for r in self.row_labels))]
        for j, label in enumerate(self.col_labels):
            w = max(len(label), *(len(row[j]) for row in self.cells)) if self.cells else len(label)
            widths.append(w)
        out = io.StringIO()
        out.write(self.title + "\n")
        header = [self.row_header.rjust(widths[0])] + [
            lbl.rjust(widths[j + 1]) for j, lbl in enumerate(self.col_labels)
        ]
        line = "  ".join(header)
        out.write(line + "\n")
        out.write("-" * len(line) + "\n")
        for rlabel, row in zip(self.row_labels, self.cells):
            parts = [rlabel.rjust(widths[0])] + [
                cell.rjust(widths[j + 1]) for j, cell in enumerate(row)
            ]
            out.write("  ".join(parts) + "\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Comma-separated export (header row + data rows)."""
        out = io.StringIO()
        out.write(",".join([self.row_header] + self.col_labels) + "\n")
        for rlabel, row in zip(self.row_labels, self.cells):
            out.write(",".join([rlabel] + row) + "\n")
        return out.getvalue()


def table_to_payload(table: Table) -> dict:
    """Plain-data form of a rendered table (for repro.lab payloads)."""
    return {
        "title": table.title,
        "col_labels": list(table.col_labels),
        "row_labels": list(table.row_labels),
        "cells": [list(row) for row in table.cells],
        "row_header": table.row_header,
    }


def table_from_payload(doc: dict) -> Table:
    """Rebuild a :class:`Table` from its payload form."""
    return Table(
        title=doc["title"],
        col_labels=list(doc["col_labels"]),
        row_labels=list(doc["row_labels"]),
        cells=[list(row) for row in doc["cells"]],
        row_header=doc["row_header"],
    )


def render_json(payload: dict) -> str:
    """Canonical JSON rendering shared by every registered spec."""
    return json.dumps(payload, indent=1, sort_keys=True, allow_nan=False) + "\n"


def ascii_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    hline: float | None = None,
    hline_label: str = "",
) -> str:
    """Plot named (x, y) series on a character grid.

    Each series gets a distinct marker; an optional horizontal reference
    line (e.g. the 2 GB device budget) is drawn with ``=``.
    """
    pts = [(x, y) for s in series.values() for x, y in s]
    if not pts:
        return f"{title}\n(no data)\n"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    if hline is not None:
        ys.append(hline)
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, max(0, round((x - x_min) / (x_max - x_min) * (width - 1))))

    def to_row(y: float) -> int:
        return min(height - 1, max(0, round((y_max - y) / (y_max - y_min) * (height - 1))))

    if hline is not None:
        r = to_row(hline)
        for c in range(width):
            grid[r][c] = "="

    markers = "ox+*#@%&"
    legend = []
    for i, (name, data) in enumerate(series.items()):
        mark = markers[i % len(markers)]
        legend.append(f"{mark}={name}")
        for x, y in data:
            grid[to_row(y)][to_col(x)] = mark

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write(
        f"{y_label}: {y_min:.3g} .. {y_max:.3g}"
        + (f"   ({hline_label}: '=' at {hline:.3g})" if hline is not None else "")
        + "\n"
    )
    for row in grid:
        out.write("|" + "".join(row) + "\n")
    out.write("+" + "-" * width + "\n")
    out.write(f" {x_label}: {x_min:.3g} .. {x_max:.3g}\n")
    out.write(" " + "  ".join(legend) + "\n")
    return out.getvalue()
