"""Paper-artifact generators: Tables I-III, Section V, Figure 1, ablations."""

from .report import Table, ascii_plot
from .tables import (
    TableResult,
    compare_to_paper,
    memory_models,
    table1,
    table2,
    table3,
)
from .section5 import Section5Row, section5_sweep, section5_table
from .figure1 import (
    PANELS,
    Figure1Series,
    default_rhos,
    figure1_ascii,
    figure1_panel,
)
from .extended import ExtendedRow, extended_model_rows, extended_model_table
from .sensitivity import (
    SensitivityPoint,
    fit_rho,
    sensitivity_sweep,
    sensitivity_table,
)
from .ablation import (
    BatchPoint,
    HarvestPoint,
    batch_tradeoff,
    batch_tradeoff_table,
    harvest_ablation,
    strategy_ablation,
    strategy_ablation_table,
)

__all__ = [
    "Table",
    "ascii_plot",
    "TableResult",
    "table1",
    "table2",
    "table3",
    "compare_to_paper",
    "memory_models",
    "Section5Row",
    "section5_sweep",
    "section5_table",
    "PANELS",
    "Figure1Series",
    "default_rhos",
    "figure1_panel",
    "figure1_ascii",
    "strategy_ablation",
    "strategy_ablation_table",
    "BatchPoint",
    "batch_tradeoff",
    "batch_tradeoff_table",
    "HarvestPoint",
    "harvest_ablation",
    "SensitivityPoint",
    "fit_rho",
    "sensitivity_sweep",
    "sensitivity_table",
    "ExtendedRow",
    "extended_model_rows",
    "extended_model_table",
]
