"""Paper-artifact generators: Tables I-III, Section V, Figure 1, ablations.

Importing this package registers every artifact family with
:mod:`repro.lab` (import order below fixes the registration order,
which is the order ``repro-edge list`` and ``all`` use).
"""

from .report import Table, ascii_plot, render_json, table_from_payload, table_to_payload
from .tables import (
    TableResult,
    compare_to_paper,
    memory_models,
    table1,
    table2,
    table3,
    table_result_from_payload,
)
from .section5 import Section5Row, section5_sweep, section5_table
from .figure1 import (
    JOINT_STORAGE,
    PANELS,
    Figure1Series,
    default_rhos,
    figure1_ascii,
    figure1_joint_panel,
    figure1_panel,
)
from .ablation import (
    BatchPoint,
    HarvestPoint,
    batch_tradeoff,
    batch_tradeoff_table,
    harvest_ablation,
    strategy_ablation,
    strategy_ablation_table,
)
from .sensitivity import (
    SensitivityPoint,
    fit_rho,
    sensitivity_sweep,
    sensitivity_table,
)
from .extended import ExtendedRow, extended_model_rows, extended_model_table
from .megafleet import megafleet_ascii, megafleet_csv, run_megafleet_payload
from .summary import SUMMARY_DEPS

__all__ = [
    "Table",
    "ascii_plot",
    "render_json",
    "table_to_payload",
    "table_from_payload",
    "TableResult",
    "table1",
    "table2",
    "table3",
    "compare_to_paper",
    "table_result_from_payload",
    "memory_models",
    "Section5Row",
    "section5_sweep",
    "section5_table",
    "PANELS",
    "Figure1Series",
    "default_rhos",
    "figure1_panel",
    "figure1_ascii",
    "figure1_joint_panel",
    "JOINT_STORAGE",
    "strategy_ablation",
    "strategy_ablation_table",
    "BatchPoint",
    "batch_tradeoff",
    "batch_tradeoff_table",
    "HarvestPoint",
    "harvest_ablation",
    "SensitivityPoint",
    "fit_rho",
    "sensitivity_sweep",
    "sensitivity_table",
    "ExtendedRow",
    "extended_model_rows",
    "extended_model_table",
    "megafleet_ascii",
    "megafleet_csv",
    "run_megafleet_payload",
    "SUMMARY_DEPS",
]
