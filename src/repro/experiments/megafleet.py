"""The megafleet sweep as a registered, content-addressed experiment.

Registers the ``megafleet`` spec: a heterogeneous-fleet campaign whose
payload is the engine's execution-independent aggregate report
(:meth:`~repro.megafleet.engine.MegaFleetResult.to_payload`).  Because
the engine is deterministic in the config alone — jobs and shard size
cannot change a byte — the payload is safely cacheable under the
lab's ``(spec, params, code)`` key; execution knobs deliberately do
not appear among the params.

The CLI's hand-written ``megafleet`` command (which adds ``--jobs`` /
``--shard-devices``) renders through this module's renderers, so the
one-off and the cached path produce identical text.
"""

from __future__ import annotations

from ..lab import Param, experiment
from ..megafleet import MegaFleetResult, preset_config, run_megafleet
from ..units import GB
from .report import render_json

__all__ = ["megafleet_ascii", "megafleet_csv", "run_megafleet_payload"]


def run_megafleet_payload(
    params: dict, *, jobs: int = 1, shard_devices: int | None = None
) -> dict:
    """Build the config from spec params, run, and return the payload."""
    cfg = preset_config(
        params["preset"],
        params["devices"],
        days=params["days"],
        federation_period=params["federation_period"],
        report_every=params["report_every"],
        seed=params["seed"],
    )
    kwargs: dict = {"jobs": jobs}
    if shard_devices is not None:
        kwargs["shard_devices"] = shard_devices
    result: MegaFleetResult = run_megafleet(cfg, **kwargs)
    return {"params": dict(params), **result.to_payload()}


def megafleet_ascii(doc: dict) -> str:
    """Cohort table + trajectory + damage totals, terminal-width."""
    p = doc["params"]
    lines = [
        f"Megafleet: {doc['n_devices']:,} devices over {doc['days']} days "
        f"(preset {p['preset']}, federation period {p['federation_period']}, "
        f"seed {p['seed']})",
        "",
        f"{'cohort':<14}{'devices':>9}{'model':>7}{'storage':>9}"
        f"{'crashes':>9}{'down d':>8}{'harvest':>10}{'final acc':>11}{'snap s':>8}",
    ]
    for c in doc["cohorts"]:
        lines.append(
            f"{c['name']:<14}{c['devices']:>9,}{'r' + str(c['model_depth']):>7}"
            f"{c['storage']:>9}{c['crashes']:>9,}{c['downtime_days']:>8,}"
            f"{c['mean_harvest']:>10.0f}{c['mean_final_accuracy']:>11.4f}"
            f"{c['snapshot_write_seconds']:>8.1f}"
        )
    lines += ["", f"{'day':>5}{'mean acc':>10}{'min acc':>9}{'up':>10}{'radio GB':>11}"]
    traj = doc["trajectory"]
    shown = traj if len(traj) <= 12 else traj[:6] + traj[-6:]
    for i, d in enumerate(shown):
        if len(traj) > 12 and i == 6:
            lines.append(f"{'...':>5} ({len(traj) - 12} samples elided)")
        lines.append(
            f"{d['day']:>5}{d['mean_accuracy']:>10.4f}{d['min_accuracy']:>9.4f}"
            f"{d['devices_up']:>10,}{d['radio_bytes_total'] / GB:>11.1f}"
        )
    t = doc["totals"]
    lines += [
        "",
        f"totals: {t['crashes']:,} crashes, {t['lost_samples']:,.0f} samples lost, "
        f"{t['downtime_days']:,} device-days down, "
        f"{t['radio_bytes'] / GB:,.1f} GB radio",
    ]
    return "\n".join(lines)


def megafleet_csv(doc: dict) -> str:
    """Trajectory as CSV (one row per report day)."""
    rows = ["day,mean_accuracy,min_accuracy,devices_up,radio_bytes_total"]
    for d in doc["trajectory"]:
        rows.append(
            f"{d['day']},{d['mean_accuracy']!r},{d['min_accuracy']!r},"
            f"{d['devices_up']},{d['radio_bytes_total']}"
        )
    return "\n".join(rows) + "\n"


@experiment(
    "megafleet",
    "Heterogeneous mega-fleet campaign (event-driven, sharded)",
    params=(
        Param("preset", str, default="mixed", choices=("mixed", "uniform"),
              help="fleet composition"),
        Param("devices", int, default=20_000, help="total device count"),
        Param("days", int, default=30, help="campaign horizon in days"),
        Param("federation_period", int, default=5,
              help="days between federation rounds (0 = isolated)"),
        Param("report_every", int, default=5,
              help="trajectory sampling stride (0 = final day only)"),
        Param("seed", int, default=0),
    ),
    renderers={
        "ascii": megafleet_ascii,
        "csv": megafleet_csv,
        "json": render_json,
    },
)
def _megafleet_spec(params, inputs):
    return run_megafleet_payload(params)
