"""Section V validation: the ``checkpoint_sequential`` memory formula.

The paper derives ``Mem(l, s) = s − 1 + (l − ⌊l/s⌋(s−1))`` activation
slots for PyTorch's uniform checkpointing and notes its ``2√l`` lower
bound.  We regenerate the formula sweep *and* verify every value by
actually executing the uniform schedule on the virtual machine — the
formula and the measured peak agree exactly (the executable schedule
stores x_0 instead of the never-materialized x_l, which cancels).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..checkpointing import (
    ChainSpec,
    simulate,
    uniform_extra_forwards_fused,
    uniform_lower_bound,
    uniform_memory_slots,
    uniform_schedule,
)
from ..lab import Param, UnitDef, experiment
from ..zoo import RESNET_DEPTHS
from .report import Table, render_json, table_from_payload, table_to_payload

__all__ = ["Section5Row", "section5_sweep", "section5_table"]


@dataclass(frozen=True)
class Section5Row:
    """One (l, s) evaluation of the Section V formula."""

    length: int
    segments: int
    formula_slots: int
    measured_slots: int
    extra_forwards: int

    @property
    def consistent(self) -> bool:
        return self.formula_slots == self.measured_slots


def section5_sweep(lengths: tuple[int, ...] = RESNET_DEPTHS, max_segments: int = 16) -> list[Section5Row]:
    """Formula vs executed peak for every (l, s) pair in the sweep."""
    rows = []
    for l in lengths:
        spec = ChainSpec.homogeneous(l)
        for s in range(1, min(l, max_segments) + 1):
            sch = uniform_schedule(l, s)
            stats = simulate(sch, spec)
            rows.append(
                Section5Row(
                    length=l,
                    segments=s,
                    formula_slots=uniform_memory_slots(l, s),
                    measured_slots=stats.peak_slots,
                    extra_forwards=uniform_extra_forwards_fused(l, s),
                )
            )
    return rows


def section5_table(lengths: tuple[int, ...] = RESNET_DEPTHS, max_segments: int = 12) -> Table:
    """Slots by (l, s) with the best-s and 2√l bound columns."""
    segs = list(range(1, max_segments + 1))
    cells = []
    for l in lengths:
        row = []
        for s in segs:
            row.append(str(uniform_memory_slots(l, s)) if s <= l else "-")
        best = min(uniform_memory_slots(l, s) for s in range(1, l + 1))
        row.append(str(best))
        row.append(f"{uniform_lower_bound(l):.1f}")
        cells.append(row)
    return Table(
        title="Section V: checkpoint_sequential activation slots Mem(l, s)",
        col_labels=[f"s={s}" for s in segs] + ["best", "2sqrt(l)"],
        row_labels=[str(l) for l in lengths],
        cells=cells,
        row_header="l",
    )


# -- repro.lab registration ------------------------------------------------


@experiment(
    "section5",
    "Section V checkpoint_sequential formula sweep",
    params=(
        Param("lengths", int, default=RESNET_DEPTHS, repeated=True, cli="length"),
        Param("max_segments", int, default=12),
    ),
    renderers={
        "ascii": lambda doc: table_from_payload(doc["table"]).render(),
        "csv": lambda doc: table_from_payload(doc["table"]).to_csv(),
        "json": render_json,
    },
    default_units=(UnitDef({}, (("section5.txt", "ascii"),)),),
)
def _section5_spec(params, inputs):
    lengths = tuple(params["lengths"])
    max_segments = params["max_segments"]
    rows = section5_sweep(lengths, max_segments=max_segments)
    return {
        "lengths": list(lengths),
        "max_segments": max_segments,
        "table": table_to_payload(section5_table(lengths, max_segments=max_segments)),
        "records": [
            {
                "length": r.length,
                "segments": r.segments,
                "formula_slots": r.formula_slots,
                "measured_slots": r.measured_slots,
                "extra_forwards": r.extra_forwards,
                "consistent": r.consistent,
            }
            for r in rows
        ],
    }
