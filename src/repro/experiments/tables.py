"""Generators for the paper's Tables I, II and III.

Each generator produces the grid from two sources:

* ``"ours"`` — first-principles accounting on our from-scratch ResNet
  graphs (exact conv arithmetic per image size, 4-copy weight fixed cost);
* ``"paper"`` — the coefficients fitted from the paper's own Table I
  (see :mod:`repro.memory.calibration`), which regenerate the published
  numbers to within rounding.

Cells that exceed the 2 GB device budget — the paper's shaded cells — are
marked with ``*``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory import (
    PAPER_BATCH_SIZES,
    PAPER_IMAGE_SIZES_T2,
    PAPER_IMAGE_SIZES_T3,
    PAPER_TABLE1_MB,
    PAPER_TABLE2_MB,
    PAPER_TABLE3_GB,
    CalibratedModel,
    MemoryModel,
    calibrated_models,
    memory_model_for,
)
from ..lab import ExperimentSpec, Param, UnitDef, register
from ..units import GB, MB
from ..zoo import RESNET_DEPTHS, build_resnet
from .report import Table, render_json

__all__ = [
    "TableResult",
    "memory_models",
    "table1",
    "table2",
    "table3",
    "compare_to_paper",
    "table_result_from_payload",
]

_BUDGET_BYTES = 2 * GB


@dataclass(frozen=True)
class TableResult:
    """A computed table: values in bytes keyed by (row_key, depth)."""

    name: str
    source: str
    row_name: str
    rows: tuple[int, ...]
    depths: tuple[int, ...]
    values_bytes: dict[tuple[int, int], float]
    unit: str  # "MB" | "GB"

    def value(self, row: int, depth: int) -> float:
        """Cell value in the table's unit."""
        b = self.values_bytes[(row, depth)]
        return b / (GB if self.unit == "GB" else MB)

    def exceeds_budget(self, row: int, depth: int) -> bool:
        """True for the paper's shaded cells (over 2 GB)."""
        return self.values_bytes[(row, depth)] > _BUDGET_BYTES

    def as_table(self) -> Table:
        cells = []
        for r in self.rows:
            row_cells = []
            for d in self.depths:
                mark = "*" if self.exceeds_budget(r, d) else " "
                row_cells.append(f"{self.value(r, d):.2f}{mark}")
            cells.append(row_cells)
        return Table(
            title=f"{self.name} [{self.source}] ({self.unit}; * = exceeds 2 GB)",
            col_labels=[f"ResNet{d}" for d in self.depths],
            row_labels=[str(r) for r in self.rows],
            cells=cells,
            row_header=self.row_name,
        )


_MODEL_CACHE: dict[int, MemoryModel] = {}


def memory_models() -> dict[int, MemoryModel]:
    """First-principles memory models for the five paper ResNets."""
    if not _MODEL_CACHE:
        for depth in RESNET_DEPTHS:
            _MODEL_CACHE[depth] = memory_model_for(
                lambda s, d=depth: build_resnet(d, image_size=s), ref_image=224
            )
    return _MODEL_CACHE


def _grid(
    source: str,
    rows: tuple[int, ...],
    row_kind: str,  # "batch" | "image"
    fixed_batch: int,
) -> dict[tuple[int, int], float]:
    values: dict[tuple[int, int], float] = {}
    ours = memory_models() if source == "ours" else None
    paper: dict[int, CalibratedModel] | None = calibrated_models() if source == "paper" else None
    for depth in RESNET_DEPTHS:
        for r in rows:
            batch = r if row_kind == "batch" else fixed_batch
            image = 224 if row_kind == "batch" else r
            if ours is not None:
                values[(r, depth)] = float(ours[depth].total_bytes(batch, image))
            else:
                assert paper is not None
                values[(r, depth)] = paper[depth].total_bytes(batch, image)
    return values


def table1(source: str = "ours") -> TableResult:
    """Table I: MB vs batch size at image 224."""
    rows = PAPER_BATCH_SIZES
    return TableResult(
        name="Table I: weights+activations memory, image 224",
        source=source,
        row_name="batch",
        rows=rows,
        depths=RESNET_DEPTHS,
        values_bytes=_grid(source, rows, "batch", fixed_batch=1),
        unit="MB",
    )


def table2(source: str = "ours") -> TableResult:
    """Table II: MB vs image size at batch 1."""
    rows = PAPER_IMAGE_SIZES_T2
    return TableResult(
        name="Table II: weights+activations memory, batch 1",
        source=source,
        row_name="image",
        rows=rows,
        depths=RESNET_DEPTHS,
        values_bytes=_grid(source, rows, "image", fixed_batch=1),
        unit="MB",
    )


def table3(source: str = "ours") -> TableResult:
    """Table III: GB vs image size at batch 8."""
    rows = PAPER_IMAGE_SIZES_T3
    return TableResult(
        name="Table III: weights+activations memory, batch 8",
        source=source,
        row_name="image",
        rows=rows,
        depths=RESNET_DEPTHS,
        values_bytes=_grid(source, rows, "image", fixed_batch=8),
        unit="GB",
    )


_PAPER_LOOKUP = {
    "table1": (PAPER_TABLE1_MB, MB),
    "table2": (PAPER_TABLE2_MB, MB),
    "table3": (PAPER_TABLE3_GB, GB),
}


def compare_to_paper(which: str, source: str = "ours", result: TableResult | None = None) -> Table:
    """Side-by-side grid: published value / our value / ratio per cell.

    ``result`` short-circuits the generator (the lab renderers pass a
    table rebuilt from a cached payload instead of recomputing it).
    """
    gen = {"table1": table1, "table2": table2, "table3": table3}[which]
    if result is None:
        result = gen(source)
    published, _ = _PAPER_LOOKUP[which]
    cells = []
    for r in result.rows:
        row_cells = []
        for d in result.depths:
            pub = published[r][d]
            ours_val = result.value(r, d)
            ratio = ours_val / pub if pub else float("nan")
            row_cells.append(f"{pub:.2f}/{ours_val:.2f}({ratio:.2f}x)")
        cells.append(row_cells)
    return Table(
        title=f"{result.name}: paper/{source} (ratio)",
        col_labels=[f"ResNet{d}" for d in result.depths],
        row_labels=[str(r) for r in result.rows],
        cells=cells,
        row_header=result.row_name,
    )


# -- repro.lab registration ------------------------------------------------


def table_result_from_payload(doc: dict) -> TableResult:
    """Rebuild a :class:`TableResult` from a cached lab payload."""
    rows = tuple(doc["rows"])
    depths = tuple(doc["depths"])
    values = {
        (r, d): doc["values_bytes"][i][j]
        for i, r in enumerate(rows)
        for j, d in enumerate(depths)
    }
    return TableResult(
        name=doc["name"],
        source=doc["source"],
        row_name=doc["row_name"],
        rows=rows,
        depths=depths,
        values_bytes=values,
        unit=doc["unit"],
    )


def _register_table_spec(which: str, gen, title: str) -> None:
    def compute(params, inputs):
        result = gen(params["source"])
        return {
            "which": which,
            "name": result.name,
            "source": result.source,
            "row_name": result.row_name,
            "rows": list(result.rows),
            "depths": list(result.depths),
            "unit": result.unit,
            "values_bytes": [
                [result.values_bytes[(r, d)] for d in result.depths]
                for r in result.rows
            ],
            "records": [
                {
                    result.row_name: r,
                    "depth": d,
                    "bytes": result.values_bytes[(r, d)],
                    "value": result.value(r, d),
                    "exceeds_budget": result.exceeds_budget(r, d),
                }
                for r in result.rows
                for d in result.depths
            ],
        }

    register(
        ExperimentSpec(
            name=which,
            title=title,
            compute=compute,
            renderers={
                "ascii": lambda doc: table_result_from_payload(doc).as_table().render(),
                "csv": lambda doc: table_result_from_payload(doc).as_table().to_csv(),
                "compare": lambda doc: compare_to_paper(
                    doc["which"], doc["source"], result=table_result_from_payload(doc)
                ).render(),
                "json": render_json,
            },
            params=(
                Param("source", str, default="ours", choices=("ours", "paper")),
            ),
            default_units=(
                UnitDef(
                    {"source": "ours"},
                    (
                        (f"{which}_ours.txt", "ascii"),
                        (f"{which}_compare.txt", "compare"),
                    ),
                ),
                UnitDef({"source": "paper"}, ((f"{which}_paper.txt", "ascii"),)),
            ),
        )
    )


_register_table_spec("table1", table1, "Table I: memory vs batch size at image 224")
_register_table_spec("table2", table2, "Table II: memory vs image size at batch 1")
_register_table_spec("table3", table3, "Table III: memory vs image size at batch 8")
