"""Ablations for the design choices DESIGN.md calls out.

* :func:`strategy_ablation` — Section VI's claim that full binomial
  checkpointing beats ``checkpoint_sequential``: ρ at equal slot budgets
  for every strategy, per chain length.
* :func:`batch_tradeoff` — Section VI's closing remark: larger batches
  raise hardware efficiency, so spending recompute (checkpointing) to
  afford a bigger batch can *lower* total epoch time.
* :func:`harvest_ablation` — Section III pipeline: label-source and
  confidence-threshold effects on harvested-label purity and student
  accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..checkpointing import available_strategies, compare_strategies
from ..edge import Device, TrainingWorkload, sweep_batch_sizes
from ..lab import Param, UnitDef, experiment
from ..obs import get_tracer
from ..studentteacher import (
    PipelineConfig,
    StudentConfig,
    TeacherModel,
    ViewpointWorld,
    harvest_labels,
    track_episode,
)
from .report import Table, render_json, table_from_payload, table_to_payload

__all__ = [
    "strategy_ablation",
    "strategy_ablation_table",
    "BatchPoint",
    "batch_tradeoff",
    "batch_tradeoff_table",
    "HarvestPoint",
    "harvest_ablation",
]


def strategy_ablation(
    lengths: tuple[int, ...] = (18, 34, 50, 101, 152),
    slot_budgets: tuple[int, ...] = (3, 5, 8, 13, 21),
    strategies: tuple[str, ...] | None = None,
) -> dict[tuple[int, int], dict[str, float]]:
    """ρ per strategy for every (chain length, slot budget) pair.

    ``strategies`` defaults to every registered strategy, so newly
    registered families join the ablation without code changes here.
    """
    names = available_strategies() if strategies is None else tuple(strategies)
    tracer = get_tracer()
    out: dict[tuple[int, int], dict[str, float]] = {}
    with tracer.span(
        "strategy_ablation",
        category="ablation",
        lengths=len(lengths),
        slot_budgets=len(slot_budgets),
        strategies=len(names),
    ):
        for l in lengths:
            for c in slot_budgets:
                with tracer.span("cell", category="ablation", length=l, slots=c) as cell:
                    entry = compare_strategies(l, c, strategies=names)
                    cell.set_tag("best", min(entry, key=entry.get))
                out[(l, c)] = entry
    return out


def strategy_ablation_table(
    lengths: tuple[int, ...] = (18, 34, 50, 101, 152),
    slot_budgets: tuple[int, ...] = (3, 5, 8, 13, 21),
    strategies: tuple[str, ...] | None = None,
    data: dict[tuple[int, int], dict[str, float]] | None = None,
) -> Table:
    """Render the ablation: ρ per registered strategy at equal memory.

    ``data`` short-circuits the sweep when the caller already ran it.
    """
    names = available_strategies() if strategies is None else tuple(strategies)
    if data is None:
        data = strategy_ablation(lengths, slot_budgets, names)

    def fmt(v: float) -> str:
        return f"{v:.3f}" if v != float("inf") else "inf"

    cells = []
    rows = []
    for l in lengths:
        for c in slot_budgets:
            rows.append(f"l={l},c={c}")
            entry = data[(l, c)]
            cells.append([fmt(entry[name]) for name in names])
    return Table(
        title="Strategy ablation: recompute factor at equal slot budget",
        col_labels=list(names),
        row_labels=rows,
        cells=cells,
        row_header="chain",
    )


@dataclass(frozen=True)
class BatchPoint:
    """One batch size's outcome in the throughput trade-off."""

    batch_size: int
    rho: float
    strategy: str
    efficiency: float
    epoch_seconds: float
    memory_mb: float


def batch_tradeoff(workload: TrainingWorkload, device: Device, batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32)) -> list[BatchPoint]:
    """Epoch time across batch sizes with memory-planned checkpointing."""
    out = []
    for est in sweep_batch_sizes(workload, device, batch_sizes):
        out.append(
            BatchPoint(
                batch_size=est.batch_size,
                rho=est.plan.rho,
                strategy=est.plan.strategy,
                efficiency=est.efficiency,
                epoch_seconds=est.epoch_seconds,
                memory_mb=est.plan.memory_bytes / (1024 * 1024),
            )
        )
    return out


def batch_tradeoff_table(workload: TrainingWorkload, device: Device, batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32)) -> Table:
    """Render the batch-size trade-off sweep."""
    points = batch_tradeoff(workload, device, batch_sizes)
    cells = [
        [
            f"{p.rho:.3f}",
            p.strategy,
            f"{p.efficiency:.2f}",
            f"{p.memory_mb:.0f}",
            f"{p.epoch_seconds:.0f}",
        ]
        for p in points
    ]
    return Table(
        title=f"Batch-size trade-off: {workload.model} on {device.name}",
        col_labels=["rho", "strategy", "efficiency", "memory(MB)", "epoch(s)"],
        row_labels=[str(p.batch_size) for p in points],
        cells=cells,
        row_header="batch",
    )


@dataclass(frozen=True)
class HarvestPoint:
    """Harvest quality under one labelling policy."""

    label_source: str
    confidence_threshold: float
    samples: int
    purity: float
    tracks_labelled: int


def harvest_ablation(
    cfg: PipelineConfig | None = None,
    thresholds: tuple[float, ...] = (0.5, 0.7, 0.9, 0.99),
) -> list[HarvestPoint]:
    """Label purity per (label source, confidence threshold).

    Shows why the paper's "identify in the last frame" rule matters: with
    aspect confusion, max-confidence labelling confidently mislabels
    skewed frames, lowering purity.
    """
    cfg = cfg or PipelineConfig(n_subjects=80, student=StudentConfig(epochs=5))
    rng = np.random.default_rng(cfg.seed)
    world = ViewpointWorld(num_classes=cfg.num_classes, feature_dim=cfg.feature_dim, rng=rng)
    x_tr, y_tr = world.sample_frontal(cfg.teacher_train_per_class)
    teacher = TeacherModel.fit(x_tr, y_tr)
    episode = world.generate_episode(
        n_subjects=cfg.n_subjects,
        frames_per_crossing=cfg.frames_per_crossing,
        camera_skew_deg=cfg.camera_skew_deg,
    )
    assignments = track_episode(episode)
    out = []
    for source in ("track_end", "max_confidence"):
        for thr in thresholds:
            h = harvest_labels(episode, assignments, teacher, confidence_threshold=thr, label_source=source)
            out.append(
                HarvestPoint(
                    label_source=source,
                    confidence_threshold=thr,
                    samples=len(h),
                    purity=h.label_purity,
                    tracks_labelled=h.tracks_labelled,
                )
            )
    return out


# -- repro.lab registration ------------------------------------------------


@experiment(
    "ablation",
    "strategy ablation across all registered strategies",
    params=(
        Param("lengths", int, default=(18, 34, 50, 101, 152), repeated=True, cli="length"),
        Param("slot_budgets", int, default=(3, 5, 8, 13, 21), repeated=True, cli="slot-budget"),
        Param(
            "strategies",
            str,
            default=None,
            repeated=True,
            choices=available_strategies(),
            cli="strategy",
        ),
    ),
    renderers={
        "ascii": lambda doc: table_from_payload(doc["table"]).render(),
        "csv": lambda doc: table_from_payload(doc["table"]).to_csv(),
        "json": render_json,
    },
    default_units=(UnitDef({}, (("ablation_strategies.txt", "ascii"),)),),
)
def _ablation_spec(params, inputs):
    lengths = tuple(params["lengths"])
    budgets = tuple(params["slot_budgets"])
    names = (
        tuple(params["strategies"])
        if params["strategies"]
        else available_strategies()
    )
    data = strategy_ablation(lengths, budgets, names)
    return {
        "lengths": list(lengths),
        "slot_budgets": list(budgets),
        "strategies": list(names),
        "table": table_to_payload(
            strategy_ablation_table(lengths, budgets, names, data=data)
        ),
        "records": [
            {
                "length": l,
                "slots": c,
                "strategy": name,
                "rho": None if rho == float("inf") else rho,
            }
            for (l, c), entry in data.items()
            for name, rho in entry.items()
        ],
    }
