"""The unified schedule execution engine.

One virtual machine (:func:`execute`) interprets checkpoint schedules
for *every* consumer — the analytic simulator, the real-tensor executor
and the tiered-storage model — through a pluggable
:class:`~repro.engine.backend.Backend`:

* :class:`SimBackend` — ChainSpec cost accounting (no tensors);
* :class:`TensorBackend` — real ``SequentialNet`` forwards/adjoints with
  a live-byte meter;
* :class:`TieredBackend` — RAM + disk slot tiers priced by
  :class:`~repro.edge.storage.StorageProfile` read/write paths;
* :class:`CompressedBackend` — TieredBackend plus a
  :class:`~repro.edge.storage.CompressionModel` pricing compressed-band
  slots (smaller stored bytes, codec seconds per transfer).

The VM owns all invariants and emits unified
:class:`~repro.engine.stats.StepStats` / :class:`~repro.engine.stats.RunStats`;
:mod:`repro.engine.hooks` builds the standard trace observers.  The
historical entry points :func:`repro.checkpointing.simulate` and
:func:`repro.autodiff.run_schedule` remain as thin compatibility
wrappers over this engine.
"""

from .backend import Backend, BaseBackend
from .compressed import CompressedBackend
from .hooks import action_span_hook, compose, sim_event_hook
from .program import (
    OP_ADJOINT,
    OP_ADVANCE,
    OP_FREE,
    OP_RESTORE,
    OP_SNAPSHOT,
    OPCODE_NAMES,
    CompiledProgram,
    compile_schedule,
    decompile,
    program_from_payload,
)
from .sim import SimBackend
from .stats import CompressionStats, RunStats, StepStats, TierStats
from .tensor import TensorBackend
from .tiered import TieredBackend
from .vm import execute

__all__ = [
    "Backend",
    "BaseBackend",
    "RunStats",
    "StepStats",
    "TierStats",
    "CompressionStats",
    "SimBackend",
    "TensorBackend",
    "TieredBackend",
    "CompressedBackend",
    "CompiledProgram",
    "compile_schedule",
    "decompile",
    "program_from_payload",
    "OPCODE_NAMES",
    "OP_ADVANCE",
    "OP_SNAPSHOT",
    "OP_RESTORE",
    "OP_FREE",
    "OP_ADJOINT",
    "execute",
    "compose",
    "action_span_hook",
    "sim_event_hook",
]
