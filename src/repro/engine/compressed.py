"""Compression-aware tiered backend: codec-priced checkpoint storage.

Extends :class:`~repro.engine.tiered.TieredBackend` with a
:class:`~repro.edge.storage.CompressionModel`: any slot in the
compressed band of the shared action alphabet
(:func:`~repro.checkpointing.actions.is_compressed_slot`) stores
``codec.compressed_bytes(raw)`` in its tier's ledger instead of the raw
activation size, and every compressed SNAPSHOT/RESTORE pays the codec's
encode/decode seconds on top of the tier's storage transfer.  Slots
outside the band behave exactly like the plain tiered backend — the
compression flag travels in the *plan*, so one backend executes mixed
raw/compressed schedules without any side table.

With the identity codec (ratio 1, zero cost) every measurement collapses
to :class:`~repro.engine.tiered.TieredBackend`'s, which is what makes
the lossless-collapse property testable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..checkpointing.actions import is_compressed_slot
from ..checkpointing.chainspec import ChainSpec
from .stats import CompressionStats
from .tiered import TieredBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..edge.storage import CompressionModel, StorageProfile

__all__ = ["CompressedBackend"]


class CompressedBackend(TieredBackend):
    """TieredBackend plus a codec for compressed-band slots."""

    def __init__(
        self,
        spec: ChainSpec,
        codec: "CompressionModel",
        *,
        memory: "StorageProfile | None" = None,
        disk: "StorageProfile | None" = None,
    ) -> None:
        super().__init__(spec, memory=memory, disk=disk)
        self.codec = codec
        self._compress_calls = 0
        self._decompress_calls = 0
        self._compress_seconds = 0.0
        self._decompress_seconds = 0.0
        self._bytes_saved = 0

    def begin(self) -> None:
        super().begin()
        self._compress_calls = 0
        self._decompress_calls = 0
        self._compress_seconds = 0.0
        self._decompress_seconds = 0.0
        self._bytes_saved = 0

    def _stored_bytes(self, slot: int, index: int) -> int:
        raw = self.spec.act_bytes[index]
        if is_compressed_slot(slot):
            return self.codec.compressed_bytes(raw)
        return raw

    @property
    def slot_bytes(self) -> int:
        act = self.spec.act_bytes
        codec = self.codec
        total = 0
        for slot, idx in self._slots.items():
            raw = act[idx]
            total += codec.compressed_bytes(raw) if is_compressed_slot(slot) else raw
        return total

    def snapshot(self, slot: int, index: int) -> float:
        cost = super().snapshot(slot, index)
        if is_compressed_slot(slot):
            raw = self.spec.act_bytes[index]
            codec_cost = self.codec.compress_seconds(raw)
            self._compress_calls += 1
            self._compress_seconds += codec_cost
            self._bytes_saved += raw - self.codec.compressed_bytes(raw)
            cost += codec_cost
        return cost

    def restore(self, slot: int, index: int) -> float:
        cost = super().restore(slot, index)
        if is_compressed_slot(slot):
            raw = self.spec.act_bytes[index]
            codec_cost = self.codec.decompress_seconds(raw)
            self._decompress_calls += 1
            self._decompress_seconds += codec_cost
            cost += codec_cost
        return cost

    def compression_stats(self) -> CompressionStats:
        return CompressionStats(
            codec=self.codec.name,
            ratio=self.codec.ratio,
            compress_calls=self._compress_calls,
            decompress_calls=self._decompress_calls,
            compress_seconds=self._compress_seconds,
            decompress_seconds=self._decompress_seconds,
            bytes_saved=self._bytes_saved,
            fidelity_loss=self.codec.fidelity_loss if self._compress_calls else 0.0,
        )
