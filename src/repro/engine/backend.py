"""The pluggable backend surface of the schedule virtual machine.

The VM (:func:`~repro.engine.vm.execute`) owns every structural
invariant — cursor preconditions, slot budget and occupancy, backward
order, completeness — and the authoritative ``slot -> activation index``
map.  A backend owns only the *payloads* (abstract cost entries, real
tensors, tier ledgers) and answers with the cost of each action.  The VM
calls exactly one backend method per schedule action, always after its
own precondition checks have passed, so backends may assume arguments
are valid and need no defensive checks of their own.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .stats import CompressionStats, TierStats

__all__ = ["Backend", "BaseBackend"]


@runtime_checkable
class Backend(Protocol):
    """What the VM needs from an execution backend.

    Cost returns are in the backend's own unit (forward-step units for
    the analytic backends, zero for the tensor backend whose cost is
    wall time measured by the tracer).  ``snapshot``/``restore`` return
    *transfer* cost; ``adjoint`` returns ``(replay_cost, backward_cost)``.
    """

    @property
    def chain_length(self) -> int: ...

    #: bytes currently held in checkpoint slots
    @property
    def slot_bytes(self) -> int: ...

    #: total live bytes (slots + cursor + any gradient flow)
    @property
    def live_bytes(self) -> int: ...

    @property
    def peak_slot_bytes(self) -> int: ...

    @property
    def peak_bytes(self) -> int: ...

    def begin(self) -> None:
        """Reset state; the cursor now holds ``x_0`` (the batch input)."""
        ...

    def advance(self, start: int, stop: int) -> float:
        """Run forwards ``start -> stop``; cursor ends holding ``x_stop``."""
        ...

    def snapshot(self, slot: int, index: int) -> float:
        """Copy the cursor (holding ``x_index``) into ``slot``."""
        ...

    def restore(self, slot: int, index: int) -> float:
        """Load the cursor from ``slot`` (which holds ``x_index``)."""
        ...

    def free(self, slot: int, index: int) -> float:
        """Release ``slot`` (which held ``x_index``)."""
        ...

    def adjoint(self, step: int) -> tuple[float, float]:
        """Youturn of ``step``: replay its forward, apply its backward."""
        ...

    def tier_stats(self) -> tuple[TierStats, ...]:
        """Per-storage-tier ledgers (empty for untired backends)."""
        ...

    def compression_stats(self) -> CompressionStats | None:
        """Codec ledger (``None`` for codec-less backends)."""
        ...


class BaseBackend:
    """Optional convenience base: untired, zero extra bookkeeping."""

    def begin(self) -> None:  # pragma: no cover - trivial default
        return None

    def tier_stats(self) -> tuple[TierStats, ...]:
        return ()

    def compression_stats(self) -> CompressionStats | None:
        return None
