"""Real-tensor backend: schedule-driven backprop on a SequentialNet.

Replaces the body of :func:`repro.autodiff.run_schedule`.  Payloads are
live NumPy activations; the :class:`~repro.autodiff.meter.MemoryMeter`
tracks the byte high-water mark with exactly the hold/release pattern of
the original executor, so measured peaks are bit-for-bit unchanged.  The
adjoint of the head step replays its forward to seed the loss gradient
("youturn" semantics); every other adjoint replays inside the layer's
``backward``.  Costs are all zero — wall time is what the tracer spans
measure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..autodiff.loss import softmax_cross_entropy
from ..autodiff.meter import MemoryMeter
from ..errors import ExecutionError
from .backend import BaseBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..autodiff.network import GradMap, SequentialNet

__all__ = ["TensorBackend"]


class TensorBackend(BaseBackend):
    """Executes schedule actions as layer forwards/backwards on a batch."""

    def __init__(
        self,
        net: "SequentialNet",
        x: np.ndarray,
        labels: np.ndarray,
        loss_fn=softmax_cross_entropy,
        meter: MemoryMeter | None = None,
    ) -> None:
        self.net = net
        self.x = x
        self.labels = labels
        self.loss_fn = loss_fn
        self.meter = meter if meter is not None else MemoryMeter()
        self.loss_value: float | None = None
        self.grads: "GradMap" = {}
        self._cursor: np.ndarray = x
        self._slots: dict[int, np.ndarray] = {}
        self._dy: np.ndarray | None = None
        self._peak_slot_bytes = 0

    @property
    def chain_length(self) -> int:
        return len(self.net)

    @property
    def slot_bytes(self) -> int:
        return sum(int(a.nbytes) for a in self._slots.values())

    @property
    def live_bytes(self) -> int:
        return self.meter.current_bytes

    @property
    def peak_slot_bytes(self) -> int:
        return self._peak_slot_bytes

    @property
    def peak_bytes(self) -> int:
        return self.meter.peak_bytes

    def begin(self) -> None:
        self._cursor = self.x
        self._slots = {}
        self._dy = None
        self.loss_value = None
        self.grads = {}
        self._peak_slot_bytes = 0
        self.meter.hold("cursor", self._cursor)

    def advance(self, start: int, stop: int) -> float:
        cursor = self._cursor
        for i in range(start, stop):
            cursor = self.net.layers[i].forward(cursor)
            self.meter.hold("cursor", cursor)
        self._cursor = cursor
        return 0.0

    def snapshot(self, slot: int, index: int) -> float:
        self._slots[slot] = self._cursor
        self.meter.hold(f"slot{slot}", self._cursor)
        sb = self.slot_bytes
        if sb > self._peak_slot_bytes:
            self._peak_slot_bytes = sb
        return 0.0

    def restore(self, slot: int, index: int) -> float:
        self._cursor = self._slots[slot]
        self.meter.hold("cursor", self._cursor)
        return 0.0

    def free(self, slot: int, index: int) -> float:
        del self._slots[slot]
        self.meter.release(f"slot{slot}")
        return 0.0

    def adjoint(self, step: int) -> tuple[float, float]:
        layer = self.net.layers[step - 1]
        if step == self.chain_length:
            # Head step: replay forward to get predictions, seed dy.
            y = layer.forward(self._cursor)
            self.meter.hold("head", y)
            self.loss_value, self._dy = self.loss_fn(y, self.labels)
            self.meter.release("head")
            self.meter.hold("grad", self._dy)
        if self._dy is None:  # pragma: no cover - guarded by VM ordering
            raise ExecutionError("gradient flow unseeded")
        dx, layer_grads = layer.backward(self._cursor, self._dy)
        self._dy = dx
        self.meter.hold("grad", dx)
        for pname, g in layer_grads.items():
            self.grads[(layer.name, pname)] = g
        return 0.0, 0.0
