"""Flat program IR: schedules compiled to parallel int arrays.

A :class:`~repro.checkpointing.schedule.Schedule` is a tuple of
:class:`~repro.checkpointing.actions.Action` objects — ideal to build
and reason about, slow to execute thousands of times.  This module
compiles a schedule once into a :class:`CompiledProgram`:

* parallel ``opcodes`` / ``args`` arrays (one int row per action) plus a
  precomputed ``aux`` operand — the cursor an ADVANCE starts from, the
  activation index a SNAPSHOT/RESTORE/FREE touches, the step an ADJOINT
  reverses — so execution never re-derives machine state;
* the full state trajectory (``cursor_after``, ``occupied_after`` and
  the running forward/replay/backward counters) captured by abstract
  interpretation at compile time;
* schedule-level aggregates (``executions``, ``peak_slots``,
  snapshot/restore counts) that are backend-independent.

Compilation *is* validation: every structural invariant the interpreted
VM loop enforces is checked here with byte-identical
:class:`~repro.errors.ExecutionError` messages, so a program that
compiles can execute with no per-action checks at all.  The decompiler
(:func:`decompile`) inverts compilation exactly —
``decompile(compile_schedule(s)) == s`` for every valid schedule — and
:func:`program_from_payload` recompiles on load, so a persisted program
can never smuggle an invalid action sequence past the VM.

:func:`run_compiled_sim` is the whole-program fast path for the
analytic :class:`~repro.engine.sim.SimBackend`: byte peaks from one
``int64`` cumulative sum over slot deltas, costs from prefix-sum
differences accumulated with ``np.add.accumulate`` — the same
left-to-right float additions the interpreted loop performs, so the
resulting :class:`~repro.engine.stats.RunStats` is bit-identical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..checkpointing.actions import (
    COMPRESS_SLOT_BASE,
    Action,
    ActionKind,
    tier_of_slot,
)
from ..checkpointing.schedule import Schedule
from ..errors import ExecutionError, ScheduleError
from .stats import RunStats

__all__ = [
    "PROGRAM_VERSION",
    "OP_ADVANCE",
    "OP_SNAPSHOT",
    "OP_RESTORE",
    "OP_FREE",
    "OP_ADJOINT",
    "OPCODE_NAMES",
    "KIND_BY_OP",
    "CompiledProgram",
    "compile_schedule",
    "decompile",
    "program_from_payload",
    "run_compiled_sim",
]

#: Payload format version for persisted programs.
PROGRAM_VERSION = 1

# Opcode encoding; the order is part of the persisted format.
OP_ADVANCE = 0
OP_SNAPSHOT = 1
OP_RESTORE = 2
OP_FREE = 3
OP_ADJOINT = 4

OPCODE_NAMES = ("ADVANCE", "SNAPSHOT", "RESTORE", "FREE", "ADJOINT")

#: Opcode -> ActionKind, for decompilation and StepStats construction.
KIND_BY_OP = (
    ActionKind.ADVANCE,
    ActionKind.SNAPSHOT,
    ActionKind.RESTORE,
    ActionKind.FREE,
    ActionKind.ADJOINT,
)

_OP_BY_KIND = {kind: op for op, kind in enumerate(KIND_BY_OP)}


def _frozen(arr: np.ndarray) -> np.ndarray:
    arr.setflags(write=False)
    return arr


@dataclass(frozen=True, eq=False)
class CompiledProgram:
    """A schedule lowered to flat arrays plus its precomputed trajectory.

    All arrays are read-only and length ``n`` (one row per action)
    unless noted.  ``aux`` is the precomputed operand the VM would
    otherwise derive from machine state; the ``*_after`` and ``*_cum``
    arrays snapshot the abstract machine right after each action, which
    is exactly what :class:`~repro.engine.stats.StepStats` reports.
    """

    strategy: str
    length: int
    slots: int
    opcodes: np.ndarray  # int32
    args: np.ndarray  # int32
    aux: np.ndarray  # int32: start cursor / activation index / step
    cursor_after: np.ndarray  # int32
    occupied_after: np.ndarray  # int32
    forward_cum: np.ndarray  # int32 running pure-forward steps
    replay_cum: np.ndarray  # int32 running adjoint replays
    backwards_cum: np.ndarray  # int32 running backwards done
    slot_sign: np.ndarray  # int8: +1 SNAPSHOT, -1 FREE, else 0
    adv_start: np.ndarray  # int32, one per ADVANCE, in order
    adv_stop: np.ndarray  # int32, one per ADVANCE, in order
    adjoint_steps: np.ndarray  # int32, one per ADJOINT, in order
    forward_steps: int
    snapshots_taken: int
    restores: int
    peak_slots: int
    executions: tuple[int, ...]
    final_cursor: int
    final_slots: tuple[tuple[int, int], ...]  # (slot, activation index)

    def __len__(self) -> int:
        return int(self.opcodes.shape[0])

    def matches(self, schedule: Schedule) -> bool:
        """Cheap structural check that this program came from ``schedule``."""
        return (
            self.strategy == schedule.strategy
            and self.length == schedule.length
            and self.slots == schedule.slots
            and len(self) == len(schedule.actions)
        )

    # -- fast-iteration views (the generic dispatch loop uses these) ----
    @cached_property
    def ops_list(self) -> tuple[int, ...]:
        return tuple(self.opcodes.tolist())

    @cached_property
    def args_list(self) -> tuple[int, ...]:
        return tuple(self.args.tolist())

    @cached_property
    def aux_list(self) -> tuple[int, ...]:
        return tuple(self.aux.tolist())

    # -- tier-aware aggregates (derived from the shared slot alphabet) ---
    @cached_property
    def tier_usage(self) -> tuple[tuple[int, int, int, int], ...]:
        """Per-tier ``(tier, snapshots, restores, peak_slots)`` rows.

        Derived from the opcode/arg arrays alone via
        :func:`~repro.checkpointing.actions.tier_of_slot`, so the rows
        survive payload round-trips by construction.  Tiers appear in
        ascending order; a program that never touches a slot has no rows.
        """
        snaps: dict[int, int] = {}
        reads: dict[int, int] = {}
        held: dict[int, int] = {}
        peaks: dict[int, int] = {}
        for op, arg in zip(self.ops_list, self.args_list):
            if op == OP_ADVANCE or op == OP_ADJOINT:
                continue
            t = tier_of_slot(arg)
            if op == OP_SNAPSHOT:
                snaps[t] = snaps.get(t, 0) + 1
                held[t] = held.get(t, 0) + 1
                if held[t] > peaks.get(t, 0):
                    peaks[t] = held[t]
            elif op == OP_RESTORE:
                reads[t] = reads.get(t, 0) + 1
            else:  # OP_FREE
                held[t] = held.get(t, 0) - 1
        tiers = sorted(set(snaps) | set(reads))
        return tuple(
            (t, snaps.get(t, 0), reads.get(t, 0), peaks.get(t, 0)) for t in tiers
        )

    @property
    def paged(self) -> bool:
        """Whether any action touches a slot outside the RAM tier."""
        return any(t != 0 for t, _, _, _ in self.tier_usage)

    @cached_property
    def compression_usage(self) -> tuple[int, int]:
        """``(compressed snapshots, compressed restores)`` counts.

        Derived from the arg array's compressed band
        (:func:`~repro.checkpointing.actions.is_compressed_slot`);
        :attr:`tier_usage` already folds compressed slots into their
        storage tier, so this is the orthogonal how-stored summary.
        """
        snaps = 0
        reads = 0
        for op, arg in zip(self.ops_list, self.args_list):
            if arg < COMPRESS_SLOT_BASE:
                continue
            if op == OP_SNAPSHOT:
                snaps += 1
            elif op == OP_RESTORE:
                reads += 1
        return (snaps, reads)

    @property
    def compressed(self) -> bool:
        """Whether any snapshot is stored through the compressed band."""
        return self.compression_usage != (0, 0)

    # -- content addressing and persistence -----------------------------
    @cached_property
    def digest(self) -> str:
        """SHA-256 over the canonical program encoding (content address)."""
        h = hashlib.sha256()
        h.update(b"program:v%d\x00" % PROGRAM_VERSION)
        h.update(self.strategy.encode("utf-8"))
        h.update(b"\x00%d:%d\x00" % (self.length, self.slots))
        h.update(np.ascontiguousarray(self.opcodes, dtype="<i4").tobytes())
        h.update(np.ascontiguousarray(self.args, dtype="<i4").tobytes())
        return h.hexdigest()

    def to_payload(self) -> dict:
        """JSON-safe document from which the program can be rebuilt."""
        return {
            "version": PROGRAM_VERSION,
            "strategy": self.strategy,
            "length": self.length,
            "slots": self.slots,
            "opcodes": self.opcodes.tolist(),
            "args": self.args.tolist(),
            "digest": self.digest,
        }


def compile_schedule(schedule: Schedule) -> CompiledProgram:
    """Lower ``schedule`` to the flat IR, enforcing every VM invariant.

    Raises :class:`~repro.errors.ExecutionError` with exactly the
    message the interpreted loop would produce, at the same action
    position and in the same check order — compiled and interpreted
    paths fail identically.
    """
    l = schedule.length
    budget = schedule.slots
    n = len(schedule.actions)
    opcodes = np.empty(n, np.int32)
    args = np.empty(n, np.int32)
    aux = np.empty(n, np.int32)
    cursor_after = np.empty(n, np.int32)
    occupied_after = np.empty(n, np.int32)
    forward_cum = np.empty(n, np.int32)
    replay_cum = np.empty(n, np.int32)
    backwards_cum = np.empty(n, np.int32)
    slot_sign = np.zeros(n, np.int8)
    adv_start: list[int] = []
    adv_stop: list[int] = []
    adjoint_steps: list[int] = []
    cover = [0] * (l + 1)  # difference array of per-step executions

    cursor = 0
    slots: dict[int, int] = {}
    pending = l
    forward_steps = 0
    replay_steps = 0
    snapshots_taken = 0
    restores = 0
    peak_slots = 0

    for pos, act in enumerate(schedule.actions):
        kind = act.kind
        arg = act.arg
        if kind is ActionKind.ADVANCE:
            if not cursor < arg <= l:
                raise ExecutionError(
                    f"action {pos}: ADVANCE to {arg} from cursor {cursor} (l={l})"
                )
            op, a = OP_ADVANCE, cursor
            adv_start.append(cursor)
            adv_stop.append(arg)
            cover[cursor] += 1
            cover[arg] -= 1
            forward_steps += arg - cursor
            cursor = arg
        elif kind is ActionKind.SNAPSHOT:
            if arg >= budget:
                raise ExecutionError(
                    f"action {pos}: SNAPSHOT into slot {arg} exceeds budget {budget}"
                )
            held = slots.get(arg)
            if held is not None:
                raise ExecutionError(
                    f"action {pos}: SNAPSHOT into occupied slot {arg} "
                    f"(holds x_{held}) without FREE"
                )
            slots[arg] = cursor
            op, a = OP_SNAPSHOT, cursor
            slot_sign[pos] = 1
            snapshots_taken += 1
            if len(slots) > peak_slots:
                peak_slots = len(slots)
        elif kind is ActionKind.RESTORE:
            held = slots.get(arg)
            if held is None:
                raise ExecutionError(f"action {pos}: RESTORE from empty slot {arg}")
            cursor = held
            op, a = OP_RESTORE, held
            restores += 1
        elif kind is ActionKind.FREE:
            held = slots.pop(arg, None)
            if held is None:
                raise ExecutionError(f"action {pos}: FREE of empty slot {arg}")
            op, a = OP_FREE, held
            slot_sign[pos] = -1
        elif kind is ActionKind.ADJOINT:
            step = arg
            if step != pending:
                raise ExecutionError(
                    f"action {pos}: ADJOINT({step}) but pending backward is {pending}"
                )
            if cursor != step - 1:
                raise ExecutionError(
                    f"action {pos}: ADJOINT({step}) requires cursor at {step - 1}, "
                    f"cursor is {cursor}"
                )
            cover[step - 1] += 1
            cover[step] -= 1
            op, a = OP_ADJOINT, step
            adjoint_steps.append(step)
            replay_steps += 1
            pending -= 1
        else:  # pragma: no cover - exhaustive enum
            raise ExecutionError(f"action {pos}: unknown kind {kind}")
        opcodes[pos] = op
        args[pos] = arg
        aux[pos] = a
        cursor_after[pos] = cursor
        occupied_after[pos] = len(slots)
        forward_cum[pos] = forward_steps
        replay_cum[pos] = replay_steps
        backwards_cum[pos] = l - pending

    if pending != 0:
        raise ExecutionError(
            f"schedule finished with backward steps {pending}..1 still pending"
        )
    executions: list[int] = []
    running = 0
    for i in range(l):
        running += cover[i]
        executions.append(running)
    if any(e < 1 for e in executions):
        missing = [i + 1 for i, e in enumerate(executions) if e < 1]
        raise ExecutionError(f"steps never executed forward: {missing}")

    return CompiledProgram(
        strategy=schedule.strategy,
        length=l,
        slots=budget,
        opcodes=_frozen(opcodes),
        args=_frozen(args),
        aux=_frozen(aux),
        cursor_after=_frozen(cursor_after),
        occupied_after=_frozen(occupied_after),
        forward_cum=_frozen(forward_cum),
        replay_cum=_frozen(replay_cum),
        backwards_cum=_frozen(backwards_cum),
        slot_sign=_frozen(slot_sign),
        adv_start=_frozen(np.asarray(adv_start, np.int32)),
        adv_stop=_frozen(np.asarray(adv_stop, np.int32)),
        adjoint_steps=_frozen(np.asarray(adjoint_steps, np.int32)),
        forward_steps=forward_steps,
        snapshots_taken=snapshots_taken,
        restores=restores,
        peak_slots=peak_slots,
        executions=tuple(executions),
        final_cursor=cursor,
        final_slots=tuple(sorted(slots.items())),
    )


def decompile(program: CompiledProgram) -> Schedule:
    """Reconstruct the exact source schedule of a compiled program."""
    actions = tuple(
        Action(KIND_BY_OP[op], arg)
        for op, arg in zip(program.ops_list, program.args_list)
    )
    return Schedule(
        strategy=program.strategy,
        length=program.length,
        slots=program.slots,
        actions=actions,
    )


def program_from_payload(payload: object) -> CompiledProgram:
    """Rebuild a program from :meth:`CompiledProgram.to_payload` output.

    The action stream is recompiled (so every invariant is re-proven)
    and the content digest re-derived; any mismatch raises
    :class:`~repro.errors.ScheduleError` — a corrupted or tampered
    payload can never produce a runnable program.
    """
    if not isinstance(payload, dict):
        raise ScheduleError("program payload must be an object")
    for field in ("version", "strategy", "length", "slots", "opcodes", "args", "digest"):
        if field not in payload:
            raise ScheduleError(f"program payload is missing field {field!r}")
    if payload["version"] != PROGRAM_VERSION:
        raise ScheduleError(
            f"program payload has version {payload['version']}, "
            f"expected {PROGRAM_VERSION}"
        )
    ops, raw_args = payload["opcodes"], payload["args"]
    if len(ops) != len(raw_args):
        raise ScheduleError("program payload opcode/arg arrays differ in length")
    try:
        actions = tuple(
            Action(KIND_BY_OP[int(op)], int(arg)) for op, arg in zip(ops, raw_args)
        )
    except (IndexError, TypeError, ValueError) as exc:
        raise ScheduleError(f"program payload has an invalid opcode row: {exc}") from exc
    schedule = Schedule(
        strategy=str(payload["strategy"]),
        length=int(payload["length"]),
        slots=int(payload["slots"]),
        actions=actions,
    )
    try:
        program = compile_schedule(schedule)
    except ExecutionError as exc:
        raise ScheduleError(f"program payload does not compile: {exc}") from exc
    if program.digest != payload["digest"]:
        raise ScheduleError("program payload failed its content digest check")
    return program


def run_compiled_sim(program: CompiledProgram, backend) -> RunStats:
    """Whole-program vectorized execution on a :class:`SimBackend`.

    Bit-identical to interpreting the schedule action by action:

    * byte peaks come from an ``int64`` cumulative sum over per-action
      slot deltas (plus the initial charge, where the cursor holds
      ``x_0`` and no slot is occupied);
    * per-advance costs are the same prefix-sum differences
      :meth:`ChainSpec.advance_cost <repro.checkpointing.chainspec.ChainSpec.advance_cost>`
      computes, and every cost accumulator uses ``np.add.accumulate`` —
      a strictly left-to-right reduction, the same float additions in
      the same order as the interpreted loop's ``+=``.

    The backend is left in exactly the state interpretation would have
    produced (cursor, slot table, peaks), via
    :meth:`~repro.engine.sim.SimBackend.adopt`.
    """
    spec = backend.spec
    backend.begin()
    n = len(program)
    act = np.asarray(spec.act_bytes, dtype=np.int64)

    if n:
        slot_delta = act[program.aux] * program.slot_sign.astype(np.int64)
        slot_bytes_t = np.cumsum(slot_delta)
        peak_slot_bytes = max(0, int(slot_bytes_t.max()))
        live_t = slot_bytes_t + act[program.cursor_after]
        peak_bytes = max(int(act[0]), int(live_t.max()))
    else:
        peak_slot_bytes = 0
        peak_bytes = int(act[0])

    prefix = np.asarray(spec.fwd_prefix, dtype=np.float64)
    adv_costs = prefix[program.adv_stop] - prefix[program.adv_start]
    forward_cost = (
        float(np.add.accumulate(adv_costs)[-1]) if adv_costs.size else 0.0
    )
    steps = program.adjoint_steps
    if steps.size:
        fwd = np.asarray(spec.fwd_cost, dtype=np.float64)
        bwd = np.asarray(spec.bwd_cost, dtype=np.float64)
        replay_cost = float(np.add.accumulate(fwd[steps - 1])[-1])
        backward_cost = float(np.add.accumulate(bwd[steps - 1])[-1])
    else:
        replay_cost = 0.0
        backward_cost = 0.0

    backend.adopt(
        cursor=program.final_cursor,
        slots=dict(program.final_slots),
        peak_slot_bytes=peak_slot_bytes,
        peak_bytes=peak_bytes,
    )
    return RunStats(
        strategy=program.strategy,
        length=program.length,
        forward_steps=program.forward_steps,
        forward_cost=forward_cost,
        replay_steps=int(steps.size),
        replay_cost=replay_cost,
        backward_cost=backward_cost,
        executions=program.executions,
        peak_slot_bytes=peak_slot_bytes,
        peak_bytes=peak_bytes,
        peak_slots=program.peak_slots,
        snapshots_taken=program.snapshots_taken,
        restores=program.restores,
        transfer_seconds=0.0,
        tiers=backend.tier_stats(),
        compression=backend.compression_stats(),
    )
