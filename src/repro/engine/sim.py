"""Analytic cost-accounting backend over a :class:`ChainSpec`.

Replaces the body of :func:`repro.checkpointing.simulate`: no tensors,
just the chain's per-step costs and activation sizes.  Byte peaks are
re-charged after every action (including the initial state, where the
cursor holds ``x_0``), matching the original simulator exactly.
"""

from __future__ import annotations

from ..checkpointing.chainspec import ChainSpec
from .backend import BaseBackend

__all__ = ["SimBackend"]


class SimBackend(BaseBackend):
    """Costs from a :class:`~repro.checkpointing.chainspec.ChainSpec`."""

    def __init__(self, spec: ChainSpec) -> None:
        self.spec = spec
        self._cursor = 0
        self._slots: dict[int, int] = {}  # slot -> activation index payload
        self._peak_slot_bytes = 0
        self._peak_bytes = 0

    @property
    def chain_length(self) -> int:
        return self.spec.length

    @property
    def slot_bytes(self) -> int:
        act = self.spec.act_bytes
        return sum(act[idx] for idx in self._slots.values())

    @property
    def live_bytes(self) -> int:
        return self.slot_bytes + self.spec.act_bytes[self._cursor]

    @property
    def peak_slot_bytes(self) -> int:
        return self._peak_slot_bytes

    @property
    def peak_bytes(self) -> int:
        return self._peak_bytes

    def _charge(self) -> None:
        sb = self.slot_bytes
        if sb > self._peak_slot_bytes:
            self._peak_slot_bytes = sb
        live = sb + self.spec.act_bytes[self._cursor]
        if live > self._peak_bytes:
            self._peak_bytes = live

    def begin(self) -> None:
        self._cursor = 0
        self._slots = {}
        self._peak_slot_bytes = 0
        self._peak_bytes = 0
        self._charge()

    def adopt(
        self,
        cursor: int,
        slots: dict[int, int],
        peak_slot_bytes: int,
        peak_bytes: int,
    ) -> None:
        """Jump to a final machine state computed by a whole-program pass.

        The vectorized compiled-program executor derives the byte
        timeline without calling the per-action methods; this installs
        its end state so the backend is indistinguishable from one that
        interpreted the schedule action by action.
        """
        self._cursor = cursor
        self._slots = dict(slots)
        if peak_slot_bytes > self._peak_slot_bytes:
            self._peak_slot_bytes = peak_slot_bytes
        if peak_bytes > self._peak_bytes:
            self._peak_bytes = peak_bytes

    def advance(self, start: int, stop: int) -> float:
        self._cursor = stop
        cost = self.spec.advance_cost(start, stop)
        self._charge()
        return cost

    def snapshot(self, slot: int, index: int) -> float:
        self._slots[slot] = index
        self._charge()
        return 0.0

    def restore(self, slot: int, index: int) -> float:
        self._cursor = index
        self._charge()
        return 0.0

    def free(self, slot: int, index: int) -> float:
        del self._slots[slot]
        self._charge()
        return 0.0

    def adjoint(self, step: int) -> tuple[float, float]:
        # The youturn leaves the cursor at x_{step-1}, where it already is.
        self._charge()
        return self.spec.fwd_cost[step - 1], self.spec.bwd_cost[step - 1]
