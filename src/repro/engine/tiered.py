"""Two-tier (memory + disk) backend with per-tier transfer costs.

Extends :class:`~repro.engine.sim.SimBackend` with a storage ledger per
tier: slot ids are routed by the shared tier-aware action alphabet
(:func:`~repro.checkpointing.actions.tier_of_slot` — ids at or above
``disk_slot_base``, i.e. outside tier 0's band, live on the disk tier,
the rest in RAM).  Each tier may carry a
:class:`~repro.edge.storage.StorageProfile` pricing its read/write path
in seconds; a tier without a profile moves checkpoints for free (the
pure-counting mode :func:`~repro.checkpointing.simulate_tiered` uses).
This is what lets a ``disk_revolve`` schedule *execute* — not just be
planned — with measured SD-card/eMMC transfer time in the resulting
:class:`~repro.engine.stats.RunStats`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..checkpointing.actions import TIER_RAM, tier_of_slot
from ..checkpointing.chainspec import ChainSpec
from ..checkpointing.multilevel import DISK_SLOT_BASE
from .sim import SimBackend
from .stats import TierStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..edge.storage import StorageProfile

__all__ = ["TieredBackend"]

_DEFAULT_BASE = DISK_SLOT_BASE


class _TierLedger:
    """Mutable per-tier accounting; frozen into a TierStats at the end."""

    def __init__(self, name: str, profile: "StorageProfile | None") -> None:
        self.name = name
        self.profile = profile
        #: slot id -> bytes the tier actually holds for it (compressed
        #: backends store fewer bytes than the activation's raw size)
        self.slots: dict[int, int] = {}
        self.writes = 0
        self.reads = 0
        self.write_seconds = 0.0
        self.read_seconds = 0.0
        self.bytes_written = 0
        self.bytes_read = 0
        self.peak_slots = 0
        self.peak_bytes = 0

    def charge(self) -> None:
        if len(self.slots) > self.peak_slots:
            self.peak_slots = len(self.slots)
        held = sum(self.slots.values())
        if held > self.peak_bytes:
            self.peak_bytes = held

    def stats(self) -> TierStats:
        return TierStats(
            name=self.name,
            writes=self.writes,
            reads=self.reads,
            write_seconds=self.write_seconds,
            read_seconds=self.read_seconds,
            peak_slots=self.peak_slots,
            peak_bytes=self.peak_bytes,
            bytes_written=self.bytes_written,
            bytes_read=self.bytes_read,
        )


class TieredBackend(SimBackend):
    """SimBackend plus a RAM/disk split with priced transfers."""

    def __init__(
        self,
        spec: ChainSpec,
        *,
        memory: "StorageProfile | None" = None,
        disk: "StorageProfile | None" = None,
        disk_slot_base: int = DISK_SLOT_BASE,
    ) -> None:
        super().__init__(spec)
        self._base = disk_slot_base
        self._memory_profile = memory
        self._disk_profile = disk
        self._mem = _TierLedger("memory", memory)
        self._disk = _TierLedger("disk", disk)

    def begin(self) -> None:
        super().begin()
        self._mem = _TierLedger("memory", self._memory_profile)
        self._disk = _TierLedger("disk", self._disk_profile)

    def _tier(self, slot: int) -> _TierLedger:
        # The shared alphabet routes by slot-id band; a custom
        # ``disk_slot_base`` lowers (or raises) where the disk band starts.
        if self._base == _DEFAULT_BASE:
            return self._mem if tier_of_slot(slot) == TIER_RAM else self._disk
        return self._disk if slot >= self._base else self._mem

    def _stored_bytes(self, slot: int, index: int) -> int:
        """Bytes slot ``slot`` holds for activation ``index``.

        The raw activation size here; :class:`CompressedBackend` shrinks
        it for compressed-band slots.
        """
        return self.spec.act_bytes[index]

    def snapshot(self, slot: int, index: int) -> float:
        super().snapshot(slot, index)
        tier = self._tier(slot)
        stored = self._stored_bytes(slot, index)
        tier.slots[slot] = stored
        tier.writes += 1
        tier.bytes_written += stored
        cost = 0.0
        if tier.profile is not None:
            cost = tier.profile.write_seconds(stored)
            tier.write_seconds += cost
        tier.charge()
        return cost

    def restore(self, slot: int, index: int) -> float:
        super().restore(slot, index)
        tier = self._tier(slot)
        stored = self._stored_bytes(slot, index)
        tier.reads += 1
        tier.bytes_read += stored
        cost = 0.0
        if tier.profile is not None:
            cost = tier.profile.read_seconds(stored)
            tier.read_seconds += cost
        return cost

    def free(self, slot: int, index: int) -> float:
        super().free(slot, index)
        tier = self._tier(slot)
        del tier.slots[slot]
        tier.charge()
        return 0.0

    def tier_stats(self) -> tuple[TierStats, ...]:
        return (self._mem.stats(), self._disk.stats())
