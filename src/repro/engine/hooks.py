"""Step-callback utilities for the schedule VM.

The VM reports progress through a single ``on_step`` callback; these
helpers build the standard observers — the executor's per-action trace
spans, the simulator's per-action trace events — and compose several
observers into one, so callers (trainer instrumentation, resilience
snapshot plumbing, timelines) attach behavior without the VM growing a
second dispatch path.
"""

from __future__ import annotations

from typing import Callable

from ..obs.tracer import Tracer
from .stats import StepStats

__all__ = ["compose", "action_span_hook", "sim_event_hook"]

StepHook = Callable[[StepStats], None]


def compose(*hooks: Callable | None) -> Callable | None:
    """One hook calling each given hook in order; ``None``s are skipped.

    Returns ``None`` when nothing remains, so an unobserved run keeps
    the VM's zero-overhead fast path.  Arity-agnostic: works for VM
    step callbacks (one :class:`StepStats` argument) and for trainer
    ``on_step(cursor, loss)`` hooks alike.
    """
    live = [h for h in hooks if h is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]

    def fan_out(*args) -> None:
        for h in live:
            h(*args)

    return fan_out


def action_span_hook(tracer: Tracer) -> StepHook:
    """Per-action ``action``-category spans (the tensor executor's shape).

    Each schedule action becomes one completed span named after its kind,
    spanning the time the action took, tagged with the live-byte level —
    exactly what ``autodiff.run_schedule`` always recorded.
    """

    def hook(step: StepStats) -> None:
        tracer.record(
            step.kind.name,
            "action",
            step.started,
            arg=step.arg,
            pos=step.pos,
            live_bytes=step.live_bytes,
        )

    return hook


def sim_event_hook(tracer: Tracer) -> StepHook:
    """Per-action ``sim``-category events (the simulator's shape).

    Mirrors the running counters after every schedule step, as
    ``checkpointing.simulate`` always emitted.
    """

    def hook(step: StepStats) -> None:
        tracer.event(
            step.kind.name,
            category="sim",
            pos=step.pos,
            arg=step.arg,
            cursor=step.cursor,
            occupied_slots=step.occupied_slots,
            forward_steps=step.forward_steps,
            replay_steps=step.replay_steps,
        )

    return hook
