"""Unified measurements emitted by the schedule virtual machine.

One step record (:class:`StepStats`) per executed action, one aggregate
(:class:`RunStats`) per run — shared by every backend, so the simulator's
analytic accounting, the tensor executor's live-byte metering and the
tiered-storage transfer costs all come out in the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..checkpointing.actions import ActionKind

__all__ = ["StepStats", "TierStats", "CompressionStats", "RunStats"]


@dataclass(frozen=True)
class StepStats:
    """VM state right after one schedule action.

    Delivered to the ``on_step`` callback of
    :func:`~repro.engine.vm.execute`; construction is skipped entirely
    when no callback is registered, so the hot loop pays nothing.
    """

    #: action index within the schedule
    pos: int
    kind: ActionKind
    arg: int
    #: activation index held by the cursor after the action
    cursor: int
    occupied_slots: int
    #: running pure-forward step count (sum of ADVANCE lengths so far)
    forward_steps: int
    #: running adjoint-replay count
    replay_steps: int
    #: backward steps completed so far
    backwards_done: int
    #: bytes currently held in checkpoint slots (backend accounting)
    slot_bytes: int
    #: total live bytes (slots + cursor, plus gradients where real)
    live_bytes: int
    #: storage transfer seconds charged by this action (tiered backends)
    transfer_seconds: float
    #: monotonic clock reading taken just before the action executed
    started: float


@dataclass(frozen=True)
class TierStats:
    """Per-storage-tier ledger of an executed schedule."""

    name: str
    writes: int
    reads: int
    write_seconds: float
    read_seconds: float
    peak_slots: int
    peak_bytes: int
    #: activation bytes moved into / out of this tier's slots
    bytes_written: int = 0
    bytes_read: int = 0

    @property
    def transfer_seconds(self) -> float:
        """Total time spent moving checkpoints through this tier."""
        return self.write_seconds + self.read_seconds

    @property
    def bytes_moved(self) -> int:
        """Total traffic through this tier (writes + reads)."""
        return self.bytes_written + self.bytes_read


@dataclass(frozen=True)
class CompressionStats:
    """Codec ledger of an executed schedule (compressed backends only).

    ``bytes_saved`` is raw-minus-stored over every compressed SNAPSHOT;
    ``codec_seconds`` is already folded into the run's
    ``transfer_seconds`` (a compressed transfer costs storage I/O *plus*
    the codec pass), it is broken out here for attribution only.
    ``fidelity_loss`` is the codec's declared per-activation relative
    gradient error bound — ``0.0`` means every restore was bit-exact.
    """

    codec: str
    ratio: float
    compress_calls: int
    decompress_calls: int
    compress_seconds: float
    decompress_seconds: float
    bytes_saved: int
    fidelity_loss: float = 0.0

    @property
    def codec_seconds(self) -> float:
        """Total time spent inside the codec (both directions)."""
        return self.compress_seconds + self.decompress_seconds

    @property
    def lossless(self) -> bool:
        return self.fidelity_loss == 0.0


@dataclass(frozen=True)
class RunStats:
    """Aggregate outcome of executing one schedule on one backend."""

    strategy: str
    length: int
    #: pure forward step executions (sum of ADVANCE lengths)
    forward_steps: int
    forward_cost: float
    #: forwards replayed inside adjoints (== length under Revolve semantics)
    replay_steps: int
    replay_cost: float
    backward_cost: float
    #: per-step forward execution counts, index i-1 -> executions of F_i
    executions: tuple[int, ...]
    #: peak bytes held in checkpoint slots (excluding the cursor)
    peak_slot_bytes: int
    #: peak bytes including the cursor's activation (and live gradients
    #: for tensor backends)
    peak_bytes: int
    #: maximum number of simultaneously occupied slots
    peak_slots: int
    snapshots_taken: int
    restores: int
    #: total storage transfer seconds (zero for untired backends)
    transfer_seconds: float = 0.0
    #: per-tier breakdown, empty unless the backend is tier-aware
    tiers: tuple[TierStats, ...] = ()
    #: codec ledger, ``None`` unless the backend is compression-aware
    compression: CompressionStats | None = None

    @property
    def total_time(self) -> float:
        """Raw machine time: every advance, replay and backward charged."""
        return self.forward_cost + self.replay_cost + self.backward_cost

    @property
    def total_forward_executions(self) -> int:
        return self.forward_steps + self.replay_steps

    def tier(self, name: str) -> TierStats:
        """The ledger of one storage tier, by name."""
        for t in self.tiers:
            if t.name == name:
                return t
        raise KeyError(f"no tier {name!r}; have {[t.name for t in self.tiers]}")
