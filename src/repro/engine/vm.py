"""The schedule virtual machine: one dispatch loop for every backend.

:func:`execute` runs a :class:`~repro.checkpointing.schedule.Schedule`
against any :class:`~repro.engine.backend.Backend`, enforcing every
structural invariant in exactly one place:

* ADVANCE must move the cursor strictly forward and stay within the
  chain;
* SNAPSHOT must target a slot inside the budget that is **not already
  occupied** (a silent overwrite would leak the previous payload);
* RESTORE / FREE must target an occupied slot;
* ADJOINT must consume backward steps in descending order with the
  cursor parked at ``x_{step-1}``;
* at the end no backward may be pending and every step must have been
  executed forward at least once.

Violations raise :class:`~repro.errors.ExecutionError` with one
canonical message per rule — the simulator and the tensor executor used
to word these differently; both now share this loop.

The optional ``on_step`` callback receives a
:class:`~repro.engine.stats.StepStats` after every action.  When it is
``None`` the loop skips all per-step bookkeeping beyond the invariants,
so an untraced run pays no observation overhead.

Passing ``compiled=`` (a :class:`~repro.engine.program.CompiledProgram`
produced from the same schedule) switches to the compiled fast path:
invariants were already proven at compile time, so execution dispatches
on int opcodes with no checks — and on an untraced plain
:class:`~repro.engine.sim.SimBackend` the whole program is evaluated in
a handful of NumPy array passes.  Both compiled paths return stats that
are bit-identical to the interpreted loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..checkpointing.actions import ActionKind
from ..checkpointing.schedule import Schedule
from ..errors import ExecutionError
from ..obs.tracer import Tracer
from .backend import Backend
from .stats import RunStats, StepStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .program import CompiledProgram

__all__ = ["execute"]

StepHook = Callable[[StepStats], None]


def execute(
    schedule: Schedule,
    backend: Backend,
    *,
    on_step: StepHook | None = None,
    compiled: "CompiledProgram | None" = None,
) -> RunStats:
    """Run ``schedule`` on ``backend`` and return unified measurements.

    Raises :class:`~repro.errors.ExecutionError` on any invariant
    violation; the backend sees only actions whose preconditions hold.
    When ``compiled`` is given it must have been compiled from
    ``schedule``; execution then skips per-action invariant checks
    (they were proven at compile time) and, for an untraced plain
    :class:`~repro.engine.sim.SimBackend`, runs fully vectorized.
    """
    l = backend.chain_length
    if schedule.length != l:
        raise ExecutionError(f"schedule length {schedule.length} != chain length {l}")
    if compiled is not None:
        if not compiled.matches(schedule):
            raise ExecutionError(
                f"compiled program {compiled.strategy!r} "
                f"(l={compiled.length}, slots={compiled.slots}, "
                f"{len(compiled)} ops) does not match schedule "
                f"{schedule.strategy!r} (l={schedule.length}, "
                f"slots={schedule.slots}, {len(schedule.actions)} ops)"
            )
        from .program import run_compiled_sim
        from .sim import SimBackend

        if on_step is None and type(backend) is SimBackend:
            return run_compiled_sim(compiled, backend)
        return _execute_compiled(compiled, backend, on_step)

    budget = schedule.slots
    cursor = 0  # the chain input x_0 starts in the cursor
    slots: dict[int, int] = {}  # slot id -> activation index (authoritative)
    pending = l  # next backward step to perform
    forward_steps = 0
    forward_cost = 0.0
    replay_steps = 0
    replay_cost = 0.0
    backward_cost = 0.0
    transfer_seconds = 0.0
    executions = [0] * l
    snapshots_taken = 0
    restores = 0
    peak_slots = 0
    observe = on_step is not None
    now = Tracer.now
    t0 = 0.0

    backend.begin()
    for pos, act in enumerate(schedule.actions):
        kind = act.kind
        arg = act.arg
        if observe:
            t0 = now()
        step_transfer = 0.0
        if kind is ActionKind.ADVANCE:
            if not cursor < arg <= l:
                raise ExecutionError(
                    f"action {pos}: ADVANCE to {arg} from cursor {cursor} (l={l})"
                )
            for i in range(cursor, arg):
                executions[i] += 1
            forward_steps += arg - cursor
            forward_cost += backend.advance(cursor, arg)
            cursor = arg
        elif kind is ActionKind.SNAPSHOT:
            if arg >= budget:
                raise ExecutionError(
                    f"action {pos}: SNAPSHOT into slot {arg} exceeds budget {budget}"
                )
            held = slots.get(arg)
            if held is not None:
                raise ExecutionError(
                    f"action {pos}: SNAPSHOT into occupied slot {arg} "
                    f"(holds x_{held}) without FREE"
                )
            slots[arg] = cursor
            step_transfer = backend.snapshot(arg, cursor)
            transfer_seconds += step_transfer
            snapshots_taken += 1
            if len(slots) > peak_slots:
                peak_slots = len(slots)
        elif kind is ActionKind.RESTORE:
            held = slots.get(arg)
            if held is None:
                raise ExecutionError(f"action {pos}: RESTORE from empty slot {arg}")
            cursor = held
            step_transfer = backend.restore(arg, held)
            transfer_seconds += step_transfer
            restores += 1
        elif kind is ActionKind.FREE:
            held = slots.pop(arg, None)
            if held is None:
                raise ExecutionError(f"action {pos}: FREE of empty slot {arg}")
            backend.free(arg, held)
        elif kind is ActionKind.ADJOINT:
            step = arg
            if step != pending:
                raise ExecutionError(
                    f"action {pos}: ADJOINT({step}) but pending backward is {pending}"
                )
            if cursor != step - 1:
                raise ExecutionError(
                    f"action {pos}: ADJOINT({step}) requires cursor at {step - 1}, "
                    f"cursor is {cursor}"
                )
            executions[step - 1] += 1
            rc, bc = backend.adjoint(step)
            replay_steps += 1
            replay_cost += rc
            backward_cost += bc
            pending -= 1
        else:  # pragma: no cover - exhaustive enum
            raise ExecutionError(f"action {pos}: unknown kind {kind}")
        if observe:
            on_step(
                StepStats(
                    pos=pos,
                    kind=kind,
                    arg=arg,
                    cursor=cursor,
                    occupied_slots=len(slots),
                    forward_steps=forward_steps,
                    replay_steps=replay_steps,
                    backwards_done=l - pending,
                    slot_bytes=backend.slot_bytes,
                    live_bytes=backend.live_bytes,
                    transfer_seconds=step_transfer,
                    started=t0,
                )
            )

    if pending != 0:
        raise ExecutionError(
            f"schedule finished with backward steps {pending}..1 still pending"
        )
    if any(e < 1 for e in executions):
        missing = [i + 1 for i, e in enumerate(executions) if e < 1]
        raise ExecutionError(f"steps never executed forward: {missing}")

    return RunStats(
        strategy=schedule.strategy,
        length=l,
        forward_steps=forward_steps,
        forward_cost=forward_cost,
        replay_steps=replay_steps,
        replay_cost=replay_cost,
        backward_cost=backward_cost,
        executions=tuple(executions),
        peak_slot_bytes=backend.peak_slot_bytes,
        peak_bytes=backend.peak_bytes,
        peak_slots=peak_slots,
        snapshots_taken=snapshots_taken,
        restores=restores,
        transfer_seconds=transfer_seconds,
        tiers=backend.tier_stats(),
        compression=backend.compression_stats(),
    )


def _execute_compiled(
    program: "CompiledProgram",
    backend: Backend,
    on_step: StepHook | None,
) -> RunStats:
    """Checkless int-opcode dispatch for any backend / traced run.

    The compiler proved every invariant and precomputed each action's
    operand (``aux``) and post-state, so this loop only performs the
    backend calls — in exactly the order and with exactly the arguments
    the interpreted loop would use, keeping float accumulation and
    backend state bit-identical.
    """
    from .program import (
        KIND_BY_OP,
        OP_ADJOINT,
        OP_ADVANCE,
        OP_FREE,
        OP_RESTORE,
        OP_SNAPSHOT,
    )

    l = program.length
    ops = program.ops_list
    args = program.args_list
    aux = program.aux_list
    forward_cost = 0.0
    replay_cost = 0.0
    backward_cost = 0.0
    transfer_seconds = 0.0
    observe = on_step is not None
    now = Tracer.now
    t0 = 0.0

    backend.begin()
    for pos in range(len(ops)):
        op = ops[pos]
        arg = args[pos]
        a = aux[pos]
        if observe:
            t0 = now()
        step_transfer = 0.0
        if op == OP_ADVANCE:
            forward_cost += backend.advance(a, arg)
        elif op == OP_SNAPSHOT:
            step_transfer = backend.snapshot(arg, a)
            transfer_seconds += step_transfer
        elif op == OP_RESTORE:
            step_transfer = backend.restore(arg, a)
            transfer_seconds += step_transfer
        elif op == OP_FREE:
            backend.free(arg, a)
        else:  # OP_ADJOINT
            rc, bc = backend.adjoint(arg)
            replay_cost += rc
            backward_cost += bc
        if observe:
            on_step(
                StepStats(
                    pos=pos,
                    kind=KIND_BY_OP[op],
                    arg=arg,
                    cursor=int(program.cursor_after[pos]),
                    occupied_slots=int(program.occupied_after[pos]),
                    forward_steps=int(program.forward_cum[pos]),
                    replay_steps=int(program.replay_cum[pos]),
                    backwards_done=int(program.backwards_cum[pos]),
                    slot_bytes=backend.slot_bytes,
                    live_bytes=backend.live_bytes,
                    transfer_seconds=step_transfer,
                    started=t0,
                )
            )

    return RunStats(
        strategy=program.strategy,
        length=l,
        forward_steps=program.forward_steps,
        forward_cost=forward_cost,
        replay_steps=int(program.adjoint_steps.size),
        replay_cost=replay_cost,
        backward_cost=backward_cost,
        executions=program.executions,
        peak_slot_bytes=backend.peak_slot_bytes,
        peak_bytes=backend.peak_bytes,
        peak_slots=program.peak_slots,
        snapshots_taken=program.snapshots_taken,
        restores=program.restores,
        transfer_seconds=transfer_seconds,
        tiers=backend.tier_stats(),
        compression=backend.compression_stats(),
    )
