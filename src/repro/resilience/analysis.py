"""Crash-recovery analysis: expected makespan and interval sweeps.

Three questions a deployment planner asks before shipping a training
campaign to a flaky node:

1. *How long will it really take?* — :func:`daly_expected_makespan`
   gives the closed-form first-order answer for exponential failures
   (Daly's segment model: each interval of work ``τ`` plus write cost
   ``δ`` takes ``(M + R)·(e^{(τ+δ)/M} − 1)`` in expectation at MTBF
   ``M`` and reboot cost ``R``); :func:`simulate_makespan` measures the
   same quantity by Monte-Carlo replay of the crash/rollback timeline.

2. *How often should we snapshot?* — :func:`sweep_intervals` runs the
   replay across an interval grid centred on the Young/Daly optimum
   ``τ* = √(2·δ·M)`` and reports predicted vs measured makespans; the
   measured minimum landing at the grid point nearest τ* is the
   empirical recovery of the classic result (an acceptance test of this
   subsystem).

3. *How bad can the node be?* — :func:`overhead_vs_fault_rate` sweeps
   MTBF at the per-MTBF-optimal interval, pricing how the wall-clock
   overhead grows as failures become more frequent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import PlanningError
from ..obs import get_tracer
from .faults import FaultModel, PoissonFaults
from .recovery import run_duty_cycle_with_faults
from .snapshot import young_daly_interval

__all__ = [
    "daly_expected_makespan",
    "simulate_makespan",
    "SweepRow",
    "IntervalSweep",
    "sweep_intervals",
    "OverheadRow",
    "overhead_vs_fault_rate",
]


def daly_expected_makespan(
    work_seconds: float,
    interval_seconds: float,
    snapshot_seconds: float,
    restart_seconds: float,
    mtbf_seconds: float,
) -> float:
    """Expected wall time under exponential failures, closed form.

    The work is cut into ``ceil(W/τ)`` segments; a segment that must
    stay up for ``t = τ + δ`` seconds on a node with exponential MTBF
    ``M`` and reboot cost ``R`` takes ``(M + R)·(e^{t/M} − 1)`` in
    expectation (the standard renewal argument behind Daly's higher-
    order interval analysis).  The final, possibly partial segment
    skips the snapshot write, matching the simulator's timeline.
    """
    if work_seconds < 0:
        raise ValueError("work_seconds must be non-negative")
    if interval_seconds <= 0 or mtbf_seconds <= 0:
        raise ValueError("interval and MTBF must be positive")
    if snapshot_seconds < 0 or restart_seconds < 0:
        raise ValueError("costs must be non-negative")
    if work_seconds == 0:
        return 0.0

    def segment(uptime: float) -> float:
        return (mtbf_seconds + restart_seconds) * math.expm1(uptime / mtbf_seconds)

    n_full, rem = divmod(work_seconds, interval_seconds)
    n_full = int(n_full)
    total = 0.0
    if rem > 0:
        total += n_full * segment(interval_seconds + snapshot_seconds)
        total += segment(rem)
    elif n_full > 0:
        total += (n_full - 1) * segment(interval_seconds + snapshot_seconds)
        total += segment(interval_seconds)
    return total


def simulate_makespan(
    work_seconds: float,
    interval_seconds: float,
    snapshot_seconds: float,
    restart_seconds: float,
    faults: FaultModel,
    rng: np.random.Generator,
    trials: int = 50,
) -> float:
    """Mean Monte-Carlo wall time of the crash/rollback replay."""
    if trials < 1:
        raise ValueError("trials must be >= 1")
    total = 0.0
    for _ in range(trials):
        total += run_duty_cycle_with_faults(
            work_seconds,
            faults,
            rng,
            interval_seconds=interval_seconds,
            snapshot_seconds=snapshot_seconds,
            restart_seconds=restart_seconds,
        ).wall_seconds
    return total / trials


@dataclass(frozen=True)
class SweepRow:
    """One interval's predicted and measured makespan."""

    interval_seconds: float
    predicted_seconds: float
    measured_seconds: float


@dataclass(frozen=True)
class IntervalSweep:
    """Interval sweep result, anchored at the Young/Daly optimum."""

    tau_star_seconds: float
    mtbf_seconds: float
    snapshot_seconds: float
    rows: tuple[SweepRow, ...]

    @property
    def best_measured(self) -> SweepRow:
        return min(self.rows, key=lambda r: r.measured_seconds)

    @property
    def best_predicted(self) -> SweepRow:
        return min(self.rows, key=lambda r: r.predicted_seconds)

    def recovers_young_daly(self, within_factor: float = 2.0) -> bool:
        """Did the measured optimum land within ``within_factor`` of τ*?

        The grid is geometric, so "within a factor of 2" means the
        winning interval is τ*'s own grid point or one of its immediate
        neighbours — the empirical recovery of the classic formula.
        """
        ratio = self.best_measured.interval_seconds / self.tau_star_seconds
        return 1.0 / within_factor <= ratio <= within_factor

    def render(self) -> str:
        """ASCII table of the sweep (marks τ* and the measured best)."""
        lines = [
            f"Snapshot-interval sweep: MTBF {self.mtbf_seconds / 3600:.2f} h, "
            f"snapshot cost {self.snapshot_seconds:.2f} s, "
            f"Young/Daly tau* = {self.tau_star_seconds:.1f} s",
            f"{'interval s':>11}{'tau*/x':>8}{'predicted h':>13}{'measured h':>12}{'':>4}",
        ]
        best = self.best_measured
        for r in self.rows:
            mark = " <-*" if r is best else ""
            lines.append(
                f"{r.interval_seconds:>11.1f}{r.interval_seconds / self.tau_star_seconds:>8.2f}"
                f"{r.predicted_seconds / 3600:>13.3f}{r.measured_seconds / 3600:>12.3f}{mark}"
            )
        verdict = "recovered" if self.recovers_young_daly() else "NOT recovered"
        lines.append(f"Young/Daly optimum {verdict} by the measured sweep")
        return "\n".join(lines)


def sweep_intervals(
    work_seconds: float,
    snapshot_seconds: float,
    restart_seconds: float,
    mtbf_seconds: float,
    *,
    grid_factors: tuple[float, ...] = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    trials: int = 60,
    seed: int = 0,
    faults: FaultModel | None = None,
) -> IntervalSweep:
    """Predicted and measured makespan across a τ*-centred interval grid.

    ``grid_factors`` multiply the Young/Daly τ*; ``faults`` defaults to
    :class:`~repro.resilience.faults.PoissonFaults` at the given MTBF
    (the regime where τ* is provably optimal to first order).
    """
    if not grid_factors:
        raise PlanningError("grid_factors must be non-empty")
    tau = young_daly_interval(mtbf_seconds, snapshot_seconds)
    model = faults if faults is not None else PoissonFaults(mtbf_seconds)
    rng = np.random.default_rng(seed)
    rows = []
    with get_tracer().span(
        "interval_sweep", category="recovery", mtbf=mtbf_seconds, tau_star=tau
    ):
        for f in sorted(grid_factors):
            interval = f * tau
            rows.append(
                SweepRow(
                    interval_seconds=interval,
                    predicted_seconds=daly_expected_makespan(
                        work_seconds, interval, snapshot_seconds, restart_seconds, mtbf_seconds
                    ),
                    measured_seconds=simulate_makespan(
                        work_seconds,
                        interval,
                        snapshot_seconds,
                        restart_seconds,
                        model,
                        rng,
                        trials=trials,
                    ),
                )
            )
    return IntervalSweep(
        tau_star_seconds=tau,
        mtbf_seconds=mtbf_seconds,
        snapshot_seconds=snapshot_seconds,
        rows=tuple(rows),
    )


@dataclass(frozen=True)
class OverheadRow:
    """Overhead at one fault rate, snapshotting at that rate's τ*."""

    mtbf_seconds: float
    tau_star_seconds: float
    predicted_overhead: float
    measured_overhead: float


def overhead_vs_fault_rate(
    work_seconds: float,
    snapshot_seconds: float,
    restart_seconds: float,
    mtbfs_seconds: tuple[float, ...],
    *,
    trials: int = 40,
    seed: int = 0,
) -> tuple[OverheadRow, ...]:
    """Wall-clock overhead (makespan/work − 1) as failures densify.

    Each MTBF snapshots at its own Young/Daly optimum — the best case —
    so the curve isolates the *irreducible* price of unreliability.
    """
    rows = []
    rng = np.random.default_rng(seed)
    for mtbf in mtbfs_seconds:
        tau = young_daly_interval(mtbf, snapshot_seconds)
        predicted = daly_expected_makespan(
            work_seconds, tau, snapshot_seconds, restart_seconds, mtbf
        )
        measured = simulate_makespan(
            work_seconds,
            tau,
            snapshot_seconds,
            restart_seconds,
            PoissonFaults(mtbf),
            rng,
            trials=trials,
        )
        rows.append(
            OverheadRow(
                mtbf_seconds=mtbf,
                tau_star_seconds=tau,
                predicted_overhead=predicted / work_seconds - 1.0,
                measured_overhead=measured / work_seconds - 1.0,
            )
        )
    return tuple(rows)
