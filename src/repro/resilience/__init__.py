"""repro.resilience — fault injection, durable snapshots, crash recovery.

The paper's field deployment (Sections III/VI) trains opportunistically
on nodes with intermittent power and preemptive tenants; this package
makes that failure mode a first-class, simulated and *tested* workload:

* :mod:`~repro.resilience.faults` — seeded fault models
  (Poisson/Weibull MTBF, duty-cycle-tied power loss, transient disk
  writes) and an injector that kills a real ``Trainer.fit``;
* :mod:`~repro.resilience.snapshot` — full training-state snapshots
  (params + optimizer + RNG cursor + epoch/batch position) in versioned
  JSON, with Young/Daly and fixed-interval write policies priced by
  :class:`~repro.edge.storage.StorageProfile`;
* :mod:`~repro.resilience.recovery` — bit-identical resume for
  ``Trainer`` and crash/rollback replay for the duty-cycle timeline;
* :mod:`~repro.resilience.analysis` — expected makespan, snapshot-
  interval sweeps against τ* = √(2δM), overhead vs fault rate.

Fault and recovery events flow through :mod:`repro.obs` (categories
``fault`` and ``recovery``; counters ``resilience.*``) so any traced
run shows its crashes next to its epochs.  See ``docs/resilience.md``.
"""

from .analysis import (
    IntervalSweep,
    OverheadRow,
    SweepRow,
    daly_expected_makespan,
    overhead_vs_fault_rate,
    simulate_makespan,
    sweep_intervals,
)
from .faults import (
    FaultInjector,
    FaultModel,
    PoissonFaults,
    PowerLossFaults,
    TransientDiskFaults,
    WeibullFaults,
)
from .recovery import (
    FaultyRunResult,
    RecoveryReport,
    fit_with_recovery,
    run_duty_cycle_with_faults,
)
from .snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    FixedIntervalPolicy,
    SnapshotPolicy,
    TrainingSnapshot,
    YoungDalyPolicy,
    capture_snapshot,
    read_snapshot,
    restore_snapshot,
    snapshot_from_json,
    snapshot_nbytes,
    snapshot_to_json,
    write_snapshot,
    young_daly_interval,
)

__all__ = [
    "FaultModel",
    "PoissonFaults",
    "WeibullFaults",
    "PowerLossFaults",
    "TransientDiskFaults",
    "FaultInjector",
    "SNAPSHOT_FORMAT_VERSION",
    "TrainingSnapshot",
    "capture_snapshot",
    "restore_snapshot",
    "snapshot_to_json",
    "snapshot_from_json",
    "write_snapshot",
    "read_snapshot",
    "snapshot_nbytes",
    "young_daly_interval",
    "SnapshotPolicy",
    "FixedIntervalPolicy",
    "YoungDalyPolicy",
    "RecoveryReport",
    "fit_with_recovery",
    "FaultyRunResult",
    "run_duty_cycle_with_faults",
    "daly_expected_makespan",
    "simulate_makespan",
    "SweepRow",
    "IntervalSweep",
    "sweep_intervals",
    "OverheadRow",
    "overhead_vs_fault_rate",
]
