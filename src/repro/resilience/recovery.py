"""Crash recovery: resume a Trainer from snapshots, replay simulators.

Two recovery surfaces share the fault models:

* :func:`fit_with_recovery` drives a *real*
  :class:`~repro.autodiff.trainer.Trainer` through faults: a snapshot
  policy decides when to pay the durable-write cost, a
  :class:`~repro.resilience.faults.FaultInjector` kills the run, and
  every crash rolls the trainer back to the latest snapshot and resumes
  at its :class:`~repro.autodiff.trainer.FitCursor`.  Because the batch
  order is a pure function of ``(shuffle_seed, epoch)`` and snapshots
  carry the partial-epoch accumulators, the recovered loss trajectory
  is **bit-identical** to the uninterrupted run — the property the CI
  job and ``tests/test_resilience_recovery.py`` pin down.

* :func:`run_duty_cycle_with_faults` replays the *simulated* timeline:
  training computes in snapshot-interval segments, preempted by the
  duty-cycle model and killed by a fault model; un-snapshotted work is
  lost and recomputed after a reboot.  This is the Monte-Carlo engine
  behind :mod:`repro.resilience.analysis`.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

import numpy as np

from ..autodiff.data import Dataset
from ..autodiff.trainer import EpochRecord, FitCursor, Trainer
from ..edge.simulator import DutyCycleSimulator
from ..engine.hooks import compose
from ..errors import FaultError, PlanningError
from ..obs import get_metrics, get_tracer
from .faults import FaultInjector, FaultModel, TransientDiskFaults
from .snapshot import (
    SnapshotPolicy,
    TrainingSnapshot,
    capture_snapshot,
    restore_snapshot,
    write_snapshot,
)

__all__ = [
    "RecoveryReport",
    "fit_with_recovery",
    "FaultyRunResult",
    "run_duty_cycle_with_faults",
]


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of a fault-ridden training run that reached the end."""

    history: tuple[EpochRecord, ...]
    faults: int
    restores: int
    snapshots: int
    snapshot_write_failures: int
    #: optimizer steps recomputed because they postdated the last snapshot.
    lost_steps: int
    final_step: int

    @property
    def total_steps_executed(self) -> int:
        """Useful work plus recomputed work."""
        return self.final_step + self.lost_steps


def fit_with_recovery(
    trainer: Trainer,
    data: Dataset,
    *,
    policy: SnapshotPolicy,
    injector: FaultInjector | None = None,
    snapshot_path: str | pathlib.Path | None = None,
    disk_faults: TransientDiskFaults | None = None,
    disk_rng: np.random.Generator | None = None,
    max_faults: int = 1000,
) -> RecoveryReport:
    """Train to completion through injected crashes.

    A step-0 snapshot is taken up front (so a crash before the first
    policy-due write rolls back to a well-defined state), then
    ``trainer.fit`` runs with an ``on_step`` hook composed — via the
    engine's :func:`~repro.engine.hooks.compose` utility — from three
    independent step callbacks: a progress marker, the ``injector``
    strike check, and the policy-driven snapshot capture (optionally
    persisted durably to ``snapshot_path`` and optionally subject to
    transient ``disk_faults``; a failed write keeps the previous
    snapshot).  On :class:`~repro.errors.FaultError` the trainer is
    restored from the latest surviving snapshot and resumed from its
    cursor.

    Raises :class:`~repro.errors.PlanningError` after ``max_faults``
    crashes (a fault schedule denser than progress would loop forever).
    """
    if disk_faults is not None and disk_rng is None:
        raise PlanningError("disk_faults needs a disk_rng to sample from")
    metrics = get_metrics()
    tracer = get_tracer()
    latest: TrainingSnapshot = capture_snapshot(trainer, FitCursor())
    if snapshot_path is not None:
        write_snapshot(snapshot_path, latest)
    counts = {"faults": 0, "restores": 0, "snapshots": 1, "write_failures": 0, "lost": 0}
    state = {"latest": latest, "final_step": 0}

    def mark_progress(cursor: FitCursor, loss: float) -> None:
        state["final_step"] = cursor.step

    def strike(cursor: FitCursor, loss: float) -> None:
        if injector is not None:
            injector.check(cursor.step)

    def snapshot_if_due(cursor: FitCursor, loss: float) -> None:
        if not policy.due(cursor.step, state["latest"].cursor.step):
            return
        if disk_faults is not None and disk_faults.write_fails(disk_rng):
            counts["write_failures"] += 1
            metrics.counter("resilience.snapshot_write_failures").inc()
            if tracer.enabled:
                tracer.event(
                    "snapshot_write_failed", category="fault", step=cursor.step
                )
            return
        snap = capture_snapshot(trainer, cursor)
        if snapshot_path is not None:
            write_snapshot(snapshot_path, snap)
        state["latest"] = snap
        counts["snapshots"] += 1

    # Ordering matters: the injector must see the step *before* a
    # snapshot could cover it, preserving the crash->rollback semantics.
    on_step = compose(mark_progress, strike, snapshot_if_due)

    with tracer.span("fit_with_recovery", category="recovery") as span:
        cursor: FitCursor | None = None
        while True:
            try:
                history = trainer.fit(data, cursor=cursor, on_step=on_step)
                break
            except FaultError as exc:
                counts["faults"] += 1
                if counts["faults"] > max_faults:
                    raise PlanningError(
                        f"gave up after {max_faults} faults — fault rate outpaces "
                        "progress at this snapshot interval"
                    ) from exc
                crashed_at = exc.step if exc.step is not None else state["final_step"]
                lost = crashed_at - state["latest"].cursor.step
                counts["lost"] += lost
                metrics.gauge("resilience.lost_steps").set(counts["lost"])
                cursor = restore_snapshot(trainer, state["latest"])
                counts["restores"] += 1
        span.set_tag("faults", counts["faults"])
        span.set_tag("lost_steps", counts["lost"])
    return RecoveryReport(
        history=tuple(history),
        faults=counts["faults"],
        restores=counts["restores"],
        snapshots=counts["snapshots"],
        snapshot_write_failures=counts["write_failures"],
        lost_steps=counts["lost"],
        final_step=state["final_step"],
    )


# ---------------------------------------------------------------------------
# Simulated timeline: duty cycle + crashes + rollback
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultyRunResult:
    """A training campaign's timeline under preemption and crashes."""

    compute_seconds: float
    wall_seconds: float
    crashes: int
    #: compute that had to be redone (work since the last snapshot).
    lost_compute_seconds: float
    snapshot_overhead_seconds: float
    restart_overhead_seconds: float
    preemptions: int

    @property
    def overhead_factor(self) -> float:
        """Wall time relative to the fault-free, snapshot-free compute."""
        if self.compute_seconds <= 0:
            return 1.0
        return self.wall_seconds / self.compute_seconds


def run_duty_cycle_with_faults(
    compute_seconds: float,
    faults: FaultModel,
    rng: np.random.Generator,
    *,
    interval_seconds: float,
    snapshot_seconds: float,
    restart_seconds: float = 60.0,
    sim: DutyCycleSimulator | None = None,
) -> FaultyRunResult:
    """Accumulate ``compute_seconds`` of training despite crashes.

    The run proceeds in snapshot intervals: each segment costs its
    compute plus the durable-write δ (skipped after the final segment);
    a failure inside a segment loses the segment's progress — including
    a crash *during* the snapshot write, which loses the whole segment —
    and costs a reboot.  Failure clocks restart at each segment
    boundary (exact for the memoryless :class:`PoissonFaults
    <repro.resilience.faults.PoissonFaults>`; the standard
    replacement-renewal approximation otherwise).  When ``sim`` is
    given, every second of compute/snapshot work is additionally
    stretched by the duty-cycle preemption model.
    """
    if compute_seconds < 0:
        raise ValueError("compute_seconds must be non-negative")
    if interval_seconds <= 0 or snapshot_seconds < 0 or restart_seconds < 0:
        raise ValueError("interval must be positive; costs non-negative")

    def busy(seconds: float) -> tuple[float, int]:
        """Wall time (and preemption count) to get ``seconds`` of work."""
        if sim is None:
            return seconds, 0
        r = sim.run(seconds)
        return r.wall_seconds, r.preemptions

    done = 0.0
    wall = 0.0
    crashes = 0
    lost = 0.0
    snap_overhead = 0.0
    restart_overhead = 0.0
    preemptions = 0
    while done < compute_seconds:
        seg = min(interval_seconds, compute_seconds - done)
        final = done + seg >= compute_seconds
        need = seg + (0.0 if final else snapshot_seconds)
        time_to_failure = faults.sample_time_to_failure(rng)
        if time_to_failure >= need:
            w, p = busy(need)
            wall += w
            preemptions += p
            done += seg
            snap_overhead += need - seg
        else:
            crashes += 1
            w, p = busy(time_to_failure)
            wall += w
            preemptions += p
            lost += min(time_to_failure, seg)
            wall += restart_seconds
            restart_overhead += restart_seconds
    m = get_metrics()
    m.counter("resilience.sim_crashes").inc(crashes)
    m.histogram("resilience.sim_overhead_factor").observe(
        wall / compute_seconds if compute_seconds else 1.0
    )
    return FaultyRunResult(
        compute_seconds=compute_seconds,
        wall_seconds=wall,
        crashes=crashes,
        lost_compute_seconds=lost,
        snapshot_overhead_seconds=snap_overhead,
        restart_overhead_seconds=restart_overhead,
        preemptions=preemptions,
    )
