"""Durable training snapshots: full state, versioned JSON, policies.

Revolve's checkpoints are *memory slots* traded against recompute;
the snapshots here are the other meaning of the word — durable images
of the whole training state written to flash so a crash loses minutes,
not days.  One snapshot captures everything a bit-identical resume
needs:

* every layer parameter (raw little-endian bytes, exact);
* the optimizer's internal state (momentum/Adam moments, step count);
* the RNG cursor — because :meth:`Trainer.fit
  <repro.autodiff.trainer.Trainer.fit>` derives epoch ``k``'s batch
  order purely from ``(shuffle_seed, k)``, the cursor is just the
  :class:`~repro.autodiff.trainer.FitCursor` (epoch, batch, step,
  partial-epoch accumulators), no generator internals;
* the completed epoch history.

Serialization follows the :mod:`repro.checkpointing.serialize`
conventions: a single versioned JSON object, strict validation on load,
typed :class:`~repro.errors.SnapshotError` for anything malformed —
plus a CRC-32 over the array payloads so corrupted or truncated files
fail loudly instead of resuming garbage.

Snapshot-interval *policies* decide when to pay the write cost δ:
:class:`FixedIntervalPolicy` every N steps, or :class:`YoungDalyPolicy`
at the classic optimum ``τ* = √(2·δ·MTBF)`` with δ priced by
:meth:`StorageProfile.write_seconds
<repro.edge.storage.StorageProfile.write_seconds>`.
"""

from __future__ import annotations

import base64
import binascii
import json
import math
import os
import pathlib
from dataclasses import dataclass

import numpy as np

from ..autodiff.trainer import EpochRecord, FitCursor, Trainer
from ..edge.storage import SD_CARD, StorageProfile
from ..errors import SnapshotError
from ..obs import get_metrics, get_tracer

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "TrainingSnapshot",
    "capture_snapshot",
    "restore_snapshot",
    "snapshot_to_json",
    "snapshot_from_json",
    "write_snapshot",
    "read_snapshot",
    "snapshot_nbytes",
    "young_daly_interval",
    "SnapshotPolicy",
    "FixedIntervalPolicy",
    "YoungDalyPolicy",
]

SNAPSHOT_FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Array codec (exact, with integrity accounting)
# ---------------------------------------------------------------------------


def _encode_array(a: np.ndarray) -> dict:
    data = np.ascontiguousarray(a).tobytes()
    return {
        "dtype": str(a.dtype),
        "shape": list(a.shape),
        "data": base64.b64encode(data).decode("ascii"),
    }


def _decode_array(obj: object, where: str) -> np.ndarray:
    if not isinstance(obj, dict) or not {"dtype", "shape", "data"} <= set(obj):
        raise SnapshotError(f"{where}: array entry malformed")
    try:
        raw = base64.b64decode(obj["data"], validate=True)
        dtype = np.dtype(obj["dtype"])
        shape = tuple(int(s) for s in obj["shape"])
    except (binascii.Error, TypeError, ValueError) as exc:
        raise SnapshotError(f"{where}: undecodable array: {exc}") from exc
    expect = dtype.itemsize * math.prod(shape)
    if len(raw) != expect:
        raise SnapshotError(
            f"{where}: truncated array payload ({len(raw)} B, expected {expect} B)"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def _array_crc(crc: int, a: np.ndarray) -> int:
    return binascii.crc32(np.ascontiguousarray(a).tobytes(), crc)


# ---------------------------------------------------------------------------
# The snapshot object
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrainingSnapshot:
    """A complete, resumable image of a :class:`Trainer` mid-fit."""

    cursor: FitCursor
    #: ``(layer_name, param_name) -> array`` copies of every parameter.
    params: dict[tuple[str, str], np.ndarray]
    #: optimizer class name, for restore-time compatibility checking.
    optimizer_type: str
    #: :meth:`Optimizer.state_dict <repro.autodiff.optim.Optimizer.state_dict>` copy.
    optimizer_state: dict
    history: tuple[EpochRecord, ...]
    #: shuffle seed the run was started with (resume must match).
    shuffle_seed: int

    @property
    def nbytes(self) -> int:
        """Payload size: parameters plus optimizer arrays."""
        n = sum(int(a.nbytes) for a in self.params.values())
        for v in self.optimizer_state.values():
            if isinstance(v, dict):
                n += sum(int(a.nbytes) for a in v.values())
        return n


def capture_snapshot(trainer: Trainer, cursor: FitCursor) -> TrainingSnapshot:
    """Copy the trainer's full state at ``cursor`` into a snapshot.

    Arrays are deep-copied, so the snapshot stays valid while training
    moves on.  Records a ``recovery``-category ``snapshot_capture``
    trace event and bumps the ``resilience.snapshots`` counter.
    """
    params = {
        (layer.name, pname): value.copy()
        for layer in trainer.net.layers
        for pname, value in layer.params.items()
    }
    snap = TrainingSnapshot(
        cursor=cursor,
        params=params,
        optimizer_type=type(trainer.optimizer).__name__,
        optimizer_state=trainer.optimizer.state_dict(),
        history=tuple(trainer.history),
        shuffle_seed=trainer.config.shuffle_seed,
    )
    get_metrics().counter("resilience.snapshots").inc()
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "snapshot_capture",
            category="recovery",
            step=cursor.step,
            epoch=cursor.epoch,
            nbytes=snap.nbytes,
        )
    return snap


def restore_snapshot(trainer: Trainer, snap: TrainingSnapshot) -> FitCursor:
    """Load ``snap`` into the trainer, in place; returns the resume cursor.

    Validates structural compatibility (same layers/params/shapes, same
    optimizer family, same shuffle seed) and raises
    :class:`~repro.errors.SnapshotError` on any mismatch — resuming a
    different model from a stale snapshot must never half-succeed.
    """
    if snap.shuffle_seed != trainer.config.shuffle_seed:
        raise SnapshotError(
            f"snapshot was taken with shuffle_seed={snap.shuffle_seed}, "
            f"trainer has {trainer.config.shuffle_seed}"
        )
    if snap.optimizer_type != type(trainer.optimizer).__name__:
        raise SnapshotError(
            f"snapshot optimizer {snap.optimizer_type!r} != "
            f"trainer optimizer {type(trainer.optimizer).__name__!r}"
        )
    live = {
        (layer.name, pname): value
        for layer in trainer.net.layers
        for pname, value in layer.params.items()
    }
    if set(live) != set(snap.params):
        missing = set(live) ^ set(snap.params)
        raise SnapshotError(f"snapshot/net parameter mismatch: {sorted(missing)[:4]}")
    for key, stored in snap.params.items():
        if live[key].shape != stored.shape:
            raise SnapshotError(
                f"parameter {key}: shape {stored.shape} != live {live[key].shape}"
            )
        live[key][...] = stored
    try:
        trainer.optimizer.load_state_dict(snap.optimizer_state)
    except (KeyError, ValueError, TypeError) as exc:
        raise SnapshotError(f"optimizer state does not load: {exc}") from exc
    trainer.history[:] = list(snap.history)
    trainer._step = snap.cursor.step
    get_metrics().counter("resilience.restores").inc()
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "snapshot_restore",
            category="recovery",
            step=snap.cursor.step,
            epoch=snap.cursor.epoch,
        )
    return snap.cursor


# ---------------------------------------------------------------------------
# Serialization (checkpointing.serialize conventions)
# ---------------------------------------------------------------------------


def snapshot_to_json(snap: TrainingSnapshot, indent: int | None = None) -> str:
    """Serialize a snapshot to the versioned JSON format."""
    crc = 0
    params = []
    for (layer, pname), a in sorted(snap.params.items()):
        params.append([layer, pname, _encode_array(a)])
        crc = _array_crc(crc, a)
    opt_state: dict = {}
    for key, value in snap.optimizer_state.items():
        if isinstance(value, dict):
            items = []
            for (layer, pname), a in sorted(value.items()):
                arr = np.asarray(a)
                items.append([layer, pname, _encode_array(arr)])
                crc = _array_crc(crc, arr)
            opt_state[key] = {"kind": "gradmap", "items": items}
        elif isinstance(value, (int, float)):
            opt_state[key] = {"kind": "scalar", "value": value}
        else:
            raise SnapshotError(
                f"optimizer state field {key!r} has unserializable type "
                f"{type(value).__name__}"
            )
    c = snap.cursor
    payload = {
        "version": SNAPSHOT_FORMAT_VERSION,
        "cursor": {
            "epoch": c.epoch,
            "batch": c.batch,
            "step": c.step,
            "loss_sum": c.loss_sum,
            "peak_bytes": c.peak_bytes,
        },
        "shuffle_seed": snap.shuffle_seed,
        "params": params,
        "optimizer": {"type": snap.optimizer_type, "state": opt_state},
        "history": [[r.epoch, r.mean_loss, r.peak_bytes] for r in snap.history],
        "crc32": crc,
    }
    return json.dumps(payload, indent=indent)


def snapshot_from_json(text: str) -> TrainingSnapshot:
    """Parse and integrity-check a serialized snapshot.

    Raises :class:`~repro.errors.SnapshotError` — never a bare
    ``json``/``numpy`` stack trace — on malformed, corrupted or
    truncated input.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"invalid snapshot JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SnapshotError("snapshot JSON must be an object")
    version = payload.get("version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(f"unsupported snapshot format version {version!r}")
    for key in ("cursor", "shuffle_seed", "params", "optimizer", "history", "crc32"):
        if key not in payload:
            raise SnapshotError(f"snapshot JSON missing {key!r}")
    raw_cursor = payload["cursor"]
    if not isinstance(raw_cursor, dict):
        raise SnapshotError("cursor must be an object")
    try:
        cursor = FitCursor(
            epoch=int(raw_cursor["epoch"]),
            batch=int(raw_cursor["batch"]),
            step=int(raw_cursor["step"]),
            loss_sum=float(raw_cursor["loss_sum"]),
            peak_bytes=int(raw_cursor["peak_bytes"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed cursor: {exc}") from exc

    crc = 0
    params: dict[tuple[str, str], np.ndarray] = {}
    if not isinstance(payload["params"], list):
        raise SnapshotError("params must be a list")
    for i, item in enumerate(payload["params"]):
        if not (isinstance(item, list) and len(item) == 3):
            raise SnapshotError(f"param {i} must be a [layer, name, array] triple")
        layer, pname, enc = item
        a = _decode_array(enc, f"param {layer}.{pname}")
        params[(str(layer), str(pname))] = a
        crc = _array_crc(crc, a)

    raw_opt = payload["optimizer"]
    if not (isinstance(raw_opt, dict) and "type" in raw_opt and "state" in raw_opt):
        raise SnapshotError("optimizer section malformed")
    opt_state: dict = {}
    for key, entry in raw_opt["state"].items():
        if not isinstance(entry, dict) or "kind" not in entry:
            raise SnapshotError(f"optimizer state field {key!r} malformed")
        if entry["kind"] == "scalar":
            opt_state[key] = entry.get("value")
        elif entry["kind"] == "gradmap":
            table = {}
            for item in entry.get("items", ()):
                if not (isinstance(item, list) and len(item) == 3):
                    raise SnapshotError(f"optimizer field {key!r}: malformed entry")
                layer, pname, enc = item
                a = _decode_array(enc, f"optimizer {key}[{layer}.{pname}]")
                table[(str(layer), str(pname))] = a
                crc = _array_crc(crc, a)
            opt_state[key] = table
        else:
            raise SnapshotError(f"optimizer state field {key!r}: unknown kind")

    if crc != payload["crc32"]:
        raise SnapshotError(
            f"snapshot payload CRC mismatch (stored {payload['crc32']}, "
            f"computed {crc}) — file is corrupted"
        )
    history = []
    if not isinstance(payload["history"], list):
        raise SnapshotError("history must be a list")
    for i, item in enumerate(payload["history"]):
        if not (isinstance(item, list) and len(item) == 3):
            raise SnapshotError(f"history entry {i} must be [epoch, loss, peak]")
        history.append(
            EpochRecord(epoch=int(item[0]), mean_loss=float(item[1]), peak_bytes=int(item[2]))
        )
    return TrainingSnapshot(
        cursor=cursor,
        params=params,
        optimizer_type=str(raw_opt["type"]),
        optimizer_state=opt_state,
        history=tuple(history),
        shuffle_seed=int(payload["shuffle_seed"]),
    )


def write_snapshot(path: str | pathlib.Path, snap: TrainingSnapshot) -> int:
    """Atomically write a snapshot file; returns bytes written.

    Write-then-rename, so a crash mid-write leaves the previous durable
    snapshot intact — the invariant the whole recovery story rests on.
    """
    path = pathlib.Path(path)
    text = snapshot_to_json(snap)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
    return len(text)


def read_snapshot(path: str | pathlib.Path) -> TrainingSnapshot:
    """Load a snapshot file (typed errors for missing/corrupt files)."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    return snapshot_from_json(text)


def snapshot_nbytes(trainer: Trainer) -> int:
    """Predicted durable-snapshot payload size for a trainer.

    Parameters plus optimizer state — the quantity to feed a
    :class:`~repro.edge.storage.StorageProfile` for the Young/Daly δ.
    """
    return trainer.net.param_bytes + trainer.optimizer.state_bytes


# ---------------------------------------------------------------------------
# Interval policies
# ---------------------------------------------------------------------------


def young_daly_interval(mtbf_seconds: float, snapshot_seconds: float) -> float:
    """The Young/Daly optimal snapshot interval ``τ* = √(2·δ·MTBF)``."""
    if mtbf_seconds <= 0 or snapshot_seconds <= 0:
        raise ValueError("MTBF and snapshot cost must be positive")
    return math.sqrt(2.0 * snapshot_seconds * mtbf_seconds)


class SnapshotPolicy:
    """Decides, in optimizer steps, when the next durable write is due."""

    #: steps between durable snapshots (subclasses compute it).
    interval_steps: int = 1

    def due(self, step: int, last_snapshot_step: int) -> bool:
        """True when ``step`` should pay the write cost."""
        return step - last_snapshot_step >= self.interval_steps


class FixedIntervalPolicy(SnapshotPolicy):
    """Snapshot every ``interval_steps`` optimizer steps."""

    def __init__(self, interval_steps: int) -> None:
        if interval_steps < 1:
            raise ValueError("interval_steps must be >= 1")
        self.interval_steps = int(interval_steps)


class YoungDalyPolicy(SnapshotPolicy):
    """Snapshot at the Young/Daly optimum, discretized to steps.

    ``snapshot_seconds`` defaults to pricing ``snapshot_bytes`` on the
    given storage profile (δ = write cost of the durable state), and
    ``step_seconds`` converts τ* from seconds into optimizer steps.
    """

    def __init__(
        self,
        mtbf_seconds: float,
        step_seconds: float,
        *,
        snapshot_bytes: int | None = None,
        snapshot_seconds: float | None = None,
        storage: StorageProfile = SD_CARD,
    ) -> None:
        if step_seconds <= 0:
            raise ValueError("step_seconds must be positive")
        if snapshot_seconds is None:
            if snapshot_bytes is None:
                raise ValueError("give snapshot_bytes or snapshot_seconds")
            snapshot_seconds = storage.write_seconds(snapshot_bytes)
        self.mtbf_seconds = mtbf_seconds
        self.snapshot_seconds = float(snapshot_seconds)
        self.step_seconds = float(step_seconds)
        self.tau_star_seconds = young_daly_interval(mtbf_seconds, self.snapshot_seconds)
        self.interval_steps = max(1, round(self.tau_star_seconds / step_seconds))
