"""Seeded fault models and the training fault injector.

The paper's deployment target (Sections III/VI) is a field node that
runs training *opportunistically*: power is intermittent, the training
process is the lowest-priority tenant, and nodes drop off the network
for days.  Every model here is an explicit distribution over
**time-to-failure**, seeded through a :class:`numpy.random.Generator`,
so a "fault schedule" is a reproducible artifact the recovery layer and
the analysis layer can share:

* :class:`PoissonFaults` — memoryless crashes at a given MTBF, the
  classic assumption behind the Young/Daly interval;
* :class:`WeibullFaults` — ageing (or infant-mortality) failures, the
  standard departure from memorylessness in HPC failure traces;
* :class:`PowerLossFaults` — power loss tied to the duty-cycle model:
  priority-task arrivals (the Poisson process driving
  :class:`~repro.edge.simulator.DutyCycleSimulator`) are thinned by the
  probability that a given preemption is actually a brown-out;
* :class:`TransientDiskFaults` — a snapshot *write* that fails
  (SD cards on outdoor nodes do that), which the snapshotter must
  survive by keeping the previous durable snapshot.

:class:`FaultInjector` converts failure times into optimizer steps and
kills a real :meth:`Trainer.fit <repro.autodiff.trainer.Trainer.fit>`
by raising :class:`~repro.errors.FaultError` from the ``on_step`` hook.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import FaultError
from ..obs import get_metrics, get_tracer

__all__ = [
    "FaultModel",
    "PoissonFaults",
    "WeibullFaults",
    "PowerLossFaults",
    "TransientDiskFaults",
    "FaultInjector",
]


class FaultModel:
    """A seeded distribution over time-to-failure (seconds).

    Subclasses implement :meth:`sample_time_to_failure`; the base class
    derives absolute crash times over a horizon.  ``mtbf_seconds`` is
    the distribution mean, the quantity the Young/Daly analysis needs.
    """

    #: mean time between failures, seconds (subclasses set it).
    mtbf_seconds: float = math.inf

    def sample_time_to_failure(self, rng: np.random.Generator) -> float:
        """Draw one time-to-failure from a fresh (rebooted) node."""
        raise NotImplementedError

    def crash_times(
        self, rng: np.random.Generator, horizon_seconds: float
    ) -> tuple[float, ...]:
        """Absolute crash times in ``[0, horizon)`` (renewal process:
        each reboot restarts the clock)."""
        if horizon_seconds < 0:
            raise ValueError("horizon must be non-negative")
        times: list[float] = []
        t = self.sample_time_to_failure(rng)
        while t < horizon_seconds:
            times.append(t)
            t += self.sample_time_to_failure(rng)
        return tuple(times)


@dataclass
class PoissonFaults(FaultModel):
    """Memoryless (exponential) crashes — constant hazard rate."""

    mtbf_seconds: float = 12 * 3600.0

    def __post_init__(self) -> None:
        if self.mtbf_seconds <= 0:
            raise ValueError("mtbf_seconds must be positive")

    def sample_time_to_failure(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mtbf_seconds))


@dataclass
class WeibullFaults(FaultModel):
    """Weibull time-to-failure with the scale pinned to the MTBF.

    ``shape < 1`` models infant mortality (nodes that crash soon after
    reboot crash again), ``shape > 1`` ageing hardware; ``shape == 1``
    degenerates to :class:`PoissonFaults`.  The scale is derived so the
    *mean* stays ``mtbf_seconds``: ``scale = mtbf / Γ(1 + 1/shape)``.
    """

    mtbf_seconds: float = 12 * 3600.0
    shape: float = 0.7

    def __post_init__(self) -> None:
        if self.mtbf_seconds <= 0 or self.shape <= 0:
            raise ValueError("mtbf_seconds and shape must be positive")
        self._scale = self.mtbf_seconds / math.gamma(1.0 + 1.0 / self.shape)

    def sample_time_to_failure(self, rng: np.random.Generator) -> float:
        return float(self._scale * rng.weibull(self.shape))


@dataclass
class PowerLossFaults(FaultModel):
    """Power loss as a thinned duty-cycle arrival process.

    The duty-cycle model (:class:`~repro.edge.simulator.DutyCycleSimulator`)
    has priority payloads arriving as a Poisson process at
    ``arrival_rate_per_hour``.  A fraction ``loss_probability`` of those
    events are not benign preemptions but brown-outs that kill the node.
    The sample is drawn structurally — a geometric number of benign
    arrivals, then the fatal one — so the failure time is the sum of
    that many exponential inter-arrival gaps, keeping the tie to the
    duty-cycle parameters explicit.  MTBF = 1 / (rate · p).
    """

    arrival_rate_per_hour: float = 6.0
    loss_probability: float = 0.01

    def __post_init__(self) -> None:
        if self.arrival_rate_per_hour <= 0:
            raise ValueError("arrival_rate_per_hour must be positive")
        if not 0.0 < self.loss_probability <= 1.0:
            raise ValueError("loss_probability must be in (0, 1]")
        rate = self.arrival_rate_per_hour / 3600.0
        self.mtbf_seconds = 1.0 / (rate * self.loss_probability)

    def sample_time_to_failure(self, rng: np.random.Generator) -> float:
        arrivals = int(rng.geometric(self.loss_probability))
        gap = 3600.0 / self.arrival_rate_per_hour
        return float(rng.gamma(arrivals, gap))


@dataclass
class TransientDiskFaults:
    """Independent per-write snapshot failures (flaky SD card).

    Not a crash model: a failed write costs the write time but leaves
    the run alive with the *previous* durable snapshot intact — the
    snapshotter retries at the next policy-due step.
    """

    write_failure_probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.write_failure_probability < 1.0:
            raise ValueError("write_failure_probability must be in [0, 1)")

    def write_fails(self, rng: np.random.Generator) -> bool:
        if self.write_failure_probability == 0.0:
            return False
        return bool(rng.random() < self.write_failure_probability)


class FaultInjector:
    """Kills a training run at chosen global optimizer steps.

    Feed :meth:`check` the cursor from a :meth:`Trainer.fit
    <repro.autodiff.trainer.Trainer.fit>` ``on_step`` hook (the
    recovery driver does this); when the step matches the next planned
    kill, it raises :class:`~repro.errors.FaultError`, records a
    ``fault``-category trace event and bumps the
    ``resilience.faults`` counter.  Each planned step fires exactly
    once, so a resumed run sails past the crash site.
    """

    def __init__(self, kill_steps: tuple[int, ...] | list[int]) -> None:
        steps = sorted(set(int(s) for s in kill_steps))
        if any(s < 1 for s in steps):
            raise ValueError("kill steps must be >= 1 (steps are 1-based)")
        self._pending = steps
        self.fired: list[int] = []

    @classmethod
    def from_model(
        cls,
        model: FaultModel,
        step_seconds: float,
        total_steps: int,
        rng: np.random.Generator,
    ) -> "FaultInjector":
        """Plan kill steps by sampling ``model`` over the run's horizon.

        ``step_seconds`` prices one optimizer step; crash times round
        *up* to the step in flight when the failure strikes.
        """
        if step_seconds <= 0:
            raise ValueError("step_seconds must be positive")
        if total_steps < 0:
            raise ValueError("total_steps must be non-negative")
        horizon = total_steps * step_seconds
        steps = [
            min(total_steps, max(1, math.ceil(t / step_seconds)))
            for t in model.crash_times(rng, horizon)
        ]
        return cls(tuple(steps))

    @property
    def pending_steps(self) -> tuple[int, ...]:
        return tuple(self._pending)

    def check(self, step: int) -> None:
        """Raise :class:`~repro.errors.FaultError` if a kill is due."""
        if not self._pending or step < self._pending[0]:
            return
        kill = self._pending.pop(0)
        self.fired.append(kill)
        get_metrics().counter("resilience.faults").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("fault_injected", category="fault", step=step)
        raise FaultError(f"injected fault at step {step}", step=step)
