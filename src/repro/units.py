"""Byte-size constants, dtype sizing and humanized formatting.

All memory accounting in :mod:`repro` is done in plain integer bytes so that
results are exact and reproducible; this module centralizes the conversion
conventions.  The paper reports MB/GB with the binary convention
(1 MB = 2**20 bytes, 1 GB = 2**30 bytes) — Table III's GB column equals
Table I's MB column divided by 1024 — so we follow the same convention.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "FLOAT32_BYTES",
    "FLOAT16_BYTES",
    "FLOAT64_BYTES",
    "DTYPE_BYTES",
    "to_mb",
    "to_gb",
    "from_mb",
    "from_gb",
    "humanize_bytes",
]

#: 1 KiB in bytes (binary convention, matching the paper's tables).
KB: int = 1024
#: 1 MiB in bytes.
MB: int = 1024 * 1024
#: 1 GiB in bytes.
GB: int = 1024 * 1024 * 1024

FLOAT16_BYTES: int = 2
FLOAT32_BYTES: int = 4
FLOAT64_BYTES: int = 8

#: Mapping of supported dtype names to their per-element byte width.
DTYPE_BYTES: dict[str, int] = {
    "float16": FLOAT16_BYTES,
    "float32": FLOAT32_BYTES,
    "float64": FLOAT64_BYTES,
    "int8": 1,
    "uint8": 1,
    "int32": 4,
    "int64": 8,
}


def to_mb(nbytes: float) -> float:
    """Convert bytes to (binary) megabytes."""
    return nbytes / MB


def to_gb(nbytes: float) -> float:
    """Convert bytes to (binary) gigabytes."""
    return nbytes / GB


def from_mb(megabytes: float) -> int:
    """Convert (binary) megabytes to whole bytes, rounding to nearest."""
    return int(round(megabytes * MB))


def from_gb(gigabytes: float) -> int:
    """Convert (binary) gigabytes to whole bytes, rounding to nearest."""
    return int(round(gigabytes * GB))


def humanize_bytes(nbytes: float, precision: int = 2) -> str:
    """Render a byte count with the largest sensible binary unit.

    >>> humanize_bytes(2 * 1024 * 1024 * 1024)
    '2.00 GB'
    >>> humanize_bytes(512)
    '512 B'
    """
    sign = "-" if nbytes < 0 else ""
    n = abs(float(nbytes))
    for unit, width in (("GB", GB), ("MB", MB), ("KB", KB)):
        if n >= width:
            return f"{sign}{n / width:.{precision}f} {unit}"
    return f"{sign}{n:.0f} B"
