"""Provenance manifests: what produced each artifact, validated.

Every artifact stem gets one manifest recording the spec, validated
params, whether its constants came from the paper or our replication,
the seed, the repro version, the unit's cache key and code fingerprint,
the SHA-256 of every emitted file, the keys of parent artifacts it was
derived from, and the compute wall time.  :func:`validate_manifest`
re-hashes the files on disk, so a manifest that passes is a proof that
the artifact tree is exactly what the recorded computation produced.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from ..errors import ManifestError
from .spec import ExperimentSpec
from .store import ArtifactStore

__all__ = [
    "MANIFEST_VERSION",
    "build_manifest",
    "validate_manifest",
    "check_manifests",
]

MANIFEST_VERSION = 1

_REQUIRED = (
    "manifest_version",
    "spec",
    "params",
    "constants_source",
    "seed",
    "repro_version",
    "key",
    "code_fingerprint",
    "outputs",
    "parents",
    "payload_sha256",
    "wall_time_s",
    "cached",
)


def _repro_version() -> str:
    from .. import __version__  # deferred: repro/__init__ imports repro.lab

    return __version__


def build_manifest(
    spec: ExperimentSpec,
    params: Mapping[str, Any],
    key: str,
    *,
    outputs: Mapping[str, str],
    parents: Mapping[str, str],
    payload_sha256: str,
    wall_time_s: float,
    cached: bool,
    seed: int | None = None,
    telemetry: Mapping[str, Any] | None = None,
) -> dict:
    """Assemble the provenance document for one computed unit.

    ``outputs`` maps emitted filenames to their SHA-256; ``parents``
    maps dependency spec names to the cache keys their payloads came
    from.  The constants source is taken from the unit's ``source``
    param when it has one (the paper-vs-ours axis), else ``"ours"``.
    ``telemetry``, when given (campaign runs with ``--telemetry``),
    records the unit's runlog reference and resource profile; the field
    is omitted entirely otherwise so telemetry-disabled manifests are
    byte-identical to pre-telemetry ones.
    """
    doc = {
        "manifest_version": MANIFEST_VERSION,
        "spec": spec.name,
        "title": spec.title,
        "params": dict(params),
        "constants_source": params.get("source", "ours"),
        "seed": seed if seed is not None else params.get("seed"),
        "repro_version": _repro_version(),
        "key": key,
        "code_fingerprint": spec.fingerprint(),
        "outputs": dict(outputs),
        "parents": dict(parents),
        "payload_sha256": payload_sha256,
        "wall_time_s": round(float(wall_time_s), 6),
        "cached": bool(cached),
        "created_unix": round(time.time(), 3),
    }
    if telemetry is not None:
        doc["telemetry"] = dict(telemetry)
    return doc


def validate_manifest(doc: Any, store: ArtifactStore, stem: str = "?") -> None:
    """Raise :class:`ManifestError` unless ``doc`` is sound.

    Checks the schema, that the constants source is ``paper``/``ours``,
    and that every recorded output file exists under the store root
    with exactly the recorded SHA-256.
    """
    if not isinstance(doc, dict):
        raise ManifestError(f"manifest {stem!r} is not a JSON object")
    missing = [f for f in _REQUIRED if f not in doc]
    if missing:
        raise ManifestError(f"manifest {stem!r} is missing fields {missing}")
    if doc["manifest_version"] != MANIFEST_VERSION:
        raise ManifestError(
            f"manifest {stem!r} has version {doc['manifest_version']}, "
            f"expected {MANIFEST_VERSION}"
        )
    if doc["constants_source"] not in ("paper", "ours"):
        raise ManifestError(
            f"manifest {stem!r}: constants_source must be 'paper' or 'ours', "
            f"got {doc['constants_source']!r}"
        )
    if not isinstance(doc["outputs"], dict) or not doc["outputs"]:
        raise ManifestError(f"manifest {stem!r} records no outputs")
    if not isinstance(doc["parents"], dict):
        raise ManifestError(f"manifest {stem!r}: parents must be an object")
    for filename, recorded in doc["outputs"].items():
        path = store.artifact_path(filename)
        if not path.is_file():
            raise ManifestError(f"manifest {stem!r}: output {filename!r} is missing")
        actual = ArtifactStore.file_sha256(path)
        if actual != recorded:
            raise ManifestError(
                f"manifest {stem!r}: output {filename!r} hash mismatch "
                f"(recorded {recorded[:12]}..., found {actual[:12]}...)"
            )
    payload_path = store.cache_path(doc["key"])
    if not payload_path.is_file():
        raise ManifestError(
            f"manifest {stem!r}: cached payload {doc['key'][:12]}... is missing"
        )
    actual = ArtifactStore.file_sha256(payload_path)
    if actual != doc["payload_sha256"]:
        raise ManifestError(
            f"manifest {stem!r}: cached payload {doc['key'][:12]}... is corrupted "
            f"(recorded {doc['payload_sha256'][:12]}..., found {actual[:12]}...)"
        )


def check_manifests(store: ArtifactStore) -> int:
    """Validate every manifest under the store; returns the count."""
    count = 0
    for stem, doc in store.manifests():
        if doc is None:
            raise ManifestError(f"manifest {stem!r} is unreadable or malformed")
        validate_manifest(doc, store, stem)
        count += 1
    return count
