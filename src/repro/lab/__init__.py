"""repro.lab — declarative experiment pipeline.

Specs (:mod:`~repro.lab.spec`) describe artifacts as typed params plus
a pure compute function and renderers; the registry
(:mod:`~repro.lab.registry`) discovers them; the store
(:mod:`~repro.lab.store`) caches computed payloads content-addressed
by ``SHA-256(spec + params + code fingerprint)``; manifests
(:mod:`~repro.lab.manifest`) record provenance per artifact; and the
runner (:mod:`~repro.lab.runner`) executes unit batches topo-aware and
parallel with obs-instrumented cache hits/misses.

>>> from repro import lab
>>> import repro.experiments  # registers the paper's specs
>>> report = lab.run_units([lab.Unit("table1", {"source": "paper"})])
>>> report.outcomes[0].status
'miss'

``docs/experiments.md`` is the guide.
"""

from .manifest import MANIFEST_VERSION, build_manifest, check_manifests, validate_manifest
from .registry import (
    available_experiments,
    default_units,
    experiment,
    get_spec,
    register,
    unregister,
    validate_params,
)
from .runner import (
    RunReport,
    UnitOutcome,
    compute_payload,
    compute_unit,
    default_jobs,
    expand_units,
    pool_map,
    run_units,
)
from .spec import (
    ExperimentSpec,
    Param,
    Unit,
    UnitDef,
    canonical_params,
    canonical_payload,
    unit_key,
)
from .store import ArtifactStore

__all__ = [
    "Param",
    "UnitDef",
    "Unit",
    "ExperimentSpec",
    "canonical_params",
    "canonical_payload",
    "unit_key",
    "experiment",
    "register",
    "get_spec",
    "available_experiments",
    "default_units",
    "validate_params",
    "unregister",
    "ArtifactStore",
    "MANIFEST_VERSION",
    "build_manifest",
    "validate_manifest",
    "check_manifests",
    "UnitOutcome",
    "RunReport",
    "expand_units",
    "pool_map",
    "run_units",
    "compute_unit",
    "compute_payload",
    "default_jobs",
]
