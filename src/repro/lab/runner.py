"""Topo-aware cached runner for experiment units.

The runner takes a list of :class:`~repro.lab.spec.Unit` requests,
expands the dependency closure (dedup by cache key, cycle guard),
probes the :class:`~repro.lab.store.ArtifactStore` for each unit, and
computes only what is missing — serially inline, or fanned out over a
``concurrent.futures`` process pool when ``jobs > 1``.  Scheduling is
wave-based: every unit whose dependencies are satisfied runs in the
current wave, so independent units (the four Figure 1 panels, the
ablation and sensitivity grids) parallelize while dependents wait.

Outcome ordering is deterministic — the topological expansion order of
the request list — regardless of completion order, so serial and
parallel runs emit byte-identical artifacts and reports.

Cache semantics per unit (``key = unit_key(spec, params)``):

* payload present + manifest validates           → **hit** (nothing
  is loaded, rendered or written — the warm fast path)
* payload present, outputs missing/stale         → hit, re-rendered
* payload present but fails its integrity check  → **corrupt**,
  recomputed (typed :class:`~repro.errors.ArtifactError` internally)
* payload absent (or ``force=True``)             → **miss**, computed

Hits, misses and corruptions are counted on the ``obs`` metrics
registry (``lab.cache.*``) and every computed unit gets a ``lab``
tracer span plus a ``lab.compute_seconds`` histogram sample.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..errors import ArtifactError, LabError, ManifestError
from ..obs import get_metrics, get_tracer
from ..obs.runlog import (
    TELEMETRY_DIRNAME,
    UnitCapture,
    _metric_deltas,
    _metrics_state,
    write_campaign_record,
    write_unit_runlog,
)
from .manifest import build_manifest, validate_manifest
from .registry import get_spec
from .spec import ExperimentSpec, Unit, unit_key
from .store import ArtifactStore

__all__ = [
    "UnitOutcome",
    "RunReport",
    "expand_units",
    "run_units",
    "compute_unit",
    "compute_payload",
    "default_jobs",
    "pool_map",
]


@dataclass
class UnitOutcome:
    """What happened to one unit during a run."""

    spec: str
    params: dict[str, Any]
    key: str
    status: str  # "hit" | "miss" | "corrupt"
    stem: str | None = None
    outputs: tuple[str, ...] = ()  # declared artifact filenames
    wall_time_s: float = 0.0  # worker-measured compute time (no queue wait)
    written: tuple[Path, ...] = ()
    #: resource profile from the computing process (telemetry runs only)
    profile: dict[str, Any] | None = None

    @property
    def computed(self) -> bool:
        return self.status in ("miss", "corrupt")


@dataclass
class RunReport:
    """All outcomes of one run, in deterministic topo order."""

    outcomes: list[UnitOutcome] = field(default_factory=list)
    jobs: int = 1
    #: compiled schedule programs served from a cache layer (in-memory
    #: or the store's cross-process ``programs/`` directory) this run
    program_hits: int = 0
    #: programs actually compiled from scratch this run
    programs_compiled: int = 0
    #: where per-unit runlogs + campaign.json landed (telemetry runs only)
    telemetry_dir: Path | None = None

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "hit")

    @property
    def misses(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "miss")

    @property
    def corrupt(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "corrupt")

    @property
    def computed(self) -> int:
        return sum(1 for o in self.outcomes if o.computed)

    @property
    def written(self) -> list[Path]:
        return [p for o in self.outcomes for p in o.written]

    def summary_line(self) -> str:
        return (
            f"lab cache: {self.hits} hits / {self.misses} misses "
            f"({self.computed} computed, jobs={self.jobs}); "
            f"programs: {self.program_hits} shared / "
            f"{self.programs_compiled} compiled"
        )


def normalize_payload(payload: Any) -> Any:
    """Strict-JSON round-trip so cached and fresh payloads are identical.

    Tuples become lists, dict key order is preserved, and any NaN or
    Infinity is rejected up front (specs encode those as ``None``).
    """
    try:
        return json.loads(json.dumps(payload, allow_nan=False))
    except (TypeError, ValueError) as exc:
        raise LabError(f"spec payload is not strict JSON: {exc}") from exc


def compute_unit(spec: ExperimentSpec, params: Mapping[str, Any], inputs: tuple) -> Any:
    """Run one spec's compute fn and normalize the result."""
    return normalize_payload(spec.compute(dict(params), inputs))


def compute_payload(name: str, params: Mapping[str, Any] | None = None) -> Any:
    """Compute one spec's payload in memory, resolving deps recursively.

    No store, no cache — the one-off path behind ``repro-edge <spec>``
    alias invocations.
    """
    spec = get_spec(name)
    validated = spec.validate_params(params)
    inputs = tuple(compute_payload(d, p) for d, p in spec.deps)
    return compute_unit(spec, validated, inputs)


def _program_counter_names() -> tuple[str, ...]:
    # Imported lazily: lab stays importable without the checkpointing
    # package's strategy registry being initialized first.
    from ..checkpointing import strategies as ckpt

    return (
        ckpt.PROGRAM_CACHE_HITS,
        ckpt.PROGRAM_CACHE_MISSES,
        ckpt.PROGRAM_STORE_HITS,
        ckpt.PROGRAM_STORE_WRITES,
    )


def _captured_compute(
    spec: ExperimentSpec,
    params: Mapping[str, Any],
    inputs: tuple,
    capture: Mapping[str, Any] | None,
) -> tuple[Any, float, dict[str, Any] | None]:
    """Compute one unit, measuring wall time in the computing process.

    Returns ``(payload, wall_s, profile)``.  Wall time is always
    measured here — around the compute itself, never around pool queue
    wait.  With ``capture`` (a ``{"key", "parents", "telemetry_root"}``
    mapping from a ``--telemetry`` run) the compute runs inside a
    :class:`~repro.obs.runlog.UnitCapture` and its runlog is persisted
    under the telemetry root before returning.
    """
    if capture is None:
        t0 = time.perf_counter()
        payload = compute_unit(spec, params, inputs)
        return payload, time.perf_counter() - t0, None
    with UnitCapture(
        key=capture["key"], spec=spec.name,
        params=params, parents=capture["parents"],
    ) as cap:
        payload = compute_unit(spec, params, inputs)
    write_unit_runlog(capture["telemetry_root"], cap.record)
    return payload, cap.profile["wall_s"], cap.profile


def _pool_compute(
    spec_name: str,
    params: dict,
    inputs: tuple,
    program_root: str | None = None,
    capture: dict | None = None,
) -> tuple[Any, dict[str, int], float, dict[str, Any] | None]:
    """Process-pool entry point: re-resolve the spec in the worker.

    When ``program_root`` is given the worker attaches the run's store
    as its compiled-program cache, so schedules compiled by any worker
    (or the parent) are shared rather than rebuilt per process.
    Returns the payload, this task's program-counter deltas (counters
    are snapshotted per task because pool workers are reused), the
    worker-measured compute wall time, and the unit's resource profile
    (``None`` unless ``capture`` requested telemetry).
    """
    import repro.experiments  # noqa: F401  (populates the registry)
    from ..checkpointing import strategies as ckpt

    metrics = get_metrics()
    names = _program_counter_names()
    before = {n: metrics.counter(n).value for n in names}
    previous = ckpt.set_program_store(program_root) if program_root else None
    try:
        payload, wall, profile = _captured_compute(
            get_spec(spec_name), params, inputs, capture
        )
    finally:
        if program_root:
            ckpt.set_program_store(previous)
    deltas = {n: metrics.counter(n).value - before[n] for n in names}
    return payload, deltas, wall, profile


def expand_units(units: Iterable[Unit]) -> list[Unit]:
    """Dependency closure in topological order, deduplicated by key.

    Dependencies precede their dependents.  If a unit appears both as
    an implicit dependency and as an explicit request with outputs, the
    explicit outputs win (same computation, richer emission).
    """
    order: list[Unit] = []
    index: dict[str, int] = {}
    visiting: list[str] = []

    def visit(unit: Unit) -> None:
        spec = get_spec(unit.spec)
        params = spec.validate_params(unit.params)
        key = unit_key(spec, params)
        if key in visiting:
            cycle = " -> ".join(visiting[visiting.index(key):] + [key])
            raise LabError(f"dependency cycle among experiment units: {cycle}")
        if key in index:
            pos = index[key]
            if unit.outputs and not order[pos].outputs:
                order[pos] = Unit(
                    spec=spec.name, params=params,
                    outputs=unit.outputs, stem=unit.stem,
                )
            return
        visiting.append(key)
        for dep_name, dep_params in spec.deps:
            visit(Unit(spec=dep_name, params=dep_params))
        visiting.pop()
        index[key] = len(order)
        order.append(Unit(spec=spec.name, params=params,
                          outputs=unit.outputs, stem=unit.stem))

    for unit in units:
        visit(unit)
    return order


def _dep_keys(spec: ExperimentSpec) -> list[tuple[str, str]]:
    """(dep spec name, dep cache key) pairs for a spec's declared deps."""
    out = []
    for dep_name, dep_params in spec.deps:
        dep_spec = get_spec(dep_name)
        out.append((dep_name, unit_key(dep_spec, dep_spec.validate_params(dep_params))))
    return out


def _outputs_valid(store: ArtifactStore, unit: Unit, key: str) -> bool:
    """True when the unit's manifest validates against the disk state."""
    if not unit.outputs:
        return True
    stem = unit.stem or unit.outputs[0][0].rsplit(".", 1)[0]
    doc = store.read_manifest(stem)
    if doc is None or doc.get("key") != key:
        return False
    try:
        validate_manifest(doc, store, stem)
    except ManifestError:
        return False
    return True


def _render_and_manifest(
    store: ArtifactStore,
    unit: Unit,
    spec: ExperimentSpec,
    key: str,
    payload: Any,
    *,
    parents: Mapping[str, str],
    wall_time_s: float,
    cached: bool,
    telemetry: Mapping[str, Any] | None = None,
) -> tuple[Path, ...]:
    """Render every declared output and write the provenance manifest."""
    written: list[Path] = []
    hashes: dict[str, str] = {}
    for filename, fmt in unit.outputs:
        renderer = spec.renderers.get(fmt)
        if renderer is None:
            raise LabError(
                f"spec {spec.name!r} has no {fmt!r} renderer "
                f"(has: {sorted(spec.renderers)})"
            )
        path, _changed = store.write_artifact(filename, renderer(payload))
        written.append(path)
        hashes[filename] = ArtifactStore.file_sha256(path)
    if unit.outputs:
        stem = unit.stem or unit.outputs[0][0].rsplit(".", 1)[0]
        store.write_manifest(
            stem,
            build_manifest(
                spec, unit.params, key,
                outputs=hashes, parents=dict(parents),
                payload_sha256=ArtifactStore.file_sha256(store.cache_path(key)),
                wall_time_s=wall_time_s, cached=cached, telemetry=telemetry,
            ),
        )
    return tuple(written)


def run_units(
    units: Iterable[Unit],
    store: ArtifactStore | None = None,
    *,
    jobs: int = 1,
    force: bool = False,
    telemetry: bool = False,
) -> RunReport:
    """Run a batch of units against a store; returns per-unit outcomes.

    With ``store=None`` everything is computed in memory (no caching,
    no artifacts) — useful for one-off ``run <spec>`` invocations.
    ``jobs`` caps process-pool width; 1 (or a single unit) runs inline.
    ``telemetry=True`` records a runlog (spans, metric deltas, resource
    profile) per computed unit under ``<store>/telemetry/`` plus one
    ``campaign.json``, ready for ``repro obs report``; it requires a
    store.  Off (the default) leaves outputs byte-identical to a
    pre-telemetry run.
    """
    order = expand_units(units)
    jobs = max(1, int(jobs or 1))
    metrics = get_metrics()
    tracer = get_tracer()
    if telemetry and store is None:
        raise LabError("telemetry capture requires an artifact store (outdir)")
    telemetry_root = str(store.root / TELEMETRY_DIRNAME) if telemetry else None
    t_start_unix = time.time() if telemetry else 0.0
    metrics_before = _metrics_state() if telemetry else {}

    payloads: dict[str, Any] = {}
    outcomes: dict[str, UnitOutcome] = {}
    specs = {u.spec: get_spec(u.spec) for u in order}

    def stem_of(unit: Unit) -> str | None:
        if unit.stem:
            return unit.stem
        if unit.outputs:
            return unit.outputs[0][0].rsplit(".", 1)[0]
        return None

    # -- probe phase: decide hit / miss / corrupt per unit -------------
    to_compute: dict[str, Unit] = {}
    rerender: dict[str, Unit] = {}
    keys: dict[int, str] = {}
    for i, unit in enumerate(order):
        key = unit_key(specs[unit.spec], unit.params)
        keys[i] = key
        if force or store is None or not store.has_payload(key):
            to_compute[key] = unit
            continue
        outcomes[key] = UnitOutcome(
            spec=unit.spec, params=dict(unit.params), key=key,
            status="hit", stem=stem_of(unit),
            outputs=tuple(f for f, _ in unit.outputs),
        )
        if not _outputs_valid(store, unit, key):
            rerender[key] = unit

    # Payloads of cached units are loaded lazily; a failed integrity
    # check at load time flips the unit to "corrupt" and recomputes it.
    def load_cached(key: str, unit: Unit) -> bool:
        try:
            payloads[key] = store.load_payload(key)
            return True
        except ArtifactError:
            metrics.counter("lab.cache.corrupt").inc()
            outcomes.pop(key, None)
            rerender.pop(key, None)
            to_compute[key] = unit
            return False

    # Any cached unit whose payload is needed (an input of a computed
    # unit, or a stale render) must actually load; iterate to fixpoint
    # since a corrupt load adds new compute work.
    changed = True
    while changed:
        changed = False
        needed: dict[str, Unit] = dict(rerender)
        for key, unit in to_compute.items():
            for dep_name, dep_key in _dep_keys(specs[unit.spec]):
                if dep_key not in to_compute and dep_key not in payloads:
                    dep_unit = next(
                        u for j, u in enumerate(order) if keys[j] == dep_key
                    )
                    needed[dep_key] = dep_unit
        for key, unit in needed.items():
            if key in payloads or key in to_compute:
                continue
            if not load_cached(key, unit):
                changed = True

    # -- compute phase: wave-parallel over the pool --------------------
    def finish(
        key: str,
        unit: Unit,
        payload: Any,
        wall: float,
        status: str,
        profile: dict[str, Any] | None = None,
    ) -> None:
        payloads[key] = payload
        metrics.counter("lab.cache.misses").inc()
        metrics.histogram("lab.compute_seconds").observe(wall)
        written: tuple[Path, ...] = ()
        if store is not None:
            store.save_payload(key, unit.spec, dict(unit.params), payload)
            parents = {n: k for n, k in _dep_keys(specs[unit.spec])}
            telemetry_ref = None
            if profile is not None:
                telemetry_ref = {
                    "runlog": f"{TELEMETRY_DIRNAME}/{key}.jsonl",
                    "profile": profile,
                }
            written = _render_and_manifest(
                store, unit, specs[unit.spec], key, payload,
                parents=parents, wall_time_s=wall, cached=False,
                telemetry=telemetry_ref,
            )
        outcomes[key] = UnitOutcome(
            spec=unit.spec, params=dict(unit.params), key=key,
            status=status, stem=stem_of(unit),
            outputs=tuple(f for f, _ in unit.outputs),
            wall_time_s=wall, written=written, profile=profile,
        )

    def capture_args(key: str, unit: Unit) -> dict | None:
        if telemetry_root is None:
            return None
        return {
            "key": key,
            "parents": [k for _, k in _dep_keys(specs[unit.spec])],
            "telemetry_root": telemetry_root,
        }

    # A computed unit is "corrupt" (rather than a plain miss) when its
    # payload file still exists on disk but failed the integrity check.
    statuses = {
        key: (
            "corrupt"
            if store is not None and not force and store.has_payload(key)
            else "miss"
        )
        for key in to_compute
    }

    pending = dict(to_compute)

    def ready_inputs(unit: Unit) -> tuple | None:
        # A dep is ready only once its payload is actually present —
        # "submitted to the pool" is not enough.
        deps = _dep_keys(specs[unit.spec])
        if any(k not in payloads for _, k in deps):
            return None
        return tuple(payloads[k] for _, k in deps)

    # The run's store doubles as a cross-process compiled-program cache:
    # attach it around the compute phase (parent and workers alike) and
    # report how many programs were shared vs compiled from scratch.
    prog_names = _program_counter_names()
    prog_before = {n: metrics.counter(n).value for n in prog_names}
    program_root = str(store.root) if store is not None else None
    if program_root is not None:
        from ..checkpointing import strategies as _ckpt

        prev_program_store = _ckpt.set_program_store(program_root)
    try:
        if jobs == 1 or len(pending) <= 1:
            for i, u in enumerate(order):
                key = keys[i]
                if key not in pending:
                    continue
                inputs = ready_inputs(u)
                assert inputs is not None  # topo order guarantees dep payloads
                with tracer.span("unit", category="lab", spec=u.spec):
                    payload, wall, profile = _captured_compute(
                        specs[u.spec], u.params, inputs, capture_args(key, u)
                    )
                del pending[key]
                finish(key, u, payload, wall, statuses[key], profile)
        else:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                running: dict[Any, tuple[str, Unit]] = {}
                while pending or running:
                    for i, u in enumerate(order):
                        key = keys[i]
                        if key not in pending or any(
                            k == key for k, _ in running.values()
                        ):
                            continue
                        inputs = ready_inputs(u)
                        if inputs is None:
                            continue
                        fut = pool.submit(
                            _pool_compute, u.spec, dict(u.params), inputs,
                            program_root, capture_args(key, u),
                        )
                        running[fut] = (key, u)
                        del pending[key]
                    done, _ = wait(list(running), return_when=FIRST_COMPLETED)
                    for fut in done:
                        key, u = running.pop(fut)
                        # The worker measured the compute; the parent
                        # only collects the result.  Record that as a
                        # "collect" span — never as unit compute time.
                        t_collect = time.perf_counter()
                        payload, prog_deltas, wall, profile = fut.result()
                        if tracer.enabled:
                            tracer.record(
                                "collect", "lab", t_collect, spec=u.spec
                            )
                        # Fold the worker's program-cache activity into
                        # this process's counters so obs and the report
                        # see the whole run.
                        for name, delta in prog_deltas.items():
                            metrics.counter(name).inc(delta)
                        finish(key, u, payload, wall, statuses[key], profile)
    finally:
        if program_root is not None:
            _ckpt.set_program_store(prev_program_store)
    prog_delta = {
        n: metrics.counter(n).value - prog_before[n] for n in prog_names
    }

    # -- emit phase: re-render stale artifacts from cached payloads ----
    for key, unit in rerender.items():
        if key not in outcomes or outcomes[key].computed:
            continue
        parents = {n: k for n, k in _dep_keys(specs[unit.spec])}
        written = _render_and_manifest(
            store, unit, specs[unit.spec], key, payloads[key],
            parents=parents, wall_time_s=0.0, cached=True,
        )
        outcomes[key].written = written

    for key, o in outcomes.items():
        if o.status == "hit":
            metrics.counter("lab.cache.hits").inc()

    hits_name, misses_name, store_hits_name, _writes_name = prog_names
    report = RunReport(
        jobs=jobs,
        program_hits=prog_delta[hits_name] + prog_delta[store_hits_name],
        programs_compiled=prog_delta[misses_name] - prog_delta[store_hits_name],
    )
    for i, _unit in enumerate(order):
        report.outcomes.append(outcomes[keys[i]])

    if telemetry_root is not None:
        # The parent's run-level view: one campaign.json next to the
        # unit runlogs, carrying this run's counter/histogram deltas
        # (worker program-cache activity is already folded in above).
        deltas = _metric_deltas(metrics_before, _metrics_state())
        counters = {
            name: 0
            for name in (
                "lab.cache.hits", "lab.cache.misses", "lab.cache.corrupt",
                *prog_names,
            )
        }
        histograms: dict[str, dict[str, float]] = {}
        for name, delta in deltas.items():
            if delta["kind"] == "counter":
                counters[name] = delta["delta"]
            else:
                histograms[name] = {
                    "count": delta["count"], "sum": delta["sum"]
                }
        write_campaign_record(
            telemetry_root,
            {
                "type": "campaign",
                "jobs": jobs,
                "t_start_unix": t_start_unix,
                "t_end_unix": time.time(),
                "units": [
                    {
                        "spec": o.spec,
                        "key": o.key,
                        "status": o.status,
                        "wall_time_s": round(o.wall_time_s, 6),
                    }
                    for o in report.outcomes
                ],
                "counters": counters,
                "histograms": histograms,
            },
        )
        report.telemetry_dir = Path(telemetry_root)
    return report


def default_jobs() -> int:
    return os.cpu_count() or 1


def pool_map(fn, arg_tuples, jobs: int = 1) -> list:
    """Order-preserving process-pool map over a flat task list.

    The simpler sibling of :func:`run_units` for callers with no
    dependency structure or cache — e.g. the megafleet engine fanning
    device shards out.  Results come back in submission order no matter
    which worker finishes first, so a parallel run reduces byte-
    identically to a serial one.  ``fn`` must be a picklable module-
    level callable; ``jobs <= 1`` (or a single task) runs inline.
    """
    arg_tuples = list(arg_tuples)
    jobs = max(1, int(jobs or 1))
    if jobs == 1 or len(arg_tuples) <= 1:
        return [fn(*args) for args in arg_tuples]
    results: list = [None] * len(arg_tuples)
    with ProcessPoolExecutor(max_workers=min(jobs, len(arg_tuples))) as pool:
        futures = {pool.submit(fn, *args): i for i, args in enumerate(arg_tuples)}
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                results[futures[fut]] = fut.result()
    return results
