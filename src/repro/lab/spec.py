"""Declarative experiment specs: typed params, plain-data compute, renderers.

An :class:`ExperimentSpec` describes one paper artifact family — what it
is called, which typed parameters select a concrete instance, how to
*compute* it (a pure function returning strict-JSON plain data) and how
to *render* the computed payload into each output format.  Separating
compute from render is what makes the content-addressed cache work: the
expensive step produces data that can be stored, hashed and re-rendered
for free.

A :class:`Unit` is one concrete piece of work: a spec plus validated
params, optionally with the artifact files it should emit.  Its cache
key is ``SHA-256(spec name + canonical params + code fingerprint)``
(:func:`unit_key`), so changing a parameter *or* the code that computes
the spec invalidates exactly the affected artifacts and nothing else.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..errors import LabError

__all__ = [
    "Param",
    "UnitDef",
    "Unit",
    "ExperimentSpec",
    "canonical_params",
    "canonical_payload",
    "unit_key",
]

ComputeFn = Callable[..., Any]
RenderFn = Callable[[Mapping[str, Any]], str]


@dataclass(frozen=True)
class Param:
    """One typed, hashable experiment parameter.

    ``repeated`` params take a tuple of ``type`` values (exposed on the
    CLI as a repeatable flag); ``choices`` constrains the value domain.
    ``cli`` overrides the derived flag name (``lengths`` → ``--length``).
    """

    name: str
    type: type = str
    default: Any = None
    choices: tuple | None = None
    repeated: bool = False
    cli: str | None = None
    help: str = ""

    def coerce(self, value: Any) -> Any:
        """Validate and normalize one value for this parameter."""
        if value is None:
            if self.default is None:
                return None
            raise LabError(f"param {self.name!r} must not be None")
        if self.repeated:
            if isinstance(value, (str, bytes)):
                raise LabError(f"param {self.name!r} expects a sequence, got {value!r}")
            out = tuple(self.type(v) for v in value)
            if self.choices is not None:
                for v in out:
                    if v not in self.choices:
                        raise LabError(
                            f"param {self.name!r}: {v!r} not in {sorted(self.choices)}"
                        )
            return out
        coerced = self.type(value)
        if self.choices is not None and coerced not in self.choices:
            raise LabError(
                f"param {self.name!r}: {coerced!r} not in {sorted(self.choices)}"
            )
        return coerced


@dataclass(frozen=True)
class UnitDef:
    """A default unit of a spec: params plus the artifact files it emits.

    ``outputs`` is a tuple of ``(filename, format)`` pairs; the manifest
    stem defaults to the first filename without its extension.
    """

    params: Mapping[str, Any]
    outputs: tuple[tuple[str, str], ...] = ()

    @property
    def stem(self) -> str | None:
        if not self.outputs:
            return None
        name = self.outputs[0][0]
        return name.rsplit(".", 1)[0] if "." in name else name


@dataclass(frozen=True)
class Unit:
    """One concrete piece of work for the runner: spec + params (+ outputs)."""

    spec: str
    params: Mapping[str, Any] = field(default_factory=dict)
    outputs: tuple[tuple[str, str], ...] = ()
    stem: str | None = None


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: compute returning plain data + renderers.

    ``compute(params, inputs)`` receives the validated param mapping and
    a tuple with the payloads of this spec's ``deps`` (in declaration
    order); it must return strict-JSON data (no NaN/Infinity, no tuple
    keys).  ``renderers`` maps format names (``ascii``, ``csv``,
    ``json``, ...) to functions of the payload.
    """

    name: str
    title: str
    compute: ComputeFn
    renderers: Mapping[str, RenderFn]
    params: tuple[Param, ...] = ()
    #: (spec_name, params) pairs computed before this spec; their
    #: payloads arrive as ``inputs`` and their keys as manifest parents.
    deps: tuple[tuple[str, Mapping[str, Any]], ...] = ()
    default_units: tuple[UnitDef, ...] = ()
    #: explicit fingerprint override (tests, generated specs); the
    #: default fingerprints the source of the module defining ``compute``.
    code_fingerprint: str | None = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").replace("-", "").isalnum():
            raise LabError(f"invalid spec name {self.name!r}")
        if "ascii" not in self.renderers:
            raise LabError(f"spec {self.name!r} must define an 'ascii' renderer")
        seen = set()
        for p in self.params:
            if p.name in seen:
                raise LabError(f"spec {self.name!r}: duplicate param {p.name!r}")
            seen.add(p.name)

    def fingerprint(self) -> str:
        """SHA-256 of the compute code (or the explicit override).

        The default hashes the full source of the module defining
        ``compute`` — renderers and helpers live there too, so editing
        any of them invalidates the spec's cached artifacts.
        """
        if self.code_fingerprint is not None:
            return self.code_fingerprint
        return _module_fingerprint(self.compute)

    def validate_params(self, given: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Fill defaults, coerce types, reject unknown names."""
        pending = dict(given or {})
        out: dict[str, Any] = {}
        for p in self.params:
            value = pending.pop(p.name, p.default)
            out[p.name] = p.coerce(value)
        if pending:
            known = [p.name for p in self.params]
            raise LabError(
                f"spec {self.name!r}: unknown params {sorted(pending)} (known: {known})"
            )
        return out


_FINGERPRINT_CACHE: dict[str, str] = {}


def _module_fingerprint(fn: Callable) -> str:
    target = inspect.unwrap(fn)
    module = inspect.getmodule(target)
    mod_name = getattr(module, "__name__", None) or repr(target)
    cached = _FINGERPRINT_CACHE.get(mod_name)
    if cached is not None:
        return cached
    try:
        source = inspect.getsource(module)
    except (OSError, TypeError):  # builtins, REPL-defined callables
        source = repr(target)
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    _FINGERPRINT_CACHE[mod_name] = digest
    return digest


def canonical_params(params: Mapping[str, Any]) -> str:
    """Canonical JSON for hashing: sorted keys, no whitespace, strict."""
    try:
        return json.dumps(
            params, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise LabError(f"params are not strict-JSON canonicalizable: {exc}") from exc


def canonical_payload(payload: Any) -> str:
    """Canonical JSON of a computed payload (the hashed cache content)."""
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise LabError(f"payload is not strict-JSON serializable: {exc}") from exc


def unit_key(spec: ExperimentSpec, params: Mapping[str, Any]) -> str:
    """Content address of one (spec, params, code) unit."""
    body = "\n".join((spec.name, canonical_params(params), spec.fingerprint()))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()
