"""Content-addressed artifact store with atomic writes.

Layout under one output directory (``repro-edge all --outdir``)::

    <root>/
      <stem>.<ext>            rendered artifacts (txt/csv/json)
      cache/<key>.json        computed payloads, keyed by unit_key()
      manifests/<stem>.json   provenance manifest per artifact stem

Payload files carry an integrity hash of their canonical JSON; a file
that is unreadable, malformed or fails that check raises the typed
:class:`~repro.errors.ArtifactError` so callers can distinguish
*corruption* (recompute) from *absence* (compute).  All writes go
through a temp file + ``os.replace`` (the ``resilience.snapshot``
pattern) so a crash can never leave a half-written artifact behind.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterator

from ..errors import ArtifactError
from .spec import canonical_payload

__all__ = ["ArtifactStore", "PAYLOAD_VERSION"]

PAYLOAD_VERSION = 1


def _atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class ArtifactStore:
    """Payloads, rendered artifacts and manifests under one root."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- computed payloads (the cache) ---------------------------------

    def cache_path(self, key: str) -> Path:
        return self.root / "cache" / f"{key}.json"

    def has_payload(self, key: str) -> bool:
        return self.cache_path(key).is_file()

    def save_payload(self, key: str, spec: str, params: Any, payload: Any) -> Path:
        canon = canonical_payload(payload)
        doc = {
            "version": PAYLOAD_VERSION,
            "key": key,
            "spec": spec,
            "params": params,
            "sha256": hashlib.sha256(canon.encode("utf-8")).hexdigest(),
            "payload": payload,
        }
        path = self.cache_path(key)
        _atomic_write_text(path, json.dumps(doc, indent=1, allow_nan=False))
        return path

    def load_payload(self, key: str) -> Any:
        """Return the cached payload for ``key`` or raise ArtifactError."""
        path = self.cache_path(key)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            raise ArtifactError(f"no cached artifact for key {key[:12]}...") from None
        except OSError as exc:
            raise ArtifactError(f"unreadable artifact {path}: {exc}") from exc
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"corrupted artifact {path}: {exc}") from exc
        if not isinstance(doc, dict):
            raise ArtifactError(f"corrupted artifact {path}: not an object")
        for field in ("version", "key", "sha256", "payload"):
            if field not in doc:
                raise ArtifactError(f"artifact {path} is missing field {field!r}")
        if doc["version"] != PAYLOAD_VERSION:
            raise ArtifactError(
                f"artifact {path} has version {doc['version']}, "
                f"expected {PAYLOAD_VERSION}"
            )
        if doc["key"] != key:
            raise ArtifactError(f"artifact {path} claims key {doc['key'][:12]}...")
        payload = doc["payload"]
        digest = hashlib.sha256(
            canonical_payload(payload).encode("utf-8")
        ).hexdigest()
        if digest != doc["sha256"]:
            raise ArtifactError(f"artifact {path} failed its integrity check")
        return payload

    def drop_payload(self, key: str) -> None:
        try:
            self.cache_path(key).unlink()
        except FileNotFoundError:
            pass

    # -- compiled schedule programs ------------------------------------

    def program_path(self, digest: str) -> Path:
        return self.root / "programs" / f"{digest}.json"

    def save_program(self, digest: str, payload: dict) -> Path:
        """Persist a compiled-program payload under its key digest.

        Atomic like every other write; last writer wins, which is safe
        because payloads for one digest are deterministic.
        """
        path = self.program_path(digest)
        _atomic_write_text(path, json.dumps(payload, indent=1, allow_nan=False))
        return path

    def load_program(self, digest: str) -> dict | None:
        """Cached compiled-program payload, or ``None``.

        Unlike :meth:`load_payload` this never raises: a missing or
        corrupt program file just means the caller recompiles (the
        payload's own content digest is verified downstream by
        :func:`repro.engine.program.program_from_payload`).
        """
        try:
            doc = json.loads(self.program_path(digest).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return doc if isinstance(doc, dict) else None

    # -- rendered artifacts --------------------------------------------

    def artifact_path(self, filename: str) -> Path:
        return self.root / filename

    def write_artifact(self, filename: str, text: str) -> tuple[Path, bool]:
        """Write a rendered artifact; returns (path, changed).

        Skips the write when the on-disk bytes already match, so warm
        runs leave mtimes untouched and stay near-free.
        """
        path = self.artifact_path(filename)
        try:
            if path.read_text() == text:
                return path, False
        except OSError:
            pass
        _atomic_write_text(path, text)
        return path, True

    @staticmethod
    def file_sha256(path: Path) -> str:
        return hashlib.sha256(path.read_bytes()).hexdigest()

    # -- provenance manifests ------------------------------------------

    def manifest_path(self, stem: str) -> Path:
        return self.root / "manifests" / f"{stem}.json"

    def write_manifest(self, stem: str, doc: dict) -> Path:
        path = self.manifest_path(stem)
        _atomic_write_text(path, json.dumps(doc, indent=1, allow_nan=False))
        return path

    def read_manifest(self, stem: str) -> dict | None:
        path = self.manifest_path(stem)
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return doc if isinstance(doc, dict) else None

    def manifests(self) -> Iterator[tuple[str, dict | None]]:
        """Yield (stem, doc) for every manifest file under the root."""
        directory = self.root / "manifests"
        if not directory.is_dir():
            return
        for path in sorted(directory.glob("*.json")):
            yield path.stem, self.read_manifest(path.stem)
