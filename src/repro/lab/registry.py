"""Decorator-based registration and discovery of experiment specs.

Modules in :mod:`repro.experiments` declare their artifacts with the
:func:`experiment` decorator; the CLI and runner discover them here.
Registration order is preserved (it is the order ``repro-edge list``
prints and the order ``all`` emits artifacts), and re-registering a
name is a typed error so two modules cannot silently shadow each other.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from ..errors import LabError
from .spec import ExperimentSpec, Param, Unit, UnitDef

__all__ = [
    "experiment",
    "register",
    "get_spec",
    "available_experiments",
    "default_units",
    "validate_params",
    "unregister",
]

_REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    if spec.name in _REGISTRY:
        raise LabError(f"experiment {spec.name!r} is already registered")
    for dep_name, _ in spec.deps:
        if dep_name not in _REGISTRY:
            raise LabError(
                f"experiment {spec.name!r} depends on unregistered {dep_name!r}"
            )
    _REGISTRY[spec.name] = spec
    return spec


def experiment(
    name: str,
    title: str,
    *,
    params: Iterable[Param] = (),
    renderers: Mapping[str, Callable] | None = None,
    deps: Iterable[tuple[str, Mapping[str, Any]]] = (),
    default_units: Iterable[UnitDef] = (),
) -> Callable[[Callable], Callable]:
    """Register the decorated compute function as an experiment spec.

    The decorated function keeps working as a plain callable; the spec
    is attached as ``fn.spec`` for tests and introspection.
    """

    def wrap(fn: Callable) -> Callable:
        spec = ExperimentSpec(
            name=name,
            title=title,
            compute=fn,
            renderers=dict(renderers or {}),
            params=tuple(params),
            deps=tuple((d, dict(p)) for d, p in deps),
            default_units=tuple(default_units),
        )
        register(spec)
        fn.spec = spec
        return fn

    return wrap


def get_spec(name: str) -> ExperimentSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise LabError(
            f"unknown experiment {name!r} (known: {sorted(_REGISTRY)})"
        ) from None


def available_experiments() -> tuple[str, ...]:
    """Registered spec names in registration order."""
    return tuple(_REGISTRY)


def validate_params(name: str, params: Mapping[str, Any] | None = None) -> dict[str, Any]:
    return get_spec(name).validate_params(params)


def default_units(names: Iterable[str] | None = None) -> list[Unit]:
    """Expand the default units of the given specs (all specs if None)."""
    units: list[Unit] = []
    for name in names if names is not None else available_experiments():
        spec = get_spec(name)
        for ud in spec.default_units:
            units.append(
                Unit(
                    spec=spec.name,
                    params=spec.validate_params(ud.params),
                    outputs=ud.outputs,
                    stem=ud.stem,
                )
            )
    return units


def unregister(name: str) -> None:
    """Remove a spec (test hook; not part of the public surface)."""
    _REGISTRY.pop(name, None)
