"""Exception hierarchy for :mod:`repro`.

Every error raised deliberately by the library derives from
:class:`ReproError` so downstream users can catch library failures
distinctly from programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "GraphError",
    "ScheduleError",
    "ExecutionError",
    "MemoryBudgetError",
    "CalibrationError",
    "PlanningError",
    "FaultError",
    "SnapshotError",
    "LabError",
    "ArtifactError",
    "ManifestError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError):
    """A tensor shape is invalid or incompatible with a layer."""


class GraphError(ReproError):
    """A network graph is malformed (cycles, dangling inputs, ...)."""


class ScheduleError(ReproError):
    """A checkpoint schedule violates a structural invariant."""


class ExecutionError(ReproError):
    """A schedule could not be executed (missing activation, bad slot...)."""


class MemoryBudgetError(ReproError):
    """A requested configuration cannot fit the given memory budget."""


class CalibrationError(ReproError):
    """Calibration data is missing or inconsistent."""


class PlanningError(ReproError):
    """The planner could not satisfy the requested constraints."""


class FaultError(ReproError):
    """An injected fault killed a (simulated or real) training run.

    Carries the global optimizer ``step`` at which the crash struck so
    recovery code can account lost work.
    """

    def __init__(self, message: str, step: int | None = None) -> None:
        super().__init__(message)
        self.step = step


class SnapshotError(ReproError):
    """A training snapshot is malformed, corrupted or truncated."""


class LabError(ReproError):
    """An experiment spec, registry entry or lab run is invalid."""


class ArtifactError(LabError):
    """A cached artifact payload is missing fields, corrupted or truncated."""


class ManifestError(LabError):
    """A provenance manifest is malformed or inconsistent with its artifacts."""
