"""The teacher model: trained frontally, degraded at skewed viewpoints.

A Gaussian nearest-prototype classifier fit on frontal samples (the
"centrally trained" model shipped to every node).  Its accuracy is high
near θ = 0 and collapses as the viewpoint distortion rotates features
away from the frontal prototypes — the quantitative face of the paper's
viewpoint problem.  ``predict`` additionally returns a confidence so the
harvester can act only on firm identifications.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff.loss import softmax

__all__ = ["TeacherModel", "_bucketize_accuracy"]


def _bucketize_accuracy(
    correct: np.ndarray, angles_deg: np.ndarray, bins: np.ndarray
) -> dict[float, float]:
    """Shared |angle|-bucket accuracy: key ``bins[b]`` covers
    ``(bins[b-1], bins[b]]`` with the first bucket starting at 0."""
    out: dict[float, float] = {}
    idx = np.digitize(np.abs(angles_deg), bins, right=True)
    for b in range(len(bins)):
        mask = idx == b
        if mask.any():
            out[float(bins[b])] = float(correct[mask].mean())
    return out


@dataclass
class TeacherModel:
    """Nearest-prototype classifier with temperature-scaled confidence."""

    prototypes: np.ndarray  # (num_classes, feature_dim)
    temperature: float = 1.0

    @classmethod
    def fit(cls, x: np.ndarray, y: np.ndarray, temperature: float = 1.0) -> "TeacherModel":
        """Fit class means on (frontal) training data."""
        if x.ndim != 2 or y.ndim != 1 or len(x) != len(y):
            raise ValueError("expected x (N, D) and y (N,)")
        classes = int(y.max()) + 1
        protos = np.stack([x[y == c].mean(axis=0) for c in range(classes)])
        return cls(prototypes=protos, temperature=temperature)

    @property
    def num_classes(self) -> int:
        return int(self.prototypes.shape[0])

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Negative squared distances / temperature."""
        d2 = ((x[:, None, :] - self.prototypes[None, :, :]) ** 2).sum(axis=2)
        return -d2 / self.temperature

    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(predicted labels, confidences) — confidence is max softmax."""
        p = softmax(self.logits(np.atleast_2d(x)))
        return p.argmax(axis=1), p.max(axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        pred, _ = self.predict(x)
        return float((pred == y).mean())

    def accuracy_by_angle(
        self, x: np.ndarray, y: np.ndarray, angles_deg: np.ndarray, bins: np.ndarray
    ) -> dict[float, float]:
        """Accuracy per |angle| bucket; key ``bins[b]`` covers
        ``(bins[b-1], bins[b]]`` (first bucket from 0).  Angles beyond the
        last edge and empty buckets are skipped."""
        pred, _ = self.predict(x)
        return _bucketize_accuracy(pred == y, angles_deg, bins)
