"""Evaluation utilities: confusion matrices and confidence calibration.

The harvester's confidence threshold is only justified if the teacher's
confidence is *informative* — high-confidence predictions should be more
often correct.  :func:`calibration_curve` measures exactly that (and, in
this world, also exposes where aspect confusion makes the teacher
confidently wrong, motivating the track-end labelling rule).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["confusion_matrix", "per_class_accuracy", "CalibrationBin", "calibration_curve", "expected_calibration_error"]


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int) -> np.ndarray:
    """Counts[i, j] = samples of true class i predicted as class j."""
    if y_true.shape != y_pred.shape:
        raise ValueError("label arrays must have equal shape")
    m = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(m, (y_true, y_pred), 1)
    return m


def per_class_accuracy(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int) -> np.ndarray:
    """Recall per class (NaN-free: classes with no samples report 1.0)."""
    m = confusion_matrix(y_true, y_pred, num_classes)
    totals = m.sum(axis=1)
    out = np.ones(num_classes)
    nz = totals > 0
    out[nz] = np.diag(m)[nz] / totals[nz]
    return out


@dataclass(frozen=True)
class CalibrationBin:
    """One confidence bucket."""

    lo: float
    hi: float
    count: int
    mean_confidence: float
    accuracy: float


def calibration_curve(
    confidences: np.ndarray,
    correct: np.ndarray,
    n_bins: int = 10,
) -> list[CalibrationBin]:
    """Reliability diagram data over equal-width confidence bins."""
    if confidences.shape != correct.shape:
        raise ValueError("confidences and correct must have equal shape")
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins: list[CalibrationBin] = []
    for b in range(n_bins):
        lo, hi = float(edges[b]), float(edges[b + 1])
        mask = (confidences > lo) & (confidences <= hi) if b else (confidences >= lo) & (confidences <= hi)
        if not mask.any():
            continue
        bins.append(
            CalibrationBin(
                lo=lo,
                hi=hi,
                count=int(mask.sum()),
                mean_confidence=float(confidences[mask].mean()),
                accuracy=float(correct[mask].mean()),
            )
        )
    return bins


def expected_calibration_error(
    confidences: np.ndarray, correct: np.ndarray, n_bins: int = 10
) -> float:
    """ECE: count-weighted |confidence − accuracy| over the bins."""
    bins = calibration_curve(confidences, correct, n_bins)
    total = sum(b.count for b in bins)
    if total == 0:
        return 0.0
    return float(
        sum(b.count * abs(b.mean_confidence - b.accuracy) for b in bins) / total
    )
