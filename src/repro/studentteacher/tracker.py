"""Constant-velocity multi-object tracker with gated greedy association.

The object-tracking component of the paper's pipeline ([3] in the paper
is a survey of pedestrian trackers; any standard tracker works).  Tracks
carry position+velocity state; each frame, every live track predicts its
next position, detections are matched greedily by distance within a gate,
matched tracks update their state, unmatched detections open new tracks,
and tracks unmatched for ``max_misses`` frames are retired.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .world import Episode, Frame

__all__ = ["TrackState", "Tracker", "TrackedDetection", "track_episode"]


@dataclass
class TrackState:
    """One live track."""

    track_id: int
    position: np.ndarray  # (2,)
    velocity: np.ndarray  # (2,)
    last_seen: int
    features: np.ndarray | None = None  # appearance EMA
    hits: int = 1

    def predict(self) -> np.ndarray:
        return self.position + self.velocity

    def update_features(self, feats: np.ndarray, alpha: float = 0.5) -> None:
        if self.features is None:
            self.features = feats.copy()
        else:
            self.features = alpha * feats + (1 - alpha) * self.features


@dataclass(frozen=True)
class TrackedDetection:
    """A detection with the tracker-assigned id (for label propagation)."""

    t: int
    det_index: int  # index within the frame's detections
    track_id: int


@dataclass
class Tracker:
    """Greedy gated nearest-neighbour tracker with appearance affinity.

    The association cost is motion distance (to the constant-velocity
    prediction, gated at ``gate``) plus ``feature_weight`` times the
    appearance distance to the track's feature EMA — the appearance term
    is what keeps identities apart when two subjects cross paths.
    """

    gate: float = 15.0
    max_misses: int = 2
    feature_weight: float = 3.0
    #: appearance gate: a detection whose feature distance to the track's
    #: EMA exceeds this opens a new track instead of being absorbed —
    #: this is what stops a dying track from adopting a newly entering
    #: subject at the frame edge.  Fragmenting a long track is benign for
    #: harvesting; merging two subjects poisons labels, so gate tightly.
    feature_gate: float = 1.5
    _next_id: int = 0
    _live: list[TrackState] = field(default_factory=list)

    def step(self, frame: Frame) -> list[TrackedDetection]:
        """Process one frame; returns per-detection track assignments."""
        assignments: list[TrackedDetection] = []
        preds = [tr.predict() for tr in self._live]
        unmatched = set(range(len(frame.detections)))
        used_tracks: set[int] = set()
        # Greedy: lowest-cost (track, detection) pairs first, within the
        # motion gate.
        pairs: list[tuple[float, int, int]] = []
        for ti, p in enumerate(preds):
            tr = self._live[ti]
            for di in unmatched:
                d = frame.detections[di]
                dist = float(np.hypot(p[0] - d.position[0], p[1] - d.position[1]))
                if dist > self.gate:
                    continue
                cost = dist
                if tr.features is not None:
                    feat_dist = float(np.linalg.norm(tr.features - d.features))
                    if self.feature_gate > 0 and feat_dist > self.feature_gate:
                        continue
                    cost += self.feature_weight * feat_dist
                pairs.append((cost, ti, di))
        for _, ti, di in sorted(pairs):
            if ti in used_tracks or di not in unmatched:
                continue
            tr = self._live[ti]
            det = frame.detections[di]
            pos = np.asarray(det.position, dtype=float)
            tr.velocity = pos - tr.position
            tr.position = pos
            tr.update_features(det.features)
            tr.last_seen = frame.t
            tr.hits += 1
            used_tracks.add(ti)
            unmatched.discard(di)
            assignments.append(TrackedDetection(t=frame.t, det_index=di, track_id=tr.track_id))
        # Open new tracks for unmatched detections.
        for di in sorted(unmatched):
            det = frame.detections[di]
            tr = TrackState(
                track_id=self._next_id,
                position=np.asarray(det.position, dtype=float),
                velocity=np.zeros(2),
                last_seen=frame.t,
                features=det.features.copy(),
            )
            self._next_id += 1
            self._live.append(tr)
            assignments.append(TrackedDetection(t=frame.t, det_index=di, track_id=tr.track_id))
        # Retire stale tracks.
        self._live = [tr for tr in self._live if frame.t - tr.last_seen <= self.max_misses]
        return assignments


def track_episode(episode: Episode, gate: float = 15.0, max_misses: int = 2) -> list[TrackedDetection]:
    """Run the tracker over a whole episode."""
    tracker = Tracker(gate=gate, max_misses=max_misses)
    out: list[TrackedDetection] = []
    for frame in episode.frames:
        out.extend(tracker.step(frame))
    return out
