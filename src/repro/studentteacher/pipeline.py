"""End-to-end Section III pipeline: world → teacher → tracker → harvest →
student, with before/after accuracy-by-angle evaluation.

This is the experiment the paper *motivates* but does not run: it
measures how much of the viewpoint-induced accuracy loss the in-situ
student recovers, using only the teacher model and data collected on the
node (no data transferred in).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autodiff.data import Dataset
from ..edge.storage import ImageStore
from ..obs import get_metrics, get_tracer
from .harvest import HarvestResult, harvest_labels
from .student import StudentConfig, StudentModel, train_student
from .teacher import TeacherModel
from .tracker import track_episode
from .world import ViewpointWorld

__all__ = ["PipelineConfig", "PipelineResult", "run_pipeline"]


@dataclass(frozen=True)
class PipelineConfig:
    """All knobs of the end-to-end simulation."""

    num_classes: int = 5
    feature_dim: int = 8
    teacher_train_per_class: int = 200
    n_subjects: int = 120
    frames_per_crossing: int = 20
    camera_skew_deg: float = 55.0
    confidence_threshold: float = 0.9
    eval_per_class: int = 200
    angle_bins: tuple[float, ...] = (15.0, 30.0, 45.0, 60.0)
    student: StudentConfig = field(default_factory=StudentConfig)
    seed: int = 0


@dataclass(frozen=True)
class PipelineResult:
    """Everything the viewpoint experiment measures."""

    teacher_frontal_accuracy: float
    teacher_by_angle: dict[float, float]
    student_by_angle: dict[float, float]
    harvest: HarvestResult
    student: StudentModel
    storage_bytes_needed: int

    @property
    def skew_recovery(self) -> float:
        """Accuracy gained at the most skewed bin (student − teacher)."""
        key = max(self.teacher_by_angle)
        return self.student_by_angle.get(key, 0.0) - self.teacher_by_angle[key]

    def summary(self) -> str:
        lines = [
            f"teacher frontal accuracy: {self.teacher_frontal_accuracy:.3f}",
            f"harvested samples: {len(self.harvest)} "
            f"({self.harvest.tracks_labelled}/{self.harvest.tracks_seen} tracks, "
            f"purity {self.harvest.label_purity:.3f})",
            f"{'bin<=deg':>10} {'teacher':>8} {'student':>8}",
        ]
        for b in sorted(self.teacher_by_angle):
            t = self.teacher_by_angle[b]
            s = self.student_by_angle.get(b, float("nan"))
            lines.append(f"{b:>10.0f} {t:>8.3f} {s:>8.3f}")
        return "\n".join(lines)


def run_pipeline(cfg: PipelineConfig = PipelineConfig()) -> PipelineResult:
    """Run the full in-situ student-teacher experiment.

    Each stage runs under its own ``stage``-category span of the process
    tracer; harvest size/purity land on the shared metrics registry.
    """
    rng = np.random.default_rng(cfg.seed)
    tracer = get_tracer()
    world = ViewpointWorld(
        num_classes=cfg.num_classes,
        feature_dim=cfg.feature_dim,
        rng=rng,
    )

    with tracer.span(
        "viewpoint_pipeline",
        category="campaign",
        n_subjects=cfg.n_subjects,
        skew_deg=cfg.camera_skew_deg,
    ):
        # 1. Teacher fit on frontal (centrally collected) data.
        with tracer.span("teacher_fit", category="stage"):
            x_tr, y_tr = world.sample_frontal(cfg.teacher_train_per_class)
            teacher = TeacherModel.fit(x_tr, y_tr)
            teacher_frontal = teacher.accuracy(x_tr, y_tr)

        # 2. The node watches subjects cross; the tracker links detections.
        with tracer.span("track", category="stage"):
            episode = world.generate_episode(
                n_subjects=cfg.n_subjects,
                frames_per_crossing=cfg.frames_per_crossing,
                camera_skew_deg=cfg.camera_skew_deg,
            )
            assignments = track_episode(episode)

        # 3. Harvest auto-labelled data via confident-label propagation.
        with tracer.span("harvest", category="stage") as h_span:
            harvest = harvest_labels(
                episode,
                assignments,
                teacher,
                confidence_threshold=cfg.confidence_threshold,
            )
            h_span.set_tag("samples", len(harvest))
            h_span.set_tag("purity", harvest.label_purity)
        m = get_metrics()
        m.gauge("pipeline.harvested_samples").set(len(harvest))
        m.gauge("pipeline.label_purity").set(harvest.label_purity)

        # 4. Train the student in-situ on the harvested set.
        with tracer.span("student_train", category="stage"):
            student = train_student(
                Dataset(harvest.x, harvest.y),
                num_classes=cfg.num_classes,
                cfg=cfg.student,
            )

        # 5. Evaluate both models across the full angle range.
        with tracer.span("evaluate", category="stage"):
            bins = np.asarray(cfg.angle_bins)
            angles = np.linspace(-cfg.camera_skew_deg, cfg.camera_skew_deg, 23)
            x_ev, y_ev, a_ev = world.sample_at_angles(cfg.eval_per_class, angles)
            teacher_by_angle = teacher.accuracy_by_angle(x_ev, y_ev, a_ev, bins)
            student_by_angle = student.accuracy_by_angle(x_ev, y_ev, a_ev, bins)

        # 6. Storage check (paper's 10 kB/image sizing).
        store = ImageStore(capacity_bytes=10**12)  # unbounded; we just size it
        storage_needed = store.dataset_bytes(len(harvest))

    return PipelineResult(
        teacher_frontal_accuracy=teacher_frontal,
        teacher_by_angle=teacher_by_angle,
        student_by_angle=student_by_angle,
        harvest=harvest,
        student=student,
        storage_bytes_needed=storage_needed,
    )
