"""Online (streaming) in-situ adaptation.

The batch pipeline (:mod:`~repro.studentteacher.pipeline`) harvests a
whole episode, then trains.  A deployed node works incrementally: frames
arrive one at a time, tracks close as subjects leave the view, each
closed track may contribute auto-labelled samples to a bounded replay
buffer, and the student takes a few optimizer steps whenever enough new
data has accumulated.  :class:`OnlineAdapter` implements exactly that
loop and records the accuracy trajectory — the "model improves while the
node runs" behaviour Section III envisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autodiff import Momentum, softmax_cross_entropy
from .harvest import HarvestedSample
from .student import StudentConfig, build_student
from .teacher import TeacherModel
from .tracker import Tracker
from .world import Frame

__all__ = ["OnlineConfig", "OnlineSnapshot", "OnlineAdapter"]


@dataclass(frozen=True)
class OnlineConfig:
    """Knobs of the streaming loop."""

    update_every: int = 50  # new samples between training bursts
    steps_per_update: int = 20
    batch_size: int = 16
    buffer_max: int = 5_000
    confidence_threshold: float = 0.9
    min_track_length: int = 3
    student: StudentConfig = field(default_factory=StudentConfig)

    def __post_init__(self) -> None:
        if self.update_every < 1 or self.steps_per_update < 1:
            raise ValueError("update cadence values must be >= 1")
        if self.buffer_max < 1:
            raise ValueError("buffer_max must be >= 1")


@dataclass(frozen=True)
class OnlineSnapshot:
    """State after one training burst."""

    t: int
    buffer_size: int
    tracks_closed: int
    updates: int


class OnlineAdapter:
    """Streaming tracker → harvester → replay-buffer student trainer."""

    def __init__(
        self,
        teacher: TeacherModel,
        feature_dim: int,
        num_classes: int,
        cfg: OnlineConfig = OnlineConfig(),
        seed: int = 0,
    ) -> None:
        self.teacher = teacher
        self.cfg = cfg
        self.num_classes = num_classes
        self.tracker = Tracker()
        self.student = build_student(feature_dim, num_classes, cfg.student)
        self.optimizer = Momentum(self.student.layers, lr=cfg.student.lr)
        self.rng = np.random.default_rng(seed)
        self.buffer: list[HarvestedSample] = []
        self.snapshots: list[OnlineSnapshot] = []
        self._open: dict[int, list] = {}  # track_id -> [(t, detection)]
        self._last_seen: dict[int, int] = {}
        self._new_since_update = 0
        self._tracks_closed = 0
        self._updates = 0
        self._now = 0

    # -- streaming interface --------------------------------------------
    def process_frame(self, frame: Frame) -> None:
        """Ingest one frame: track, close stale tracks, maybe train."""
        self._now = frame.t
        for a in self.tracker.step(frame):
            det = frame.detections[a.det_index]
            self._open.setdefault(a.track_id, []).append((frame.t, det))
            self._last_seen[a.track_id] = frame.t
        stale = [
            tid
            for tid, last in self._last_seen.items()
            if frame.t - last > self.tracker.max_misses
        ]
        for tid in stale:
            self._close_track(tid)
        if self._new_since_update >= self.cfg.update_every:
            self._train_burst()

    def finalize(self) -> None:
        """Close all open tracks and run a final training burst."""
        for tid in list(self._open):
            self._close_track(tid)
        if self.buffer:
            self._train_burst()

    # -- internals --------------------------------------------------------
    def _close_track(self, track_id: int) -> None:
        members = self._open.pop(track_id, [])
        self._last_seen.pop(track_id, None)
        if len(members) < self.cfg.min_track_length:
            return
        self._tracks_closed += 1
        members.sort(key=lambda td: td[0])
        dets = [d for _, d in members]
        feats = np.stack([d.features for d in dets])
        preds, confs = self.teacher.predict(feats)
        if confs[-1] < self.cfg.confidence_threshold:
            return
        label = int(preds[-1])  # the paper's track-end rule
        for d in dets:
            self.buffer.append(
                HarvestedSample(
                    features=d.features,
                    label=label,
                    angle_deg=d.angle_deg,
                    track_id=track_id,
                    truth_class=d.truth_class,
                )
            )
            self._new_since_update += 1
        if len(self.buffer) > self.cfg.buffer_max:
            # Reservoir-ish eviction: drop random old samples.
            excess = len(self.buffer) - self.cfg.buffer_max
            keep = self.rng.permutation(len(self.buffer))[excess:]
            self.buffer = [self.buffer[i] for i in sorted(keep)]

    def _train_burst(self) -> None:
        if not self.buffer:
            return
        x = np.stack([s.features for s in self.buffer])
        y = np.asarray([s.label for s in self.buffer], dtype=np.int64)
        n = len(self.buffer)
        for _ in range(self.cfg.steps_per_update):
            idx = self.rng.integers(0, n, size=min(self.cfg.batch_size, n))
            loss, grads, _ = self.student.train_step(x[idx], y[idx], softmax_cross_entropy)
            self.optimizer.step(grads)
        self._updates += 1
        self._new_since_update = 0
        self.snapshots.append(
            OnlineSnapshot(
                t=self._now,
                buffer_size=len(self.buffer),
                tracks_closed=self._tracks_closed,
                updates=self._updates,
            )
        )

    # -- evaluation ---------------------------------------------------------
    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Current student accuracy on held-out data."""
        return float((self.student.forward(x).argmax(axis=1) == y).mean())

    @property
    def buffer_purity(self) -> float:
        """Fraction of buffered labels matching hidden ground truth."""
        if not self.buffer:
            return 1.0
        return sum(s.label == s.truth_class for s in self.buffer) / len(self.buffer)
