"""In-situ student-teacher training against the viewpoint problem."""

from .world import Detection, Episode, Frame, TrackTruth, ViewpointWorld
from .teacher import TeacherModel
from .tracker import TrackedDetection, Tracker, TrackState, track_episode
from .harvest import HarvestedSample, HarvestResult, harvest_labels
from .student import StudentConfig, StudentModel, build_student, train_student
from .evaluation import (
    CalibrationBin,
    calibration_curve,
    confusion_matrix,
    expected_calibration_error,
    per_class_accuracy,
)
from .online import OnlineAdapter, OnlineConfig, OnlineSnapshot
from .pipeline import PipelineConfig, PipelineResult, run_pipeline

__all__ = [
    "ViewpointWorld",
    "Detection",
    "Frame",
    "TrackTruth",
    "Episode",
    "TeacherModel",
    "Tracker",
    "TrackState",
    "TrackedDetection",
    "track_episode",
    "HarvestedSample",
    "HarvestResult",
    "harvest_labels",
    "StudentConfig",
    "StudentModel",
    "build_student",
    "train_student",
    "PipelineConfig",
    "PipelineResult",
    "run_pipeline",
    "OnlineConfig",
    "OnlineSnapshot",
    "OnlineAdapter",
    "confusion_matrix",
    "per_class_accuracy",
    "CalibrationBin",
    "calibration_curve",
    "expected_calibration_error",
]
