"""Auto-labelling by propagating confident teacher labels along tracks.

The paper's mechanism (Section III): when the teacher confidently
identifies a subject in *any* frame of a track (typically the
near-frontal end), that label is attached to the track's detections in
*all* frames — "every such instance ... contributes tens of images to
this new dataset".  The harvested set therefore covers skewed angles the
teacher itself cannot classify, which is what lets the student beat the
teacher off-frontal.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from .teacher import TeacherModel
from .tracker import TrackedDetection
from .world import Episode

__all__ = ["HarvestedSample", "HarvestResult", "harvest_labels"]


@dataclass(frozen=True)
class HarvestedSample:
    """One auto-labelled training example."""

    features: np.ndarray
    label: int
    angle_deg: float
    track_id: int
    truth_class: int  # evaluation only


@dataclass(frozen=True)
class HarvestResult:
    """The harvested dataset plus quality statistics."""

    samples: tuple[HarvestedSample, ...]
    tracks_labelled: int
    tracks_seen: int

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def x(self) -> np.ndarray:
        return np.stack([s.features for s in self.samples])

    @property
    def y(self) -> np.ndarray:
        return np.asarray([s.label for s in self.samples], dtype=np.int64)

    @property
    def angles(self) -> np.ndarray:
        return np.asarray([s.angle_deg for s in self.samples])

    @property
    def label_purity(self) -> float:
        """Fraction of harvested labels matching hidden ground truth."""
        if not self.samples:
            return 1.0
        good = sum(1 for s in self.samples if s.label == s.truth_class)
        return good / len(self.samples)


def harvest_labels(
    episode: Episode,
    assignments: list[TrackedDetection],
    teacher: TeacherModel,
    confidence_threshold: float = 0.9,
    min_track_length: int = 3,
    label_source: str = "track_end",
) -> HarvestResult:
    """Propagate confident teacher labels along tracker tracks.

    ``label_source`` selects which detection names the track:

    * ``"track_end"`` (default, the paper's rule): the temporally last
      detection — where a crossing subject faces the camera, so the
      frontal teacher is both confident *and right*;
    * ``"max_confidence"``: the single most confident detection anywhere
      in the track (vulnerable to confidently-wrong skewed frames under
      aspect confusion — measurably lower label purity, see the
      harvesting ablation bench).

    Either way the chosen confidence must clear ``confidence_threshold``;
    short tracks (clutter) are dropped.
    """
    if not 0.0 < confidence_threshold <= 1.0:
        raise ValueError("confidence_threshold must be in (0, 1]")
    if label_source not in ("track_end", "max_confidence"):
        raise ValueError(f"unknown label_source {label_source!r}")
    by_track: dict[int, list[TrackedDetection]] = defaultdict(list)
    for a in assignments:
        by_track[a.track_id].append(a)

    samples: list[HarvestedSample] = []
    labelled = 0
    seen = 0
    for track_id, members in by_track.items():
        if len(members) < min_track_length:
            continue
        seen += 1
        members = sorted(members, key=lambda a: a.t)
        dets = [episode.frames[a.t].detections[a.det_index] for a in members]
        feats = np.stack([d.features for d in dets])
        preds, confs = teacher.predict(feats)
        best = len(dets) - 1 if label_source == "track_end" else int(confs.argmax())
        if confs[best] < confidence_threshold:
            continue
        label = int(preds[best])
        labelled += 1
        for d in dets:
            samples.append(
                HarvestedSample(
                    features=d.features,
                    label=label,
                    angle_deg=d.angle_deg,
                    track_id=track_id,
                    truth_class=d.truth_class,
                )
            )
    return HarvestResult(samples=tuple(samples), tracks_labelled=labelled, tracks_seen=seen)
