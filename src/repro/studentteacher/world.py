"""Synthetic viewpoint world (the paper's Section III scenario).

A fixed camera watches subjects cross its field of view.  Each subject
belongs to one of ``num_classes`` classes with a prototype feature vector;
what the camera *observes* for a subject at viewpoint angle θ is the
prototype transformed by a θ-dependent distortion (a rotation in feature
space plus attenuation) — the formal core of the viewpoint problem: a
classifier fit at θ ≈ 0 (frontal) degrades as |θ| grows.

As a subject walks across the frame its relative angle sweeps through a
range that touches near-frontal at one end — exactly the paper's premise
that "the teacher model correctly identifies it in the last frame",
enabling label propagation along the track.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Detection", "Frame", "TrackTruth", "Episode", "ViewpointWorld"]


@dataclass(frozen=True)
class Detection:
    """One detected subject in one frame.

    ``truth_*`` fields are hidden ground truth used only for evaluation —
    the pipeline (teacher/tracker/harvester) never reads them to make
    decisions.
    """

    position: tuple[float, float]
    features: np.ndarray
    angle_deg: float
    truth_class: int
    truth_track: int


@dataclass(frozen=True)
class Frame:
    """All detections at one time step."""

    t: int
    detections: tuple[Detection, ...]


@dataclass(frozen=True)
class TrackTruth:
    """Ground truth for one subject's crossing."""

    track_id: int
    cls: int
    start_t: int
    end_t: int


@dataclass(frozen=True)
class Episode:
    """A generated scene: frames plus ground-truth tracks."""

    frames: tuple[Frame, ...]
    tracks: tuple[TrackTruth, ...]

    @property
    def num_detections(self) -> int:
        return sum(len(f.detections) for f in self.frames)


@dataclass
class ViewpointWorld:
    """Generator of viewpoint-distorted observations.

    ``feature_dim`` must be >= 2 (the distortion rotates the first two
    feature axes by θ and attenuates the rest by cos θ/2).
    """

    num_classes: int
    feature_dim: int = 8
    noise: float = 0.25
    frame_width: float = 100.0
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least 2 classes")
        if self.feature_dim < 2:
            raise ValueError("feature_dim must be >= 2")
        # Well-separated prototypes on a sphere.
        protos = self.rng.normal(size=(self.num_classes, self.feature_dim))
        protos /= np.linalg.norm(protos, axis=1, keepdims=True)
        self.prototypes = protos * 4.0

    def drift(self, magnitude: float = 0.3) -> None:
        """Apply environmental drift: rotate + perturb every prototype.

        Models the slow appearance change a fixed camera sees (seasons,
        lighting, wear).  Any model trained before the drift — teacher
        *and* student — degrades; only *ongoing* in-situ adaptation keeps
        up, which is the continual-learning case for Section III.
        ``magnitude`` is the fraction of prototype norm perturbed.
        """
        if magnitude < 0:
            raise ValueError("drift magnitude must be >= 0")
        noise = self.rng.normal(size=self.prototypes.shape)
        self.prototypes = self.prototypes + magnitude * 4.0 * (
            noise / np.linalg.norm(noise, axis=1, keepdims=True)
        )
        # Renormalize to keep class separability comparable over time.
        self.prototypes *= 4.0 / np.linalg.norm(self.prototypes, axis=1, keepdims=True)

    # -- observation model ------------------------------------------------
    def observe(self, cls: int, angle_deg: float, rng: np.random.Generator | None = None) -> np.ndarray:
        """Observed features of a class-``cls`` subject at ``angle_deg``.

        The viewpoint distortion rotates a class's appearance toward the
        *next* class's prototype (aspect confusion: at skewed angles,
        distinct objects project to similar silhouettes) and attenuates
        the remaining discriminative energy.  A classifier fit at θ ≈ 0
        therefore confuses class c with class c+1 as |θ| grows — but the
        map θ → features stays deterministic up to noise, so a student
        *trained at those angles* can still separate the classes.
        """
        rng = rng or self.rng
        theta = math.radians(angle_deg)
        c, s = math.cos(theta), abs(math.sin(theta))
        neighbour = (cls + 1) % self.num_classes
        v = c * self.prototypes[cls] + s * self.prototypes[neighbour]
        v *= 0.5 * (1.0 + math.cos(theta / 2.0))  # mild energy loss off-axis
        return v + rng.normal(0.0, self.noise, size=v.shape)

    def sample_frontal(self, n_per_class: int, max_angle_deg: float = 10.0) -> tuple[np.ndarray, np.ndarray]:
        """Training data as collected at (near-)frontal viewpoints.

        This is what the centrally-trained teacher sees — the viewpoint
        bias the paper describes.
        """
        xs, ys = [], []
        for cls in range(self.num_classes):
            for _ in range(n_per_class):
                angle = float(self.rng.uniform(-max_angle_deg, max_angle_deg))
                xs.append(self.observe(cls, angle))
                ys.append(cls)
        return np.asarray(xs), np.asarray(ys, dtype=np.int64)

    def sample_at_angles(self, n_per_class: int, angles_deg: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Evaluation data uniformly covering ``angles_deg`` (x, y, angle)."""
        xs, ys, aa = [], [], []
        for cls in range(self.num_classes):
            for _ in range(n_per_class):
                angle = float(self.rng.choice(angles_deg))
                xs.append(self.observe(cls, angle))
                ys.append(cls)
                aa.append(angle)
        return np.asarray(xs), np.asarray(ys, dtype=np.int64), np.asarray(aa)

    # -- episode generation -----------------------------------------------
    def generate_episode(
        self,
        n_subjects: int,
        frames_per_crossing: int = 20,
        camera_skew_deg: float = 55.0,
        frontal_window_deg: float = 12.0,
        clutter_rate: float = 0.3,
        spacing: int = 4,
    ) -> Episode:
        """Subjects cross the frame one after another; clutter detections
        (sensor noise, never part of a track) arrive at ``clutter_rate``
        per frame.

        Each crossing sweeps the relative viewpoint angle linearly from
        ``camera_skew_deg`` down to ``±frontal_window_deg`` — skewed for
        most of the track, near-frontal only at the end (where the teacher
        can fire).
        """
        if n_subjects < 1 or frames_per_crossing < 2:
            raise ValueError("need n_subjects >= 1 and frames_per_crossing >= 2")
        total_t = n_subjects * spacing + frames_per_crossing + 1
        per_frame: dict[int, list[Detection]] = {t: [] for t in range(total_t)}
        tracks: list[TrackTruth] = []
        for track_id in range(n_subjects):
            cls = int(self.rng.integers(self.num_classes))
            t0 = track_id * spacing
            direction = 1 if self.rng.random() < 0.5 else -1
            y_pos = float(self.rng.uniform(20.0, 80.0))
            speed = self.frame_width / (frames_per_crossing - 1)
            end_angle = float(self.rng.uniform(-frontal_window_deg, frontal_window_deg))
            for j in range(frames_per_crossing):
                t = t0 + j
                frac = j / (frames_per_crossing - 1)
                angle = camera_skew_deg + (end_angle - camera_skew_deg) * frac
                x_pos = (self.frame_width * frac) if direction > 0 else (self.frame_width * (1 - frac))
                per_frame[t].append(
                    Detection(
                        position=(float(x_pos), y_pos),
                        features=self.observe(cls, angle),
                        angle_deg=angle,
                        truth_class=cls,
                        truth_track=track_id,
                    )
                )
            tracks.append(TrackTruth(track_id=track_id, cls=cls, start_t=t0, end_t=t0 + frames_per_crossing - 1))
        # Clutter: isolated false detections with random features.
        for t in range(total_t):
            n_clutter = int(self.rng.poisson(clutter_rate))
            for _ in range(n_clutter):
                per_frame[t].append(
                    Detection(
                        position=(float(self.rng.uniform(0, self.frame_width)), float(self.rng.uniform(0, 100.0))),
                        features=self.rng.normal(0.0, 2.0, size=self.feature_dim),
                        angle_deg=0.0,
                        truth_class=-1,
                        truth_track=-1,
                    )
                )
        frames = tuple(Frame(t=t, detections=tuple(per_frame[t])) for t in range(total_t))
        return Episode(frames=frames, tracks=tuple(tracks))
