"""In-situ student training on the harvested dataset.

The student is a small MLP built on :mod:`repro.autodiff`.  Training can
run *checkpointed*: given a per-batch activation budget, the planner picks
a Revolve slot count and every optimizer step executes the schedule-driven
backward pass — the end-to-end tie between Sections III and VI of the
paper.  Gradients are identical either way; only the peak memory differs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import (
    DenseLayer,
    Momentum,
    ReLULayer,
    SequentialNet,
    accuracy,
    batches,
    run_schedule,
    softmax_cross_entropy,
)
from ..autodiff.data import Dataset
from ..checkpointing import revolve_schedule, slots_for_rho

__all__ = ["StudentConfig", "StudentModel", "train_student"]


@dataclass(frozen=True)
class StudentConfig:
    """Hyper-parameters of the in-situ student."""

    hidden: int = 32
    depth: int = 3
    epochs: int = 30
    batch_size: int = 16
    lr: float = 0.02
    #: None = store-all; otherwise a recompute factor to train under
    #: (the schedule uses the minimal slots achieving it).
    rho: float | None = None
    seed: int = 0


@dataclass
class StudentModel:
    """A trained student with evaluation helpers."""

    net: SequentialNet
    losses: list[float]
    peak_bytes: int

    def logits(self, x: np.ndarray) -> np.ndarray:
        return self.net.forward(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.logits(x).argmax(axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return accuracy(self.logits(x), y)

    def accuracy_by_angle(
        self, x: np.ndarray, y: np.ndarray, angles_deg: np.ndarray, bins: np.ndarray
    ) -> dict[float, float]:
        """Accuracy per |angle| bucket — same convention as the teacher's."""
        from .teacher import _bucketize_accuracy

        return _bucketize_accuracy(self.predict(x) == y, angles_deg, bins)


def build_student(feature_dim: int, num_classes: int, cfg: StudentConfig) -> SequentialNet:
    """MLP: depth x (Dense+ReLU) + linear head."""
    rng = np.random.default_rng(cfg.seed)
    layers = []
    prev = feature_dim
    for i in range(cfg.depth):
        layers.append(DenseLayer(prev, cfg.hidden, rng, name=f"fc{i}"))
        layers.append(ReLULayer(name=f"relu{i}"))
        prev = cfg.hidden
    layers.append(DenseLayer(prev, num_classes, rng, name="head"))
    return SequentialNet(layers, name="student")


def train_student(
    data: Dataset,
    num_classes: int,
    cfg: StudentConfig = StudentConfig(),
) -> StudentModel:
    """Train the student, checkpointed when ``cfg.rho`` is set."""
    net = build_student(data.x.shape[1], num_classes, cfg)
    opt = Momentum(net.layers, lr=cfg.lr)
    rng = np.random.default_rng(cfg.seed + 1)
    schedule = None
    if cfg.rho is not None:
        slots = slots_for_rho(len(net), cfg.rho)
        schedule = revolve_schedule(len(net), slots)
    losses: list[float] = []
    peak = 0
    for _ in range(cfg.epochs):
        epoch_loss = 0.0
        n_batches = 0
        for xb, yb in batches(data, cfg.batch_size, rng):
            if schedule is None:
                loss, grads, step_peak = net.train_step(xb, yb, softmax_cross_entropy)
            else:
                res = run_schedule(net, schedule, xb, yb, softmax_cross_entropy)
                loss, grads, step_peak = res.loss, res.grads, res.peak_bytes
            opt.step(grads)
            epoch_loss += loss
            n_batches += 1
            peak = max(peak, step_peak)
        losses.append(epoch_loss / max(1, n_batches))
    return StudentModel(net=net, losses=losses, peak_bytes=peak)
