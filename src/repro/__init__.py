"""repro — Training on the Edge: the why and the how.

A from-scratch reproduction of Kukreja, Shilova, Beaumont, Hückelheim,
Ferrier, Hovland & Gorman (IPPS 2019): optimal (binomial/Revolve)
checkpointing for memory-constrained training on edge devices, plus the
in-situ student-teacher pipeline that motivates it.

Quick tour
----------
>>> from repro import zoo, memory, checkpointing, experiments
>>> net = zoo.resnet50()
>>> acct = memory.account(net)                       # Tables I-III substrate
>>> plan = checkpointing.plan_training(              # Figure 1 substrate
...     l=50, fixed_bytes=acct.fixed_bytes,
...     slot_bytes=8 * acct.act_bytes_per_sample // 50,
...     budget_bytes=2 * 1024**3)
>>> print(experiments.figure1_ascii("b"))            # the paper's Figure 1b

Subpackages
-----------
``graph``          symbolic layer-graph IR (shape/param/FLOP inference)
``zoo``            ResNet-18/34/50/101/152, VGG, small test models
``memory``         accounting policies, scaling laws, paper calibration
``checkpointing``  Revolve, uniform, √l, heterogeneous DPs, planner
``engine``         one schedule VM with sim / tensor / tiered backends
``autodiff``       real NumPy training with schedule-driven backprop
``edge``           device catalog, storage, epoch-time & duty-cycle sim
``studentteacher`` viewpoint world, teacher, tracker, harvesting, student
``experiments``    regenerators for every table and figure in the paper
``lab``            declarative experiment registry, artifact cache, runner
``obs``            unified tracing/metrics layer with Chrome-trace export
"""

from . import (
    autodiff,
    checkpointing,
    edge,
    engine,
    errors,
    experiments,
    graph,
    lab,
    memory,
    obs,
    studentteacher,
    units,
    zoo,
)

__version__ = "1.0.0"

__all__ = [
    "graph",
    "zoo",
    "memory",
    "checkpointing",
    "engine",
    "autodiff",
    "edge",
    "studentteacher",
    "experiments",
    "lab",
    "obs",
    "units",
    "errors",
    "__version__",
]
