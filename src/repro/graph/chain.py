"""Linearization of network graphs into checkpointable chains.

Checkpointing algorithms (Revolve, ``checkpoint_sequential``, ...) operate
on a *chain*: a sequence of steps ``F_1 .. F_l`` where step ``i`` consumes
exactly the output of step ``i-1``.  Residual networks are DAGs, but they
have natural *cut points* — nodes whose output is the only tensor crossing
into the rest of the network (block boundaries).  :func:`cut_points` finds
them and :func:`linearize` produces a :class:`SegmentChain` whose stages
carry real per-stage activation sizes and FLOPs.

The paper analyses an idealized homogeneous version, ``LinearResNet_x``:
same total weight memory, total activation memory divided evenly over the
nominal depth ``x``.  :func:`homogenize` builds that.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GraphError
from .network import Graph

__all__ = ["ChainStage", "SegmentChain", "cut_points", "linearize", "homogenize", "LinearChain"]


@dataclass(frozen=True)
class ChainStage:
    """One step of a linearized chain.

    ``act_bytes`` is the per-sample size of the stage's *output* (the
    tensor a checkpoint of this stage must hold); ``interior_bytes`` is the
    per-sample total of all activations produced strictly inside the stage
    (live only while the stage's backward runs); ``flops`` is the
    per-sample forward cost.
    """

    name: str
    act_bytes: int
    interior_bytes: int = 0
    flops: int = 0
    param_bytes: int = 0


@dataclass(frozen=True)
class SegmentChain:
    """A chain of :class:`ChainStage` plus network-level constants."""

    name: str
    input_bytes: int
    stages: tuple[ChainStage, ...]
    weight_bytes: int = 0
    buffer_bytes: int = 0

    @property
    def length(self) -> int:
        return len(self.stages)

    @property
    def total_act_bytes(self) -> int:
        """Per-sample activation bytes across all stage outputs + interiors."""
        return sum(s.act_bytes + s.interior_bytes for s in self.stages)

    @property
    def total_flops(self) -> int:
        return sum(s.flops for s in self.stages)

    def is_homogeneous(self) -> bool:
        """True when all stages share output size and cost."""
        if not self.stages:
            return True
        first = self.stages[0]
        return all(
            s.act_bytes == first.act_bytes
            and s.interior_bytes == first.interior_bytes
            and s.flops == first.flops
            for s in self.stages
        )


@dataclass(frozen=True)
class LinearChain:
    """The paper's homogeneous chain: ``l`` identical steps.

    ``act_bytes`` is the per-sample output size of *each* step (the paper's
    ``M_A``), and ``step_flops`` the per-step forward cost.  ``weight_bytes``
    is the fp32 size of all trainable weights (one copy).
    """

    name: str
    length: int
    act_bytes: int
    weight_bytes: int
    step_flops: int = 0
    input_bytes: int = 0

    def __post_init__(self) -> None:
        if self.length < 1:
            raise GraphError("LinearChain length must be >= 1")
        if self.act_bytes < 0 or self.weight_bytes < 0:
            raise GraphError("LinearChain sizes must be non-negative")

    @property
    def total_act_bytes(self) -> int:
        return self.length * self.act_bytes

    def as_segment_chain(self) -> SegmentChain:
        """Expand into an explicit homogeneous :class:`SegmentChain`."""
        stages = tuple(
            ChainStage(name=f"{self.name}[{i}]", act_bytes=self.act_bytes, flops=self.step_flops)
            for i in range(self.length)
        )
        return SegmentChain(
            name=self.name,
            input_bytes=self.input_bytes,
            stages=stages,
            weight_bytes=self.weight_bytes,
        )


def cut_points(graph: Graph) -> list[str]:
    """Names of nodes whose output is the *only* tensor crossing its cut.

    A node ``n`` at topological position ``i`` is a cut point when every
    edge from positions ``<= i`` into positions ``> i`` originates at ``n``.
    Such nodes are exactly the safe places to checkpoint a DAG as if it
    were a chain (block boundaries in ResNet).  The final node is always a
    cut point.
    """
    graph.infer()
    order = graph.topological_order()
    pos = {name: i for i, name in enumerate(order)}
    # last position at which each node's output is consumed
    last_use = {name: pos[name] for name in order}
    for node in graph.nodes:
        for src in node.inputs:
            last_use[src] = max(last_use[src], pos[node.name])
    cuts: list[str] = []
    for i, name in enumerate(order):
        crossing = [n for n in order[: i + 1] if last_use[n] > i]
        if crossing == [name] or (not crossing and i == len(order) - 1):
            cuts.append(name)
    return cuts


def linearize(graph: Graph, include_inplace: bool = True) -> SegmentChain:
    """Cut a DAG into a :class:`SegmentChain` at its natural cut points.

    Each stage spans the nodes between consecutive cut points; the stage's
    ``act_bytes`` is its boundary tensor, ``interior_bytes`` everything
    produced inside, and ``flops``/``param_bytes`` the segment totals.
    The graph's input node forms the chain input, not a stage.
    """
    specs = graph.infer()
    order = graph.topological_order()
    cuts = cut_points(graph)
    if not cuts:
        raise GraphError(f"graph {graph.name!r} has no cut points")
    sources = [n for n in order if graph.node(n).is_source]
    if len(sources) != 1:
        raise GraphError("linearize requires exactly one input node")
    source = sources[0]

    pos = {name: i for i, name in enumerate(order)}
    stages: list[ChainStage] = []
    prev = pos[source]
    for cut in cuts:
        if pos[cut] <= prev and cut != source:
            continue
        if cut == source:
            continue
        seg_nodes = [n for n in order[prev + 1 : pos[cut] + 1]]
        interior = 0
        flops = 0
        params = 0
        for n in seg_nodes:
            node = graph.node(n)
            assert node.output is not None
            if n != cut and (include_inplace or not node.layer.inplace_capable):
                interior += node.output.nbytes
            in_specs = [specs[s] for s in node.inputs]
            flops += node.layer.flops(in_specs, node.output)
            params += node.layer.trainable_bytes
        stages.append(
            ChainStage(
                name=cut,
                act_bytes=specs[cut].nbytes,
                interior_bytes=interior,
                flops=flops,
                param_bytes=params,
            )
        )
        prev = pos[cut]
    return SegmentChain(
        name=graph.name,
        input_bytes=specs[source].nbytes,
        stages=tuple(stages),
        weight_bytes=graph.trainable_bytes,
        buffer_bytes=graph.buffer_bytes,
    )


def homogenize(graph: Graph, depth: int, name: str | None = None) -> LinearChain:
    """Build the paper's ``LinearResNet``-style homogeneous chain.

    Total trainable weight bytes are preserved; total activation bytes are
    divided evenly across ``depth`` steps (integer division, matching the
    paper's "overall activation weights divided by the depth").
    """
    if depth < 1:
        raise GraphError("depth must be >= 1")
    graph.infer()
    total_act = graph.activation_bytes_per_sample()
    total_flops = graph.total_flops_per_sample()
    input_bytes = 0
    for node in graph.nodes:
        if node.is_source:
            assert node.output is not None
            input_bytes = node.output.nbytes
            break
    return LinearChain(
        name=name or f"Linear{graph.name}",
        length=depth,
        act_bytes=total_act // depth,
        weight_bytes=graph.trainable_bytes,
        step_flops=total_flops // depth,
        input_bytes=input_bytes,
    )
