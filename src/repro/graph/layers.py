"""Concrete symbolic layers.

These mirror the layer set needed by ResNet/VGG-class vision models:
convolution, batch norm, ReLU, max/avg pooling, adaptive average pooling,
linear, flatten, dropout, residual add, concatenation, and an identity.
All shape arithmetic follows PyTorch conventions so model summaries line up
with the architectures the paper measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ShapeError
from .layer import Layer, ParamSpec
from .tensor import TensorSpec, conv2d_output_hw, pool2d_output_hw

__all__ = [
    "Input",
    "Identity",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Linear",
    "Flatten",
    "Dropout",
    "Add",
    "Concat",
    "GlobalAvgPool",
    "Softmax",
]


def _pair(v: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(v, int):
        return (v, v)
    return (int(v[0]), int(v[1]))


@dataclass
class Input(Layer):
    """Source node carrying the per-sample input spec (e.g. 3x224x224)."""

    spec: TensorSpec = field(default_factory=lambda: TensorSpec((3, 224, 224)))

    def __post_init__(self) -> None:
        self.arity = 0

    def infer(self, inputs: list[TensorSpec]) -> TensorSpec:
        self._expect_arity(inputs)
        return self.spec


@dataclass
class Identity(Layer):
    """Pass-through node (used for skip connections in the DAG)."""

    def infer(self, inputs: list[TensorSpec]) -> TensorSpec:
        self._expect_arity(inputs)
        return inputs[0]


@dataclass
class Conv2d(Layer):
    """2-D convolution over CHW inputs."""

    in_channels: int = 3
    out_channels: int = 64
    kernel_size: int | tuple[int, int] = 3
    stride: int | tuple[int, int] = 1
    padding: int | tuple[int, int] = 0
    dilation: int | tuple[int, int] = 1
    groups: int = 1
    bias: bool = False

    def __post_init__(self) -> None:
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ShapeError("channels must be divisible by groups")

    def infer(self, inputs: list[TensorSpec]) -> TensorSpec:
        self._expect_arity(inputs)
        c, h, w = self._expect_chw(inputs[0])
        if c != self.in_channels:
            raise ShapeError(
                f"Conv2d {self.name!r}: expected {self.in_channels} channels, got {c}"
            )
        oh, ow = conv2d_output_hw(
            h, w, _pair(self.kernel_size), _pair(self.stride), _pair(self.padding), _pair(self.dilation)
        )
        return inputs[0].with_shape((self.out_channels, oh, ow))

    def params(self) -> list[ParamSpec]:
        kh, kw = _pair(self.kernel_size)
        out = [
            ParamSpec(
                "weight",
                (self.out_channels, self.in_channels // self.groups, kh, kw),
            )
        ]
        if self.bias:
            out.append(ParamSpec("bias", (self.out_channels,)))
        return out

    def flops(self, inputs: list[TensorSpec], output: TensorSpec) -> int:
        kh, kw = _pair(self.kernel_size)
        _, oh, ow = output.shape
        macs = oh * ow * self.out_channels * (self.in_channels // self.groups) * kh * kw
        return 2 * macs


@dataclass
class BatchNorm2d(Layer):
    """Batch normalization: affine params + running-stat buffers."""

    num_features: int = 64
    affine: bool = True
    track_running_stats: bool = True

    def infer(self, inputs: list[TensorSpec]) -> TensorSpec:
        self._expect_arity(inputs)
        c, _, _ = self._expect_chw(inputs[0])
        if c != self.num_features:
            raise ShapeError(
                f"BatchNorm2d {self.name!r}: expected {self.num_features} channels, got {c}"
            )
        return inputs[0]

    def params(self) -> list[ParamSpec]:
        out: list[ParamSpec] = []
        if self.affine:
            out += [
                ParamSpec("weight", (self.num_features,)),
                ParamSpec("bias", (self.num_features,)),
            ]
        if self.track_running_stats:
            out += [
                ParamSpec("running_mean", (self.num_features,), trainable=False),
                ParamSpec("running_var", (self.num_features,), trainable=False),
            ]
        return out

    def flops(self, inputs: list[TensorSpec], output: TensorSpec) -> int:
        return 2 * output.numel


@dataclass
class ReLU(Layer):
    """Rectified linear unit (in-place capable)."""

    def __post_init__(self) -> None:
        self.inplace_capable = True

    def infer(self, inputs: list[TensorSpec]) -> TensorSpec:
        self._expect_arity(inputs)
        return inputs[0]

    def flops(self, inputs: list[TensorSpec], output: TensorSpec) -> int:
        return output.numel


@dataclass
class MaxPool2d(Layer):
    """Max pooling over CHW inputs."""

    kernel_size: int | tuple[int, int] = 2
    stride: int | tuple[int, int] | None = None
    padding: int | tuple[int, int] = 0
    ceil_mode: bool = False

    def infer(self, inputs: list[TensorSpec]) -> TensorSpec:
        self._expect_arity(inputs)
        c, h, w = self._expect_chw(inputs[0])
        stride = self.stride if self.stride is not None else self.kernel_size
        oh, ow = pool2d_output_hw(
            h, w, _pair(self.kernel_size), _pair(stride), _pair(self.padding), self.ceil_mode
        )
        return inputs[0].with_shape((c, oh, ow))

    def flops(self, inputs: list[TensorSpec], output: TensorSpec) -> int:
        kh, kw = _pair(self.kernel_size)
        return output.numel * kh * kw


@dataclass
class AvgPool2d(Layer):
    """Average pooling over CHW inputs."""

    kernel_size: int | tuple[int, int] = 2
    stride: int | tuple[int, int] | None = None
    padding: int | tuple[int, int] = 0
    ceil_mode: bool = False

    def infer(self, inputs: list[TensorSpec]) -> TensorSpec:
        self._expect_arity(inputs)
        c, h, w = self._expect_chw(inputs[0])
        stride = self.stride if self.stride is not None else self.kernel_size
        oh, ow = pool2d_output_hw(
            h, w, _pair(self.kernel_size), _pair(stride), _pair(self.padding), self.ceil_mode
        )
        return inputs[0].with_shape((c, oh, ow))

    def flops(self, inputs: list[TensorSpec], output: TensorSpec) -> int:
        kh, kw = _pair(self.kernel_size)
        return output.numel * kh * kw


@dataclass
class AdaptiveAvgPool2d(Layer):
    """Adaptive average pooling to a fixed output size (ResNet head)."""

    output_size: int | tuple[int, int] = 1

    def infer(self, inputs: list[TensorSpec]) -> TensorSpec:
        self._expect_arity(inputs)
        c, h, w = self._expect_chw(inputs[0])
        oh, ow = _pair(self.output_size)
        if oh > h or ow > w:
            raise ShapeError(
                f"AdaptiveAvgPool2d {self.name!r}: target {oh}x{ow} larger than input {h}x{w}"
            )
        return inputs[0].with_shape((c, oh, ow))

    def flops(self, inputs: list[TensorSpec], output: TensorSpec) -> int:
        return inputs[0].numel


@dataclass
class Linear(Layer):
    """Fully connected layer over flat inputs."""

    in_features: int = 512
    out_features: int = 1000
    bias: bool = True

    def infer(self, inputs: list[TensorSpec]) -> TensorSpec:
        self._expect_arity(inputs)
        spec = inputs[0]
        if spec.rank != 1:
            raise ShapeError(
                f"Linear {self.name!r} expects flat input, got {spec.shape}; add Flatten"
            )
        if spec.shape[0] != self.in_features:
            raise ShapeError(
                f"Linear {self.name!r}: expected {self.in_features} features, got {spec.shape[0]}"
            )
        return spec.with_shape((self.out_features,))

    def params(self) -> list[ParamSpec]:
        out = [ParamSpec("weight", (self.out_features, self.in_features))]
        if self.bias:
            out.append(ParamSpec("bias", (self.out_features,)))
        return out

    def flops(self, inputs: list[TensorSpec], output: TensorSpec) -> int:
        return 2 * self.in_features * self.out_features


@dataclass
class Flatten(Layer):
    """Collapse CHW (or any rank) to a flat vector."""

    def infer(self, inputs: list[TensorSpec]) -> TensorSpec:
        self._expect_arity(inputs)
        return inputs[0].with_shape((inputs[0].numel,))


@dataclass
class Dropout(Layer):
    """Dropout; shape-preserving, stores a mask during training."""

    p: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.p < 1.0:
            raise ShapeError(f"dropout p must be in [0,1), got {self.p}")

    def infer(self, inputs: list[TensorSpec]) -> TensorSpec:
        self._expect_arity(inputs)
        return inputs[0]


@dataclass
class Add(Layer):
    """Elementwise residual addition of two equal-shaped tensors."""

    def __post_init__(self) -> None:
        self.arity = 2

    def infer(self, inputs: list[TensorSpec]) -> TensorSpec:
        self._expect_arity(inputs)
        a, b = inputs
        if a.shape != b.shape:
            raise ShapeError(f"Add {self.name!r}: mismatched shapes {a.shape} vs {b.shape}")
        return a

    def flops(self, inputs: list[TensorSpec], output: TensorSpec) -> int:
        return output.numel


@dataclass
class Concat(Layer):
    """Channel-axis concatenation (DenseNet-style; used in tests)."""

    def __post_init__(self) -> None:
        if self.arity < 2:
            self.arity = 2

    def infer(self, inputs: list[TensorSpec]) -> TensorSpec:
        self._expect_arity(inputs)
        hws = {spec.shape[1:] for spec in inputs}
        if len(hws) != 1:
            raise ShapeError(f"Concat {self.name!r}: mismatched spatial dims {hws}")
        c = sum(spec.shape[0] for spec in inputs)
        h, w = inputs[0].shape[1:]
        return inputs[0].with_shape((c, h, w))


@dataclass
class GlobalAvgPool(Layer):
    """Average over all spatial positions, producing a flat C vector."""

    def infer(self, inputs: list[TensorSpec]) -> TensorSpec:
        self._expect_arity(inputs)
        c, _, _ = self._expect_chw(inputs[0])
        return inputs[0].with_shape((c,))

    def flops(self, inputs: list[TensorSpec], output: TensorSpec) -> int:
        return inputs[0].numel


@dataclass
class Softmax(Layer):
    """Softmax over a flat vector (inference head; shape preserving)."""

    def infer(self, inputs: list[TensorSpec]) -> TensorSpec:
        self._expect_arity(inputs)
        if inputs[0].rank != 1:
            raise ShapeError(f"Softmax {self.name!r} expects flat input")
        return inputs[0]

    def flops(self, inputs: list[TensorSpec], output: TensorSpec) -> int:
        return 3 * output.numel
