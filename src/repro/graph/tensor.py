"""Symbolic tensor specifications.

The graph IR never holds real data — it propagates :class:`TensorSpec`
objects (shape + dtype) through layers so that activation sizes, parameter
counts and FLOPs can be computed analytically, exactly as needed for the
paper's Tables I–III.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ShapeError
from ..units import DTYPE_BYTES

__all__ = ["TensorSpec", "conv2d_output_hw", "pool2d_output_hw"]


@dataclass(frozen=True)
class TensorSpec:
    """Shape and dtype of a (batched) tensor, excluding the batch axis.

    The batch dimension is kept symbolic: all sizes reported by the graph
    IR are *per sample*, and batch scaling is applied by the memory model.
    ``shape`` is the per-sample shape, e.g. ``(3, 224, 224)`` for an RGB
    image or ``(1000,)`` for logits.
    """

    shape: tuple[int, ...]
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if not self.shape:
            raise ShapeError("TensorSpec shape must be non-empty")
        if any((not isinstance(d, int)) or d <= 0 for d in self.shape):
            raise ShapeError(f"TensorSpec dims must be positive ints, got {self.shape}")
        if self.dtype not in DTYPE_BYTES:
            raise ShapeError(f"unsupported dtype {self.dtype!r}")

    @property
    def rank(self) -> int:
        """Number of per-sample dimensions."""
        return len(self.shape)

    @property
    def numel(self) -> int:
        """Number of elements per sample."""
        return math.prod(self.shape)

    @property
    def nbytes(self) -> int:
        """Bytes per sample."""
        return self.numel * DTYPE_BYTES[self.dtype]

    def with_shape(self, shape: tuple[int, ...]) -> "TensorSpec":
        """Return a spec with the same dtype but a new shape."""
        return TensorSpec(shape=shape, dtype=self.dtype)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(d) for d in self.shape)
        return f"{dims}:{self.dtype}"


def conv2d_output_hw(
    h: int,
    w: int,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
    dilation: tuple[int, int] = (1, 1),
) -> tuple[int, int]:
    """Standard convolution output-size arithmetic (floor convention).

    Matches the PyTorch formula
    ``out = floor((in + 2p - d*(k-1) - 1)/s + 1)``.
    """
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    dh, dw = dilation
    oh = (h + 2 * ph - dh * (kh - 1) - 1) // sh + 1
    ow = (w + 2 * pw - dw * (kw - 1) - 1) // sw + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError(
            f"conv arithmetic produced non-positive output {oh}x{ow} "
            f"for input {h}x{w}, kernel {kernel}, stride {stride}, padding {padding}"
        )
    return oh, ow


def pool2d_output_hw(
    h: int,
    w: int,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
    ceil_mode: bool = False,
) -> tuple[int, int]:
    """Pooling output-size arithmetic, with optional ceil mode."""
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding

    def _size(dim: int, k: int, s: int, p: int) -> int:
        num = dim + 2 * p - k
        out = (num + s - 1) // s + 1 if ceil_mode else num // s + 1
        if ceil_mode and (out - 1) * s >= dim + p:
            # PyTorch clamps: last window must start inside the input.
            out -= 1
        return out

    oh = _size(h, kh, sh, ph)
    ow = _size(w, kw, sw, pw)
    if oh <= 0 or ow <= 0:
        raise ShapeError(f"pool arithmetic produced non-positive output {oh}x{ow}")
    return oh, ow
