"""Layer base classes for the symbolic graph IR.

A :class:`Layer` is a shape-transforming node with declared parameters and
buffers.  Layers do not hold data; they infer output :class:`TensorSpec`
from input specs and report parameter/buffer element counts.  Concrete
layers live in :mod:`repro.graph.layers`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ShapeError
from ..units import DTYPE_BYTES
from .tensor import TensorSpec

__all__ = ["ParamSpec", "Layer"]


@dataclass(frozen=True)
class ParamSpec:
    """A named parameter (or buffer) tensor owned by a layer.

    ``trainable`` distinguishes learned weights (which carry gradient /
    optimizer-state copies in the memory model) from buffers such as
    BatchNorm running statistics (stored once).
    """

    name: str
    shape: tuple[int, ...]
    trainable: bool = True
    dtype: str = "float32"

    @property
    def numel(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def nbytes(self) -> int:
        return self.numel * DTYPE_BYTES[self.dtype]


@dataclass
class Layer:
    """Base class for all symbolic layers.

    Subclasses implement :meth:`infer` (shape inference from input specs)
    and :meth:`params` (parameter declaration).  ``arity`` is the number of
    input tensors the layer consumes (2 for residual :class:`Add`).
    ``inplace_capable`` marks activations that deep-learning frameworks can
    compute in place (e.g. ReLU); accounting policies may elect not to
    count their outputs as stored activations.
    """

    name: str = field(default="", kw_only=False)
    arity: int = field(default=1, kw_only=True)
    inplace_capable: bool = field(default=False, kw_only=True)

    # -- protocol -----------------------------------------------------
    def infer(self, inputs: list[TensorSpec]) -> TensorSpec:
        """Infer the output spec from input specs."""
        raise NotImplementedError

    def params(self) -> list[ParamSpec]:
        """Declare parameter and buffer tensors (default: none)."""
        return []

    def flops(self, inputs: list[TensorSpec], output: TensorSpec) -> int:
        """Per-sample multiply-accumulate-style FLOP estimate (default 0)."""
        return 0

    # -- helpers ------------------------------------------------------
    def _expect_arity(self, inputs: list[TensorSpec]) -> None:
        if len(inputs) != self.arity:
            raise ShapeError(
                f"{type(self).__name__} {self.name!r} expects {self.arity} "
                f"input(s), got {len(inputs)}"
            )

    def _expect_chw(self, spec: TensorSpec) -> tuple[int, int, int]:
        if spec.rank != 3:
            raise ShapeError(
                f"{type(self).__name__} {self.name!r} expects CHW input, got {spec.shape}"
            )
        c, h, w = spec.shape
        return c, h, w

    # -- derived quantities --------------------------------------------
    @property
    def trainable_numel(self) -> int:
        """Total trainable parameter elements."""
        return sum(p.numel for p in self.params() if p.trainable)

    @property
    def buffer_numel(self) -> int:
        """Total non-trainable buffer elements."""
        return sum(p.numel for p in self.params() if not p.trainable)

    @property
    def trainable_bytes(self) -> int:
        return sum(p.nbytes for p in self.params() if p.trainable)

    @property
    def buffer_bytes(self) -> int:
        return sum(p.nbytes for p in self.params() if not p.trainable)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"
