"""Network graphs: a small DAG IR with shape inference and summaries.

A :class:`Graph` owns :class:`Node` objects, each wrapping a
:class:`~repro.graph.layer.Layer` and naming its input nodes.  Calling
:meth:`Graph.infer` topologically sorts the DAG and propagates
:class:`~repro.graph.tensor.TensorSpec` through every node, after which
per-node output specs, parameter totals and FLOPs are available.

:class:`Sequential` is a convenience builder for straight-line models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import GraphError
from .layer import Layer, ParamSpec
from .layers import Input
from .tensor import TensorSpec

__all__ = ["Node", "Graph", "Sequential"]


@dataclass
class Node:
    """A placed layer inside a graph: the layer plus its input node names."""

    name: str
    layer: Layer
    inputs: tuple[str, ...] = ()
    #: Filled in by :meth:`Graph.infer`.
    output: TensorSpec | None = None

    @property
    def is_source(self) -> bool:
        return isinstance(self.layer, Input)


class Graph:
    """A directed acyclic graph of layers with symbolic shape inference."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._order: list[str] | None = None
        self._outputs: list[str] = []

    # -- construction ---------------------------------------------------
    def add(self, name: str, layer: Layer, inputs: Iterable[str] = ()) -> str:
        """Add a layer under ``name`` consuming the named input nodes.

        Returns ``name`` so calls can be chained/nested fluently.
        """
        if name in self._nodes:
            raise GraphError(f"duplicate node name {name!r}")
        inputs = tuple(inputs)
        for src in inputs:
            if src not in self._nodes:
                raise GraphError(f"node {name!r} references unknown input {src!r}")
        if layer.arity != len(inputs):
            raise GraphError(
                f"node {name!r}: layer {type(layer).__name__} has arity "
                f"{layer.arity} but {len(inputs)} inputs were wired"
            )
        if not layer.name:
            layer.name = name
        self._nodes[name] = Node(name=name, layer=layer, inputs=inputs)
        self._order = None
        return name

    def add_input(self, name: str, spec: TensorSpec) -> str:
        """Add a source node carrying ``spec``."""
        return self.add(name, Input(spec=spec))

    def mark_output(self, name: str) -> None:
        """Declare ``name`` as a graph output (defaults to terminal nodes)."""
        if name not in self._nodes:
            raise GraphError(f"unknown output node {name!r}")
        if name not in self._outputs:
            self._outputs.append(name)

    # -- structure ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"unknown node {name!r}") from None

    @property
    def nodes(self) -> list[Node]:
        """Nodes in topological order (infer/validate on demand)."""
        return [self._nodes[n] for n in self.topological_order()]

    @property
    def outputs(self) -> list[str]:
        """Declared outputs, or all sink nodes if none were declared."""
        if self._outputs:
            return list(self._outputs)
        consumed = {src for node in self._nodes.values() for src in node.inputs}
        return [n for n in self.topological_order() if n not in consumed]

    def consumers(self, name: str) -> list[str]:
        """Names of nodes that read ``name``."""
        return [n.name for n in self._nodes.values() if name in n.inputs]

    def topological_order(self) -> list[str]:
        """Kahn topological sort; raises :class:`GraphError` on cycles.

        Returns a fresh list — callers may mutate it freely without
        corrupting the graph's cached order.
        """
        if self._order is not None:
            return list(self._order)
        indeg = {name: len(node.inputs) for name, node in self._nodes.items()}
        ready = [n for n, d in indeg.items() if d == 0]
        # Stable order: keep insertion order among ready nodes.
        insertion = {name: i for i, name in enumerate(self._nodes)}
        order: list[str] = []
        while ready:
            ready.sort(key=insertion.__getitem__)
            cur = ready.pop(0)
            order.append(cur)
            for other in self._nodes.values():
                if cur in other.inputs:
                    indeg[other.name] -= other.inputs.count(cur)
                    if indeg[other.name] == 0:
                        ready.append(other.name)
        if len(order) != len(self._nodes):
            raise GraphError(f"graph {self.name!r} has a cycle")
        self._order = order
        return list(order)

    # -- analysis ---------------------------------------------------------
    def infer(self) -> dict[str, TensorSpec]:
        """Run shape inference over the whole graph; returns name→spec."""
        specs: dict[str, TensorSpec] = {}
        for name in self.topological_order():
            node = self._nodes[name]
            in_specs = [specs[src] for src in node.inputs]
            node.output = node.layer.infer(in_specs)
            specs[name] = node.output
        return specs

    def _ensure_inferred(self) -> None:
        if any(self._nodes[n].output is None for n in self._nodes):
            self.infer()

    def iter_params(self) -> Iterator[tuple[str, ParamSpec]]:
        """Yield (node_name, param_spec) for every declared parameter."""
        for name in self.topological_order():
            for p in self._nodes[name].layer.params():
                yield name, p

    @property
    def trainable_numel(self) -> int:
        """Total trainable parameter count (matches torchvision for zoo nets)."""
        return sum(p.numel for _, p in self.iter_params() if p.trainable)

    @property
    def trainable_bytes(self) -> int:
        return sum(p.nbytes for _, p in self.iter_params() if p.trainable)

    @property
    def buffer_numel(self) -> int:
        return sum(p.numel for _, p in self.iter_params() if not p.trainable)

    @property
    def buffer_bytes(self) -> int:
        return sum(p.nbytes for _, p in self.iter_params() if not p.trainable)

    def activation_bytes_per_sample(self, include_inplace: bool = True) -> int:
        """Sum of all node output sizes per sample.

        With ``include_inplace=False``, outputs of layers flagged
        ``inplace_capable`` (ReLU) are skipped, modelling frameworks that
        overwrite them in place.
        """
        self._ensure_inferred()
        total = 0
        for node in self.nodes:
            if not include_inplace and node.layer.inplace_capable:
                continue
            assert node.output is not None
            total += node.output.nbytes
        return total

    def total_flops_per_sample(self) -> int:
        """Total per-sample forward FLOPs."""
        self._ensure_inferred()
        total = 0
        for node in self.nodes:
            in_specs = [self._nodes[src].output for src in node.inputs]
            assert node.output is not None
            total += node.layer.flops([s for s in in_specs if s is not None], node.output)
        return total

    def summary(self) -> str:
        """Human-readable layer table (name, type, output, params)."""
        self._ensure_inferred()
        lines = [f"Graph {self.name!r}: {len(self)} nodes"]
        header = f"{'node':<28}{'layer':<18}{'output':<20}{'params':>12}"
        lines += [header, "-" * len(header)]
        for node in self.nodes:
            nparam = node.layer.trainable_numel
            lines.append(
                f"{node.name:<28}{type(node.layer).__name__:<18}"
                f"{str(node.output):<20}{nparam:>12,}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"trainable params: {self.trainable_numel:,}  "
            f"buffers: {self.buffer_numel:,}"
        )
        return "\n".join(lines)


class Sequential(Graph):
    """Straight-line graph builder: each layer consumes the previous one."""

    def __init__(self, input_spec: TensorSpec, name: str = "sequential") -> None:
        super().__init__(name=name)
        self._tail = self.add_input("input", input_spec)
        self._counter = 0

    def append(self, layer: Layer, name: str | None = None) -> str:
        """Append a unary layer after the current tail; returns its name."""
        if layer.arity != 1:
            raise GraphError("Sequential.append only accepts unary layers")
        if name is None:
            self._counter += 1
            name = f"{type(layer).__name__.lower()}_{self._counter}"
        self._tail = self.add(name, layer, [self._tail])
        return self._tail

    @property
    def tail(self) -> str:
        return self._tail
