"""FLOP aggregation and coarse time estimation for symbolic graphs.

Forward FLOPs come from each layer's :meth:`~repro.graph.layer.Layer.flops`
method.  Backward cost is modelled with the standard convention that a
backward pass costs about twice a forward pass (it computes both input and
weight gradients); the factor is configurable because the paper's Figure 1
analysis assumes backward ≈ forward for its "2ρl" budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from .network import Graph

__all__ = ["FlopReport", "flop_report", "estimate_step_seconds"]

#: Default backward/forward cost ratio used outside of the paper's model.
DEFAULT_BACKWARD_RATIO = 2.0


@dataclass(frozen=True)
class FlopReport:
    """Per-sample FLOP totals for a graph."""

    forward: int
    backward_ratio: float = DEFAULT_BACKWARD_RATIO

    @property
    def backward(self) -> float:
        return self.forward * self.backward_ratio

    @property
    def training_step(self) -> float:
        """FLOPs for one fwd+bwd pass per sample."""
        return self.forward + self.backward


def flop_report(graph: Graph, backward_ratio: float = DEFAULT_BACKWARD_RATIO) -> FlopReport:
    """Aggregate per-sample FLOPs for ``graph``."""
    return FlopReport(forward=graph.total_flops_per_sample(), backward_ratio=backward_ratio)


def estimate_step_seconds(
    flops_per_sample: float,
    batch_size: int,
    device_flops_per_s: float,
    efficiency: float = 1.0,
) -> float:
    """Coarse wall-clock estimate for one step on a device.

    ``efficiency`` in (0, 1] models how much of the device's peak the
    workload achieves (edge CPUs at small batch sizes sit well below peak —
    see :mod:`repro.edge.simulator` for the batch-efficiency curve).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if not 0 < efficiency <= 1:
        raise ValueError("efficiency must be in (0, 1]")
    if device_flops_per_s <= 0:
        raise ValueError("device_flops_per_s must be positive")
    return flops_per_sample * batch_size / (device_flops_per_s * efficiency)
