"""Memory-aware execution ordering for DAG inference.

Edge nodes spend most of their time on *inference*, where the knob is
not checkpointing but the topological order: on a DAG with branches, the
order in which ready nodes execute changes how long intermediate tensors
stay live, and therefore the peak.  This module provides:

* :func:`peak_memory_of_order` — exact peak live bytes of a given order
  (a tensor is live from its producer until its last consumer has run);
* :func:`greedy_min_peak_order` — a best-next-step heuristic (choose the
  ready node minimizing the post-execution live set, breaking ties
  toward freeing the most bytes);
* :func:`optimal_order` — exhaustive branch-and-bound, exact for small
  graphs (≤ ``max_nodes``), used to validate the heuristic in tests.

Wide inputs (multi-branch blocks) are where the orders differ; for pure
chains every topological order is equivalent.
"""

from __future__ import annotations

from itertools import count

from ..errors import GraphError
from .network import Graph

__all__ = ["peak_memory_of_order", "greedy_min_peak_order", "optimal_order"]


def _consumer_counts(graph: Graph) -> dict[str, int]:
    counts = {n.name: 0 for n in graph.nodes}
    for node in graph.nodes:
        for src in node.inputs:
            counts[src] += 1
    return counts


def peak_memory_of_order(graph: Graph, order: list[str]) -> int:
    """Peak live bytes when executing ``order`` (must be topological).

    Outputs of the graph stay live to the end (they are the result).
    Raises :class:`~repro.errors.GraphError` if the order is not a valid
    topological order of exactly the graph's nodes.
    """
    graph.infer()
    names = {n.name for n in graph.nodes}
    if set(order) != names or len(order) != len(names):
        raise GraphError("order must be a permutation of the graph's nodes")
    remaining = _consumer_counts(graph)
    outputs = set(graph.outputs)
    produced: set[str] = set()
    live: dict[str, int] = {}
    peak = 0
    for name in order:
        node = graph.node(name)
        if any(src not in produced for src in node.inputs):
            raise GraphError(f"order is not topological at {name!r}")
        assert node.output is not None
        live[name] = node.output.nbytes
        produced.add(name)
        peak = max(peak, sum(live.values()))
        for src in node.inputs:
            remaining[src] -= 1
            if remaining[src] == 0 and src not in outputs:
                del live[src]
    return peak


def greedy_min_peak_order(graph: Graph) -> list[str]:
    """Heuristic order: always run the ready node that minimizes the live
    set after it executes (ties: free the most bytes, then FIFO)."""
    graph.infer()
    remaining = _consumer_counts(graph)
    outputs = set(graph.outputs)
    sizes = {n.name: n.output.nbytes for n in graph.nodes}  # type: ignore[union-attr]
    deps = {n.name: set(n.inputs) for n in graph.nodes}
    inputs = {n.name: list(n.inputs) for n in graph.nodes}
    ready = [n.name for n in graph.nodes if not deps[n.name]]
    produced: set[str] = set()
    live: dict[str, int] = {}
    order: list[str] = []
    tiebreak = count()
    rem = dict(remaining)

    def score(name: str) -> tuple[int, int]:
        added = sizes[name]
        freed = 0
        for src in inputs[name]:
            if rem[src] == 1 and src not in outputs:
                freed += live.get(src, 0)
        # resulting live total, then prefer bigger immediate frees
        return (sum(live.values()) + added - freed, -freed)

    while ready:
        ready.sort(key=lambda n: (*score(n), n))
        cur = ready.pop(0)
        order.append(cur)
        produced.add(cur)
        live[cur] = sizes[cur]
        for src in inputs[cur]:
            rem[src] -= 1
            if rem[src] == 0 and src not in outputs:
                live.pop(src, None)
        for other in graph.nodes:
            if other.name in produced or other.name in ready:
                continue
            if all(s in produced for s in deps[other.name]):
                ready.append(other.name)
    if len(order) != len(graph):
        raise GraphError("graph has a cycle")
    return order


def optimal_order(graph: Graph, max_nodes: int = 14) -> tuple[list[str], int]:
    """Exhaustive branch-and-bound minimal-peak order (small graphs only).

    Returns (order, peak bytes).  Raises
    :class:`~repro.errors.GraphError` when the graph exceeds
    ``max_nodes`` (the search is exponential).
    """
    graph.infer()
    if len(graph) > max_nodes:
        raise GraphError(
            f"optimal_order is exponential; graph has {len(graph)} > {max_nodes} nodes"
        )
    sizes = {n.name: n.output.nbytes for n in graph.nodes}  # type: ignore[union-attr]
    deps = {n.name: set(n.inputs) for n in graph.nodes}
    consumers = _consumer_counts(graph)
    outputs = set(graph.outputs)

    # Seed the bound with the greedy solution.
    greedy = greedy_min_peak_order(graph)
    best_peak = peak_memory_of_order(graph, greedy)
    best_order = list(greedy)

    n_total = len(graph)
    state_order: list[str] = []

    def rec(produced: frozenset, live: dict[str, int], rem: dict[str, int], peak: int) -> None:
        nonlocal best_peak, best_order
        if peak >= best_peak:
            return
        if len(produced) == n_total:
            best_peak = peak
            best_order = list(state_order)
            return
        for node in graph.nodes:
            name = node.name
            if name in produced or not deps[name] <= produced:
                continue
            new_live = dict(live)
            new_live[name] = sizes[name]
            new_peak = max(peak, sum(new_live.values()))
            new_rem = dict(rem)
            for src in node.inputs:
                new_rem[src] -= 1
                if new_rem[src] == 0 and src not in outputs:
                    new_live.pop(src, None)
            state_order.append(name)
            rec(produced | {name}, new_live, new_rem, new_peak)
            state_order.pop()

    rec(frozenset(), {}, dict(consumers), 0)
    return best_order, best_peak
