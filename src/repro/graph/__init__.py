"""Symbolic layer-graph IR: shape inference, parameter and FLOP accounting.

This is the substrate on which the paper's memory tables are computed.
Build a :class:`Graph` (or :class:`Sequential`), run :meth:`Graph.infer`,
then query activation/parameter byte totals, or linearize into a
checkpointable chain with :func:`linearize` / :func:`homogenize`.
"""

from .tensor import TensorSpec, conv2d_output_hw, pool2d_output_hw
from .layer import Layer, ParamSpec
from .layers import (
    Add,
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Identity,
    Input,
    Linear,
    MaxPool2d,
    ReLU,
    Softmax,
)
from .network import Graph, Node, Sequential
from .chain import (
    ChainStage,
    LinearChain,
    SegmentChain,
    cut_points,
    homogenize,
    linearize,
)
from .export import to_dot, to_records
from .ordering import greedy_min_peak_order, optimal_order, peak_memory_of_order
from .flops import FlopReport, estimate_step_seconds, flop_report

__all__ = [
    "TensorSpec",
    "conv2d_output_hw",
    "pool2d_output_hw",
    "Layer",
    "ParamSpec",
    "Input",
    "Identity",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Linear",
    "Flatten",
    "Dropout",
    "Add",
    "Concat",
    "GlobalAvgPool",
    "Softmax",
    "Graph",
    "Node",
    "Sequential",
    "ChainStage",
    "SegmentChain",
    "LinearChain",
    "cut_points",
    "linearize",
    "homogenize",
    "FlopReport",
    "flop_report",
    "estimate_step_seconds",
    "to_dot",
    "to_records",
    "peak_memory_of_order",
    "greedy_min_peak_order",
    "optimal_order",
]
