"""Graph export: Graphviz DOT and machine-readable node listings.

``to_dot`` produces a rendering-ready DOT digraph (activation sizes on
edges, parameter counts in node labels); ``to_records`` produces plain
dicts for dataframes/JSON.  Neither requires any external dependency.
"""

from __future__ import annotations

from typing import Any

from ..units import humanize_bytes
from .network import Graph

__all__ = ["to_dot", "to_records"]


def _quote(s: str) -> str:
    return '"' + s.replace('"', '\\"') + '"'


def to_dot(graph: Graph, rankdir: str = "TB") -> str:
    """Render ``graph`` as a Graphviz DOT digraph.

    Nodes show layer kind and trainable-parameter count; edges carry the
    per-sample byte size of the tensor flowing along them.
    """
    if rankdir not in ("TB", "LR"):
        raise ValueError("rankdir must be 'TB' or 'LR'")
    graph.infer()
    lines = [f"digraph {_quote(graph.name)} {{", f"  rankdir={rankdir};"]
    lines.append('  node [shape=box, fontsize=10];')
    for node in graph.nodes:
        kind = type(node.layer).__name__
        nparam = node.layer.trainable_numel
        label = f"{node.name}\\n{kind}"
        if nparam:
            label += f"\\n{nparam:,} params"
        shape = ' style=filled fillcolor="#e8f0fe"' if node.is_source else ""
        lines.append(f"  {_quote(node.name)} [label={_quote(label)}{shape}];")
    for node in graph.nodes:
        assert node.output is not None
        for src in node.inputs:
            size = humanize_bytes(graph.node(src).output.nbytes)  # type: ignore[union-attr]
            lines.append(
                f"  {_quote(src)} -> {_quote(node.name)} [label={_quote(size)}];"
            )
    lines.append("}")
    return "\n".join(lines)


def to_records(graph: Graph) -> list[dict[str, Any]]:
    """One dict per node: name, kind, inputs, output shape/bytes, params."""
    graph.infer()
    records = []
    for node in graph.nodes:
        assert node.output is not None
        records.append(
            {
                "name": node.name,
                "kind": type(node.layer).__name__,
                "inputs": list(node.inputs),
                "output_shape": list(node.output.shape),
                "output_bytes": node.output.nbytes,
                "trainable_params": node.layer.trainable_numel,
                "buffer_params": node.layer.buffer_numel,
            }
        )
    return records
