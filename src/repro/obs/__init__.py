"""repro.obs — unified tracing and metrics for the whole stack.

One tracer, one metrics registry, three exporters.  The executor,
trainer, checkpoint-schedule cache, simulators, fleet and
student-teacher pipeline are all instrumented against this package;
``docs/observability.md`` is the guide.

>>> from repro import obs
>>> with obs.tracing() as tracer:
...     with tracer.span("epoch", category="epoch", epoch=0):
...         obs.get_metrics().counter("batches").inc()
>>> print(obs.summary(tracer))  # doctest: +SKIP

Disabled by default: the process tracer is a :class:`NullTracer`, so
instrumented hot paths cost only a null check until :func:`tracing`
(or :func:`set_tracer`) installs a live one.
"""

from .aggregate import (
    CampaignTelemetry,
    UnitTelemetry,
    campaign_summary,
    load_campaign,
    merge_chrome_trace,
    render_report,
)
from .export import chrome_trace, summary, to_jsonl, write_chrome_trace, write_jsonl
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    get_metrics,
    reset_metrics,
    set_metrics,
)
from .runlog import (
    CAMPAIGN_FILENAME,
    TELEMETRY_DIRNAME,
    RunlogTracer,
    UnitCapture,
    read_campaign_record,
    read_unit_runlog,
    runlog_lines,
    write_campaign_record,
    write_unit_runlog,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "get_metrics",
    "set_metrics",
    "reset_metrics",
    "chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "summary",
    "RunlogTracer",
    "UnitCapture",
    "TELEMETRY_DIRNAME",
    "CAMPAIGN_FILENAME",
    "runlog_lines",
    "write_unit_runlog",
    "read_unit_runlog",
    "write_campaign_record",
    "read_campaign_record",
    "UnitTelemetry",
    "CampaignTelemetry",
    "load_campaign",
    "merge_chrome_trace",
    "campaign_summary",
    "render_report",
]
