"""Exporters: JSONL event log, Chrome ``trace_event`` dump, text summary.

Three views of the same buffers:

* :func:`to_jsonl` — one JSON object per line (spans, instant events,
  then one ``metrics`` line), greppable and diffable;
* :func:`chrome_trace` — the Chrome ``trace_event`` JSON-object format,
  loadable directly in ``chrome://tracing`` or https://ui.perfetto.dev
  (spans as complete ``"ph": "X"`` events, instants as ``"ph": "i"``);
* :func:`summary` — a plain-text per-(category, name) table with call
  counts and total/mean/max durations, plus the metrics snapshot.

Timestamps are rebased so the earliest span/event in the buffer is 0 µs.
"""

from __future__ import annotations

import json
import pathlib

from .metrics import Metrics, get_metrics
from .tracer import Tracer, get_tracer

__all__ = [
    "to_jsonl",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "summary",
]


def _epoch(tracer: Tracer) -> float:
    """Earliest timestamp in the buffers (0.0 when empty)."""
    starts = [s.start for s in tracer.spans()]
    starts += [e.timestamp for e in tracer.events()]
    return min(starts) if starts else 0.0


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def to_jsonl(tracer: Tracer | None = None, metrics: Metrics | None = None) -> str:
    """The whole trace as newline-delimited JSON (trailing newline)."""
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    t0 = _epoch(tracer)
    lines = []
    for s in tracer.spans():
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "name": s.name,
                    "cat": s.category,
                    "ts_us": (s.start - t0) * 1e6,
                    "dur_us": s.duration * 1e6,
                    "id": s.span_id,
                    "parent": s.parent_id,
                    "tid": s.thread_id,
                    "tags": s.tags,
                },
                default=str,
            )
        )
    for e in tracer.events():
        lines.append(
            json.dumps(
                {
                    "type": "event",
                    "name": e.name,
                    "cat": e.category,
                    "ts_us": (e.timestamp - t0) * 1e6,
                    "parent": e.parent_id,
                    "tid": e.thread_id,
                    "tags": e.tags,
                },
                default=str,
            )
        )
    lines.append(json.dumps({"type": "metrics", "values": metrics.snapshot()}, default=str))
    return "\n".join(lines) + "\n"


def write_jsonl(
    path: str | pathlib.Path,
    tracer: Tracer | None = None,
    metrics: Metrics | None = None,
) -> pathlib.Path:
    """Write :func:`to_jsonl` output to ``path``; returns the path."""
    p = pathlib.Path(path)
    p.write_text(to_jsonl(tracer, metrics))
    return p


# ---------------------------------------------------------------------------
# Chrome trace_event format
# ---------------------------------------------------------------------------


def chrome_trace(tracer: Tracer | None = None, metrics: Metrics | None = None) -> dict:
    """The trace as a Chrome ``trace_event`` JSON-object document."""
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    t0 = _epoch(tracer)
    events: list[dict] = []
    for s in tracer.spans():
        events.append(
            {
                "name": s.name,
                "cat": s.category,
                "ph": "X",
                "ts": (s.start - t0) * 1e6,
                "dur": s.duration * 1e6,
                "pid": 1,
                "tid": s.thread_id,
                "args": {k: str(v) for k, v in s.tags.items()},
            }
        )
    for e in tracer.events():
        events.append(
            {
                "name": e.name,
                "cat": e.category,
                "ph": "i",
                "ts": (e.timestamp - t0) * 1e6,
                "s": "t",
                "pid": 1,
                "tid": e.thread_id,
                "args": {k: str(v) for k, v in e.tags.items()},
            }
        )
    events.sort(key=lambda ev: ev["ts"])
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tool": "repro.obs", "metrics": metrics.snapshot()},
    }


def write_chrome_trace(
    path: str | pathlib.Path,
    tracer: Tracer | None = None,
    metrics: Metrics | None = None,
) -> pathlib.Path:
    """Write :func:`chrome_trace` as JSON to ``path``; returns the path."""
    p = pathlib.Path(path)
    p.write_text(json.dumps(chrome_trace(tracer, metrics), default=str))
    return p


# ---------------------------------------------------------------------------
# Plain-text summary
# ---------------------------------------------------------------------------


#: Counter families always listed in :func:`summary` (0 when untouched),
#: so cache behaviour is visible even on runs that never hit a cache.
_CACHE_COUNTERS = (
    "ckpt.schedule_cache.hits",
    "ckpt.schedule_cache.misses",
    "ckpt.program_cache.hits",
    "ckpt.program_cache.misses",
    "ckpt.program_store.hits",
    "ckpt.program_store.writes",
    "lab.cache.hits",
    "lab.cache.misses",
    "lab.cache.corrupt",
)


def summary(tracer: Tracer | None = None, metrics: Metrics | None = None) -> str:
    """Per-(category, name) span statistics plus the metrics snapshot.

    The metrics half is three tables: counters (always including the
    ``ckpt.*_cache`` / ``lab.cache`` families), gauges, and histograms
    with mean/p50/p95/max columns.
    """
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    groups: dict[tuple[str, str], list[float]] = {}
    for s in tracer.spans():
        groups.setdefault((s.category, s.name), []).append(s.duration)
    lines = [
        f"{'category':<12}{'span':<22}{'count':>7}{'total ms':>11}"
        f"{'mean ms':>10}{'max ms':>10}"
    ]
    for (cat, name), durs in sorted(groups.items()):
        total = sum(durs)
        lines.append(
            f"{cat:<12}{name:<22}{len(durs):>7}{total * 1e3:>11.3f}"
            f"{total / len(durs) * 1e3:>10.3f}{max(durs) * 1e3:>10.3f}"
        )
    if len(lines) == 1:
        lines.append("(no spans recorded)")
    events = tracer.events()
    if events:
        counts: dict[tuple[str, str], int] = {}
        for e in events:
            key = (e.category, e.name)
            counts[key] = counts.get(key, 0) + 1
        lines.append("")
        lines.append(f"{'category':<12}{'event':<22}{'count':>7}")
        for (cat, name), n in sorted(counts.items()):
            lines.append(f"{cat:<12}{name:<22}{n:>7}")
    snap = metrics.snapshot()
    counters = {n: i["value"] for n, i in snap.items() if i["kind"] == "counter"}
    if snap:
        for name in _CACHE_COUNTERS:
            counters.setdefault(name, 0)
    if counters:
        lines.append("")
        lines.append(f"{'counter':<38}{'value':>14}")
        for name, value in sorted(counters.items()):
            lines.append(f"{name:<38}{value:>14}")
    gauges = {n: i["value"] for n, i in snap.items() if i["kind"] == "gauge"}
    if gauges:
        lines.append("")
        lines.append(f"{'gauge':<38}{'value':>14}")
        for name, value in sorted(gauges.items()):
            lines.append(f"{name:<38}{value:>14.6g}")
    hists = {n: i for n, i in snap.items() if i["kind"] == "histogram"}
    if hists:
        lines.append("")
        lines.append(
            f"{'histogram':<30}{'count':>7}{'mean':>11}{'p50':>11}"
            f"{'p95':>11}{'max':>11}"
        )
        for name, info in sorted(hists.items()):
            lines.append(
                f"{name:<30}{info['count']:>7}{info['mean']:>11.6g}"
                f"{info['p50']:>11.6g}{info['p95']:>11.6g}{info['max']:>11.6g}"
            )
    return "\n".join(lines)
