"""Named counters, gauges and histograms with one process-wide registry.

The codebase used to scatter its measurements across ad-hoc containers
(``MemoryMeter`` fields, ``ExecutionStats``, the schedule cache's
hit/miss integers).  :class:`Metrics` gives them one home:

* instruments are created on first use (``metrics.counter("x").inc()``)
  and are thread-safe;
* :func:`get_metrics` returns the shared default registry that the
  executor, trainer, schedule cache and simulators all write to;
* :func:`reset_metrics` (or ``Metrics.reset()``) zeroes every value
  while keeping the instruments registered — the semantics callers want
  between experiment repetitions or ``Trainer.fit`` calls.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "get_metrics",
    "set_metrics",
    "reset_metrics",
]


class Counter:
    """Monotonically increasing count (until reset)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """Last-written value (bytes held, slots occupied, current loss)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def max(self, value: float) -> None:
        """Keep the running maximum (high-water-mark gauges)."""
        with self._lock:
            self._value = max(self._value, float(value))

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Streaming summary (count/sum/min/max/mean/percentiles) of values.

    Percentiles come from a bounded sample buffer: the first
    ``SAMPLE_CAP`` observations are kept verbatim, after which new
    values overwrite a rotating slot — a cheap deterministic reservoir
    that keeps memory flat on unbounded streams while staying exact for
    the common case (every histogram in this codebase observes far
    fewer than the cap per run).
    """

    SAMPLE_CAP = 4096

    __slots__ = ("name", "_lock", "count", "total", "_min", "_max", "_samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            if len(self._samples) < self.SAMPLE_CAP:
                self._samples.append(v)
            else:
                self._samples[self.count % self.SAMPLE_CAP] = v
            self.count += 1
            self.total += v
            self._min = v if self._min is None else min(self._min, v)
            self._max = v if self._max is None else max(self._max, v)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) by linear interpolation.

        Exact while ``count <= SAMPLE_CAP``; an approximation over the
        retained sample window beyond that.  0.0 when empty.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile q must be in [0, 100]")
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        rank = (len(ordered) - 1) * q / 100.0
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return 0.0 if self._min is None else self._min

    @property
    def max(self) -> float:
        return 0.0 if self._max is None else self._max

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self._min = None
            self._max = None
            self._samples.clear()


class Metrics:
    """Registry of named instruments, created on first use.

    A name belongs to exactly one instrument kind; asking for the same
    name as a different kind raises ``ValueError`` (it is almost always
    an instrumentation bug).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = cls(name)
            elif not isinstance(inst, cls):
                raise ValueError(
                    f"metric {name!r} is a {type(inst).__name__}, not a {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """All current values, JSON-ready, sorted by name."""
        with self._lock:
            items = sorted(self._instruments.items())
        out: dict[str, dict[str, float]] = {}
        for name, inst in items:
            if isinstance(inst, Counter):
                out[name] = {"kind": "counter", "value": inst.value}
            elif isinstance(inst, Gauge):
                out[name] = {"kind": "gauge", "value": inst.value}
            else:
                out[name] = {
                    "kind": "histogram",
                    "count": inst.count,
                    "sum": inst.total,
                    "min": inst.min,
                    "max": inst.max,
                    "mean": inst.mean,
                    "p50": inst.percentile(50),
                    "p95": inst.percentile(95),
                }
        return out

    def reset(self) -> None:
        """Zero every instrument, keeping registrations."""
        with self._lock:
            instruments = list(self._instruments.values())
        for inst in instruments:
            inst.reset()

    def clear(self) -> None:
        """Forget every instrument entirely."""
        with self._lock:
            self._instruments.clear()


_default = Metrics()
_default_lock = threading.Lock()


def get_metrics() -> Metrics:
    """The process-wide default registry."""
    return _default


def set_metrics(metrics: Metrics) -> Metrics:
    """Swap the process-wide registry; returns the previous one."""
    global _default
    with _default_lock:
        previous = _default
        _default = metrics
    return previous


def reset_metrics() -> None:
    """Zero every instrument in the default registry."""
    _default.reset()
