"""Campaign telemetry aggregation: merge per-worker runlogs into one view.

The parent half of campaign telemetry.  A telemetry-enabled lab run
leaves ``<outdir>/telemetry/`` holding one runlog per computed unit
(:mod:`repro.obs.runlog`) plus a ``campaign.json`` with the parent's
run-level deltas.  This module joins them into:

* :func:`merge_chrome_trace` — one Chrome ``trace_event`` document with
  **one lane (pid) per worker process**, unit spans carrying resource
  profiles in ``args``, and a synthetic campaign lane for the run
  envelope; loadable directly in chrome://tracing or Perfetto.
* :func:`campaign_summary` — a JSON-ready summary: per-spec wall-time
  breakdown, per-worker occupancy, wave occupancy and the critical path
  through the unit dependency DAG, cache and program-store hit rates,
  and peak RSS per unit.
* :func:`render_report` — the ASCII timeline + tables behind
  ``repro obs report <outdir>``.

Everything reads plain files — no :mod:`repro.lab` import — so reports
can be produced long after the run, on another machine, from nothing
but the artifact directory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .runlog import TELEMETRY_DIRNAME, read_campaign_record, read_unit_runlog

__all__ = [
    "UnitTelemetry",
    "CampaignTelemetry",
    "load_campaign",
    "merge_chrome_trace",
    "campaign_summary",
    "render_report",
]

#: pid used for the synthetic campaign-envelope lane in merged traces.
CAMPAIGN_LANE_PID = 0


@dataclass
class UnitTelemetry:
    """One unit's parsed runlog: identity, streams, resource profile."""

    key: str
    spec: str
    params: dict[str, Any]
    parents: list[str]
    pid: int
    unix_start: float
    profile: dict[str, Any]
    spans: list[dict] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    metric_deltas: dict[str, Any] = field(default_factory=dict)

    @property
    def wall_s(self) -> float:
        return float(self.profile.get("wall_s", 0.0))

    @property
    def unix_end(self) -> float:
        return self.unix_start + self.wall_s


@dataclass
class CampaignTelemetry:
    """Everything telemetry recorded about one run."""

    root: Path  # the telemetry directory itself
    units: list[UnitTelemetry]
    meta: dict[str, Any]  # campaign.json (may be empty for partial runs)


def _telemetry_dir(root: str | Path) -> Path:
    """Resolve an artifact root or a telemetry dir to the telemetry dir."""
    path = Path(root)
    if path.name != TELEMETRY_DIRNAME and (path / TELEMETRY_DIRNAME).is_dir():
        return path / TELEMETRY_DIRNAME
    return path


def load_campaign(root: str | Path) -> CampaignTelemetry:
    """Parse every runlog (plus ``campaign.json``) under ``root``.

    ``root`` may be the artifact directory (``repro all --outdir``) or
    its ``telemetry/`` subdirectory.  Raises ``FileNotFoundError`` when
    no telemetry exists there — the caller decides how to report that.
    """
    directory = _telemetry_dir(root)
    if not directory.is_dir():
        raise FileNotFoundError(
            f"no telemetry directory under {root!s} "
            f"(run with --telemetry to record one)"
        )
    units: list[UnitTelemetry] = []
    for path in sorted(directory.glob("*.jsonl")):
        record = read_unit_runlog(path)
        header = record["unit"]
        units.append(
            UnitTelemetry(
                key=header["key"],
                spec=header["spec"],
                params=dict(header.get("params", {})),
                parents=list(header.get("parents", [])),
                pid=int(header["pid"]),
                unix_start=float(header["unix_start"]),
                profile=dict(header.get("profile", {})),
                spans=record["spans"],
                events=record["events"],
                metric_deltas=record["metric_deltas"],
            )
        )
    meta = read_campaign_record(directory) or {}
    if not units and not meta:
        raise FileNotFoundError(f"telemetry directory {directory} is empty")
    units.sort(key=lambda u: (u.unix_start, u.key))
    return CampaignTelemetry(root=directory, units=units, meta=meta)


# ---------------------------------------------------------------------------
# Chrome trace merge
# ---------------------------------------------------------------------------


def _campaign_epoch(campaign: CampaignTelemetry) -> float:
    starts = [u.unix_start for u in campaign.units]
    meta_start = campaign.meta.get("t_start_unix")
    if meta_start is not None:
        starts.append(float(meta_start))
    return min(starts) if starts else 0.0


def merge_chrome_trace(campaign: CampaignTelemetry) -> dict:
    """All worker streams as one Chrome ``trace_event`` document.

    Each worker process gets its own ``pid`` lane (named ``worker
    <pid>``); unit spans arrive with their resource profile in ``args``;
    a synthetic ``campaign`` lane (pid 0) spans the whole run when
    ``campaign.json`` recorded its envelope.  Timestamps are wall-clock
    microseconds rebased so the earliest activity is 0.
    """
    t0 = _campaign_epoch(campaign)
    events: list[dict] = []
    pids = sorted({u.pid for u in campaign.units})
    for pid in pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": f"worker {pid}"},
            }
        )
    meta = campaign.meta
    if meta.get("t_start_unix") is not None and meta.get("t_end_unix") is not None:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": CAMPAIGN_LANE_PID,
                "tid": 0,
                "ts": 0,
                "args": {"name": "campaign"},
            }
        )
        events.append(
            {
                "name": "campaign",
                "cat": "lab",
                "ph": "X",
                "ts": (float(meta["t_start_unix"]) - t0) * 1e6,
                "dur": (float(meta["t_end_unix"]) - float(meta["t_start_unix"])) * 1e6,
                "pid": CAMPAIGN_LANE_PID,
                "tid": 0,
                "args": {
                    "jobs": str(meta.get("jobs", "")),
                    "units": str(len(meta.get("units", []))),
                },
            }
        )
    for unit in campaign.units:
        base_us = (unit.unix_start - t0) * 1e6
        for span in unit.spans:
            args = {k: str(v) for k, v in span.get("tags", {}).items()}
            if span["name"] == "unit" and span.get("cat") == "lab":
                for field_name in ("wall_s", "user_cpu_s", "sys_cpu_s", "max_rss_kb"):
                    args[field_name] = str(unit.profile.get(field_name, 0))
            events.append(
                {
                    "name": span["name"],
                    "cat": span["cat"],
                    "ph": "X",
                    "ts": base_us + span["ts_us"],
                    "dur": span["dur_us"],
                    "pid": unit.pid,
                    "tid": span.get("tid", 0),
                    "args": args,
                }
            )
        for ev in unit.events:
            events.append(
                {
                    "name": ev["name"],
                    "cat": ev["cat"],
                    "ph": "i",
                    "ts": base_us + ev["ts_us"],
                    "s": "t",
                    "pid": unit.pid,
                    "tid": ev.get("tid", 0),
                    "args": {k: str(v) for k, v in ev.get("tags", {}).items()},
                }
            )
    events.sort(key=lambda ev: (ev["ph"] != "M", ev["ts"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro.obs.aggregate",
            "counters": meta.get("counters", {}),
            "workers": pids,
        },
    }


# ---------------------------------------------------------------------------
# Campaign summary
# ---------------------------------------------------------------------------


def _critical_path(units: list[UnitTelemetry]) -> tuple[float, list[str]]:
    """Longest wall-time chain through the unit dependency DAG.

    Parents that were cache hits have no runlog and contribute zero —
    the path covers *computed* work, which is what bounds the campaign.
    """
    by_key = {u.key: u for u in units}
    memo: dict[str, tuple[float, list[str]]] = {}

    def cost(key: str) -> tuple[float, list[str]]:
        if key in memo:
            return memo[key]
        unit = by_key.get(key)
        if unit is None:
            return 0.0, []
        memo[key] = (unit.wall_s, [key])  # cycle guard: provisional self
        best, best_path = 0.0, []
        for parent in unit.parents:
            c, p = cost(parent)
            if c > best:
                best, best_path = c, p
        memo[key] = (unit.wall_s + best, best_path + [key])
        return memo[key]

    best, best_path = 0.0, []
    for key in by_key:
        c, p = cost(key)
        if c > best:
            best, best_path = c, p
    return best, best_path


def _rate(hits: float, total: float) -> float | None:
    return (hits / total) if total else None


def campaign_summary(campaign: CampaignTelemetry) -> dict:
    """Join runlogs + campaign record into one JSON-ready summary."""
    units = campaign.units
    meta = campaign.meta
    t0 = _campaign_epoch(campaign)
    t_end_candidates = [u.unix_end for u in units]
    if meta.get("t_end_unix") is not None:
        t_end_candidates.append(float(meta["t_end_unix"]))
    makespan = (max(t_end_candidates) - t0) if t_end_candidates else 0.0
    busy = sum(u.wall_s for u in units)
    workers = sorted({u.pid for u in units})
    critical_s, critical_keys = _critical_path(units)
    key_to_spec = {u.key: u.spec for u in units}

    specs: dict[str, dict[str, Any]] = {}
    for u in units:
        row = specs.setdefault(
            u.spec,
            {
                "computed": 0,
                "wall_s": 0.0,
                "user_cpu_s": 0.0,
                "sys_cpu_s": 0.0,
                "peak_rss_kb": 0,
                "spans": 0,
                "events": 0,
            },
        )
        row["computed"] += 1
        row["wall_s"] += u.wall_s
        row["user_cpu_s"] += float(u.profile.get("user_cpu_s", 0.0))
        row["sys_cpu_s"] += float(u.profile.get("sys_cpu_s", 0.0))
        row["peak_rss_kb"] = max(row["peak_rss_kb"], int(u.profile.get("max_rss_kb", 0)))
        row["spans"] += len(u.spans)
        row["events"] += len(u.events)
    for row in specs.values():
        row["share"] = (row["wall_s"] / busy) if busy else 0.0

    # Cached units appear only in the campaign record, not as runlogs.
    statuses: dict[str, int] = {}
    for entry in meta.get("units", []):
        statuses[entry.get("status", "?")] = statuses.get(entry.get("status", "?"), 0) + 1

    lanes = []
    for pid in workers:
        mine = [u for u in units if u.pid == pid]
        lanes.append(
            {
                "pid": pid,
                "computed": len(mine),
                "busy_s": sum(u.wall_s for u in mine),
                "first_s": min(u.unix_start for u in mine) - t0,
                "last_s": max(u.unix_end for u in mine) - t0,
            }
        )

    counters = {k: v for k, v in meta.get("counters", {}).items()}
    lab_hits = counters.get("lab.cache.hits", 0)
    lab_misses = counters.get("lab.cache.misses", 0)
    prog_cache_hits = counters.get("ckpt.program_cache.hits", 0)
    prog_cache_misses = counters.get("ckpt.program_cache.misses", 0)
    prog_store_hits = counters.get("ckpt.program_store.hits", 0)

    return {
        "campaign": {
            "outdir": str(campaign.root.parent),
            "jobs": meta.get("jobs"),
            "units": len(meta.get("units", [])) or len(units),
            "computed": len(units),
            "statuses": statuses,
            "workers": len(workers),
            "makespan_s": makespan,
            "busy_s": busy,
            "occupancy": _rate(busy, len(workers) * makespan) or 0.0,
            "critical_path_s": critical_s,
            "critical_path": [
                {"spec": key_to_spec.get(k, "?"), "key": k} for k in critical_keys
            ],
            "t_start_unix": t0,
        },
        "specs": dict(sorted(specs.items())),
        "workers": lanes,
        "units": [
            {
                "spec": u.spec,
                "key": u.key,
                "pid": u.pid,
                "start_s": u.unix_start - t0,
                "wall_s": u.wall_s,
                "user_cpu_s": float(u.profile.get("user_cpu_s", 0.0)),
                "sys_cpu_s": float(u.profile.get("sys_cpu_s", 0.0)),
                "max_rss_kb": int(u.profile.get("max_rss_kb", 0)),
                "spans": len(u.spans),
                "events": len(u.events),
            }
            for u in units
        ],
        "cache": {
            "lab": {
                "hits": lab_hits,
                "misses": lab_misses,
                "corrupt": counters.get("lab.cache.corrupt", 0),
                "hit_rate": _rate(lab_hits, lab_hits + lab_misses),
            },
            "programs": {
                "cache_hits": prog_cache_hits,
                "store_hits": prog_store_hits,
                "compiled": max(prog_cache_misses - prog_store_hits, 0),
                "hit_rate": _rate(
                    prog_cache_hits + prog_store_hits,
                    prog_cache_hits + prog_cache_misses,
                ),
            },
        },
        "counters": counters,
    }


# ---------------------------------------------------------------------------
# ASCII report
# ---------------------------------------------------------------------------

_TIMELINE_WIDTH = 60
_GLYPHS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


def _pct(value: float | None) -> str:
    return "-" if value is None else f"{value * 100:.0f}%"


def render_report(summary: dict) -> str:
    """ASCII campaign report: header, per-worker timeline, tables."""
    camp = summary["campaign"]
    lines = [
        f"Campaign report: {camp['outdir']} "
        f"(jobs={camp['jobs'] if camp['jobs'] is not None else '?'}, "
        f"{camp['units']} units, {camp['computed']} computed)",
        f"  makespan {camp['makespan_s']:.3f} s, busy {camp['busy_s']:.3f} s "
        f"across {camp['workers']} worker(s) -> "
        f"occupancy {_pct(camp['occupancy'])}",
    ]
    if camp["critical_path"]:
        chain = " -> ".join(step["spec"] for step in camp["critical_path"])
        lines.append(
            f"  critical path {camp['critical_path_s']:.3f} s "
            f"over {len(camp['critical_path'])} unit(s): {chain}"
        )

    units = summary["units"]
    makespan = camp["makespan_s"]
    if units and makespan > 0:
        lines.append("")
        lines.append(
            f"timeline (one lane per worker, {_TIMELINE_WIDTH} cols "
            f"= {makespan:.3f} s)"
        )
        glyph_of = {
            u["key"]: _GLYPHS[i % len(_GLYPHS)] for i, u in enumerate(units)
        }
        for lane in summary["workers"]:
            row = [" "] * _TIMELINE_WIDTH
            for u in units:
                if u["pid"] != lane["pid"]:
                    continue
                lo = int(u["start_s"] / makespan * _TIMELINE_WIDTH)
                hi = int((u["start_s"] + u["wall_s"]) / makespan * _TIMELINE_WIDTH)
                for col in range(min(lo, _TIMELINE_WIDTH - 1), min(max(hi, lo + 1), _TIMELINE_WIDTH)):
                    row[col] = glyph_of[u["key"]]
            lines.append(f"  pid {lane['pid']:<8}|{''.join(row)}|")
        lines.append("")
        lines.append(
            f"  {'':<2}{'spec':<14}{'pid':>8}{'start s':>9}{'wall s':>9}"
            f"{'cpu s':>9}{'rss MB':>9}{'spans':>7}"
        )
        for u in units:
            cpu = u["user_cpu_s"] + u["sys_cpu_s"]
            lines.append(
                f"  {glyph_of[u['key']]:<2}{u['spec']:<14}{u['pid']:>8}"
                f"{u['start_s']:>9.3f}{u['wall_s']:>9.3f}{cpu:>9.3f}"
                f"{u['max_rss_kb'] / 1024:>9.1f}{u['spans']:>7}"
            )

    if summary["specs"]:
        lines.append("")
        lines.append(
            f"{'spec':<14}{'computed':>9}{'wall s':>9}{'share':>7}"
            f"{'cpu s':>9}{'peak rss MB':>13}"
        )
        for name, row in summary["specs"].items():
            cpu = row["user_cpu_s"] + row["sys_cpu_s"]
            lines.append(
                f"{name:<14}{row['computed']:>9}{row['wall_s']:>9.3f}"
                f"{_pct(row['share']):>7}{cpu:>9.3f}"
                f"{row['peak_rss_kb'] / 1024:>13.1f}"
            )

    cache = summary["cache"]
    lines.append("")
    lines.append(
        f"lab cache   : {cache['lab']['hits']} hits / "
        f"{cache['lab']['misses']} misses "
        f"({cache['lab']['corrupt']} corrupt, "
        f"hit rate {_pct(cache['lab']['hit_rate'])})"
    )
    lines.append(
        f"programs    : {cache['programs']['cache_hits']} cache hits / "
        f"{cache['programs']['store_hits']} store hits / "
        f"{cache['programs']['compiled']} compiled "
        f"(hit rate {_pct(cache['programs']['hit_rate'])})"
    )
    return "\n".join(lines)


def write_merged_trace(path: str | Path, campaign: CampaignTelemetry) -> Path:
    """Write :func:`merge_chrome_trace` as JSON to ``path``."""
    p = Path(path)
    p.write_text(json.dumps(merge_chrome_trace(campaign), default=str))
    return p
