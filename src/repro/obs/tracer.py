"""Hierarchical span tracer with a zero-overhead disabled mode.

The repo's argument is quantitative — peak bytes, recompute factor ρ,
wall-time under checkpointing — so every layer (executor, trainer,
simulators, fleet) reports *where* time goes through one shared tracer:

* :class:`Tracer` produces nested spans (``span("epoch")`` /
  ``span("batch")`` / ``span("ADVANCE")``) with monotonic
  ``perf_counter`` timings, string tags, and parent links, collected in
  a thread-safe in-memory buffer;
* :class:`NullTracer` is the process default: ``enabled`` is ``False``
  and every operation is a no-op on shared singletons, so instrumented
  hot paths pay only a null check (see ``benchmarks/bench_obs_overhead``);
* :func:`tracing` installs a fresh live tracer for a ``with`` block and
  restores the previous one afterwards — the hook the CLI ``trace``
  subcommand and the tests use.

Spans are exception-safe: leaving the ``with`` block on a raise still
closes and records the span, tagged with the exception class name.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
]


@dataclass
class Span:
    """One finished (or open) timed region."""

    name: str
    category: str
    start: float  # time.perf_counter() seconds, monotonic
    end: float | None
    span_id: int
    parent_id: int | None
    thread_id: int
    tags: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start


@dataclass(frozen=True)
class TraceEvent:
    """An instant (zero-duration) event."""

    name: str
    category: str
    timestamp: float
    parent_id: int | None
    thread_id: int
    tags: dict[str, object]


class _ActiveSpan:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: Tracer, span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def set_tag(self, key: str, value: object) -> None:
        """Attach/overwrite one tag on the underlying span."""
        self.span.tags[key] = value

    def __enter__(self) -> _ActiveSpan:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span.tags["error"] = exc_type.__name__
        self._tracer._finish(self.span)


class _NullSpan:
    """Shared do-nothing span handle for the disabled tracer."""

    __slots__ = ()

    def set_tag(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects hierarchical spans and instant events, thread-safely.

    Each thread keeps its own open-span stack (nesting is per thread);
    finished spans land in one shared buffer in completion order.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._events: list[TraceEvent] = []
        self._ids = itertools.count(1)
        self._stacks = threading.local()

    # -- internals ------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._stacks, "open", None)
        if stack is None:
            stack = self._stacks.open = []
        return stack

    def _finish(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._spans.append(span)

    # -- recording ------------------------------------------------------
    @staticmethod
    def now() -> float:
        """The tracer's clock (``time.perf_counter`` seconds)."""
        return time.perf_counter()

    def span(self, name: str, category: str = "span", **tags: object) -> _ActiveSpan:
        """Open a nested span; close it by leaving the ``with`` block."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        span = Span(
            name=name,
            category=category,
            start=time.perf_counter(),
            end=None,
            span_id=next(self._ids),
            parent_id=parent,
            thread_id=threading.get_ident(),
            tags=dict(tags),
        )
        stack.append(span)
        return _ActiveSpan(self, span)

    def record(self, name: str, category: str, start: float, **tags: object) -> Span:
        """Append an already-timed span (hot-path form: no ``with`` cost).

        The span runs from ``start`` (a :meth:`now` reading) to the
        current clock and nests under the innermost open span.
        """
        stack = self._stack()
        span = Span(
            name=name,
            category=category,
            start=start,
            end=time.perf_counter(),
            span_id=next(self._ids),
            parent_id=stack[-1].span_id if stack else None,
            thread_id=threading.get_ident(),
            tags=dict(tags),
        )
        with self._lock:
            self._spans.append(span)
        return span

    def event(self, name: str, category: str = "event", **tags: object) -> None:
        """Record an instant event under the innermost open span."""
        stack = self._stack()
        ev = TraceEvent(
            name=name,
            category=category,
            timestamp=time.perf_counter(),
            parent_id=stack[-1].span_id if stack else None,
            thread_id=threading.get_ident(),
            tags=dict(tags),
        )
        with self._lock:
            self._events.append(ev)

    # -- inspection -----------------------------------------------------
    def spans(self) -> tuple[Span, ...]:
        """Finished spans, in completion order."""
        with self._lock:
            return tuple(self._spans)

    def events(self) -> tuple[TraceEvent, ...]:
        """Instant events, in emission order."""
        with self._lock:
            return tuple(self._events)

    def categories(self) -> set[str]:
        """Distinct categories across spans and events."""
        with self._lock:
            cats = {s.category for s in self._spans}
            cats.update(e.category for e in self._events)
        return cats

    def clear(self) -> None:
        """Drop all recorded spans and events (open stacks untouched)."""
        with self._lock:
            self._spans.clear()
            self._events.clear()


class NullTracer(Tracer):
    """Disabled tracer: every operation is a no-op on shared objects."""

    enabled = False

    def __init__(self) -> None:  # no buffers, no locks
        pass

    def span(self, name: str, category: str = "span", **tags: object) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def record(self, name: str, category: str, start: float, **tags: object) -> None:  # type: ignore[override]
        return None

    def event(self, name: str, category: str = "event", **tags: object) -> None:
        pass

    def spans(self) -> tuple[Span, ...]:
        return ()

    def events(self) -> tuple[TraceEvent, ...]:
        return ()

    def categories(self) -> set[str]:
        return set()

    def clear(self) -> None:
        pass


#: The process-wide disabled tracer every call site sees by default.
NULL_TRACER = NullTracer()

_current: Tracer = NULL_TRACER
_current_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer (a :class:`NullTracer` unless installed)."""
    return _current


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` process-wide (``None`` disables); returns the old one."""
    global _current
    with _current_lock:
        previous = _current
        _current = tracer if tracer is not None else NULL_TRACER
    return previous


class tracing:
    """``with tracing() as tracer:`` — trace a block, then restore.

    Installs a fresh :class:`Tracer` (or the one passed in) for the
    duration of the block and reinstates the previous process tracer on
    exit, even on exceptions.
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        set_tracer(self._previous)
