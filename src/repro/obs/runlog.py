"""Worker-side telemetry sink: per-unit runlogs for campaign runs.

The lab runner used to throw away everything a pool worker observed —
spans and metrics died with the process, and only program-cache counter
deltas crossed the boundary.  This module is the worker half of
campaign telemetry:

* :class:`RunlogTracer` is a *coarse* tracer: it buffers every ``with
  tracer.span(...)`` block and instant event like a live
  :class:`~repro.obs.tracer.Tracer`, but reports ``enabled = False`` so
  the per-action hot paths (executor ``record()`` calls, sim event
  hooks, the compiled-dispatch bypass) stay on their zero-overhead
  branches.  Telemetry therefore costs one span per coarse phase, not
  one per schedule action — ``bench_obs_overhead`` pins it under the
  same ≤1.05x budget as the disabled tracer.
* :class:`UnitCapture` wraps one unit's compute: it installs a fresh
  :class:`RunlogTracer`, opens a ``unit`` span, snapshots the metrics
  registry and ``resource.getrusage`` before/after, and leaves behind a
  ``record`` (unit header + spans + events + metric deltas + resource
  profile) plus a plain-dict ``profile``.
* :func:`write_unit_runlog` persists one record as JSONL under
  ``<outdir>/telemetry/<unit_key>.jsonl``, keyed by unit key with the
  worker pid in the header; :func:`read_unit_runlog` parses it back.
* :func:`write_campaign_record` / :func:`read_campaign_record` handle
  the parent's one-per-run ``campaign.json`` (jobs, statuses, counter
  deltas) that :mod:`repro.obs.aggregate` joins with the unit streams.

Span timestamps inside a record are microseconds relative to the unit's
``unix_start`` anchor, so streams from different processes merge onto
one wall-clock axis regardless of each process's monotonic-clock epoch.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Mapping

from .metrics import get_metrics
from .tracer import Tracer, set_tracer

try:  # Unix-only; on other platforms profiles carry zeros.
    import resource as _resource
except ImportError:  # pragma: no cover - non-Unix
    _resource = None

__all__ = [
    "RUNLOG_VERSION",
    "TELEMETRY_DIRNAME",
    "CAMPAIGN_FILENAME",
    "RunlogTracer",
    "UnitCapture",
    "runlog_lines",
    "write_unit_runlog",
    "read_unit_runlog",
    "write_campaign_record",
    "read_campaign_record",
]

RUNLOG_VERSION = 1
TELEMETRY_DIRNAME = "telemetry"
CAMPAIGN_FILENAME = "campaign.json"


class RunlogTracer(Tracer):
    """A live tracer that keeps the per-action hot paths disabled.

    Instrumented code gates its high-frequency recording on
    ``tracer.enabled`` (one ``record()`` per schedule action, one event
    per abstract sim step, the interpreted fallback of the compiled sim
    path).  ``RunlogTracer`` reports ``enabled = False`` — those
    branches stay free — while still buffering every coarse
    ``with span(...)`` block and ``event()`` call, which is exactly the
    granularity a campaign runlog wants.
    """

    enabled = False


def _metrics_state() -> dict[str, tuple]:
    """Comparable (kind, values...) state per instrument, delta-ready."""
    state: dict[str, tuple] = {}
    for name, info in get_metrics().snapshot().items():
        if info["kind"] == "counter":
            state[name] = ("counter", info["value"])
        elif info["kind"] == "histogram":
            state[name] = ("histogram", info["count"], info["sum"])
        # Gauges are point-in-time readings, not accumulations: a delta
        # of two samples is meaningless, so they stay out of runlogs.
    return state


def _metric_deltas(before: Mapping[str, tuple], after: Mapping[str, tuple]) -> dict:
    """Per-instrument change between two :func:`_metrics_state` readings."""
    deltas: dict[str, dict[str, Any]] = {}
    for name, state in after.items():
        prev = before.get(name, (state[0],) + (0,) * (len(state) - 1))
        if state == prev:
            continue
        if state[0] == "counter":
            deltas[name] = {"kind": "counter", "delta": state[1] - prev[1]}
        else:
            deltas[name] = {
                "kind": "histogram",
                "count": state[1] - prev[1],
                "sum": state[2] - prev[2],
            }
    return deltas


class UnitCapture:
    """Capture one unit's spans, metric deltas and resource profile.

    ``with UnitCapture(key=..., spec=...) as cap: compute()`` installs a
    fresh :class:`RunlogTracer` for the block (restoring the previous
    process tracer on exit, exception or not) and opens a ``unit`` span
    around it, so every runlog carries at least one worker-side unit
    span.  After the block, ``cap.record`` is the JSONL-ready runlog
    record and ``cap.profile`` the resource profile: wall seconds,
    user/system CPU seconds and max RSS from ``resource.getrusage``
    (kilobytes on Linux), plus the capturing pid.
    """

    def __init__(
        self,
        *,
        key: str,
        spec: str,
        params: Mapping[str, Any] | None = None,
        parents: tuple[str, ...] | list[str] = (),
    ) -> None:
        self.key = key
        self.spec = spec
        self.params = dict(params or {})
        self.parents = list(parents)
        self.record: dict[str, Any] | None = None
        self.profile: dict[str, Any] | None = None

    def __enter__(self) -> UnitCapture:
        self._tracer = RunlogTracer()
        self._previous = set_tracer(self._tracer)
        self._metrics0 = _metrics_state()
        self._rusage0 = (
            _resource.getrusage(_resource.RUSAGE_SELF) if _resource else None
        )
        self._unix0 = time.time()
        self._span = self._tracer.span(
            "unit", category="lab", spec=self.spec, key=self.key
        )
        self._span.__enter__()
        self._perf0 = self._span.span.start
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            wall_s = time.perf_counter() - self._perf0
            if self._rusage0 is not None:
                rusage = _resource.getrusage(_resource.RUSAGE_SELF)
                user_s = rusage.ru_utime - self._rusage0.ru_utime
                sys_s = rusage.ru_stime - self._rusage0.ru_stime
                max_rss_kb = int(rusage.ru_maxrss)
            else:  # pragma: no cover - non-Unix
                user_s = sys_s = 0.0
                max_rss_kb = 0
            self.profile = {
                "wall_s": wall_s,
                "user_cpu_s": user_s,
                "sys_cpu_s": sys_s,
                "max_rss_kb": max_rss_kb,
                "pid": os.getpid(),
            }
            self._span.set_tag("wall_s", round(wall_s, 6))
            self._span.set_tag("max_rss_kb", max_rss_kb)
            self._span.__exit__(exc_type, exc, tb)
            self.record = {
                "unit": {
                    "type": "unit",
                    "version": RUNLOG_VERSION,
                    "key": self.key,
                    "spec": self.spec,
                    "params": self.params,
                    "parents": self.parents,
                    "pid": os.getpid(),
                    "unix_start": self._unix0,
                    "error": exc_type.__name__ if exc_type is not None else None,
                    "profile": self.profile,
                },
                "spans": [self._span_doc(s) for s in self._tracer.spans()],
                "events": [self._event_doc(e) for e in self._tracer.events()],
                "metric_deltas": _metric_deltas(self._metrics0, _metrics_state()),
            }
        finally:
            set_tracer(self._previous)

    def _span_doc(self, span) -> dict:
        return {
            "type": "span",
            "name": span.name,
            "cat": span.category,
            "ts_us": (span.start - self._perf0) * 1e6,
            "dur_us": span.duration * 1e6,
            "id": span.span_id,
            "parent": span.parent_id,
            "tid": span.thread_id,
            "tags": span.tags,
        }

    def _event_doc(self, event) -> dict:
        return {
            "type": "event",
            "name": event.name,
            "cat": event.category,
            "ts_us": (event.timestamp - self._perf0) * 1e6,
            "parent": event.parent_id,
            "tid": event.thread_id,
            "tags": event.tags,
        }


# ---------------------------------------------------------------------------
# Persistence (atomic, the lab store's temp-file + os.replace pattern)
# ---------------------------------------------------------------------------


def _atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def runlog_lines(record: Mapping[str, Any]) -> str:
    """One :class:`UnitCapture` record as JSONL (header, spans, events, metrics)."""
    lines = [json.dumps(record["unit"], default=str)]
    for doc in record["spans"]:
        lines.append(json.dumps(doc, default=str))
    for doc in record["events"]:
        lines.append(json.dumps(doc, default=str))
    lines.append(
        json.dumps({"type": "metrics", "deltas": record["metric_deltas"]}, default=str)
    )
    return "\n".join(lines) + "\n"


def write_unit_runlog(directory: str | Path, record: Mapping[str, Any]) -> Path:
    """Persist one unit record as ``<directory>/<unit_key>.jsonl``."""
    path = Path(directory) / f"{record['unit']['key']}.jsonl"
    _atomic_write_text(path, runlog_lines(record))
    return path


def read_unit_runlog(path: str | Path) -> dict[str, Any]:
    """Parse one runlog file back into a :class:`UnitCapture`-shaped record."""
    unit: dict | None = None
    spans: list[dict] = []
    events: list[dict] = []
    deltas: dict[str, Any] = {}
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        doc = json.loads(line)
        kind = doc.get("type")
        if kind == "unit":
            unit = doc
        elif kind == "span":
            spans.append(doc)
        elif kind == "event":
            events.append(doc)
        elif kind == "metrics":
            deltas = doc.get("deltas", {})
    if unit is None:
        raise ValueError(f"runlog {path} has no unit header line")
    return {"unit": unit, "spans": spans, "events": events, "metric_deltas": deltas}


def write_campaign_record(directory: str | Path, doc: Mapping[str, Any]) -> Path:
    """Persist the parent's per-run campaign record next to the runlogs."""
    path = Path(directory) / CAMPAIGN_FILENAME
    _atomic_write_text(path, json.dumps(doc, indent=1, default=str) + "\n")
    return path


def read_campaign_record(directory: str | Path) -> dict[str, Any] | None:
    """The campaign record, or ``None`` when the file is absent/malformed."""
    try:
        doc = json.loads((Path(directory) / CAMPAIGN_FILENAME).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None
