"""Command-line regeneration of every paper artifact.

Usage (installed as both the ``repro-edge`` and ``repro`` scripts)::

    repro-edge table1 [--source ours|paper] [--csv | --compare]
    repro-edge table2 | table3 | section5 | sensitivity | extended
    repro-edge figure1 [--panel a|b|c|d] [--source ours|paper] [--csv]
    repro-edge ablation [--strategy revolve --strategy sqrt ...]
    repro-edge list                         # registered experiment specs
    repro-edge show figure1                 # params, renderers, cache key
    repro-edge run figure1 --param panel=d --format csv
    repro-edge all --jobs 4 [--force] [--manifest-check] [--telemetry]
    repro-edge obs report artifacts [--json] [--chrome-trace merged.json]
    repro-edge summary
    repro-edge strategies [--length 24] [--budget 6]
    repro-edge exec [--strategy disk_revolve --backend tiered --trace t.json]
    repro-edge batch-tradeoff [--model 50] [--device ODROID-XU4]
    repro-edge viewpoint [--subjects 120]
    repro-edge trace figure1 --out trace.json   # any command, traced

Experiment subcommands (``table1`` ... ``summary``) are generated from
the :mod:`repro.lab` registry: each registered spec becomes a command
whose flags mirror the spec's typed params.  ``all`` runs every default
unit through the content-addressed artifact cache — a second run into
the same ``--outdir`` recomputes nothing — and ``trace`` wraps any
other subcommand in the :mod:`repro.obs` tracer and writes the
exported trace (Chrome ``trace_event`` JSON by default — open it in
chrome://tracing or https://ui.perfetto.dev).

``--telemetry`` on ``all``/``run`` records per-unit runlogs (worker
spans, metric deltas, wall/CPU/max-RSS profiles) under
``<outdir>/telemetry/``; ``obs report`` then renders the campaign
(ASCII timeline + tables, ``--json``, or a merged ``--chrome-trace``
with one lane per worker process).
"""

from __future__ import annotations

import argparse
import json
import sys

from . import lab, obs
from .checkpointing import available_strategies, get_strategy, schedule_cache_info
from .edge import DEVICE_CATALOG, ODROID_XU4, TrainingWorkload
from .experiments import batch_tradeoff_table, memory_models
from .studentteacher import PipelineConfig, StudentConfig, run_pipeline
from .units import MB

__all__ = ["main", "build_parser"]


def _add_experiment_parsers(sub: argparse._SubParsersAction) -> None:
    """One subcommand per registered spec, flags mirroring its params."""
    for name in lab.available_experiments():
        spec = lab.get_spec(name)
        sp = sub.add_parser(name, help=spec.title)
        for param in spec.params:
            flag = "--" + (param.cli or param.name.replace("_", "-"))
            kwargs: dict = {"dest": f"p_{param.name}", "type": param.type}
            if param.choices is not None:
                kwargs["choices"] = param.choices
            if param.help:
                kwargs["help"] = param.help
            if param.repeated:
                sp.add_argument(flag, action="append", default=None, **kwargs)
            else:
                sp.add_argument(flag, default=None, **kwargs)
        if "csv" in spec.renderers:
            sp.add_argument("--csv", action="store_true", help="emit CSV instead of ASCII")
        if "compare" in spec.renderers:
            sp.add_argument(
                "--compare", action="store_true", help="side-by-side with paper values"
            )
        sp.add_argument(
            "--format",
            dest="fmt",
            choices=sorted(spec.renderers),
            default=None,
            help="output renderer (default: ascii)",
        )
        sp.add_argument("--trace", metavar="FILE", help="write a Chrome-trace of the run to FILE")
        if name == "megafleet":
            # The megafleet spec additionally takes execution knobs the
            # cache key must never see: they shard the same computation.
            sp.add_argument(
                "--jobs", type=int, default=1,
                help="worker processes for device shards (default: 1)",
            )
            sp.add_argument(
                "--shard-devices", type=int, default=None,
                help="devices per shard (rounded up to the 4096 block size)",
            )


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-edge",
        description="Regenerate artifacts of 'Training on the Edge' (IPPS 2019)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    _add_experiment_parsers(sub)

    sub.add_parser("list", help="list registered experiment specs")

    sp = sub.add_parser("show", help="describe one registered experiment spec")
    sp.add_argument("spec", choices=lab.available_experiments(), metavar="SPEC")

    sp = sub.add_parser("run", help="run one registered experiment spec")
    sp.add_argument("spec", choices=lab.available_experiments(), metavar="SPEC")
    sp.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="spec parameter (JSON value or bare string; repeatable)",
    )
    sp.add_argument("--format", dest="fmt", default="ascii", help="output renderer")
    sp.add_argument("--outdir", default=None, help="cache through this artifact directory")
    sp.add_argument("--force", action="store_true", help="recompute even if cached")
    sp.add_argument(
        "--telemetry",
        action="store_true",
        help="record per-unit runlogs under <outdir>/telemetry (needs --outdir)",
    )
    sp.add_argument("--trace", metavar="FILE", help="write a Chrome-trace of the run to FILE")

    sp = sub.add_parser("strategies", help="list registered checkpoint strategies")
    sp.add_argument("--length", type=int, default=24, help="chain length l")
    sp.add_argument("--budget", type=int, default=6, help="checkpoint slot budget c")
    sp.add_argument("--bwd-ratio", type=float, default=1.0, help="backward/forward cost ratio")

    sp = sub.add_parser("profile", help="per-layer memory profile of a zoo model")
    sp.add_argument("--model", type=int, choices=(18, 34, 50, 101, 152), default=50)
    sp.add_argument("--top", type=int, default=8)

    sp = sub.add_parser("pareto", help="memory/recompute Pareto frontier of a chain")
    sp.add_argument("--length", type=int, default=152)

    sp = sub.add_parser("disk-revolve", help="two-level (memory+SD) checkpointing plan")
    sp.add_argument("--length", type=int, default=152)
    sp.add_argument("--mem-slots", type=int, default=3)
    sp.add_argument("--disk-cost", type=float, default=1.0, help="I/O cost in forward units")

    sp = sub.add_parser(
        "exec",
        help="execute a strategy's schedule on an engine backend (sim/tensor/tiered)",
    )
    sp.add_argument("--strategy", choices=available_strategies(), default="revolve")
    sp.add_argument("--length", type=int, default=24, help="chain length l")
    sp.add_argument("--slots", type=int, default=4, help="checkpoint slot budget c")
    sp.add_argument(
        "--backend",
        choices=("sim", "tensor", "tiered"),
        default="sim",
        help="engine backend: analytic, real tensors, or tiered storage",
    )
    sp.add_argument(
        "--act-kb", type=float, default=256.0, help="per-activation kB (sim/tiered accounting)"
    )
    sp.add_argument(
        "--storage",
        choices=("sd-card", "emmc"),
        default="sd-card",
        help="disk-tier storage profile (tiered backend)",
    )
    sp.add_argument(
        "--compress",
        choices=("lossless", "bittrain", "fp16"),
        help="compress checkpoints with this codec (implies the tiered backend)",
    )
    sp.add_argument("--seed", type=int, default=0, help="net/batch seed (tensor backend)")
    sp.add_argument(
        "--compile",
        action="store_true",
        help="print the schedule's compiled program IR (opcodes, costs, digest)",
    )
    sp.add_argument("--trace", metavar="FILE", help="write a Chrome-trace of the run to FILE")

    sp = sub.add_parser("campaign", help="in-situ adaptation campaign simulation")
    sp.add_argument("--crossings", type=float, default=60.0)
    sp.add_argument("--target", type=float, default=0.9)
    sp.add_argument("--seed", type=int, default=0)

    sp = sub.add_parser("fleet", help="multi-node federation cost/benefit")
    sp.add_argument("--nodes", type=int, default=10)
    sp.add_argument("--days", type=int, default=30)
    sp.add_argument("--period", type=int, default=5, help="federation period (0=isolated)")
    sp.add_argument("--transfer", type=float, default=0.15)
    sp.add_argument("--crash-rate", type=float, default=0.0, help="per-node daily crash probability")
    sp.add_argument("--seed", type=int, default=0)

    sp = sub.add_parser(
        "resilience",
        help="fault tolerance: expected makespan + Young/Daly snapshot-interval sweep",
    )
    sp.add_argument("--mtbf-hours", type=float, default=12.0, help="mean time between failures")
    sp.add_argument("--work-hours", type=float, default=24.0, help="fault-free compute to finish")
    sp.add_argument("--snapshot-mb", type=float, default=50.0, help="durable snapshot payload size")
    sp.add_argument("--storage", choices=("sd-card", "emmc"), default="sd-card")
    sp.add_argument("--restart-s", type=float, default=60.0, help="reboot cost per crash")
    sp.add_argument("--trials", type=int, default=40, help="Monte-Carlo trials per interval")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--trace", metavar="FILE", help="write a Chrome-trace of the run to FILE")

    sp = sub.add_parser("energy", help="ship-vs-local energy breakevens")
    sp.add_argument("--image-kb", type=float, default=10.0)
    sp.add_argument("--gflops", type=float, default=3.6, help="per-sample forward GFLOPs")

    sp = sub.add_parser("batch-tradeoff", help="batch-size vs epoch-time sweep")
    sp.add_argument("--model", type=int, choices=(18, 34, 50, 101, 152), default=50)
    sp.add_argument("--device", choices=sorted(DEVICE_CATALOG), default=ODROID_XU4.name)
    sp.add_argument("--images", type=int, default=10_000)

    sp = sub.add_parser("viewpoint", help="Section III student-teacher pipeline")
    sp.add_argument("--subjects", type=int, default=120)
    sp.add_argument("--epochs", type=int, default=30)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--trace", metavar="FILE", help="write a Chrome-trace of the run to FILE")

    sp = sub.add_parser(
        "trace",
        help="run any other subcommand under the obs tracer and export the trace",
    )
    sp.add_argument(
        "args",
        nargs=argparse.REMAINDER,
        help="wrapped command and its arguments, plus --out/--format/--no-probe",
    )

    sp = sub.add_parser(
        "all", help="regenerate every artifact into a directory (cache-aware)"
    )
    sp.add_argument("--outdir", default="artifacts")
    sp.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel compute processes (default: all cores)",
    )
    sp.add_argument("--force", action="store_true", help="ignore the artifact cache")
    sp.add_argument(
        "--manifest-check",
        action="store_true",
        help="validate every provenance manifest after the run",
    )
    sp.add_argument(
        "--telemetry",
        action="store_true",
        help="record per-unit runlogs + campaign.json under <outdir>/telemetry",
    )

    sp = sub.add_parser(
        "obs", help="observability utilities over recorded campaign telemetry"
    )
    obs_sub = sp.add_subparsers(dest="obs_command", required=True)
    rp = obs_sub.add_parser(
        "report",
        help="render the campaign telemetry of a --telemetry run directory",
    )
    rp.add_argument("outdir", help="artifact directory (or its telemetry/ subdir)")
    rp.add_argument(
        "--json", action="store_true", help="emit the summary as JSON instead of text"
    )
    rp.add_argument(
        "--chrome-trace",
        metavar="FILE",
        help="also write the merged Chrome trace (one lane per worker) to FILE",
    )
    return p


# -- registry-generated experiment commands --------------------------------


def _experiment_command(args: argparse.Namespace) -> str:
    """Alias path: compute in memory, render in the requested format."""
    spec = lab.get_spec(args.command)
    given = {
        p.name: getattr(args, f"p_{p.name}")
        for p in spec.params
        if getattr(args, f"p_{p.name}") is not None
    }
    params = spec.validate_params(given)
    fmt = args.fmt
    if fmt is None:
        if getattr(args, "compare", False):
            fmt = "compare"
        elif getattr(args, "csv", False):
            fmt = "csv"
        else:
            fmt = "ascii"
    payload = lab.compute_payload(args.command, params)
    return spec.renderers[fmt](payload)


def _parse_run_params(pairs: list[str]) -> dict:
    params = {}
    for pair in pairs:
        key, eq, value = pair.partition("=")
        if not eq:
            raise SystemExit(f"--param expects KEY=VALUE, got {pair!r}")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value  # bare strings need no quotes
    return params


def _run(args: argparse.Namespace) -> str:
    spec = lab.get_spec(args.spec)
    params = spec.validate_params(_parse_run_params(args.param))
    if args.fmt not in spec.renderers:
        raise SystemExit(
            f"spec {args.spec!r} has no {args.fmt!r} renderer "
            f"(choose from: {', '.join(sorted(spec.renderers))})"
        )
    if args.outdir is None:
        if args.telemetry:
            raise SystemExit("--telemetry needs --outdir (runlogs live under it)")
        return spec.renderers[args.fmt](lab.compute_payload(args.spec, params))
    store = lab.ArtifactStore(args.outdir)
    report = lab.run_units(
        [lab.Unit(args.spec, params)], store,
        force=args.force, telemetry=args.telemetry,
    )
    payload = store.load_payload(report.outcomes[-1].key)
    out = (
        spec.renderers[args.fmt](payload).rstrip("\n")
        + "\n"
        + report.summary_line()
    )
    if report.telemetry_dir is not None:
        out += f"\ntelemetry: {report.telemetry_dir}"
    return out


def _list(_args: argparse.Namespace) -> str:
    names = lab.available_experiments()
    lines = [f"{len(names)} registered experiment specs:"]
    for name in names:
        spec = lab.get_spec(name)
        params = ", ".join(p.name for p in spec.params) or "-"
        lines.append(f"  {name:<12} {spec.title}  [params: {params}]")
    return "\n".join(lines)


def _show(args: argparse.Namespace) -> str:
    spec = lab.get_spec(args.spec)
    defaults = spec.validate_params()
    lines = [
        f"{spec.name}: {spec.title}",
        f"  code fingerprint : {spec.fingerprint()[:16]}",
        f"  default cache key: {lab.unit_key(spec, defaults)[:16]}",
        f"  renderers        : {', '.join(sorted(spec.renderers))}",
    ]
    if spec.params:
        lines.append("  params:")
        for p in spec.params:
            extra = f", choices={sorted(p.choices)}" if p.choices else ""
            rep = "repeated " if p.repeated else ""
            lines.append(
                f"    {p.name:<14} {rep}{p.type.__name__}"
                f" (default={p.default!r}{extra})"
            )
    if spec.deps:
        lines.append("  deps:")
        for dep_name, dep_params in spec.deps:
            lines.append(f"    {dep_name} {json.dumps(dep_params, sort_keys=True)}")
    if spec.default_units:
        lines.append("  default artifacts:")
        for ud in spec.default_units:
            files = ", ".join(f for f, _ in ud.outputs) or "-"
            lines.append(f"    {json.dumps(dict(ud.params), sort_keys=True)} -> {files}")
    return "\n".join(lines)


def _all(args: argparse.Namespace) -> str:
    """Regenerate every default artifact through the content cache."""
    store = lab.ArtifactStore(args.outdir)
    jobs = args.jobs if args.jobs is not None else lab.default_jobs()
    report = lab.run_units(
        lab.default_units(), store, jobs=jobs, force=args.force,
        telemetry=args.telemetry,
    )
    lines = []
    for o in report.outcomes:
        verb = "wrote" if (o.computed or o.written) else "cached"
        for fname in o.outputs:
            lines.append(f"{verb} {store.artifact_path(fname)}")
    if args.manifest_check:
        n = lab.check_manifests(store)
        lines.append(f"manifests: {n} valid")
    lines.append(report.summary_line())
    if report.telemetry_dir is not None:
        lines.append(f"telemetry: {report.telemetry_dir}")
    return "\n".join(lines)


def _obs(args: argparse.Namespace) -> str:
    """``obs report``: render recorded campaign telemetry."""
    from .obs import aggregate

    try:
        campaign = aggregate.load_campaign(args.outdir)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc)) from exc
    extra = ""
    if args.chrome_trace:
        aggregate.write_merged_trace(args.chrome_trace, campaign)
        extra = f"\nmerged trace written to {args.chrome_trace}"
    if args.json:
        return json.dumps(aggregate.campaign_summary(campaign), indent=1) + extra
    return aggregate.render_report(aggregate.campaign_summary(campaign)) + extra


# -- hand-written (non-experiment) commands --------------------------------


def _strategies(args: argparse.Namespace) -> str:
    """Registry listing with a per-strategy ρ/slots table at one (l, c)."""
    l, c, r = args.length, args.budget, args.bwd_ratio
    names = available_strategies()
    lines = [
        f"Registered checkpoint strategies ({len(names)}) at "
        f"l={l}, slot budget={c}, bwd/fwd ratio={r:g}",
        f"{'strategy':<14}{'feasible':>9}{'rho':>9}{'extra fwd':>11}{'peak slots':>12}",
    ]
    for name in names:
        strat = get_strategy(name)
        if strat.feasible(l, c):
            lines.append(
                f"{name:<14}{'yes':>9}{strat.rho(l, c, r):>9.3f}"
                f"{strat.extra_forwards(l, c):>11}{strat.peak_slots(l, c):>12}"
            )
        else:
            lines.append(f"{name:<14}{'no':>9}{'inf':>9}{'-':>11}{'-':>12}")
    info = schedule_cache_info()
    lines.append(
        f"schedule cache: {info.schedules} schedules, {info.stats} stats, "
        f"{info.hits} hits / {info.misses} misses"
    )
    return "\n".join(lines)


def _batch_tradeoff(args: argparse.Namespace) -> str:
    from .zoo import build_resnet

    model = memory_models()[args.model]
    device = DEVICE_CATALOG[args.device]
    workload = TrainingWorkload(
        model=model.name,
        chain_length=args.model,
        slot_act_bytes_per_sample=model.account_ref.act_bytes_per_sample // args.model,
        fixed_bytes=model.fixed_bytes,
        flops_per_sample=float(build_resnet(args.model).total_flops_per_sample()),
        n_images=args.images,
    )
    return batch_tradeoff_table(workload, device).render()


def _viewpoint(args: argparse.Namespace) -> str:
    cfg = PipelineConfig(
        n_subjects=args.subjects,
        camera_skew_deg=60.0,
        angle_bins=(15.0, 30.0, 45.0, 60.0),
        student=StudentConfig(epochs=args.epochs),
        seed=args.seed,
    )
    res = run_pipeline(cfg)
    footer = (
        f"\nskew-angle recovery: {res.skew_recovery:+.3f}\n"
        f"harvested-set storage at 10 kB/image: {res.storage_bytes_needed / MB:.1f} MB"
    )
    return res.summary() + footer


def _profile(args: argparse.Namespace) -> str:
    from .memory import memory_profile
    from .zoo import build_resnet

    return memory_profile(build_resnet(args.model)).render(args.top)


def _pareto(args: argparse.Namespace) -> str:
    from .checkpointing import pareto_frontier

    lines = [
        f"Memory/recompute Pareto frontier, chain length {args.length}",
        f"{'slots':>6}{'extra fwd':>11}{'repeats':>9}{'rho(bwd=fwd)':>14}",
    ]
    pts = pareto_frontier(args.length)
    shown = pts if len(pts) <= 30 else pts[:15] + pts[-15:]
    for p in shown:
        lines.append(
            f"{p.slots:>6}{p.extra_forwards:>11}{p.repetition:>9}"
            f"{p.rho(args.length):>14.3f}"
        )
    if len(pts) > 30:
        lines.insert(17, f"{'...':>6} ({len(pts) - 30} points elided)")
    return "\n".join(lines)


def _disk_revolve(args: argparse.Namespace) -> str:
    from .checkpointing import (
        disk_revolve_cost,
        disk_revolve_schedule,
        opt_forwards,
        simulate_tiered,
    )

    l, c, d = args.length, args.mem_slots, args.disk_cost
    sch = disk_revolve_schedule(l, c, d, d)
    st = simulate_tiered(sch)
    mem_only = opt_forwards(l, c)
    return (
        f"Two-level checkpointing: l={l}, memory slots={c}, disk I/O cost={d}\n"
        f"  memory-only Revolve cost : {mem_only}\n"
        f"  two-level optimal cost   : {disk_revolve_cost(l, c, d, d):.1f}\n"
        f"  disk checkpoints         : {st.disk_writes} "
        f"(peak {st.peak_disk_slots} resident)\n"
        f"  peak memory slots        : {st.peak_memory_slots}\n"
        f"  pure forward steps       : {st.forward_steps}"
    )


def _exec(args: argparse.Namespace) -> str:
    """Run one strategy's schedule through a chosen engine backend."""
    from .checkpointing import ChainSpec
    from .engine import (
        SimBackend,
        TieredBackend,
        action_span_hook,
        execute,
        sim_event_hook,
    )
    from .units import KB

    strat = get_strategy(args.strategy)
    l, c = args.length, args.slots
    if not strat.feasible(l, c):
        return f"strategy {args.strategy!r} cannot reverse l={l} within {c} slots"
    sch = strat.schedule(l, c)
    codec = None
    if args.compress is not None:
        if args.backend == "tensor":
            return "--compress applies to the sim/tiered engine backends only"
        from .checkpointing import COMPRESS_SLOT_BASE, compressed_variant
        from .edge.storage import compression_models

        codec = compression_models()[args.compress]
        if all(a.arg < COMPRESS_SLOT_BASE for a in sch.actions):
            # Lift a plain family's slots into the compressed band so the
            # codec applies; zip families already carry the flag.
            sch = compressed_variant(sch, sch.strategy)
    backend_name = args.backend if codec is None else f"compressed({args.compress})"
    header = (
        f"Engine run: strategy={sch.strategy} l={l} slots={c} "
        f"backend={backend_name}"
    )

    if getattr(args, "compile", False):
        import numpy as np

        from .engine import OPCODE_NAMES
        from .units import KB

        program = strat.compiled(l, c)
        spec = ChainSpec.homogeneous(l, act_bytes=int(args.act_kb * KB))
        run = execute(sch, SimBackend(spec), compiled=program)
        counts = ", ".join(
            f"{name} {n}"
            for name, n in zip(OPCODE_NAMES, np.bincount(program.opcodes, minlength=5))
            if n
        )
        fmt = dict(threshold=64, edgeitems=24, max_line_width=78)
        array_indent = "\n" + " " * 22
        return "\n".join(
            [
                f"Compiled program: strategy={program.strategy} l={l} slots={c}",
                f"  ops               : {len(program)} ({counts})",
                "  opcodes           : "
                + np.array2string(program.opcodes, **fmt).replace("\n", array_indent),
                "  args              : "
                + np.array2string(program.args, **fmt).replace("\n", array_indent),
                f"  cost totals       : forward {run.forward_cost:g} + "
                f"replay {run.replay_cost:g} + backward {run.backward_cost:g} "
                f"= {run.forward_cost + run.replay_cost + run.backward_cost:g}",
                f"  peak              : {run.peak_slots} slots, "
                f"{run.peak_bytes:,} live bytes",
                f"  digest            : sha256:{program.digest}",
            ]
        )

    if args.backend == "tensor":
        import numpy as np

        from .autodiff import DenseLayer, ReLULayer, SequentialNet, gaussian_blobs
        from .autodiff.executor import run_schedule

        rng = np.random.default_rng(args.seed)
        layers = []
        prev = 6
        for i in range(l - 1):
            if i % 2 == 0:
                layers.append(DenseLayer(prev, 8, rng, name=f"fc{i}"))
                prev = 8
            else:
                layers.append(ReLULayer(name=f"r{i}"))
        layers.append(DenseLayer(prev, 3, rng, name="head"))
        net = SequentialNet(layers, name="exec-probe")
        data = gaussian_blobs(16, 3, 6, rng)
        res = run_schedule(net, sch, data.x, data.y)
        return "\n".join(
            [
                header,
                f"  loss              : {res.loss:.4f}",
                f"  forward steps     : {res.forward_steps} "
                f"(+{res.replay_steps} adjoint replays)",
                f"  peak live bytes   : {res.peak_bytes:,} "
                f"({res.peak_slot_bytes:,} in slots)",
            ]
        )

    spec = ChainSpec.homogeneous(l, act_bytes=int(args.act_kb * KB))
    tracer = obs.get_tracer()
    if codec is not None:
        from .edge.storage import EMMC, SD_CARD
        from .engine import CompressedBackend

        storage = {"sd-card": SD_CARD, "emmc": EMMC}[args.storage]
        backend = CompressedBackend(spec, codec, disk=storage)
        hook = action_span_hook(tracer) if tracer.enabled else None
    elif args.backend == "sim":
        backend = SimBackend(spec)
        hook = sim_event_hook(tracer) if tracer.enabled else None
    else:
        from .edge.storage import EMMC, SD_CARD

        storage = {"sd-card": SD_CARD, "emmc": EMMC}[args.storage]
        backend = TieredBackend(spec, disk=storage)
        hook = action_span_hook(tracer) if tracer.enabled else None
    run = execute(sch, backend, on_step=hook)
    lines = [
        header,
        f"  forward steps     : {run.forward_steps} (cost {run.forward_cost:g})",
        f"  adjoint replays   : {run.replay_steps}",
        f"  peak slots        : {run.peak_slots}, peak bytes {run.peak_bytes:,}",
        f"  snapshots/restores: {run.snapshots_taken}/{run.restores}",
    ]
    if run.tiers:
        lines.append(f"  transfer time     : {run.transfer_seconds:.3f} s")
        for t in run.tiers:
            priced = "" if t.name == "memory" else f" [{args.storage}]"
            lines.append(
                f"    {t.name:<6} tier: "
                f"write {t.writes} ops / {t.bytes_written:,} B / {t.write_seconds:.3f} s | "
                f"read {t.reads} ops / {t.bytes_read:,} B / {t.read_seconds:.3f} s | "
                f"peak {t.peak_slots} slots ({t.peak_bytes:,} B){priced}"
            )
    if run.compression is not None:
        z = run.compression
        lines.append(
            f"  compression       : {z.codec} (ratio {z.ratio:g}) — "
            f"{z.compress_calls} compress / {z.decompress_calls} decompress, "
            f"{z.bytes_saved:,} B saved, codec time {z.codec_seconds:.3f} s"
        )
        if z.fidelity_loss:
            lines.append(f"  fidelity loss     : {z.fidelity_loss:g}")
    return "\n".join(lines)


def _campaign(args: argparse.Namespace) -> str:
    from .edge import CampaignConfig, ODROID_XU4, TrainingWorkload, run_campaign

    workload = TrainingWorkload(
        model="student",
        chain_length=18,
        slot_act_bytes_per_sample=2 * MB,
        fixed_bytes=180 * MB,
        flops_per_sample=3.6e9,
        n_images=1,
        batch_size=8,
    )
    cfg = CampaignConfig(
        workload=workload,
        target_accuracy=args.target,
        crossings_per_day=args.crossings,
        seed=args.seed,
    )
    res = run_campaign(cfg, ODROID_XU4)
    lines = [
        f"In-situ campaign on {ODROID_XU4.name}: {args.crossings:.0f} crossings/day, "
        f"target {args.target:.2f}",
        f"{'day':>4}{'harvested':>11}{'accuracy':>10}{'train h':>9}",
    ]
    for d in res.days:
        lines.append(
            f"{d.day:>4}{d.harvested_total:>11}{d.accuracy:>10.3f}"
            f"{d.train_wall_s / 3600:>9.1f}"
        )
    verdict = (
        f"target reached on day {res.target_day}"
        if res.reached_target
        else "target NOT reached"
    )
    lines.append(f"{verdict}; storage used {res.storage_bytes / MB:.1f} MB")
    return "\n".join(lines)


def _megafleet(args: argparse.Namespace) -> str:
    """``megafleet``: the registry spec plus --jobs/--shard-devices.

    Same params and renderers as ``run megafleet``, but computed
    through the sharded engine directly so the process fan-out knobs
    are available; the output is byte-identical for any jobs/shard
    choice (the engine's determinism contract).
    """
    from .experiments import run_megafleet_payload

    spec = lab.get_spec("megafleet")
    given = {
        p.name: getattr(args, f"p_{p.name}")
        for p in spec.params
        if getattr(args, f"p_{p.name}") is not None
    }
    params = spec.validate_params(given)
    payload = run_megafleet_payload(
        params, jobs=args.jobs, shard_devices=args.shard_devices
    )
    fmt = args.fmt
    if fmt is None:
        fmt = "csv" if getattr(args, "csv", False) else "ascii"
    return spec.renderers[fmt](payload)


def _fleet(args: argparse.Namespace) -> str:
    from .edge import FleetConfig, simulate_fleet
    from .units import GB

    iso = simulate_fleet(
        FleetConfig(
            n_nodes=args.nodes,
            days=args.days,
            federation_period=0,
            crash_rate_per_day=args.crash_rate,
            seed=args.seed,
        )
    )
    fed = simulate_fleet(
        FleetConfig(
            n_nodes=args.nodes,
            days=args.days,
            federation_period=args.period,
            transfer_value=args.transfer,
            crash_rate_per_day=args.crash_rate,
            seed=args.seed,
        )
    )
    out = (
        f"Fleet of {args.nodes} nodes over {args.days} days "
        f"(transfer value {args.transfer}, seed {args.seed}):\n"
        f"  isolated : mean {iso.mean_final_accuracy:.3f}  "
        f"worst {iso.worst_final_accuracy:.3f}  radio 0.0 GB\n"
        f"  federated: mean {fed.mean_final_accuracy:.3f}  "
        f"worst {fed.worst_final_accuracy:.3f}  "
        f"radio {fed.radio_bytes_total / GB:.1f} GB (period {args.period} days)"
    )
    if args.crash_rate > 0:
        out += (
            f"\n  faults   : rate {args.crash_rate:.3f}/node/day -> "
            f"{iso.total_crashes} crashes, "
            f"{iso.total_lost_samples:.0f} samples lost, "
            f"{sum(iso.downtime_days)} node-days down (isolated run)"
        )
    return out


def _resilience(args: argparse.Namespace) -> str:
    from .edge.storage import EMMC, SD_CARD
    from .resilience import overhead_vs_fault_rate, sweep_intervals, young_daly_interval

    storage = {"sd-card": SD_CARD, "emmc": EMMC}[args.storage]
    snapshot_bytes = int(args.snapshot_mb * MB)
    delta = storage.write_seconds(snapshot_bytes)
    mtbf = args.mtbf_hours * 3600.0
    work = args.work_hours * 3600.0
    tau = young_daly_interval(mtbf, delta)
    sweep = sweep_intervals(
        work, delta, args.restart_s, mtbf, trials=args.trials, seed=args.seed
    )
    lines = [
        f"Resilience planner ({args.storage}, seed {args.seed}):",
        f"  snapshot payload   : {args.snapshot_mb:.0f} MB -> "
        f"delta = {delta:.2f} s per durable write",
        f"  Young/Daly optimum : tau* = sqrt(2*delta*MTBF) = {tau:.1f} s "
        f"at MTBF {args.mtbf_hours:g} h",
        "",
        sweep.render(),
        "",
        f"Overhead vs fault rate ({args.work_hours:g} h of work, "
        f"snapshotting at each rate's tau*):",
        f"{'MTBF h':>8}{'tau* s':>9}{'predicted':>11}{'measured':>10}",
    ]
    for row in overhead_vs_fault_rate(
        work,
        delta,
        args.restart_s,
        (mtbf / 4, mtbf, 4 * mtbf),
        trials=args.trials,
        seed=args.seed,
    ):
        lines.append(
            f"{row.mtbf_seconds / 3600:>8.2f}{row.tau_star_seconds:>9.1f}"
            f"{row.predicted_overhead:>10.1%}{row.measured_overhead:>10.1%}"
        )
    return "\n".join(lines)


def _energy(args: argparse.Namespace) -> str:
    from .edge import EnergyModel, breakeven_epochs, streaming_comparison

    model = EnergyModel()
    image_bytes = int(args.image_kb * 1024)
    flops = args.gflops * 1e9
    be_plain = breakeven_epochs(image_bytes, flops, model=model, rho=1.0)
    be_ckpt = breakeven_epochs(image_bytes, flops, model=model, rho=1.5)
    stream = streaming_comparison(1.0, 20 * image_bytes, flops, model=model)
    return (
        f"Energy model: {model.radio_j_per_byte * 1e6:.1f} uJ/B radio, "
        f"{model.compute_j_per_flop * 1e9:.2f} nJ/FLOP compute\n"
        f"Training ({args.image_kb:.0f} kB images, {args.gflops:.1f} GFLOP fwd/sample):\n"
        f"  local-vs-ship breakeven: {be_plain:.4f} epochs (rho=1), "
        f"{be_ckpt:.4f} (rho=1.5)\n"
        f"Streaming inference (1 fps, raw-ish {20 * args.image_kb:.0f} kB frames, 1 day):\n"
        f"  ship {stream.ship_joules / 1000:.1f} kJ vs local "
        f"{stream.local_joules / 1000:.1f} kJ -> "
        f"{'local' if stream.local_wins else 'ship'} wins"
    )


def _trace_probe() -> None:
    """A miniature traced training run anchoring every core span category.

    Most artifact commands are analytic (no Trainer, no executor), so a
    bare trace of them would miss the epoch/batch/action spans that make
    traces comparable across experiments.  The probe trains a 6-layer
    net for two epochs under a Revolve schedule, seeding the trace with
    measured ``epoch``/``batch``/``action``/``cache`` spans.
    """
    import numpy as np

    from .autodiff import (
        DenseLayer,
        Momentum,
        ReLULayer,
        SequentialNet,
        Trainer,
        TrainerConfig,
        gaussian_blobs,
    )

    rng = np.random.default_rng(0)
    layers = []
    prev = 6
    for i in range(5):
        layers.append(DenseLayer(prev, 8, rng, name=f"fc{i}"))
        layers.append(ReLULayer(name=f"r{i}"))
        prev = 8
    layers.append(DenseLayer(prev, 3, rng, name="head"))
    net = SequentialNet(layers)
    data = gaussian_blobs(32, 3, 6, rng)
    trainer = Trainer(
        net,
        Momentum(net.layers, lr=0.02),
        TrainerConfig(epochs=2, batch_size=16, strategy="revolve", slots=3),
    )
    trainer.fit(data)
    trainer.evaluate(data)


def _trace(raw: list[str]) -> str:
    """``trace`` subcommand: run any other command under a live tracer."""
    tp = argparse.ArgumentParser(prog="repro-edge trace")
    tp.add_argument("--out", default="trace.json", help="export file path")
    tp.add_argument(
        "--format",
        choices=("chrome", "jsonl", "summary"),
        default="chrome",
        help="export format (chrome = trace_event JSON for Perfetto)",
    )
    tp.add_argument(
        "--no-probe",
        action="store_true",
        help="skip the miniature traced training run prepended to the trace",
    )
    tp.add_argument("wrapped", help="subcommand to run traced")
    args, rest = tp.parse_known_args(raw)
    if args.wrapped == "trace":
        tp.error("cannot trace the trace command itself")
    wrapped_args = build_parser().parse_args([args.wrapped] + rest)
    with obs.tracing() as tracer:
        if not args.no_probe:
            with tracer.span("probe", category="train"):
                _trace_probe()
        out = _dispatch(wrapped_args)
    metrics = obs.get_metrics()
    if args.format == "chrome":
        obs.write_chrome_trace(args.out, tracer, metrics)
    elif args.format == "jsonl":
        obs.write_jsonl(args.out, tracer, metrics)
    else:
        import pathlib

        pathlib.Path(args.out).write_text(obs.summary(tracer, metrics) + "\n")
    n_spans = len(tracer.spans())
    cats = ",".join(sorted(tracer.categories()))
    footer = (
        f"trace: {n_spans} spans, {len(tracer.events())} events "
        f"(categories: {cats})\ntrace written to {args.out} ({args.format})"
    )
    return out.rstrip("\n") + "\n" + footer


_HANDLERS = {
    "list": _list,
    "show": _show,
    "run": _run,
    "all": _all,
    "strategies": _strategies,
    "profile": _profile,
    "pareto": _pareto,
    "disk-revolve": _disk_revolve,
    "exec": _exec,
    "campaign": _campaign,
    "fleet": _fleet,
    "megafleet": _megafleet,
    "resilience": _resilience,
    "energy": _energy,
    "batch-tradeoff": _batch_tradeoff,
    "viewpoint": _viewpoint,
    "trace": lambda a: _trace(a.args),
    "obs": _obs,
}


def _dispatch(args: argparse.Namespace) -> str:
    handler = _HANDLERS.get(args.command)
    if handler is not None:
        return handler(args)
    return _experiment_command(args)  # registry-generated spec command


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if trace_path:
        # --trace FILE on a subcommand: same machinery, chrome format.
        with obs.tracing() as tracer:
            out = _dispatch(args)
        obs.write_chrome_trace(trace_path, tracer, obs.get_metrics())
        out = out.rstrip("\n") + f"\ntrace written to {trace_path}"
    else:
        out = _dispatch(args)
    sys.stdout.write(out if out.endswith("\n") else out + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
