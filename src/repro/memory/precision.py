"""Reduced/mixed-precision what-if transforms on memory accounts.

The paper's analysis is fp32 throughout; a natural extension question for
edge training is how half-precision interacts with checkpointing.  These
transforms rescale an existing :class:`~repro.memory.accounting.MemoryAccount`:

* :func:`cast_account` — uniform recast of weights/activations to a new
  per-element width (pure fp16 training: everything halves);
* :func:`mixed_precision_account` — AMP-style: activations and the
  working weight copy in fp16, the master weights and optimizer state in
  fp32 (the realistic regime; fixed cost shrinks by only ~12% while
  activations halve — so checkpointing remains the bigger lever for the
  batch-dependent part, quantified in ``bench_ablation_precision``).
"""

from __future__ import annotations

from .accounting import MemoryAccount

__all__ = ["cast_account", "mixed_precision_account"]


def cast_account(
    acct: MemoryAccount,
    weight_bytes_per_elem: int = 2,
    act_bytes_per_elem: int = 2,
    base_bytes_per_elem: int = 4,
) -> MemoryAccount:
    """Uniformly recast an fp32 account to new element widths."""
    if weight_bytes_per_elem <= 0 or act_bytes_per_elem <= 0:
        raise ValueError("element widths must be positive")
    wf = weight_bytes_per_elem / base_bytes_per_elem
    af = act_bytes_per_elem / base_bytes_per_elem
    return MemoryAccount(
        model=acct.model,
        policy=f"{acct.policy}+cast(w{weight_bytes_per_elem},a{act_bytes_per_elem})",
        weight_bytes=int(round(acct.weight_bytes * wf)),
        buffer_bytes=int(round(acct.buffer_bytes * wf)),
        fixed_bytes=int(round(acct.fixed_bytes * wf)),
        act_bytes_per_sample=int(round(acct.act_bytes_per_sample * af)),
        input_bytes_per_sample=int(round(acct.input_bytes_per_sample * af)),
    )


def mixed_precision_account(acct: MemoryAccount, weight_copies: int = 4) -> MemoryAccount:
    """AMP regime: fp16 activations + fp16 working weights, fp32 master
    weights, gradients and optimizer state.

    The fixed cost becomes ``(copies - 1) x fp32 + 1 x fp16`` weight
    copies (plus fp32 buffers); activations halve.  ``weight_copies``
    must match the policy the account was built with.
    """
    if weight_copies < 1:
        raise ValueError("weight_copies must be >= 1")
    w = acct.weight_bytes  # one fp32 copy
    fixed = (weight_copies - 1) * w + w // 2 + acct.buffer_bytes
    return MemoryAccount(
        model=acct.model,
        policy=f"{acct.policy}+amp",
        weight_bytes=w,
        buffer_bytes=acct.buffer_bytes,
        fixed_bytes=fixed,
        act_bytes_per_sample=acct.act_bytes_per_sample // 2,
        input_bytes_per_sample=acct.input_bytes_per_sample // 2,
    )
