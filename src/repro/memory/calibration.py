"""The paper's published table values and coefficient extraction.

Tables I–III of the paper are exactly affine in batch size and (nearly)
quadratic in image side per model, so each model is characterized by two
numbers: ``M_fixed`` and the per-sample activation size at 224 px,
``M_act224``.  This module ships the published values verbatim, fits the
coefficients, and exposes :class:`CalibratedModel` so every bench can print
*paper-calibrated* rows next to our first-principles rows.

Fitting Table I (batch 1 and 50 rows) gives, in MB:

======  =========  =========
model   M_fixed    M_act224
======  =========  =========
R18      175.05      55.00
R34      329.29      83.71
R50      384.85     235.42
R101     674.65     352.56
R152     913.36     497.26
======  =========  =========

``M_fixed`` is 3.93–3.98× the fp32 weight size of each model — i.e. four
weight copies, confirming the accounting convention in
:mod:`repro.memory.accounting`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CalibrationError
from ..units import MB

__all__ = [
    "PAPER_TABLE1_MB",
    "PAPER_TABLE2_MB",
    "PAPER_TABLE3_GB",
    "PAPER_BATCH_SIZES",
    "PAPER_IMAGE_SIZES_T2",
    "PAPER_IMAGE_SIZES_T3",
    "PAPER_DEVICE_BUDGET_MB",
    "CalibratedModel",
    "fit_paper_coefficients",
    "calibrated_models",
]

#: Batch sizes of Table I.
PAPER_BATCH_SIZES: tuple[int, ...] = (1, 3, 5, 10, 30, 50)
#: Image sizes of Table II.
PAPER_IMAGE_SIZES_T2: tuple[int, ...] = (224, 350, 500, 650, 1100, 1500)
#: Image sizes of Table III.
PAPER_IMAGE_SIZES_T3: tuple[int, ...] = (224, 350, 500, 650)
#: The ODROID XU4 memory budget the paper shades cells against.
PAPER_DEVICE_BUDGET_MB: float = 2048.0

#: Table I — MB at image 224, rows = batch size, cols = ResNet depth.
PAPER_TABLE1_MB: dict[int, dict[int, float]] = {
    1: {18: 230.05, 34: 413.00, 50: 620.27, 101: 1027.21, 152: 1410.62},
    3: {18: 340.05, 34: 580.42, 50: 1091.11, 101: 1732.33, 152: 2405.14},
    5: {18: 450.06, 34: 747.85, 50: 1561.94, 101: 2437.45, 152: 3399.67},
    10: {18: 725.07, 34: 1166.42, 50: 2739.04, 101: 4200.25, 152: 5885.98},
    30: {18: 1825.13, 34: 2840.70, 50: 7447.42, 101: 11251.43, 152: 15831.23},
    50: {18: 2925.18, 34: 4514.97, 50: 12155.79, 101: 18302.62, 152: 25776.48},
}

#: Table II — MB at batch 1, rows = image side.
PAPER_TABLE2_MB: dict[int, dict[int, float]] = {
    224: {18: 230.05, 34: 413.00, 50: 620.27, 101: 1027.21, 152: 1410.62},
    350: {18: 309.83, 34: 534.96, 50: 964.66, 101: 1543.72, 152: 2139.75},
    500: {18: 449.21, 34: 749.73, 50: 1570.93, 101: 2472.72, 152: 3458.50},
    650: {18: 639.07, 34: 1039.08, 50: 2387.54, 101: 3682.00, 152: 5161.76},
    1100: {18: 1496.10, 34: 2346.95, 50: 6073.06, 101: 9208.30, 152: 12961.96},
    1500: {18: 2628.70, 34: 4075.07, 50: 10944.42, 101: 16515.11, 152: 23277.27},
}

#: Table III — GB at batch 8, rows = image side.
PAPER_TABLE3_GB: dict[int, dict[int, float]] = {
    224: {18: 0.60, 34: 0.98, 50: 2.22, 101: 3.41, 152: 4.78},
    350: {18: 1.22, 34: 1.93, 50: 4.90, 101: 7.45, 152: 10.47},
    500: {18: 2.31, 34: 3.60, 50: 9.63, 101: 14.69, 152: 20.76},
    650: {18: 3.79, 34: 5.86, 50: 15.99, 101: 24.13, 152: 34.06},
}


@dataclass(frozen=True)
class CalibratedModel:
    """Per-model coefficients fitted from the paper's Table I (in bytes)."""

    depth: int
    fixed_bytes: float
    act224_bytes: float

    def act_bytes(self, image_size: int) -> float:
        """Quadratic image scaling from the 224 px reference."""
        return self.act224_bytes * (image_size / 224.0) ** 2

    def total_bytes(self, batch_size: int = 1, image_size: int = 224) -> float:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return self.fixed_bytes + batch_size * self.act_bytes(image_size)

    def total_mb(self, batch_size: int = 1, image_size: int = 224) -> float:
        return self.total_bytes(batch_size, image_size) / MB


def fit_paper_coefficients(depth: int) -> CalibratedModel:
    """Fit ``(M_fixed, M_act224)`` from Table I by least squares over k.

    Table I is affine in batch size to <0.01 MB, so ordinary least squares
    over all six batch sizes recovers the coefficients essentially exactly.
    """
    rows = [(k, PAPER_TABLE1_MB[k].get(depth)) for k in PAPER_BATCH_SIZES]
    if any(v is None for _, v in rows):
        raise CalibrationError(f"no paper data for ResNet depth {depth}")
    n = len(rows)
    sum_k = sum(k for k, _ in rows)
    sum_m = sum(m for _, m in rows)  # type: ignore[misc]
    sum_kk = sum(k * k for k, _ in rows)
    sum_km = sum(k * m for k, m in rows)  # type: ignore[operator]
    denom = n * sum_kk - sum_k * sum_k
    slope = (n * sum_km - sum_k * sum_m) / denom
    intercept = (sum_m - slope * sum_k) / n
    return CalibratedModel(
        depth=depth, fixed_bytes=intercept * MB, act224_bytes=slope * MB
    )


def calibrated_models() -> dict[int, CalibratedModel]:
    """All five calibrated models keyed by depth."""
    return {d: fit_paper_coefficients(d) for d in (18, 34, 50, 101, 152)}
