"""Device-fit reports: which (model, batch, image) cells fit a budget.

Reproduces the *shaded cells* of the paper's Tables I–III — the
configurations that cannot be trained store-all within the edge device's
memory — for both our first-principles model and the paper-calibrated one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..units import MB
from .calibration import CalibratedModel
from .model import MemoryModel

__all__ = ["FitCell", "FitGrid", "fit_grid", "fit_grid_calibrated"]


@dataclass(frozen=True)
class FitCell:
    """One table cell: a (model, batch, image) footprint vs a budget."""

    model: str
    batch_size: int
    image_size: int
    total_bytes: float
    budget_bytes: int

    @property
    def fits(self) -> bool:
        return self.total_bytes <= self.budget_bytes

    @property
    def total_mb(self) -> float:
        return self.total_bytes / MB


@dataclass(frozen=True)
class FitGrid:
    """A grid of fit cells plus helpers mirroring the paper's shading."""

    cells: tuple[FitCell, ...]

    def cell(self, model: str, batch_size: int, image_size: int) -> FitCell:
        for c in self.cells:
            if (c.model, c.batch_size, c.image_size) == (model, batch_size, image_size):
                return c
        raise KeyError((model, batch_size, image_size))

    @property
    def shaded(self) -> tuple[FitCell, ...]:
        """Cells that do NOT fit (the paper's shaded values)."""
        return tuple(c for c in self.cells if not c.fits)

    def fitting_fraction(self) -> float:
        if not self.cells:
            return 1.0
        return sum(c.fits for c in self.cells) / len(self.cells)


def fit_grid(
    models: Iterable[MemoryModel],
    batch_sizes: Iterable[int],
    image_sizes: Iterable[int],
    budget_bytes: int,
    exact: bool = True,
) -> FitGrid:
    """Evaluate every (model, batch, image) cell with first-principles sizes."""
    cells = []
    for m in models:
        for s in image_sizes:
            for k in batch_sizes:
                cells.append(
                    FitCell(
                        model=m.name,
                        batch_size=k,
                        image_size=s,
                        total_bytes=m.total_bytes(k, s, exact=exact),
                        budget_bytes=budget_bytes,
                    )
                )
    return FitGrid(cells=tuple(cells))


def fit_grid_calibrated(
    models: Iterable[CalibratedModel],
    batch_sizes: Iterable[int],
    image_sizes: Iterable[int],
    budget_bytes: int,
) -> FitGrid:
    """Same grid using the paper-fitted coefficients."""
    cells = []
    for m in models:
        for s in image_sizes:
            for k in batch_sizes:
                cells.append(
                    FitCell(
                        model=f"ResNet{m.depth}",
                        batch_size=k,
                        image_size=s,
                        total_bytes=m.total_bytes(k, s),
                        budget_bytes=budget_bytes,
                    )
                )
    return FitGrid(cells=tuple(cells))
