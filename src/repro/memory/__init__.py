"""Memory models: accounting policies, scaling laws, paper calibration."""

from .accounting import (
    ADAM_POLICY,
    INFERENCE_POLICY,
    MOMENTUM_POLICY,
    OPTIMIZER_WEIGHT_COPIES,
    SGD_POLICY,
    TRAINING_POLICY,
    AccountingPolicy,
    MemoryAccount,
    account,
)
from .model import MemoryModel, memory_model_for, n_max
from .calibration import (
    PAPER_BATCH_SIZES,
    PAPER_DEVICE_BUDGET_MB,
    PAPER_IMAGE_SIZES_T2,
    PAPER_IMAGE_SIZES_T3,
    PAPER_TABLE1_MB,
    PAPER_TABLE2_MB,
    PAPER_TABLE3_GB,
    CalibratedModel,
    calibrated_models,
    fit_paper_coefficients,
)
from .fit import FitCell, FitGrid, fit_grid, fit_grid_calibrated
from .precision import cast_account, mixed_precision_account
from .profile import LayerProfile, MemoryProfile, memory_profile

__all__ = [
    "AccountingPolicy",
    "MemoryAccount",
    "account",
    "INFERENCE_POLICY",
    "SGD_POLICY",
    "MOMENTUM_POLICY",
    "ADAM_POLICY",
    "TRAINING_POLICY",
    "OPTIMIZER_WEIGHT_COPIES",
    "MemoryModel",
    "memory_model_for",
    "n_max",
    "CalibratedModel",
    "calibrated_models",
    "fit_paper_coefficients",
    "PAPER_TABLE1_MB",
    "PAPER_TABLE2_MB",
    "PAPER_TABLE3_GB",
    "PAPER_BATCH_SIZES",
    "PAPER_IMAGE_SIZES_T2",
    "PAPER_IMAGE_SIZES_T3",
    "PAPER_DEVICE_BUDGET_MB",
    "FitCell",
    "FitGrid",
    "fit_grid",
    "fit_grid_calibrated",
    "cast_account",
    "mixed_precision_account",
    "LayerProfile",
    "MemoryProfile",
    "memory_profile",
]
