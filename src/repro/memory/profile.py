"""Per-layer memory profiling: where do the 2 GB actually go?

:func:`memory_profile` ranks a graph's nodes by activation bytes and its
layers by parameter bytes, answering the deployment question the
aggregate tables hide — on ResNets the early high-resolution stages own
the activations while the late stages own the weights, which is exactly
why homogenized chains (and heterogeneous byte-budget DPs) matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph import Graph
from ..units import humanize_bytes

__all__ = ["LayerProfile", "MemoryProfile", "memory_profile"]


@dataclass(frozen=True)
class LayerProfile:
    """One node's contribution."""

    name: str
    kind: str
    act_bytes: int  # per sample
    param_bytes: int  # one fp32 copy, trainable
    flops: int


@dataclass(frozen=True)
class MemoryProfile:
    """Full per-layer breakdown plus ranking helpers."""

    model: str
    layers: tuple[LayerProfile, ...]

    @property
    def total_act_bytes(self) -> int:
        return sum(p.act_bytes for p in self.layers)

    @property
    def total_param_bytes(self) -> int:
        return sum(p.param_bytes for p in self.layers)

    def top_activations(self, k: int = 10) -> list[LayerProfile]:
        """The k nodes holding the most activation bytes."""
        return sorted(self.layers, key=lambda p: p.act_bytes, reverse=True)[:k]

    def top_parameters(self, k: int = 10) -> list[LayerProfile]:
        return sorted(self.layers, key=lambda p: p.param_bytes, reverse=True)[:k]

    def activation_share(self, prefix: str) -> float:
        """Fraction of activation bytes in nodes whose name starts with
        ``prefix`` (e.g. ``"layer1"`` for a ResNet stage)."""
        total = self.total_act_bytes
        if total == 0:
            return 0.0
        part = sum(p.act_bytes for p in self.layers if p.name.startswith(prefix))
        return part / total

    def render(self, k: int = 10) -> str:
        lines = [
            f"Memory profile: {self.model} "
            f"(activations {humanize_bytes(self.total_act_bytes)}/sample, "
            f"params {humanize_bytes(self.total_param_bytes)})",
            f"top {k} activation holders:",
        ]
        for p in self.top_activations(k):
            lines.append(
                f"  {p.name:<28}{p.kind:<18}{humanize_bytes(p.act_bytes):>12}"
            )
        lines.append(f"top {k} parameter holders:")
        for p in self.top_parameters(k):
            lines.append(
                f"  {p.name:<28}{p.kind:<18}{humanize_bytes(p.param_bytes):>12}"
            )
        return "\n".join(lines)


def memory_profile(graph: Graph) -> MemoryProfile:
    """Profile every node of ``graph`` (inference is run if needed)."""
    graph.infer()
    specs = {n.name: n.output for n in graph.nodes}
    layers = []
    for node in graph.nodes:
        assert node.output is not None
        in_specs = [specs[s] for s in node.inputs]
        layers.append(
            LayerProfile(
                name=node.name,
                kind=type(node.layer).__name__,
                act_bytes=node.output.nbytes,
                param_bytes=node.layer.trainable_bytes,
                flops=node.layer.flops([s for s in in_specs if s is not None], node.output),
            )
        )
    return MemoryProfile(model=graph.name, layers=tuple(layers))
