"""Memory accounting policies.

The footprint of training a network splits into a *fixed* part (weights
plus their gradient/optimizer copies and buffers — independent of batch
size) and a *variable* part (activations — linear in batch size).  The
paper's Table I is exactly linear in batch size, with the fixed part
≈ 3.9–4.0× the fp32 weight bytes, i.e. four weight copies (weights,
gradients, momentum, and a working copy, as with Adam-style optimizers).

:class:`AccountingPolicy` makes every counting decision explicit; the
default :data:`TRAINING_POLICY` mirrors the paper's implied convention.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph import Graph

__all__ = [
    "OPTIMIZER_WEIGHT_COPIES",
    "AccountingPolicy",
    "MemoryAccount",
    "INFERENCE_POLICY",
    "SGD_POLICY",
    "MOMENTUM_POLICY",
    "ADAM_POLICY",
    "TRAINING_POLICY",
    "account",
]

#: Weight copies implied by each optimizer: weights + gradients (+ state).
OPTIMIZER_WEIGHT_COPIES: dict[str, int] = {
    "none": 1,  # inference: weights only
    "sgd": 2,  # weights + gradients
    "momentum": 3,  # + velocity
    "adam": 4,  # + first and second moments... (grad reused as workspace)
}


@dataclass(frozen=True)
class AccountingPolicy:
    """Every knob that affects the byte count, stated explicitly.

    ``weight_copies``
        Number of full-weight-sized tensors resident during training.
    ``count_buffers``
        Whether BatchNorm running statistics (stored once) are counted.
    ``count_inplace``
        Whether in-place-capable activations (ReLU outputs) count as
        stored activations.
    ``count_input``
        Whether the input batch itself counts toward activations.
    ``activation_copies``
        Multiplier on activation bytes (1.0 = store each output once).
    """

    name: str
    weight_copies: int = 4
    count_buffers: bool = True
    count_inplace: bool = True
    count_input: bool = True
    activation_copies: float = 1.0

    def __post_init__(self) -> None:
        if self.weight_copies < 1:
            raise ValueError("weight_copies must be >= 1")
        if self.activation_copies <= 0:
            raise ValueError("activation_copies must be positive")


INFERENCE_POLICY = AccountingPolicy(
    name="inference", weight_copies=1, count_inplace=False, activation_copies=1.0
)
SGD_POLICY = AccountingPolicy(name="sgd", weight_copies=2)
MOMENTUM_POLICY = AccountingPolicy(name="momentum", weight_copies=3)
ADAM_POLICY = AccountingPolicy(name="adam", weight_copies=4)
#: Default policy reproducing the paper's fixed-cost convention (4 copies).
TRAINING_POLICY = ADAM_POLICY


@dataclass(frozen=True)
class MemoryAccount:
    """Result of applying a policy to a graph."""

    model: str
    policy: str
    weight_bytes: int  # one fp32 copy of trainable weights
    buffer_bytes: int  # non-trainable buffers, stored once
    fixed_bytes: int  # weights x copies + buffers
    act_bytes_per_sample: int  # activations per sample under the policy
    input_bytes_per_sample: int

    def total_bytes(self, batch_size: int) -> int:
        """Fixed + batch-scaled activation bytes."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return self.fixed_bytes + batch_size * self.act_bytes_per_sample


def account(graph: Graph, policy: AccountingPolicy = TRAINING_POLICY) -> MemoryAccount:
    """Apply ``policy`` to ``graph`` and return the byte decomposition."""
    graph.infer()
    weight_bytes = graph.trainable_bytes
    buffer_bytes = graph.buffer_bytes if policy.count_buffers else 0
    fixed = policy.weight_copies * weight_bytes + buffer_bytes

    act = graph.activation_bytes_per_sample(include_inplace=policy.count_inplace)
    input_bytes = 0
    for node in graph.nodes:
        if node.is_source:
            assert node.output is not None
            input_bytes += node.output.nbytes
    # Input nodes are included in activation_bytes_per_sample; remove them
    # when the policy does not count the input batch.
    if not policy.count_input:
        act -= input_bytes
    act = int(round(act * policy.activation_copies))
    return MemoryAccount(
        model=graph.name,
        policy=policy.name,
        weight_bytes=weight_bytes,
        buffer_bytes=buffer_bytes,
        fixed_bytes=fixed,
        act_bytes_per_sample=act,
        input_bytes_per_sample=input_bytes,
    )
