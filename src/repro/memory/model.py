"""The paper's memory model: ``M(k, s) = M_fixed + k · M_act(s)``.

A :class:`MemoryModel` captures a network's footprint as a function of
batch size ``k`` and square image side ``s``.  Two evaluation modes:

* **exact** — rebuild the graph at the requested image size and account it
  (captures convolution rounding, as the paper's Table II values do);
* **scaling law** — quadratic interpolation from the reference size,
  ``M_act(s) ≈ M_act(ref) · (s/ref)²`` (the paper's LinearResNet idealism).

It also implements the paper's Section VI quantity
``n_max = (M_C − M_W) / (k · M_A)`` — the deepest homogeneous chain
trainable without checkpointing in a device budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import MemoryBudgetError
from ..graph import Graph
from .accounting import AccountingPolicy, MemoryAccount, TRAINING_POLICY, account

__all__ = ["MemoryModel", "n_max", "memory_model_for"]


@dataclass
class MemoryModel:
    """Footprint of one architecture under one accounting policy."""

    name: str
    ref_image: int
    account_ref: MemoryAccount
    builder: Callable[[int], Graph] | None = None
    policy: AccountingPolicy = TRAINING_POLICY
    _cache: dict[int, MemoryAccount] = field(default_factory=dict, repr=False)

    # -- activation scaling -------------------------------------------
    def act_bytes(self, image_size: int, exact: bool = True) -> int:
        """Per-sample activation bytes at ``image_size``."""
        if image_size == self.ref_image:
            return self.account_ref.act_bytes_per_sample
        if exact and self.builder is not None:
            return self._account_at(image_size).act_bytes_per_sample
        scale = (image_size / self.ref_image) ** 2
        return int(round(self.account_ref.act_bytes_per_sample * scale))

    def _account_at(self, image_size: int) -> MemoryAccount:
        if image_size not in self._cache:
            assert self.builder is not None
            self._cache[image_size] = account(self.builder(image_size), self.policy)
        return self._cache[image_size]

    # -- totals ----------------------------------------------------------
    @property
    def fixed_bytes(self) -> int:
        return self.account_ref.fixed_bytes

    @property
    def weight_bytes(self) -> int:
        return self.account_ref.weight_bytes

    def total_bytes(self, batch_size: int = 1, image_size: int | None = None, exact: bool = True) -> int:
        """``M_fixed + k · M_act(s)`` in bytes."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        s = self.ref_image if image_size is None else image_size
        return self.fixed_bytes + batch_size * self.act_bytes(s, exact=exact)

    def fits(self, budget_bytes: int, batch_size: int = 1, image_size: int | None = None) -> bool:
        """Does the full (no-checkpointing) footprint fit ``budget_bytes``?"""
        return self.total_bytes(batch_size, image_size) <= budget_bytes

    def max_batch(self, budget_bytes: int, image_size: int | None = None) -> int:
        """Largest batch size fitting the budget without checkpointing.

        Raises :class:`~repro.errors.MemoryBudgetError` when even batch
        size 1 does not fit.
        """
        s = self.ref_image if image_size is None else image_size
        act = self.act_bytes(s)
        spare = budget_bytes - self.fixed_bytes
        if act <= 0:
            return 1 if spare >= 0 else 0
        k = spare // act
        if k < 1:
            raise MemoryBudgetError(
                f"{self.name}: batch 1 at image {s} needs "
                f"{self.fixed_bytes + act} B > budget {budget_bytes} B"
            )
        return int(k)


def n_max(
    budget_bytes: int,
    weight_bytes: int,
    act_bytes_per_layer: int,
    batch_size: int,
    weight_copies: int = 1,
) -> int:
    """The paper's ``n_max = (M_C − M_W) / (k × M_A)``.

    Depth of the largest homogeneous chain trainable (store-all) in
    ``budget_bytes``.  ``weight_copies`` generalizes ``M_W`` to include
    optimizer copies.  Returns 0 when nothing fits.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    spare = budget_bytes - weight_copies * weight_bytes
    if spare <= 0 or act_bytes_per_layer <= 0:
        return 0
    return int(spare // (batch_size * act_bytes_per_layer))


def memory_model_for(
    builder: Callable[[int], Graph],
    ref_image: int = 224,
    policy: AccountingPolicy = TRAINING_POLICY,
    name: str | None = None,
) -> MemoryModel:
    """Build a :class:`MemoryModel` from an ``image_size -> Graph`` builder."""
    graph = builder(ref_image)
    acct = account(graph, policy)
    return MemoryModel(
        name=name or graph.name,
        ref_image=ref_image,
        account_ref=acct,
        builder=builder,
        policy=policy,
    )
