"""Edge-device models and a small catalog.

The paper's reference platform is the Waggle node's payload computer, an
ODROID XU4 (Samsung Exynos 5422: 4×A15 + 4×A7, Mali-T628 MP6, 2 GB
LPDDR3, SD storage).  Compute throughputs below are order-of-magnitude
fp32 estimates — the decision logic this library implements depends on
the *memory* budget and relative speeds, not precise GFLOPs, and every
number is overridable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..units import GB

__all__ = ["Device", "ODROID_XU4", "RASPBERRY_PI_3", "RASPBERRY_PI_4", "JETSON_NANO", "GENERIC_2GB", "DEVICE_CATALOG"]


@dataclass(frozen=True)
class Device:
    """A training target: memory, compute, storage, availability."""

    name: str
    mem_bytes: int
    cpu_gflops: float
    storage_bytes: int
    gpu_gflops: float = 0.0
    cores: int = 4
    #: long-run fraction of time the payload CPU is free for training
    #: (training is scheduled only when no higher-priority task runs).
    idle_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.mem_bytes <= 0 or self.storage_bytes < 0:
            raise ValueError("memory/storage must be positive")
        if self.cpu_gflops <= 0:
            raise ValueError("cpu_gflops must be positive")
        if not 0 < self.idle_fraction <= 1:
            raise ValueError("idle_fraction must be in (0, 1]")

    @property
    def flops_per_s(self) -> float:
        """Best available raw compute (GPU if present, else CPU)."""
        return max(self.cpu_gflops, self.gpu_gflops) * 1e9

    def with_memory(self, mem_bytes: int) -> "Device":
        """Copy with a different memory budget (what-if analysis)."""
        return replace(self, mem_bytes=mem_bytes)


#: The paper's Waggle payload node.
ODROID_XU4 = Device(
    name="ODROID-XU4",
    mem_bytes=2 * GB,
    cpu_gflops=15.0,
    gpu_gflops=30.0,
    storage_bytes=32 * GB,
    cores=8,
    idle_fraction=0.5,
)

RASPBERRY_PI_3 = Device(
    name="RaspberryPi3B",
    mem_bytes=1 * GB,
    cpu_gflops=3.6,
    storage_bytes=16 * GB,
    cores=4,
    idle_fraction=0.6,
)

RASPBERRY_PI_4 = Device(
    name="RaspberryPi4",
    mem_bytes=4 * GB,
    cpu_gflops=9.7,
    storage_bytes=32 * GB,
    cores=4,
    idle_fraction=0.6,
)

JETSON_NANO = Device(
    name="JetsonNano",
    mem_bytes=4 * GB,
    cpu_gflops=15.0,
    gpu_gflops=235.0,
    storage_bytes=64 * GB,
    cores=4,
    idle_fraction=0.5,
)

#: Abstract 2 GB device used by the paper's tables (no compute assumed).
GENERIC_2GB = Device(
    name="Generic2GB",
    mem_bytes=2 * GB,
    cpu_gflops=10.0,
    storage_bytes=10 * GB,
    idle_fraction=1.0,
)

DEVICE_CATALOG: dict[str, Device] = {
    d.name: d
    for d in (ODROID_XU4, RASPBERRY_PI_3, RASPBERRY_PI_4, JETSON_NANO, GENERIC_2GB)
}
