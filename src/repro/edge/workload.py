"""Training-workload descriptors for the edge simulator."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["TrainingWorkload"]


@dataclass(frozen=True)
class TrainingWorkload:
    """What the node must train.

    ``chain_length``/``slot_act_bytes`` describe the homogenized chain (as
    in Figure 1); ``fixed_bytes`` the weight+optimizer footprint;
    ``flops_per_sample`` the forward cost of one sample;
    ``bwd_ratio`` the backward/forward cost ratio (2.0 is the standard
    convention; the paper's ρ arithmetic uses 1.0).
    """

    model: str
    chain_length: int
    slot_act_bytes_per_sample: int
    fixed_bytes: int
    flops_per_sample: float
    n_images: int
    epochs: int = 1
    batch_size: int = 1
    bwd_ratio: float = 2.0

    def __post_init__(self) -> None:
        if self.chain_length < 1:
            raise ValueError("chain_length must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.n_images < 1 or self.epochs < 1:
            raise ValueError("n_images and epochs must be >= 1")
        if self.flops_per_sample <= 0:
            raise ValueError("flops_per_sample must be positive")

    @property
    def slot_bytes(self) -> int:
        """Bytes one checkpoint slot occupies at this batch size."""
        return self.batch_size * self.slot_act_bytes_per_sample

    @property
    def batches_per_epoch(self) -> int:
        return math.ceil(self.n_images / self.batch_size)

    @property
    def step_flops(self) -> float:
        """fwd+bwd FLOPs of one optimizer step (before recompute)."""
        return self.flops_per_sample * self.batch_size * (1.0 + self.bwd_ratio)

    def with_batch(self, batch_size: int) -> "TrainingWorkload":
        """Copy at a different batch size (for batch sweeps)."""
        return TrainingWorkload(
            model=self.model,
            chain_length=self.chain_length,
            slot_act_bytes_per_sample=self.slot_act_bytes_per_sample,
            fixed_bytes=self.fixed_bytes,
            flops_per_sample=self.flops_per_sample,
            n_images=self.n_images,
            epochs=self.epochs,
            batch_size=batch_size,
            bwd_ratio=self.bwd_ratio,
        )
