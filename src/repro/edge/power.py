"""Energy accounting: ship data to the cloud, or process it in place?

Section I motivates edge processing with "reduced power and bandwidth
requirements".  This module is a *calculator*, not an advocate — the
winner depends on radio and silicon efficiency, both of which span
orders of magnitude across deployments, so every coefficient is a
parameter and the interesting outputs are breakevens:

* :func:`compare_strategies_energy` / :func:`breakeven_epochs` — the
  *training* question: upload the harvested set once vs run ``epochs``
  of local (possibly checkpointed, ρ > 1) training.  With compressed
  10 kB images and multi-GFLOP models, shipping the *training set* is
  often energetically cheap — the in-situ case rests on privacy,
  bandwidth provisioning and continuous freshness, which this module
  prices but does not monetize.
* :func:`streaming_comparison` — the *inference* question the paper's
  platform actually faces: stream every camera frame to a central model
  forever, vs run inference on the node.  Here the balance tips with
  frame size × fps against per-frame FLOPs.

Defaults: ~5 µJ/byte (LTE-class radio; WiFi can be 10× cheaper) and
~0.1 nJ/FLOP (embedded-GPU class, ~10 GFLOPS/W effective).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "EnergyModel",
    "EnergyComparison",
    "compare_strategies_energy",
    "breakeven_epochs",
    "streaming_comparison",
]


@dataclass(frozen=True)
class EnergyModel:
    """Per-unit energy costs of a node."""

    radio_j_per_byte: float = 5e-6
    compute_j_per_flop: float = 1e-10
    idle_w: float = 2.0  # baseline draw, charged to wall-clock seconds

    def __post_init__(self) -> None:
        if self.radio_j_per_byte < 0 or self.compute_j_per_flop < 0 or self.idle_w < 0:
            raise ValueError("energy coefficients must be non-negative")

    def transfer_energy(self, nbytes: float) -> float:
        """Joules to move ``nbytes`` over the radio."""
        if nbytes < 0:
            raise ValueError("bytes must be non-negative")
        return nbytes * self.radio_j_per_byte

    def compute_energy(self, flops: float) -> float:
        """Joules to execute ``flops``."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        return flops * self.compute_j_per_flop


@dataclass(frozen=True)
class EnergyComparison:
    """Energy of both strategies for one adaptation task."""

    ship_joules: float
    local_joules: float
    n_images: int
    epochs: int

    @property
    def local_wins(self) -> bool:
        return self.local_joules <= self.ship_joules

    @property
    def ratio(self) -> float:
        """local / ship — below 1 means in-situ training is cheaper."""
        if self.ship_joules == 0:
            return float("inf") if self.local_joules > 0 else 1.0
        return self.local_joules / self.ship_joules


def compare_strategies_energy(
    n_images: int,
    image_bytes: int,
    flops_per_sample: float,
    epochs: int,
    model: EnergyModel = EnergyModel(),
    rho: float = 1.0,
    bwd_ratio: float = 2.0,
    model_bytes: float = 0.0,
) -> EnergyComparison:
    """Price ship-to-cloud vs train-locally for one adaptation round.

    ``ship`` uploads all images once and downloads ``model_bytes`` back;
    ``local`` runs ``epochs`` fwd+bwd passes over the set at recompute
    factor ``rho`` (which multiplies the *forward* recomputation only).
    """
    if n_images < 0 or epochs < 1:
        raise ValueError("need n_images >= 0 and epochs >= 1")
    if rho < 1.0:
        raise ValueError("rho must be >= 1")
    ship = model.transfer_energy(n_images * image_bytes + model_bytes)
    fwd = flops_per_sample
    # one fwd (+ recompute overhead) + backward, per sample per epoch
    step_flops = fwd * (1.0 + (rho - 1.0) * (1.0 + bwd_ratio)) + fwd * bwd_ratio
    local = model.compute_energy(n_images * epochs * step_flops)
    return EnergyComparison(
        ship_joules=ship, local_joules=local, n_images=n_images, epochs=epochs
    )


def breakeven_epochs(
    image_bytes: int,
    flops_per_sample: float,
    model: EnergyModel = EnergyModel(),
    rho: float = 1.0,
    bwd_ratio: float = 2.0,
) -> float:
    """Epochs of local training that cost as much as shipping the data.

    Independent of the dataset size (both sides scale linearly in it).
    Returns ``inf`` when local training is free, 0 when the radio is.
    """
    per_image_ship = model.transfer_energy(image_bytes)
    fwd = flops_per_sample
    step_flops = fwd * (1.0 + (rho - 1.0) * (1.0 + bwd_ratio)) + fwd * bwd_ratio
    per_image_epoch = model.compute_energy(step_flops)
    if per_image_epoch == 0:
        return float("inf")
    return per_image_ship / per_image_epoch


def streaming_comparison(
    fps: float,
    frame_bytes: int,
    inference_flops_per_frame: float,
    seconds: float = 86_400.0,
    model: EnergyModel = EnergyModel(),
) -> EnergyComparison:
    """Energy of streaming frames out vs running inference locally.

    This is the Section I bandwidth/power argument for edge *inference*
    (counting people, cars, floods on the Waggle nodes): ``ship``
    uploads every frame for the given duration; ``local`` runs the
    model per frame on the node.
    """
    if fps <= 0 or frame_bytes <= 0 or seconds <= 0:
        raise ValueError("fps, frame_bytes and seconds must be positive")
    if inference_flops_per_frame < 0:
        raise ValueError("inference_flops_per_frame must be non-negative")
    n_frames = fps * seconds
    ship = model.transfer_energy(n_frames * frame_bytes)
    local = model.compute_energy(n_frames * inference_flops_per_frame)
    return EnergyComparison(
        ship_joules=ship,
        local_joules=local,
        n_images=int(n_frames),
        epochs=1,
    )
