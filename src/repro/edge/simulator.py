"""Edge training-time simulation: efficiency, recompute, duty cycle.

Combines three effects the paper discusses in Sections III and VI:

1. **Checkpointing recompute** — the memory planner picks the slot count
   that fits the device, costing recompute factor ρ.
2. **Batch efficiency** — small batches underutilize vector hardware
   (:func:`batch_efficiency`); the paper notes that "the time to process
   8 times a batch size of 1 is expected to be much larger than the time
   to process a batch size of 8", which is why trading memory (via
   checkpointing) for a larger batch can *reduce* total epoch time even
   at ρ > 1.  :func:`sweep_batch_sizes` quantifies exactly that.
3. **Duty cycle** — "training ... can be scheduled to run only when the
   node's CPU does not have a higher priority task" (Section III):
   :class:`DutyCycleSimulator` runs a discrete-event preemption model
   with Poisson-arriving priority tasks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import MemoryBudgetError
from ..checkpointing.planner import TrainingPlan, plan_training
from ..obs import get_metrics, get_tracer
from .device import Device
from .workload import TrainingWorkload

__all__ = [
    "batch_efficiency",
    "EpochEstimate",
    "estimate_epoch",
    "sweep_batch_sizes",
    "DutyCycleSimulator",
    "DutyCycleResult",
]


def batch_efficiency(batch_size: int, full_at: int = 32, floor: float = 0.15) -> float:
    """Fraction of peak throughput achieved at a given batch size.

    A saturating square-root curve: tiny batches run near ``floor`` of
    peak (kernel launch/vectorization overheads dominate), saturating at
    ``full_at``.  Chosen for its shape, not its constants — benches sweep
    them.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if not 0 < floor <= 1:
        raise ValueError("floor must be in (0, 1]")
    frac = min(1.0, math.sqrt(batch_size / full_at))
    return floor + (1.0 - floor) * frac


@dataclass(frozen=True)
class EpochEstimate:
    """Time and memory outcome for one epoch on a device."""

    model: str
    device: str
    batch_size: int
    plan: TrainingPlan
    efficiency: float
    step_seconds: float
    batches: int

    @property
    def rho(self) -> float:
        """Recompute factor of the plan (≥ 1; never a silent 0/0)."""
        if self.plan.rho < 1.0:
            raise ValueError(f"plan carries invalid rho {self.plan.rho}")
        return self.plan.rho

    @property
    def epoch_seconds(self) -> float:
        return self.step_seconds * self.batches

    @property
    def samples_per_second(self) -> float:
        """Throughput; ``inf`` for a (degenerate) zero-time step."""
        if self.step_seconds < 0:
            raise ValueError("step_seconds must be >= 0")
        if self.step_seconds == 0:
            return float("inf")
        return self.batch_size / self.step_seconds


def estimate_epoch(
    workload: TrainingWorkload,
    device: Device,
    full_at: int = 32,
    floor: float = 0.15,
) -> EpochEstimate:
    """Plan memory, then price one epoch (compute time, no duty cycle).

    Raises :class:`~repro.errors.MemoryBudgetError` when the workload
    cannot fit the device at this batch size even with ρ-unbounded
    checkpointing.
    """
    plan = plan_training(
        l=workload.chain_length,
        fixed_bytes=workload.fixed_bytes,
        slot_bytes=workload.slot_bytes,
        budget_bytes=device.mem_bytes,
        bwd_ratio=workload.bwd_ratio,
        model=workload.model,
    )
    eff = batch_efficiency(workload.batch_size, full_at=full_at, floor=floor)
    if device.flops_per_s <= 0:
        raise ValueError(f"device {device.name!r} has non-positive flops_per_s")
    step_seconds = workload.step_flops * plan.rho / (device.flops_per_s * eff)
    return EpochEstimate(
        model=workload.model,
        device=device.name,
        batch_size=workload.batch_size,
        plan=plan,
        efficiency=eff,
        step_seconds=step_seconds,
        batches=workload.batches_per_epoch,
    )


def sweep_batch_sizes(
    workload: TrainingWorkload,
    device: Device,
    batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    full_at: int = 32,
    floor: float = 0.15,
) -> list[EpochEstimate]:
    """Epoch estimates across batch sizes (infeasible sizes skipped).

    The paper's Section VI point falls out of this sweep: without
    checkpointing only tiny batches fit and the epoch crawls at low
    efficiency; with Revolve, batch 8+ fits at ρ ≈ 1.5 and the epoch is
    *faster* despite the recomputation.
    """
    out = []
    for k in batch_sizes:
        try:
            out.append(estimate_epoch(workload.with_batch(k), device, full_at, floor))
        except MemoryBudgetError:
            continue
    return out


@dataclass(frozen=True)
class DutyCycleResult:
    """Outcome of the preemption simulation."""

    compute_seconds: float
    wall_seconds: float
    busy_seconds: float
    preemptions: int

    @property
    def achieved_idle_fraction(self) -> float:
        """``compute / wall``; 1.0 for the empty run, ``inf``/``ValueError``
        for denominators the simulation cannot produce (hand-built
        results with zero or negative wall time)."""
        if self.wall_seconds < 0:
            raise ValueError("wall_seconds must be >= 0")
        if self.wall_seconds == 0:
            return 1.0 if self.compute_seconds == 0 else float("inf")
        return self.compute_seconds / self.wall_seconds


class DutyCycleSimulator:
    """Discrete-event model of training preempted by priority tasks.

    Higher-priority payloads (inference jobs, sensor handling) arrive as
    a Poisson process with exponential service times; training runs only
    in the gaps (Section III's scheduling policy).  The long-run idle
    fraction is ``1/(1 + rate·mean_duration)``; the simulation adds the
    realistic variance around it.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        arrival_rate_per_hour: float = 6.0,
        mean_task_seconds: float = 300.0,
    ) -> None:
        if arrival_rate_per_hour < 0 or mean_task_seconds < 0:
            raise ValueError("rates and durations must be non-negative")
        self.rng = rng
        self.arrival_rate = arrival_rate_per_hour / 3600.0
        self.mean_task_seconds = mean_task_seconds

    @property
    def expected_idle_fraction(self) -> float:
        load = self.arrival_rate * self.mean_task_seconds
        return 1.0 / (1.0 + load)

    def run(self, compute_seconds: float) -> DutyCycleResult:
        """Wall-clock time to accumulate ``compute_seconds`` of training."""
        if compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")
        with get_tracer().span(
            "duty_cycle", category="edge", compute_seconds=compute_seconds
        ) as span:
            if self.arrival_rate == 0 or self.mean_task_seconds == 0:
                result = DutyCycleResult(compute_seconds, compute_seconds, 0.0, 0)
            else:
                done = 0.0
                wall = 0.0
                busy = 0.0
                preemptions = 0
                while done < compute_seconds:
                    gap = self.rng.exponential(1.0 / self.arrival_rate)
                    work = min(gap, compute_seconds - done)
                    done += work
                    wall += work
                    if done >= compute_seconds:
                        break
                    task = self.rng.exponential(self.mean_task_seconds)
                    wall += task
                    busy += task
                    preemptions += 1
                result = DutyCycleResult(
                    compute_seconds=compute_seconds,
                    wall_seconds=wall,
                    busy_seconds=busy,
                    preemptions=preemptions,
                )
            span.set_tag("wall_seconds", result.wall_seconds)
            span.set_tag("preemptions", result.preemptions)
        m = get_metrics()
        m.counter("edge.duty_cycle.preemptions").inc(result.preemptions)
        m.histogram("edge.duty_cycle.idle_fraction").observe(
            result.achieved_idle_fraction
        )
        return result
