"""On-node dataset storage sizing and write costs (paper Section III).

The paper argues harvested training images need not be stored at high
resolution: at 224×224 a JPEG-compressed frame is ≲ 10 kB, so even a
large harvested dataset fits the node's SD card.  (The paper says 100,000
such images need "about 10 GB"; at 10 kB each the exact figure is ~1 GB —
``bench_student_teacher`` prints both, and EXPERIMENTS.md notes the
discrepancy.)

:class:`StorageProfile` prices the *write path* of that same SD/flash
medium — a fixed per-operation latency plus a bandwidth term.  It is
how :mod:`repro.resilience` turns a durable training snapshot's byte
size into the Young/Daly snapshot cost δ.

:class:`CompressionModel` prices the *codec path* in the same currency:
a size ratio, compress/decompress bandwidths and a declared gradient
fidelity loss.  It is how the compression-aware planner
(:mod:`repro.checkpointing.joint`) and the compressed execution backend
(:mod:`repro.engine.compressed`) trade smaller checkpoints against
codec seconds — BitTrain's sparse-bitmap encoding and a low-precision
cast are shipped as presets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MemoryBudgetError
from ..units import KB, MB

__all__ = [
    "ImageStore",
    "PAPER_IMAGE_KB",
    "PAPER_IMAGE_COUNT",
    "StorageProfile",
    "SD_CARD",
    "EMMC",
    "CompressionModel",
    "LOSSLESS",
    "BITTRAIN_SPARSE",
    "FP16_CAST",
    "compression_models",
]

#: The paper's per-image size estimate at 224x224.
PAPER_IMAGE_KB: float = 10.0
#: The paper's example harvested-dataset size.
PAPER_IMAGE_COUNT: int = 100_000


@dataclass(frozen=True)
class ImageStore:
    """A bounded image store on flash/SD storage."""

    capacity_bytes: int
    image_bytes: int = int(PAPER_IMAGE_KB * KB)

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        if self.image_bytes <= 0:
            raise ValueError("image size must be positive")

    def dataset_bytes(self, n_images: int) -> int:
        """Bytes needed for ``n_images``."""
        if n_images < 0:
            raise ValueError("image count must be non-negative")
        return n_images * self.image_bytes

    @property
    def max_images(self) -> int:
        """Largest dataset the store can hold."""
        return self.capacity_bytes // self.image_bytes

    def fits(self, n_images: int) -> bool:
        return self.dataset_bytes(n_images) <= self.capacity_bytes

    def require(self, n_images: int) -> None:
        """Raise :class:`~repro.errors.MemoryBudgetError` if it won't fit."""
        need = self.dataset_bytes(n_images)
        if need > self.capacity_bytes:
            raise MemoryBudgetError(
                f"{n_images} images need {need} B > capacity {self.capacity_bytes} B"
            )


@dataclass(frozen=True)
class StorageProfile:
    """Read/write cost model of on-node flash storage.

    ``write_seconds`` is the Young/Daly δ for a payload of that size:
    a fixed per-operation latency (filesystem metadata, erase blocks)
    plus the bandwidth-limited transfer.  The read path (used when the
    tiered execution engine restores a checkpoint from this medium)
    defaults to mirroring the write path unless given explicitly.
    """

    name: str = "sd-card"
    write_bytes_per_s: float = 10.0 * MB
    write_latency_s: float = 0.01
    #: read bandwidth; ``None`` mirrors the write bandwidth
    read_bytes_per_s: float | None = None
    #: per-operation read latency; ``None`` mirrors the write latency
    read_latency_s: float | None = None

    def __post_init__(self) -> None:
        if self.write_bytes_per_s <= 0:
            raise ValueError("write bandwidth must be positive")
        if self.write_latency_s < 0:
            raise ValueError("write latency must be non-negative")
        if self.read_bytes_per_s is not None and self.read_bytes_per_s <= 0:
            raise ValueError("read bandwidth must be positive")
        if self.read_latency_s is not None and self.read_latency_s < 0:
            raise ValueError("read latency must be non-negative")

    def write_seconds(self, n_bytes: int) -> float:
        """Seconds to durably write ``n_bytes``."""
        if n_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return self.write_latency_s + n_bytes / self.write_bytes_per_s

    def read_seconds(self, n_bytes: int) -> float:
        """Seconds to read ``n_bytes`` back."""
        if n_bytes < 0:
            raise ValueError("byte count must be non-negative")
        latency = self.read_latency_s if self.read_latency_s is not None else self.write_latency_s
        bw = self.read_bytes_per_s if self.read_bytes_per_s is not None else self.write_bytes_per_s
        return latency + n_bytes / bw


#: A commodity class-10 SD card — the Array-of-Things storage medium.
SD_CARD = StorageProfile()
#: On-board eMMC (e.g. the ODROID XU4 option): ~4x the write bandwidth.
EMMC = StorageProfile(name="emmc", write_bytes_per_s=40.0 * MB, write_latency_s=0.002)


@dataclass(frozen=True)
class CompressionModel:
    """Analytic codec for checkpointed activations.

    ``ratio`` scales stored bytes (``0 < ratio <= 1``); the codec paths
    are priced like a :class:`StorageProfile` — per-call latency plus a
    bandwidth term over the *raw* payload (a codec touches every input
    byte regardless of how small its output is).  ``fidelity_loss`` is
    the declared relative gradient error bound a lossy codec may
    introduce per restored activation; ``0.0`` means bit-exact.  The
    defaults are the identity codec: ratio 1, free, lossless — under
    which every compressed plan collapses to its uncompressed family.
    """

    name: str = "identity"
    ratio: float = 1.0
    #: codec throughput over raw bytes; ``None`` means free (no CPU cost)
    compress_bytes_per_s: float | None = None
    #: decode throughput; ``None`` mirrors the compress path
    decompress_bytes_per_s: float | None = None
    compress_latency_s: float = 0.0
    decompress_latency_s: float = 0.0
    #: declared relative gradient error bound (0 = lossless)
    fidelity_loss: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.0:
            raise ValueError("compression ratio must be in (0, 1]")
        if self.compress_bytes_per_s is not None and self.compress_bytes_per_s <= 0:
            raise ValueError("compress bandwidth must be positive")
        if self.decompress_bytes_per_s is not None and self.decompress_bytes_per_s <= 0:
            raise ValueError("decompress bandwidth must be positive")
        if self.compress_latency_s < 0 or self.decompress_latency_s < 0:
            raise ValueError("codec latency must be non-negative")
        if self.fidelity_loss < 0:
            raise ValueError("fidelity loss must be non-negative")

    @property
    def lossless(self) -> bool:
        return self.fidelity_loss == 0.0

    def compressed_bytes(self, n_bytes: int) -> int:
        """Stored size of an ``n_bytes`` activation (never below 1 byte)."""
        if n_bytes < 0:
            raise ValueError("byte count must be non-negative")
        if n_bytes == 0:
            return 0
        return max(1, int(n_bytes * self.ratio))

    def compress_seconds(self, n_bytes: int) -> float:
        """Codec seconds to encode ``n_bytes`` of raw activation."""
        if n_bytes < 0:
            raise ValueError("byte count must be non-negative")
        if self.compress_bytes_per_s is None:
            return 0.0
        return self.compress_latency_s + n_bytes / self.compress_bytes_per_s

    def decompress_seconds(self, n_bytes: int) -> float:
        """Codec seconds to decode back to ``n_bytes`` of raw activation."""
        if n_bytes < 0:
            raise ValueError("byte count must be non-negative")
        bw = (
            self.decompress_bytes_per_s
            if self.decompress_bytes_per_s is not None
            else self.compress_bytes_per_s
        )
        if bw is None:
            return 0.0
        return self.decompress_latency_s + n_bytes / bw


#: The identity codec: ratio 1, zero cost, bit-exact.  Compressed plans
#: under this model collapse exactly to their uncompressed families.
LOSSLESS = CompressionModel()

#: BitTrain-style sparse bitmap encoding of post-ReLU activations: the
#: bitmap plus the ~25% nonzero values land near 0.28 of the raw size,
#: lossless, at memcpy-class codec bandwidth on a Cortex-A15.
BITTRAIN_SPARSE = CompressionModel(
    name="bittrain-sparse",
    ratio=0.28,
    compress_bytes_per_s=400.0 * MB,
    decompress_bytes_per_s=600.0 * MB,
    compress_latency_s=0.0002,
    decompress_latency_s=0.0002,
)

#: Low-precision ablation lever: cast fp32 activations to fp16 on store.
#: Halves bytes at near-memcpy speed but is lossy — the declared bound
#: is the relative gradient error a half-precision activation admits.
FP16_CAST = CompressionModel(
    name="fp16-cast",
    ratio=0.5,
    compress_bytes_per_s=1.6e9,
    decompress_bytes_per_s=1.6e9,
    fidelity_loss=1e-3,
)


def compression_models() -> dict[str, CompressionModel]:
    """The named codec presets, keyed as the CLI spells them."""
    return {
        "lossless": LOSSLESS,
        "bittrain": BITTRAIN_SPARSE,
        "fp16": FP16_CAST,
    }
