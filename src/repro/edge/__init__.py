"""Edge-platform substrate: devices, workloads, storage, time simulation."""

from .device import (
    DEVICE_CATALOG,
    GENERIC_2GB,
    JETSON_NANO,
    ODROID_XU4,
    RASPBERRY_PI_3,
    RASPBERRY_PI_4,
    Device,
)
from .fleet import FleetConfig, FleetDay, FleetResult, quantize_effective, simulate_fleet
from .power import (
    EnergyComparison,
    EnergyModel,
    breakeven_epochs,
    compare_strategies_energy,
    streaming_comparison,
)
from .storage import EMMC, PAPER_IMAGE_COUNT, PAPER_IMAGE_KB, SD_CARD, ImageStore, StorageProfile
from .workload import TrainingWorkload
from .campaign import (
    CampaignConfig,
    CampaignDay,
    CampaignResult,
    LearningCurve,
    run_campaign,
)
from .simulator import (
    DutyCycleResult,
    DutyCycleSimulator,
    EpochEstimate,
    batch_efficiency,
    estimate_epoch,
    sweep_batch_sizes,
)

__all__ = [
    "Device",
    "ODROID_XU4",
    "RASPBERRY_PI_3",
    "RASPBERRY_PI_4",
    "JETSON_NANO",
    "GENERIC_2GB",
    "DEVICE_CATALOG",
    "ImageStore",
    "PAPER_IMAGE_KB",
    "PAPER_IMAGE_COUNT",
    "StorageProfile",
    "SD_CARD",
    "EMMC",
    "TrainingWorkload",
    "batch_efficiency",
    "EpochEstimate",
    "estimate_epoch",
    "sweep_batch_sizes",
    "DutyCycleSimulator",
    "DutyCycleResult",
    "LearningCurve",
    "CampaignConfig",
    "CampaignDay",
    "CampaignResult",
    "run_campaign",
    "EnergyModel",
    "EnergyComparison",
    "compare_strategies_energy",
    "breakeven_epochs",
    "streaming_comparison",
    "FleetConfig",
    "FleetDay",
    "FleetResult",
    "quantize_effective",
    "simulate_fleet",
]
