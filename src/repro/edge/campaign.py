"""In-situ training campaigns: from first crossing to adapted model.

Ties Sections II, III and VI together over wall-clock time.  A node
harvests auto-labelled images as subjects cross its view (Poisson per
day), stores them on flash, and trains the student whenever the payload
CPU is idle.  Student quality follows a saturating learning curve in the
harvested-set size; the campaign ends when the target accuracy is
reached.  "The training of the student model is not time critical, it
can be scheduled to run only when the node's CPU does not have a higher
priority task" — this simulator quantifies what that policy costs in
calendar time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import PlanningError
from .device import Device
from .simulator import DutyCycleSimulator, estimate_epoch
from .storage import ImageStore
from .workload import TrainingWorkload

__all__ = ["LearningCurve", "CampaignConfig", "CampaignDay", "CampaignResult", "run_campaign"]


@dataclass(frozen=True)
class LearningCurve:
    """Accuracy as a saturating function of training-set size.

    ``acc(n) = ceiling − (ceiling − floor) · exp(−n / scale)`` — the
    standard data-scaling ansatz; parameters are per-deployment.
    """

    floor: float = 0.35
    ceiling: float = 0.97
    scale: float = 2_000.0

    def __post_init__(self) -> None:
        if not 0 <= self.floor < self.ceiling <= 1:
            raise PlanningError("need 0 <= floor < ceiling <= 1")
        if self.scale <= 0:
            raise PlanningError("scale must be positive")

    def accuracy(self, n_images):
        """Accuracy after ``n_images`` — scalar in, scalar out; array in,
        array out.

        The scalar path is the historical one (``math.exp``) and is kept
        bit-for-bit unchanged; the ndarray path evaluates the same
        closed form with ``np.exp`` so a whole fleet's accuracies cost
        one vectorized expression instead of a per-node Python loop.
        The two may differ in the last ulp (libm vs SIMD exp), which is
        why both fleet engines use the *array* path throughout.
        """
        if isinstance(n_images, np.ndarray):
            if n_images.size and float(n_images.min()) < 0:
                raise ValueError("image count must be non-negative")
            return self.ceiling - (self.ceiling - self.floor) * np.exp(-n_images / self.scale)
        if n_images < 0:
            raise ValueError("image count must be non-negative")
        return self.ceiling - (self.ceiling - self.floor) * math.exp(-n_images / self.scale)

    def images_for(self, target: float) -> int:
        """Smallest n with accuracy(n) >= target (inverse of the curve)."""
        if not self.floor <= target < self.ceiling:
            raise PlanningError(
                f"target {target} outside achievable range "
                f"[{self.floor}, {self.ceiling})"
            )
        return max(0, math.ceil(-self.scale * math.log((self.ceiling - target) / (self.ceiling - self.floor))))


@dataclass(frozen=True)
class CampaignConfig:
    """One deployment's parameters."""

    workload: TrainingWorkload  # per-epoch training cost descriptor
    target_accuracy: float = 0.9
    crossings_per_day: float = 60.0
    images_per_crossing: float = 18.0
    labelled_fraction: float = 0.9  # tracks that clear the confidence gate
    curve: LearningCurve = field(default_factory=LearningCurve)
    epochs_per_session: int = 1
    max_days: int = 365
    seed: int = 0


@dataclass(frozen=True)
class CampaignDay:
    """One simulated day."""

    day: int
    harvested_total: int
    accuracy: float
    train_compute_s: float
    train_wall_s: float


@dataclass(frozen=True)
class CampaignResult:
    """Full campaign trace plus the headline outcomes."""

    days: tuple[CampaignDay, ...]
    reached_target: bool
    target_day: int | None
    storage_bytes: int
    storage_ok: bool

    @property
    def final_accuracy(self) -> float:
        return self.days[-1].accuracy if self.days else 0.0

    @property
    def total_train_hours(self) -> float:
        return sum(d.train_wall_s for d in self.days) / 3600.0


def run_campaign(cfg: CampaignConfig, device: Device) -> CampaignResult:
    """Simulate day-by-day harvesting + idle-time training.

    Raises :class:`~repro.errors.MemoryBudgetError` if the workload can
    never fit the device even fully checkpointed.
    """
    rng = np.random.default_rng(cfg.seed)
    duty = DutyCycleSimulator(
        rng,
        arrival_rate_per_hour=(1.0 - device.idle_fraction) / device.idle_fraction * 12.0,
        mean_task_seconds=300.0,
    )
    store = ImageStore(capacity_bytes=device.storage_bytes)

    harvested = 0
    days: list[CampaignDay] = []
    target_day: int | None = None
    for day in range(1, cfg.max_days + 1):
        crossings = rng.poisson(cfg.crossings_per_day)
        labelled = rng.binomial(crossings, cfg.labelled_fraction) if crossings else 0
        harvested += int(round(labelled * cfg.images_per_crossing))
        harvested = min(harvested, store.max_images)  # flash-bounded

        # Train on the accumulated set during idle windows.
        workload = TrainingWorkload(
            model=cfg.workload.model,
            chain_length=cfg.workload.chain_length,
            slot_act_bytes_per_sample=cfg.workload.slot_act_bytes_per_sample,
            fixed_bytes=cfg.workload.fixed_bytes,
            flops_per_sample=cfg.workload.flops_per_sample,
            n_images=max(1, harvested),
            epochs=cfg.epochs_per_session,
            batch_size=cfg.workload.batch_size,
            bwd_ratio=cfg.workload.bwd_ratio,
        )
        est = estimate_epoch(workload, device)  # raises MemoryBudgetError if hopeless
        compute_s = est.epoch_seconds * cfg.epochs_per_session
        wall = duty.run(compute_s)

        acc = cfg.curve.accuracy(harvested)
        days.append(
            CampaignDay(
                day=day,
                harvested_total=harvested,
                accuracy=acc,
                train_compute_s=compute_s,
                train_wall_s=wall.wall_seconds,
            )
        )
        if acc >= cfg.target_accuracy and target_day is None:
            target_day = day
            break

    return CampaignResult(
        days=tuple(days),
        reached_target=target_day is not None,
        target_day=target_day,
        storage_bytes=store.dataset_bytes(harvested),
        storage_ok=store.fits(harvested),
    )
