"""Fleet simulation: many nodes, with or without model exchange.

Section I argues that "transferring a model update back and forth
between the different nodes might introduce excessive communication" —
and Section III that viewpoint-specialized models may not even *benefit*
other nodes.  This simulator quantifies both sides for a fleet of
Array-of-Things nodes:

* **isolated** — each node adapts only on its own harvest (the paper's
  recommendation for viewpoint-specific learning);
* **federated** — nodes periodically average their knowledge, modelled
  through the learning curve: sharing transfers only the
  *viewpoint-generic* fraction of another node's examples
  (``transfer_value``), at a per-round radio cost of one model upload +
  download per node.

The result reports fleet accuracy trajectories and total radio bytes, so
the communication/benefit trade-off the paper gestures at becomes a
number.

Nodes are not assumed immortal: with a nonzero ``crash_rate_per_day``
each node can crash (power loss, SD corruption), losing every example
harvested since its last durable snapshot
(``snapshot_period_days``, the fleet-level analogue of the
:mod:`repro.resilience` snapshot policies), then sit out a sampled
outage before rejoining.  The result then reports per-node crash
counts, lost work and downtime instead of assuming full availability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PlanningError
from ..obs import get_metrics, get_tracer
from .campaign import LearningCurve

__all__ = [
    "FleetConfig",
    "FleetDay",
    "FleetResult",
    "quantize_effective",
    "simulate_fleet",
]


def quantize_effective(effective: np.ndarray) -> np.ndarray:
    """The one quantization rule for effective sample counts.

    Effective samples (own harvest + federation-borrowed fraction) are
    fractional; the learning curve is defined on whole images.  Both
    fleet engines — this legacy loop and :mod:`repro.megafleet` — floor
    them through this single function before pricing accuracy, so the
    day-by-day trajectory and the final accuracies cannot quantize
    differently.  ``np.floor`` is identical to the historical
    ``int(e)`` truncation for the non-negative values that arise here,
    but is defined once and vectorized.
    """
    return np.floor(effective)


@dataclass(frozen=True)
class FleetConfig:
    """Fleet parameters."""

    n_nodes: int = 10
    days: int = 30
    crossings_per_day_mean: float = 60.0
    images_per_crossing: float = 18.0
    #: heterogeneity: per-node traffic is Gamma-distributed with this shape
    traffic_shape: float = 2.0
    curve: LearningCurve = field(default_factory=LearningCurve)
    #: fraction of a peer's examples that transfer across viewpoints
    transfer_value: float = 0.15
    #: days between federation rounds (0 = isolated)
    federation_period: int = 0
    model_bytes: int = 50_000_000
    #: per-node daily crash probability (0 = the happy path)
    crash_rate_per_day: float = 0.0
    #: days between durable on-node snapshots; a crash loses every
    #: example harvested since the last one
    snapshot_period_days: int = 1
    #: mean extra days a crashed node stays down before rejoining
    #: (geometric; the crash day itself is always lost)
    outage_days_mean: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.days < 1:
            raise PlanningError("need n_nodes >= 1 and days >= 1")
        if not 0.0 <= self.transfer_value <= 1.0:
            raise PlanningError("transfer_value must be in [0, 1]")
        if self.federation_period < 0:
            raise PlanningError("federation_period must be >= 0")
        if not 0.0 <= self.crash_rate_per_day < 1.0:
            raise PlanningError("crash_rate_per_day must be in [0, 1)")
        if self.snapshot_period_days < 1:
            raise PlanningError("snapshot_period_days must be >= 1")
        if self.outage_days_mean < 0:
            raise PlanningError("outage_days_mean must be >= 0")


@dataclass(frozen=True)
class FleetDay:
    """Fleet-level snapshot."""

    day: int
    mean_accuracy: float
    min_accuracy: float
    radio_bytes_total: int
    #: nodes that harvested today (not mid-outage)
    nodes_up: int = -1


@dataclass(frozen=True)
class FleetResult:
    """Trajectories plus totals (and, under faults, the damage report)."""

    days: tuple[FleetDay, ...]
    final_accuracies: tuple[float, ...]
    radio_bytes_total: int
    #: per-node crash counts over the campaign
    crashes: tuple[int, ...] = ()
    #: per-node examples lost to un-snapshotted work
    lost_samples: tuple[float, ...] = ()
    #: per-node days spent down (crash day + outage) before rejoining
    downtime_days: tuple[int, ...] = ()

    @property
    def mean_final_accuracy(self) -> float:
        return float(np.mean(self.final_accuracies))

    @property
    def worst_final_accuracy(self) -> float:
        return float(np.min(self.final_accuracies))

    @property
    def total_crashes(self) -> int:
        return int(sum(self.crashes))

    @property
    def total_lost_samples(self) -> float:
        return float(sum(self.lost_samples))

    def day_reaching(self, target: float) -> int | None:
        """First day the fleet *minimum* accuracy clears ``target``."""
        for d in self.days:
            if d.min_accuracy >= target:
                return d.day
        return None


def simulate_fleet(cfg: FleetConfig) -> FleetResult:
    """Run the fleet; accuracy follows each node's effective sample count.

    A node's effective samples = its own harvest + ``transfer_value`` ×
    the mean *other-node* harvest shared at federation rounds.  Radio
    cost per round = 2 × model_bytes × n_nodes (upload + download).

    With ``crash_rate_per_day > 0`` nodes fail: a crashed node rolls its
    harvest back to the last durable snapshot (taken every
    ``snapshot_period_days``), emits a ``fault``-category trace event,
    sits out a geometric outage, then rejoins.  The happy path
    (``crash_rate_per_day == 0``) draws exactly the same random stream
    as before faults existed, so seeded results are unchanged.
    """
    rng = np.random.default_rng(cfg.seed)
    tracer = get_tracer()
    # Per-node mean traffic: Gamma-heterogeneous around the fleet mean.
    scale = cfg.crossings_per_day_mean / cfg.traffic_shape
    node_rates = rng.gamma(cfg.traffic_shape, scale, size=cfg.n_nodes)
    own = np.zeros(cfg.n_nodes)
    borrowed = np.zeros(cfg.n_nodes)
    snapshotted = np.zeros(cfg.n_nodes)  # harvest as of the last durable write
    down_until = np.zeros(cfg.n_nodes, dtype=np.int64)  # first day back up
    crashes = np.zeros(cfg.n_nodes, dtype=np.int64)
    lost = np.zeros(cfg.n_nodes)
    downtime = np.zeros(cfg.n_nodes, dtype=np.int64)
    radio = 0
    rounds = 0
    days: list[FleetDay] = []
    with tracer.span(
        "fleet",
        category="campaign",
        n_nodes=cfg.n_nodes,
        days=cfg.days,
        federation_period=cfg.federation_period,
        crash_rate_per_day=cfg.crash_rate_per_day,
    ) as span:
        for day in range(1, cfg.days + 1):
            up = down_until <= day
            crossings = rng.poisson(node_rates)
            own += np.where(up, crossings * cfg.images_per_crossing, 0.0)
            if cfg.crash_rate_per_day:
                up_idx = np.flatnonzero(up)
                struck = up_idx[rng.random(up_idx.size) < cfg.crash_rate_per_day]
                for i in struck:
                    lost_now = own[i] - snapshotted[i]
                    lost[i] += lost_now
                    own[i] = snapshotted[i]
                    crashes[i] += 1
                    if cfg.outage_days_mean > 0:
                        outage = int(rng.geometric(min(1.0, 1.0 / cfg.outage_days_mean)))
                    else:
                        outage = 0
                    down_until[i] = day + 1 + outage
                    downtime[i] += outage
                    if tracer.enabled:
                        tracer.event(
                            "node_crash",
                            category="fault",
                            day=day,
                            node=int(i),
                            lost_samples=float(lost_now),
                            rejoin_day=int(down_until[i]),
                        )
                if struck.size:
                    up = down_until <= day
                # Durable snapshot day: surviving nodes persist their harvest.
                if day % cfg.snapshot_period_days == 0:
                    snapshotted[up] = own[up]
            if cfg.federation_period and day % cfg.federation_period == 0:
                total = own.sum()
                for i in range(cfg.n_nodes):
                    others_mean = (total - own[i]) / max(1, cfg.n_nodes - 1)
                    borrowed[i] = cfg.transfer_value * others_mean
                radio += 2 * cfg.model_bytes * cfg.n_nodes
                rounds += 1
                if tracer.enabled:
                    tracer.event(
                        "federation_round",
                        category="campaign",
                        day=day,
                        radio_bytes_total=radio,
                    )
            accs = cfg.curve.accuracy(quantize_effective(own + borrowed))
            days.append(
                FleetDay(
                    day=day,
                    mean_accuracy=float(accs.mean()),
                    min_accuracy=float(accs.min()),
                    radio_bytes_total=radio,
                    nodes_up=int(up.sum()),
                )
            )
        final = cfg.curve.accuracy(quantize_effective(own + borrowed))
        span.set_tag("radio_bytes_total", radio)
        span.set_tag("mean_final_accuracy", float(final.mean()))
        span.set_tag("crashes_total", int(crashes.sum()))
    m = get_metrics()
    m.counter("fleet.federation_rounds").inc(rounds)
    m.gauge("fleet.radio_bytes_total").set(radio)
    m.gauge("fleet.mean_final_accuracy").set(float(final.mean()))
    m.counter("fleet.crashes").inc(int(crashes.sum()))
    m.gauge("fleet.lost_samples_total").set(float(lost.sum()))
    return FleetResult(
        days=tuple(days),
        final_accuracies=tuple(float(a) for a in final),
        radio_bytes_total=radio,
        crashes=tuple(int(c) for c in crashes),
        lost_samples=tuple(float(x) for x in lost),
        downtime_days=tuple(int(d) for d in downtime),
    )
