"""Fleet simulation: many nodes, with or without model exchange.

Section I argues that "transferring a model update back and forth
between the different nodes might introduce excessive communication" —
and Section III that viewpoint-specialized models may not even *benefit*
other nodes.  This simulator quantifies both sides for a fleet of
Array-of-Things nodes:

* **isolated** — each node adapts only on its own harvest (the paper's
  recommendation for viewpoint-specific learning);
* **federated** — nodes periodically average their knowledge, modelled
  through the learning curve: sharing transfers only the
  *viewpoint-generic* fraction of another node's examples
  (``transfer_value``), at a per-round radio cost of one model upload +
  download per node.

The result reports fleet accuracy trajectories and total radio bytes, so
the communication/benefit trade-off the paper gestures at becomes a
number.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PlanningError
from ..obs import get_metrics, get_tracer
from .campaign import LearningCurve

__all__ = ["FleetConfig", "FleetDay", "FleetResult", "simulate_fleet"]


@dataclass(frozen=True)
class FleetConfig:
    """Fleet parameters."""

    n_nodes: int = 10
    days: int = 30
    crossings_per_day_mean: float = 60.0
    images_per_crossing: float = 18.0
    #: heterogeneity: per-node traffic is Gamma-distributed with this shape
    traffic_shape: float = 2.0
    curve: LearningCurve = field(default_factory=LearningCurve)
    #: fraction of a peer's examples that transfer across viewpoints
    transfer_value: float = 0.15
    #: days between federation rounds (0 = isolated)
    federation_period: int = 0
    model_bytes: int = 50_000_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.days < 1:
            raise PlanningError("need n_nodes >= 1 and days >= 1")
        if not 0.0 <= self.transfer_value <= 1.0:
            raise PlanningError("transfer_value must be in [0, 1]")
        if self.federation_period < 0:
            raise PlanningError("federation_period must be >= 0")


@dataclass(frozen=True)
class FleetDay:
    """Fleet-level snapshot."""

    day: int
    mean_accuracy: float
    min_accuracy: float
    radio_bytes_total: int


@dataclass(frozen=True)
class FleetResult:
    """Trajectories plus totals."""

    days: tuple[FleetDay, ...]
    final_accuracies: tuple[float, ...]
    radio_bytes_total: int

    @property
    def mean_final_accuracy(self) -> float:
        return float(np.mean(self.final_accuracies))

    @property
    def worst_final_accuracy(self) -> float:
        return float(np.min(self.final_accuracies))

    def day_reaching(self, target: float) -> int | None:
        """First day the fleet *minimum* accuracy clears ``target``."""
        for d in self.days:
            if d.min_accuracy >= target:
                return d.day
        return None


def simulate_fleet(cfg: FleetConfig) -> FleetResult:
    """Run the fleet; accuracy follows each node's effective sample count.

    A node's effective samples = its own harvest + ``transfer_value`` ×
    the mean *other-node* harvest shared at federation rounds.  Radio
    cost per round = 2 × model_bytes × n_nodes (upload + download).
    """
    rng = np.random.default_rng(cfg.seed)
    tracer = get_tracer()
    # Per-node mean traffic: Gamma-heterogeneous around the fleet mean.
    scale = cfg.crossings_per_day_mean / cfg.traffic_shape
    node_rates = rng.gamma(cfg.traffic_shape, scale, size=cfg.n_nodes)
    own = np.zeros(cfg.n_nodes)
    borrowed = np.zeros(cfg.n_nodes)
    radio = 0
    rounds = 0
    days: list[FleetDay] = []
    with tracer.span(
        "fleet",
        category="campaign",
        n_nodes=cfg.n_nodes,
        days=cfg.days,
        federation_period=cfg.federation_period,
    ) as span:
        for day in range(1, cfg.days + 1):
            crossings = rng.poisson(node_rates)
            own += crossings * cfg.images_per_crossing
            if cfg.federation_period and day % cfg.federation_period == 0:
                total = own.sum()
                for i in range(cfg.n_nodes):
                    others_mean = (total - own[i]) / max(1, cfg.n_nodes - 1)
                    borrowed[i] = cfg.transfer_value * others_mean
                radio += 2 * cfg.model_bytes * cfg.n_nodes
                rounds += 1
                if tracer.enabled:
                    tracer.event(
                        "federation_round",
                        category="campaign",
                        day=day,
                        radio_bytes_total=radio,
                    )
            effective = own + borrowed
            accs = np.array([cfg.curve.accuracy(int(e)) for e in effective])
            days.append(
                FleetDay(
                    day=day,
                    mean_accuracy=float(accs.mean()),
                    min_accuracy=float(accs.min()),
                    radio_bytes_total=radio,
                )
            )
        final = np.array([cfg.curve.accuracy(int(e)) for e in own + borrowed])
        span.set_tag("radio_bytes_total", radio)
        span.set_tag("mean_final_accuracy", float(final.mean()))
    m = get_metrics()
    m.counter("fleet.federation_rounds").inc(rounds)
    m.gauge("fleet.radio_bytes_total").set(radio)
    m.gauge("fleet.mean_final_accuracy").set(float(final.mean()))
    return FleetResult(
        days=tuple(days),
        final_accuracies=tuple(float(a) for a in final),
        radio_bytes_total=radio,
    )
