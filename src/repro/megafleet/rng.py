"""Counter-based, device-keyed random streams for the megafleet engine.

A 10^6-device simulation cannot afford one :class:`numpy.random.Generator`
per device, and a single sequential stream would make every outcome
depend on the order devices happen to be processed in — which is exactly
what sharding changes.  Instead, every draw here is a *pure function* of

    (fleet seed, stream tag, device key, per-device counter)

hashed through splitmix64's finalizer on ``uint64`` arrays.  A device's
key is derived from its cohort's name and its ordinal *within* that
cohort, never from its global position, so:

* sharding the device range differently cannot change any draw;
* reordering cohorts in the config cannot change any draw;
* device ``k``'s third outage is the same number whether it is computed
  on day 5 or day 500, serially or on worker 7.

Distributions are inverted from the uniforms in closed form (geometric
and exponential inversion, Erlang as a sum of exponentials), so no
stateful generator is ever consulted during the simulation proper.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "TAG_CRASH",
    "TAG_OUTAGE",
    "TAG_RATE",
    "device_keys",
    "erlang",
    "geometric",
    "uniforms",
]

_U64 = np.uint64
_GOLDEN = _U64(0x9E3779B97F4A7C15)
_MIX1 = _U64(0xBF58476D1CE4E5B9)
_MIX2 = _U64(0x94D049BB133111EB)
_INV_2_53 = float(2.0**-53)

#: stream tags — distinct draws a device makes must use distinct tags.
TAG_RATE = _U64(0xA11CE)
TAG_CRASH = _U64(0xC7A54)
TAG_OUTAGE = _U64(0x0D0A6E)


def _finalize(z: np.ndarray) -> np.ndarray:
    """splitmix64 output function on uint64 arrays (wrapping arithmetic)."""
    with np.errstate(over="ignore"):  # modular arithmetic is the point
        z = (z ^ (z >> _U64(30))) * _MIX1
        z = (z ^ (z >> _U64(27))) * _MIX2
        return z ^ (z >> _U64(31))


def _chain(h, k) -> np.ndarray:
    """Fold one more key component into a hash state (broadcasts)."""
    h = np.asarray(h, dtype=_U64)
    k = np.asarray(k, dtype=_U64)
    with np.errstate(over="ignore"):
        return _finalize((h + _GOLDEN) ^ (k * _MIX1 + _GOLDEN))


def device_keys(seed: int, cohort_name: str, n: int, *, start: int = 0) -> np.ndarray:
    """Stable identity keys for cohort devices ``start .. start + n - 1``.

    Keyed by ``(seed, sha256(cohort name), ordinal in cohort)`` — global
    device position never enters, which is what makes aggregate results
    invariant under cohort reordering and shard layout.  A shard asks
    for just its ordinal range and gets the same keys a whole-cohort
    call would have produced at those positions.
    """
    name_bits = int.from_bytes(
        hashlib.sha256(cohort_name.encode("utf-8")).digest()[:8], "big"
    )
    ordinals = np.arange(start, start + n, dtype=_U64)
    return _chain(_chain(_U64(seed & 0xFFFFFFFFFFFFFFFF), _U64(name_bits)), ordinals)


def uniforms(keys: np.ndarray, tag: np.uint64, counter) -> np.ndarray:
    """Uniform [0, 1) floats for ``(key, tag, counter)`` triples.

    ``counter`` broadcasts against ``keys`` (scalar day, or one
    per-device counter array such as the crash index).
    """
    bits = _chain(_chain(keys, tag), counter)
    return (bits >> _U64(11)).astype(np.float64) * _INV_2_53


def geometric(u: np.ndarray, p) -> np.ndarray:
    """Geometric (support 1, 2, ...) by inversion of uniforms ``u``.

    Matches ``numpy``'s parameterization: number of Bernoulli(p) trials
    up to and including the first success.  ``p`` broadcasts; entries
    with ``p >= 1`` are exactly 1, entries with ``p <= 0`` come back as
    0 (callers mask those — "never happens").
    """
    u = np.asarray(u, dtype=np.float64)
    p = np.asarray(p, dtype=np.float64)
    out = np.zeros(np.broadcast(u, p).shape, dtype=np.int64)
    sure = p >= 1.0
    live = (p > 0.0) & ~sure
    out[sure] = 1
    if np.any(live):
        u_l, p_l = np.broadcast_to(u, out.shape)[live], np.broadcast_to(p, out.shape)[live]
        out[live] = 1 + np.floor(np.log1p(-u_l) / np.log1p(-p_l)).astype(np.int64)
    return out


def erlang(keys: np.ndarray, tag: np.uint64, shape: int, scale) -> np.ndarray:
    """Erlang(shape, scale) draws — a Gamma with integer shape.

    The sum of ``shape`` exponentials, each inverted from its own
    counter-keyed uniform, so the draw stays a pure function of the
    device key.  This is how per-device traffic rates get their
    Gamma-style heterogeneity without a stateful generator.
    """
    if shape < 1:
        raise ValueError("erlang shape must be a positive integer")
    total = np.zeros(keys.shape, dtype=np.float64)
    for j in range(shape):
        total -= np.log1p(-uniforms(keys, tag, _U64(j)))
    return total * np.asarray(scale, dtype=np.float64)
