"""Vectorized legacy fleet: same RNG stream, no Python inner loops.

:func:`simulate_fleet_vectorized` consumes a plain
:class:`~repro.edge.fleet.FleetConfig` and reproduces
:func:`~repro.edge.fleet.simulate_fleet` *exactly* — same seeded
``default_rng`` stream, same per-day state updates, same
:class:`~repro.edge.fleet.FleetResult` down to the last bit — while
replacing the per-crash Python loop and per-node federation loop with
array expressions.  The golden test pins the two engines device-for-
device; this module is both the bridge that proves the megafleet
machinery against the legacy semantics and the "vectorized" row of the
``bench_fleet`` throughput comparison.

Stream-exactness notes (verified empirically, relied on below):

* ``rng.geometric(p, size=k)`` consumes the stream identically to ``k``
  sequential scalar ``rng.geometric(p)`` calls, so the legacy per-struck
  outage loop can be one batched draw;
* elementwise float arithmetic (``own[struck] - snapshotted[struck]``,
  the federation ``(total - own) / (n - 1)`` repricing) is bitwise equal
  to the legacy per-index scalar arithmetic;
* both engines price accuracy through the shared ndarray
  :meth:`~repro.edge.campaign.LearningCurve.accuracy` path, because
  ``np.exp`` and ``math.exp`` may differ in the last ulp.
"""

from __future__ import annotations

import numpy as np

from ..edge.fleet import FleetConfig, FleetDay, FleetResult, quantize_effective

__all__ = ["simulate_fleet_vectorized"]


def simulate_fleet_vectorized(cfg: FleetConfig) -> FleetResult:
    """Bit-exact vectorized replay of the legacy fleet simulation."""
    rng = np.random.default_rng(cfg.seed)
    n = cfg.n_nodes
    scale = cfg.crossings_per_day_mean / cfg.traffic_shape
    node_rates = rng.gamma(cfg.traffic_shape, scale, size=n)
    own = np.zeros(n)
    borrowed = np.zeros(n)
    snapshotted = np.zeros(n)
    down_until = np.zeros(n, dtype=np.int64)
    crashes = np.zeros(n, dtype=np.int64)
    lost = np.zeros(n)
    downtime = np.zeros(n, dtype=np.int64)
    radio = 0
    days: list[FleetDay] = []
    for day in range(1, cfg.days + 1):
        up = down_until <= day
        crossings = rng.poisson(node_rates)
        own += np.where(up, crossings * cfg.images_per_crossing, 0.0)
        if cfg.crash_rate_per_day:
            up_idx = np.flatnonzero(up)
            struck = up_idx[rng.random(up_idx.size) < cfg.crash_rate_per_day]
            if struck.size:
                lost[struck] += own[struck] - snapshotted[struck]
                own[struck] = snapshotted[struck]
                crashes[struck] += 1
                if cfg.outage_days_mean > 0:
                    # One batched draw == the legacy per-node scalar loop.
                    outages = rng.geometric(
                        min(1.0, 1.0 / cfg.outage_days_mean), size=struck.size
                    ).astype(np.int64)
                else:
                    outages = np.zeros(struck.size, dtype=np.int64)
                down_until[struck] = day + 1 + outages
                downtime[struck] += outages
                up = down_until <= day
            if day % cfg.snapshot_period_days == 0:
                snapshotted[up] = own[up]
        if cfg.federation_period and day % cfg.federation_period == 0:
            total = own.sum()
            borrowed = cfg.transfer_value * (total - own) / max(1, n - 1)
            radio += 2 * cfg.model_bytes * n
        accs = cfg.curve.accuracy(quantize_effective(own + borrowed))
        days.append(
            FleetDay(
                day=day,
                mean_accuracy=float(accs.mean()),
                min_accuracy=float(accs.min()),
                radio_bytes_total=radio,
                nodes_up=int(up.sum()),
            )
        )
    final = cfg.curve.accuracy(quantize_effective(own + borrowed))
    return FleetResult(
        days=tuple(days),
        final_accuracies=tuple(float(a) for a in final),
        radio_bytes_total=radio,
        crashes=tuple(int(c) for c in crashes),
        lost_samples=tuple(float(x) for x in lost),
        downtime_days=tuple(int(d) for d in downtime),
    )
