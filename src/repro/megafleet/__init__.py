"""Vectorized, event-driven simulation of 10^6+ heterogeneous devices.

The paper frames edge training as a *fleet* problem — Array-of-Things
nodes with duty cycles, crash/rejoin dynamics and communication budgets
— and the ROADMAP's north star is "millions of users".  The legacy
:func:`~repro.edge.fleet.simulate_fleet` walks every node every day in
Python; this package scales the same model up three ways:

* :mod:`~repro.megafleet.compat` — the legacy engine vectorized with an
  *identical* RNG stream (golden-tested bit-exact), for apples-to-
  apples validation and benchmarking;
* :mod:`~repro.megafleet.engine` — the native engine: struct-of-arrays
  state, closed-form harvest accrual between events, a day-bucketed
  event heap (quiet days are free), heterogeneous
  :class:`~repro.megafleet.config.DeviceCohort` mixes, and
  deterministic process sharding through the lab pool;
* :mod:`~repro.megafleet.rng` — counter-based per-device random
  streams, the reason shard layout and job count cannot change a single
  simulated outcome.

See ``docs/megafleet.md`` for the architecture and the determinism
contract.
"""

from .compat import simulate_fleet_vectorized
from .config import (
    DeviceCohort,
    MegaFleetConfig,
    STORAGE_PROFILES,
    model_bytes,
    preset_config,
)
from .engine import (
    BLOCK,
    CohortStats,
    MegaFleetDay,
    MegaFleetResult,
    run_megafleet,
    shard_tasks,
)
from .events import CRASH, FEDERATION, REPORT, DayEventQueue

__all__ = [
    "BLOCK",
    "CRASH",
    "FEDERATION",
    "REPORT",
    "CohortStats",
    "DayEventQueue",
    "DeviceCohort",
    "MegaFleetConfig",
    "MegaFleetDay",
    "MegaFleetResult",
    "STORAGE_PROFILES",
    "model_bytes",
    "preset_config",
    "run_megafleet",
    "shard_tasks",
    "simulate_fleet_vectorized",
]
