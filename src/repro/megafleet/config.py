"""Heterogeneous fleet description: cohorts of devices, not one scalar.

perf4sight's core observation (PAPERS.md) is that edge fleets are not
homogeneous — model, storage medium, duty cycle and failure regime all
vary by hardware generation and deployment site.  A
:class:`DeviceCohort` captures one such slice (e.g. "40% of the fleet
are Pi-3-class nodes on SD cards with a 45-day MTBF, training
ResNet-34"), and a :class:`MegaFleetConfig` is an ordered tuple of
cohorts plus the fleet-wide campaign knobs (horizon, learning curve,
federation policy, seed).

Cohort *names* are load-bearing: the counter-based RNG keys every
device by ``(seed, cohort name, ordinal in cohort)``, so names must be
unique and renaming a cohort reseeds it.  Reordering cohorts does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PlanningError
from ..edge.campaign import LearningCurve
from ..edge.storage import EMMC, SD_CARD, StorageProfile

__all__ = [
    "DeviceCohort",
    "MegaFleetConfig",
    "STORAGE_PROFILES",
    "model_bytes",
    "preset_config",
]

#: storage media a cohort can snapshot to, by profile name
STORAGE_PROFILES: dict[str, StorageProfile] = {
    SD_CARD.name: SD_CARD,
    EMMC.name: EMMC,
}

#: ResNet-zoo depths a cohort can train (federation payload sizing)
MODEL_DEPTHS = (18, 34, 50, 101, 152)

_MODEL_BYTES_CACHE: dict[int, int] = {}


def model_bytes(depth: int) -> int:
    """Federated-model payload bytes for one ResNet-zoo depth.

    fp32 trainable parameters of the real zoo graph (built once per
    depth and cached) — the same model the memory/checkpointing stack
    reasons about, so radio accounting and Table-I sizing agree.
    """
    if depth not in MODEL_DEPTHS:
        raise PlanningError(f"model depth {depth} not in zoo {MODEL_DEPTHS}")
    cached = _MODEL_BYTES_CACHE.get(depth)
    if cached is None:
        from ..zoo import build_resnet

        cached = _MODEL_BYTES_CACHE[depth] = int(
            build_resnet(depth, image_size=64).trainable_bytes
        )
    return cached


@dataclass(frozen=True)
class DeviceCohort:
    """One homogeneous slice of the fleet."""

    name: str
    count: int
    #: ResNet-zoo depth this cohort trains (federation payload size)
    model_depth: int = 34
    #: snapshot medium, by :data:`STORAGE_PROFILES` name
    storage: str = "sd-card"
    crossings_per_day_mean: float = 60.0
    images_per_crossing: float = 18.0
    #: Erlang shape of per-device traffic heterogeneity (integer Gamma)
    traffic_shape: int = 2
    #: fraction of each day the node is powered and harvesting
    duty_cycle: float = 1.0
    #: mean days between crashes per device; 0 = never crashes
    mtbf_days: float = 0.0
    #: days between durable on-device snapshots
    snapshot_period_days: int = 1
    #: mean extra down days after a crash (geometric, as in the legacy
    #: fleet: the rejoin probability each day is min(1, 1/mean))
    outage_days_mean: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise PlanningError("cohort needs a name (it seeds the RNG)")
        if self.count < 1:
            raise PlanningError(f"cohort {self.name!r}: count must be >= 1")
        if self.model_depth not in MODEL_DEPTHS:
            raise PlanningError(
                f"cohort {self.name!r}: model depth {self.model_depth} "
                f"not in zoo {MODEL_DEPTHS}"
            )
        if self.storage not in STORAGE_PROFILES:
            raise PlanningError(
                f"cohort {self.name!r}: unknown storage {self.storage!r} "
                f"(have: {sorted(STORAGE_PROFILES)})"
            )
        if self.crossings_per_day_mean <= 0 or self.images_per_crossing <= 0:
            raise PlanningError(f"cohort {self.name!r}: traffic rates must be positive")
        if self.traffic_shape < 1:
            raise PlanningError(f"cohort {self.name!r}: traffic_shape must be >= 1")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise PlanningError(f"cohort {self.name!r}: duty_cycle must be in (0, 1]")
        if self.mtbf_days < 0:
            raise PlanningError(f"cohort {self.name!r}: mtbf_days must be >= 0")
        if self.snapshot_period_days < 1:
            raise PlanningError(f"cohort {self.name!r}: snapshot_period_days must be >= 1")
        if self.outage_days_mean < 0:
            raise PlanningError(f"cohort {self.name!r}: outage_days_mean must be >= 0")

    @property
    def storage_profile(self) -> StorageProfile:
        return STORAGE_PROFILES[self.storage]

    @property
    def model_bytes(self) -> int:
        return model_bytes(self.model_depth)


@dataclass(frozen=True)
class MegaFleetConfig:
    """Fleet-wide campaign parameters over an ordered set of cohorts."""

    cohorts: tuple[DeviceCohort, ...]
    days: int = 30
    curve: LearningCurve = field(default_factory=LearningCurve)
    #: fraction of a peer's examples that transfer across viewpoints
    transfer_value: float = 0.15
    #: days between federation rounds (0 = isolated)
    federation_period: int = 0
    #: trajectory sampling stride in days (0 = final day only); the
    #: final day is always reported
    report_every: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.cohorts:
            raise PlanningError("need at least one cohort")
        names = [c.name for c in self.cohorts]
        if len(set(names)) != len(names):
            raise PlanningError(f"cohort names must be unique, got {names}")
        if self.days < 1:
            raise PlanningError("days must be >= 1")
        if not 0.0 <= self.transfer_value <= 1.0:
            raise PlanningError("transfer_value must be in [0, 1]")
        if self.federation_period < 0:
            raise PlanningError("federation_period must be >= 0")
        if self.report_every < 0:
            raise PlanningError("report_every must be >= 0")

    @property
    def n_devices(self) -> int:
        return sum(c.count for c in self.cohorts)

    def report_days(self) -> tuple[int, ...]:
        """Days on which aggregate trajectory samples are taken."""
        days = set(range(self.report_every, self.days + 1, self.report_every)) if self.report_every else set()
        days.add(self.days)
        return tuple(sorted(days))

    def federation_days(self) -> tuple[int, ...]:
        if not self.federation_period:
            return ()
        return tuple(range(self.federation_period, self.days + 1, self.federation_period))


def _mixed_cohorts(devices: int) -> tuple[DeviceCohort, ...]:
    """The heterogeneous reference fleet: four hardware generations."""
    shares = (
        # (name, share, depth, storage, crossings, duty, mtbf, snap, outage)
        ("pi3-sd", 0.40, 34, "sd-card", 40.0, 0.60, 45.0, 2, 1.5),
        ("pi4-sd", 0.30, 34, "sd-card", 60.0, 0.80, 90.0, 1, 1.0),
        ("xu4-emmc", 0.20, 101, "emmc", 80.0, 0.90, 120.0, 1, 0.5),
        ("jetson-emmc", 0.10, 152, "emmc", 120.0, 1.00, 180.0, 1, 0.5),
    )
    counts = [max(1, int(devices * share)) for _, share, *_ in shares]
    counts[0] += devices - sum(counts)  # remainder (±rounding) to the largest cohort
    if counts[0] < 1:
        raise PlanningError(f"mixed preset needs >= {len(shares)} devices, got {devices}")
    return tuple(
        DeviceCohort(
            name=name,
            count=count,
            model_depth=depth,
            storage=storage,
            crossings_per_day_mean=crossings,
            duty_cycle=duty,
            mtbf_days=mtbf,
            snapshot_period_days=snap,
            outage_days_mean=outage,
        )
        for (name, _share, depth, storage, crossings, duty, mtbf, snap, outage), count
        in zip(shares, counts)
    )


def preset_config(
    preset: str,
    devices: int,
    *,
    days: int = 30,
    federation_period: int = 0,
    report_every: int = 1,
    seed: int = 0,
) -> MegaFleetConfig:
    """Build a :class:`MegaFleetConfig` from a named fleet shape.

    ``uniform`` is one Pi-4-class cohort with a 90-day MTBF (the closest
    analogue of the legacy :class:`~repro.edge.fleet.FleetConfig`
    defaults plus faults); ``mixed`` is the four-generation
    heterogeneous fleet.
    """
    if devices < 1:
        raise PlanningError("devices must be >= 1")
    if preset == "uniform":
        cohorts: tuple[DeviceCohort, ...] = (
            DeviceCohort(name="uniform", count=devices, mtbf_days=90.0),
        )
    elif preset == "mixed":
        cohorts = _mixed_cohorts(devices)
    else:
        raise PlanningError(f"unknown preset {preset!r} (have: mixed, uniform)")
    return MegaFleetConfig(
        cohorts=cohorts,
        days=days,
        federation_period=federation_period,
        report_every=report_every,
        seed=seed,
    )
