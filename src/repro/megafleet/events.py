"""Day-bucketed event queue: the "event-driven" half of the engine.

The legacy fleet loop touches every node every day.  At 10^6 devices
over long horizons most of that work is nothing happening — a device
with a 120-day MTBF crashes ~0.25 times in a month.  The megafleet
engine instead accrues harvest in closed form between events and only
wakes up on days where something changes state:

* ``CRASH``   — one or more devices fail (payload: their indices);
* ``FEDERATION`` — a model-averaging round reprices ``borrowed``;
* ``REPORT``  — an aggregate trajectory sample is due.

Events on the same day fire in that order, matching the legacy loop's
within-day sequence (crashes are applied before the federation round,
and stats are taken at end of day).  A quiet day never enters the heap,
so the per-day cost is O(devices touched by events), not O(n_devices).

Payloads are ndarray index batches; pushing the same (day, kind) twice
concatenates, and :meth:`DayEventQueue.pop` hands back one merged,
sorted index array per firing.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["CRASH", "FEDERATION", "REPORT", "DayEventQueue"]

#: within-day firing order (lower fires first)
CRASH = 0
FEDERATION = 1
REPORT = 2

_EMPTY = np.zeros(0, dtype=np.int64)


class DayEventQueue:
    """Min-heap of (day, kind) with ndarray payload buckets."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int]] = []
        self._buckets: dict[tuple[int, int], list[np.ndarray]] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, day: int, kind: int, payload: np.ndarray | None = None) -> None:
        """Schedule ``kind`` on ``day``; repeated pushes merge payloads."""
        slot = (int(day), int(kind))
        bucket = self._buckets.get(slot)
        if bucket is None:
            self._buckets[slot] = bucket = []
            heapq.heappush(self._heap, slot)
        if payload is not None and payload.size:
            bucket.append(payload)

    def pop(self) -> tuple[int, int, np.ndarray]:
        """Earliest (day, kind, merged sorted payload indices)."""
        slot = heapq.heappop(self._heap)
        parts = self._buckets.pop(slot)
        if not parts:
            payload = _EMPTY
        elif len(parts) == 1:
            payload = np.sort(parts[0])
        else:
            payload = np.sort(np.concatenate(parts))
        return slot[0], slot[1], payload

    def push_crashes(self, days: np.ndarray, idx: np.ndarray, horizon: int) -> None:
        """Schedule per-device crash events, dropping any past ``horizon``.

        ``days[i]`` is the crash day of device ``idx[i]``; devices whose
        next crash falls after the simulated horizon simply never fire.
        """
        live = days <= horizon
        if not np.any(live):
            return
        days, idx = days[live], idx[live]
        for day in np.unique(days):
            self.push(int(day), CRASH, idx[days == day])
