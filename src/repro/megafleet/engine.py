"""The megafleet engine: closed-form accrual between events, sharded.

Device state is struct-of-arrays per cohort shard: expected harvest
rate, the day the device last (re)joined, the harvest surviving its
last crash, and crash/lost/downtime accounting.  Between events a
device's harvest is the closed form ``base + rate * (day − up_since +
1)``, so nothing touches a device on a quiet day — the
:class:`~repro.megafleet.events.DayEventQueue` only wakes the engine on
crash, federation and report days.

Harvest here is the *expected* daily yield per device (rates stay
random across devices via the counter-based RNG; the day-to-day Poisson
jitter of the legacy engine is integrated out).  That is what makes
closed-form accrual — and therefore event-driven skipping — possible.
The legacy stream, Poisson noise and all, lives on bit-exactly in
:mod:`repro.megafleet.compat`.

Determinism contract (what makes ``--jobs 1`` == ``--jobs 2`` byte-for-
byte, for any shard size):

* every random draw is a pure function of (seed, cohort name, device
  ordinal, counter) — shard layout cannot touch it;
* float reductions are performed per cohort-relative ``BLOCK``-device
  slice (``np.add.reduceat``), shards may only cut at block
  boundaries, and the parent concatenates the block partials in global
  order before the single final ``np.sum`` — so the floating-point
  summation tree is a constant of the configuration;
* integer and min reductions are order-invariant anyway.

Federation couples devices across shards only through per-round fleet
totals, so a federated run is two passes: pass 1 collects block sums of
per-device harvest at each federation day, the parent reduces them to
scalar totals, and pass 2 replays the (identical, pure-RNG) dynamics
pricing ``borrowed`` against those totals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..edge.fleet import quantize_effective
from ..edge.storage import PAPER_IMAGE_KB
from ..units import KB
from ..obs import get_metrics, get_tracer
from .config import DeviceCohort, MegaFleetConfig
from .events import CRASH, FEDERATION, REPORT, DayEventQueue
from .rng import TAG_CRASH, TAG_OUTAGE, TAG_RATE, device_keys, erlang, geometric, uniforms

__all__ = [
    "BLOCK",
    "CohortStats",
    "MegaFleetDay",
    "MegaFleetResult",
    "run_megafleet",
    "shard_tasks",
]

#: float reductions happen per this many cohort-relative devices; shard
#: boundaries are only allowed at multiples of it (see module docstring)
BLOCK = 4096

#: default devices per shard (a multiple of BLOCK)
DEFAULT_SHARD_DEVICES = 32 * BLOCK


@dataclass(frozen=True)
class MegaFleetDay:
    """One aggregate trajectory sample."""

    day: int
    mean_accuracy: float
    min_accuracy: float
    devices_up: int
    radio_bytes_total: int


@dataclass(frozen=True)
class CohortStats:
    """Per-cohort damage report and outcome."""

    name: str
    devices: int
    model_depth: int
    storage: str
    crashes: int
    lost_samples: float
    downtime_days: int
    mean_harvest: float
    mean_final_accuracy: float
    #: analytic per-device seconds spent on durable snapshot writes over
    #: the campaign (expected delta dataset per period, cohort's medium)
    snapshot_write_seconds: float


@dataclass(frozen=True)
class MegaFleetResult:
    """Fleet-wide aggregates; no per-device arrays survive the run."""

    n_devices: int
    days: int
    trajectory: tuple[MegaFleetDay, ...]
    cohorts: tuple[CohortStats, ...]
    radio_bytes_total: int
    total_crashes: int
    total_lost_samples: float
    total_downtime_days: int
    total_harvest: float
    n_shards: int

    @property
    def mean_final_accuracy(self) -> float:
        return self.trajectory[-1].mean_accuracy

    @property
    def min_final_accuracy(self) -> float:
        return self.trajectory[-1].min_accuracy

    def to_payload(self) -> dict:
        """Strict-JSON plain data, *excluding* execution metadata.

        ``n_shards`` depends on ``shard_devices`` (an execution knob,
        not part of the experiment); everything here is a pure function
        of the :class:`~repro.megafleet.config.MegaFleetConfig`, which
        is what the determinism checks and the lab cache key rely on.
        """
        return {
            "n_devices": self.n_devices,
            "days": self.days,
            "trajectory": [
                {
                    "day": d.day,
                    "mean_accuracy": d.mean_accuracy,
                    "min_accuracy": d.min_accuracy,
                    "devices_up": d.devices_up,
                    "radio_bytes_total": d.radio_bytes_total,
                }
                for d in self.trajectory
            ],
            "cohorts": [
                {
                    "name": c.name,
                    "devices": c.devices,
                    "model_depth": c.model_depth,
                    "storage": c.storage,
                    "crashes": c.crashes,
                    "lost_samples": c.lost_samples,
                    "downtime_days": c.downtime_days,
                    "mean_harvest": c.mean_harvest,
                    "mean_final_accuracy": c.mean_final_accuracy,
                    "snapshot_write_seconds": c.snapshot_write_seconds,
                }
                for c in self.cohorts
            ],
            "totals": {
                "crashes": self.total_crashes,
                "lost_samples": self.total_lost_samples,
                "downtime_days": self.total_downtime_days,
                "harvest": self.total_harvest,
                "radio_bytes": self.radio_bytes_total,
            },
            "final": {
                "mean_accuracy": self.mean_final_accuracy,
                "min_accuracy": self.min_final_accuracy,
            },
        }


def shard_tasks(
    cfg: MegaFleetConfig, shard_devices: int = DEFAULT_SHARD_DEVICES
) -> list[tuple[int, int, int]]:
    """(cohort index, start, stop) ranges, cut only at block boundaries.

    Shards never span cohorts, and ``shard_devices`` is rounded up to a
    multiple of :data:`BLOCK` so every cut point is a legal one under
    the determinism contract.  The task list depends only on the config
    and ``shard_devices`` — never on ``jobs``.
    """
    span = max(BLOCK, -(-int(shard_devices) // BLOCK) * BLOCK)
    tasks: list[tuple[int, int, int]] = []
    for ci, cohort in enumerate(cfg.cohorts):
        for start in range(0, cohort.count, span):
            tasks.append((ci, start, min(start + span, cohort.count)))
    return tasks


def _block_sums(values: np.ndarray) -> np.ndarray:
    """Partial sums over consecutive BLOCK-sized slices of one shard."""
    return np.add.reduceat(values, np.arange(0, values.size, BLOCK))


def _simulate_shard(
    cfg: MegaFleetConfig,
    cohort_idx: int,
    start: int,
    stop: int,
    fed_totals: dict[int, float] | None,
) -> dict:
    """Simulate cohort devices [start, stop); return block-sum partials.

    ``fed_totals=None`` with federation enabled is pass 1: only the
    per-federation-day harvest block sums come back.  Otherwise this is
    the full (only) pass: trajectory partials at each report day plus
    the end-of-campaign accounting.
    """
    t0 = time.perf_counter()
    cohort: DeviceCohort = cfg.cohorts[cohort_idx]
    n = stop - start
    horizon = cfg.days
    keys = device_keys(cfg.seed, cohort.name, n, start=start)
    rate = (
        erlang(keys, TAG_RATE, cohort.traffic_shape,
               cohort.crossings_per_day_mean / cohort.traffic_shape)
        * cohort.images_per_crossing
        * cohort.duty_cycle
    )
    base = np.zeros(n)
    up_since = np.ones(n, dtype=np.int64)
    crash_seq = np.zeros(n, dtype=np.uint64)  # per-device draw counter
    crashes = np.zeros(n, dtype=np.int64)
    lost = np.zeros(n)
    downtime = np.zeros(n, dtype=np.int64)
    borrowed = np.zeros(n)

    p_crash = float(-np.expm1(-1.0 / cohort.mtbf_days)) if cohort.mtbf_days > 0 else 0.0
    p_out = min(1.0, 1.0 / cohort.outage_days_mean) if cohort.outage_days_mean > 0 else 0.0
    period = cohort.snapshot_period_days
    n_fleet = cfg.n_devices
    phase1 = fed_totals is None and cfg.federation_period > 0

    queue = DayEventQueue()
    for f in cfg.federation_days():
        queue.push(f, FEDERATION)
    if not phase1:
        for r in cfg.report_days():
            queue.push(r, REPORT)
    if p_crash > 0.0:
        first = geometric(uniforms(keys, TAG_CRASH, crash_seq), p_crash)
        queue.push_crashes(first, np.arange(n, dtype=np.int64), horizon)

    def harvest_at(day: int) -> tuple[np.ndarray, np.ndarray]:
        up = up_since <= day
        return np.where(up, base + rate * (day - up_since + 1), base), up

    fed_cur_sums: dict[int, np.ndarray] = {}
    acc_sums: dict[int, np.ndarray] = {}
    acc_min: dict[int, float] = {}
    up_count: dict[int, int] = {}
    final_cur = base  # overwritten at the final report day

    with get_tracer().span(
        "megafleet.shard", category="campaign",
        cohort=cohort.name, start=start, stop=stop, phase1=phase1,
    ):
        while len(queue):
            day, kind, idx = queue.pop()
            if kind == CRASH:
                cur = base[idx] + rate[idx] * (day - up_since[idx] + 1)
                # Last durable snapshot day strictly before the crash;
                # its value only exists if the device was already up.
                snap_day = (day - 1) // period * period
                kept = np.where(
                    snap_day >= up_since[idx],
                    base[idx] + rate[idx] * (snap_day - up_since[idx] + 1),
                    base[idx],
                )
                lost[idx] += cur - kept
                crashes[idx] += 1
                if p_out > 0.0:
                    outage = geometric(
                        uniforms(keys[idx], TAG_OUTAGE, crash_seq[idx]), p_out
                    )
                else:
                    outage = np.zeros(idx.size, dtype=np.int64)
                rejoin = day + 1 + outage
                downtime[idx] += outage
                base[idx] = kept
                up_since[idx] = rejoin
                crash_seq[idx] += 1
                nxt = rejoin - 1 + geometric(
                    uniforms(keys[idx], TAG_CRASH, crash_seq[idx]), p_crash
                )
                queue.push_crashes(nxt, idx, horizon)
            elif kind == FEDERATION:
                cur, _up = harvest_at(day)
                if phase1:
                    fed_cur_sums[day] = _block_sums(cur)
                else:
                    borrowed = (
                        cfg.transfer_value
                        * (fed_totals[day] - cur)
                        / max(1, n_fleet - 1)
                    )
            else:  # REPORT
                cur, up = harvest_at(day)
                acc = cfg.curve.accuracy(quantize_effective(cur + borrowed))
                acc_sums[day] = _block_sums(acc)
                acc_min[day] = float(acc.min())
                up_count[day] = int(up.sum())
                if day == horizon:
                    final_cur = cur

    return {
        "fed_cur_sums": fed_cur_sums,
        "acc_sums": acc_sums,
        "acc_min": acc_min,
        "up_count": up_count,
        "final_cur_sums": _block_sums(final_cur),
        "lost_sums": _block_sums(lost),
        "crashes": int(crashes.sum()),
        "downtime": int(downtime.sum()),
        "wall_s": time.perf_counter() - t0,
    }


def _snapshot_write_seconds(cohort: DeviceCohort, days: int) -> float:
    """Analytic per-device cost of the cohort's durable snapshot cadence.

    Each snapshot persists the expected harvest delta since the last one
    (rate × period images at the paper's per-image size) to the cohort's
    storage medium; the campaign takes ``days // period`` of them.
    """
    writes = days // cohort.snapshot_period_days
    delta_images = (
        cohort.crossings_per_day_mean
        * cohort.images_per_crossing
        * cohort.duty_cycle
        * cohort.snapshot_period_days
    )
    delta_bytes = PAPER_IMAGE_KB * KB * delta_images
    return writes * cohort.storage_profile.write_seconds(int(delta_bytes))


def run_megafleet(
    cfg: MegaFleetConfig,
    *,
    jobs: int = 1,
    shard_devices: int = DEFAULT_SHARD_DEVICES,
) -> MegaFleetResult:
    """Run the fleet, fanned out over ``jobs`` processes.

    Results are byte-identical for any ``jobs`` and any
    ``shard_devices`` (see the module docstring's determinism
    contract); both knobs are pure execution parameters.
    """
    from ..lab.runner import pool_map

    tasks = shard_tasks(cfg, shard_devices)
    fed_days = cfg.federation_days()
    metrics = get_metrics()
    with get_tracer().span(
        "megafleet", category="campaign",
        n_devices=cfg.n_devices, days=cfg.days,
        cohorts=len(cfg.cohorts), shards=len(tasks), jobs=jobs,
    ) as span:
        fed_totals: dict[int, float] | None = None
        if fed_days:
            pass1 = pool_map(
                _simulate_shard, [(cfg, ci, s, e, None) for ci, s, e in tasks], jobs
            )
            fed_totals = {
                day: float(np.sum(np.concatenate([r["fed_cur_sums"][day] for r in pass1])))
                for day in fed_days
            }
        results = pool_map(
            _simulate_shard,
            [(cfg, ci, s, e, fed_totals or {}) for ci, s, e in tasks],
            jobs,
        )
        for r in results:
            metrics.histogram("megafleet.shard_seconds").observe(r["wall_s"])

        n = cfg.n_devices
        radio_per_round = sum(2 * c.model_bytes * c.count for c in cfg.cohorts)
        trajectory = []
        for day in cfg.report_days():
            mean_acc = float(
                np.sum(np.concatenate([r["acc_sums"][day] for r in results])) / n
            )
            trajectory.append(
                MegaFleetDay(
                    day=day,
                    mean_accuracy=mean_acc,
                    min_accuracy=min(r["acc_min"][day] for r in results),
                    devices_up=sum(r["up_count"][day] for r in results),
                    radio_bytes_total=radio_per_round * sum(1 for f in fed_days if f <= day),
                )
            )

        cohort_stats = []
        for ci, cohort in enumerate(cfg.cohorts):
            mine = [r for (i, _s, _e), r in zip(tasks, results) if i == ci]
            harvest = float(np.sum(np.concatenate([r["final_cur_sums"] for r in mine])))
            acc_sum = float(np.sum(np.concatenate([r["acc_sums"][cfg.days] for r in mine])))
            cohort_stats.append(
                CohortStats(
                    name=cohort.name,
                    devices=cohort.count,
                    model_depth=cohort.model_depth,
                    storage=cohort.storage,
                    crashes=sum(r["crashes"] for r in mine),
                    lost_samples=float(np.sum(np.concatenate([r["lost_sums"] for r in mine]))),
                    downtime_days=sum(r["downtime"] for r in mine),
                    mean_harvest=harvest / cohort.count,
                    mean_final_accuracy=acc_sum / cohort.count,
                    snapshot_write_seconds=_snapshot_write_seconds(cohort, cfg.days),
                )
            )

        result = MegaFleetResult(
            n_devices=n,
            days=cfg.days,
            trajectory=tuple(trajectory),
            cohorts=tuple(cohort_stats),
            radio_bytes_total=radio_per_round * len(fed_days),
            total_crashes=sum(c.crashes for c in cohort_stats),
            total_lost_samples=float(
                np.sum(np.concatenate([r["lost_sums"] for r in results]))
            ),
            total_downtime_days=sum(c.downtime_days for c in cohort_stats),
            total_harvest=float(
                np.sum(np.concatenate([r["final_cur_sums"] for r in results]))
            ),
            n_shards=len(tasks),
        )
        span.set_tag("mean_final_accuracy", result.mean_final_accuracy)
        span.set_tag("crashes_total", result.total_crashes)
    metrics.counter("megafleet.devices_simulated").inc(n)
    metrics.counter("megafleet.crashes").inc(result.total_crashes)
    metrics.counter("megafleet.federation_rounds").inc(len(fed_days))
    metrics.gauge("megafleet.mean_final_accuracy").set(result.mean_final_accuracy)
    metrics.gauge("megafleet.radio_bytes_total").set(result.radio_bytes_total)
    metrics.gauge("megafleet.lost_samples_total").set(result.total_lost_samples)
    return result
