"""E2 — Table II: memory vs image size at batch 1.

Exact per-size graphs are rebuilt for six image sizes and five depths —
the heaviest table — so the benchmark also tracks shape-inference cost.
"""

from repro.experiments import table2
from repro.memory import PAPER_TABLE2_MB
from repro.units import GB


def test_table2_regeneration(benchmark, outdir):
    result = benchmark.pedantic(lambda: table2("ours"), rounds=3, iterations=1)
    paper = table2("paper")

    (outdir / "table2_ours.txt").write_text(result.as_table().render())
    (outdir / "table2_paper.txt").write_text(paper.as_table().render())

    # Published values reproduced by the calibrated source.
    for s, row in PAPER_TABLE2_MB.items():
        for depth, mb in row.items():
            assert abs(paper.value(s, depth) - mb) / mb < 0.025

    # Paper headline: at 1500 px even ResNet-18 exceeds 2 GB.
    assert paper.exceeds_budget(1500, 18)
    assert result.exceeds_budget(1500, 34)  # ours: one step later at most

    # Quadratic growth: memory at 448 is ~4x the activation part at 224.
    for d in result.depths:
        act224 = result.values_bytes[(224, d)]
        act500 = result.values_bytes[(500, d)]
        assert act500 > act224  # monotone, trivially
