"""E23 (extension) — gradient accumulation vs checkpointing.

Accumulation is the practitioner's usual answer to activation memory:
shrink the micro-batch, sum gradients.  This bench trains the same net
four ways (full-batch store-all, micro-batched, Revolve-checkpointed,
both combined) and records measured peak live bytes and the loss
trajectory — identical across all four (no BatchNorm; exact
recombination), which is the point: these are *memory* knobs, not
optimization changes, and they compose.
"""

import numpy as np
import pytest

from repro.autodiff import (
    DenseLayer,
    Momentum,
    ReLULayer,
    SequentialNet,
    Trainer,
    TrainerConfig,
    gaussian_blobs,
)

DEPTH = 10
WIDTH = 96
BATCH = 64

CONFIGS = {
    "full": TrainerConfig(epochs=3, batch_size=BATCH),
    "micro8": TrainerConfig(epochs=3, batch_size=BATCH, micro_batch_size=8),
    "revolve": TrainerConfig(epochs=3, batch_size=BATCH, rho=2.0),
    "micro8+revolve": TrainerConfig(
        epochs=3, batch_size=BATCH, micro_batch_size=8, rho=2.0
    ),
}


def _net(seed=1):
    rng = np.random.default_rng(seed)
    layers = []
    prev = 8
    for i in range(DEPTH - 1):
        layers.append(DenseLayer(prev, WIDTH, rng, name=f"fc{i}"))
        layers.append(ReLULayer(name=f"r{i}"))
        prev = WIDTH
    layers.append(DenseLayer(prev, 3, rng, name="head"))
    return SequentialNet(layers)


def _run_all():
    data = gaussian_blobs(80, 3, 8, np.random.default_rng(0), spread=0.8, separation=5.0)
    out = {}
    for name, cfg in CONFIGS.items():
        net = _net()
        t = Trainer(net, Momentum(net.layers, lr=0.005), cfg)
        t.fit(data)
        out[name] = (t.peak_bytes, [r.mean_loss for r in t.history])
    return out


def test_accumulation_vs_checkpointing(benchmark, outdir):
    results = benchmark.pedantic(_run_all, rounds=3, iterations=1)

    lines = ["strategy,peak_bytes,final_loss"]
    for name, (peak, losses) in results.items():
        lines.append(f"{name},{peak},{losses[-1]:.6f}")
    (outdir / "accumulation.csv").write_text("\n".join(lines) + "\n")

    peaks = {k: v[0] for k, v in results.items()}
    losses = {k: v[1] for k, v in results.items()}
    # All four follow identical loss trajectories.
    for name in ("micro8", "revolve", "micro8+revolve"):
        assert losses[name] == pytest.approx(losses["full"], rel=1e-9)
        assert losses[name][-1] < losses[name][0]
    # Each lever reduces peak memory; combining reduces it most.
    assert peaks["micro8"] < peaks["full"]
    assert peaks["revolve"] < peaks["full"]
    assert peaks["micro8+revolve"] == min(peaks.values())
