"""E5-E8 — Figure 1 (panels a-d): peak memory vs recompute factor.

For each panel this regenerates all five LinearResNet curves from both
coefficient sources, writes CSV + ASCII artifacts, asserts the paper's
headline crossings against the 2 GB budget, and benchmarks the panel
generation (Revolve binary searches across the whole ρ grid).
"""

import pytest

from repro.experiments import PANELS, figure1_ascii, figure1_panel
from repro.units import GB, MB


def _write(outdir, panel, source, series):
    lines = ["model,rho,memory_mb"]
    for s in series:
        for rho, b in s.points:
            lines.append(f"{s.name},{rho:.4f},{b / MB:.2f}")
    (outdir / f"figure1_{panel}_{source}.csv").write_text("\n".join(lines) + "\n")
    (outdir / f"figure1_{panel}_{source}.txt").write_text(figure1_ascii(panel, source))


@pytest.mark.parametrize("panel", sorted(PANELS))
def test_figure1_panel(panel, benchmark, outdir):
    series = benchmark.pedantic(lambda: figure1_panel(panel, "paper"), rounds=3, iterations=1)
    _write(outdir, panel, "paper", series)
    _write(outdir, panel, "ours", figure1_panel(panel, "ours"))

    by_depth = {s.depth: s for s in series}
    # Monotone: more recompute never needs more memory.
    for s in series:
        mems = [b for _, b in s.points]
        assert mems == sorted(mems, reverse=True)

    batch, image = PANELS[panel]
    if panel == "a":
        # Batch 1 @ 224: everything fits already at rho = 1 (paper: "all
        # models and activations fit into the 2GB limit only if the image
        # size is 224").
        assert all(s.memory_at(1.0) <= 2 * GB for s in series)
    if panel == "b":
        # Batch 8 @ 224: R50+ exceed 2 GB at rho=1; all fit by rho 1.6.
        for d in (50, 101, 152):
            assert by_depth[d].memory_at(1.0) > 2 * GB
        for d in by_depth:
            assert by_depth[d].min_rho_under(2 * GB) <= 1.6
    if panel == "c":
        # Batch 1 @ 500: memory too limited at rho=1 for the big models,
        # recoverable with moderate recompute.
        assert by_depth[152].memory_at(1.0) > 2 * GB
        assert all(s.min_rho_under(2 * GB) is not None for s in series)
    if panel == "d":
        # Batch 8 @ 500: the hardest panel; even R18 over 2 GB at rho=1
        # ("even ResNet18 does not fit"), all models in by rho <= 2.0
        # (paper reports ~1.6 under its unspecified slot accounting; see
        # EXPERIMENTS.md for the delta).
        assert all(s.memory_at(1.0) > 2 * GB for s in series)
        assert all(s.min_rho_under(2 * GB) <= 2.0 for s in series)
