"""E3 — Table III: memory (GB) vs image size at batch 8.

The paper's point: at batch 8 "one cannot use a neural network with more
than 50 layers even for the smallest possible image size".
"""

from repro.experiments import table3
from repro.memory import PAPER_TABLE3_GB


def test_table3_regeneration(benchmark, outdir):
    result = benchmark.pedantic(lambda: table3("ours"), rounds=3, iterations=1)
    paper = table3("paper")

    (outdir / "table3_ours.txt").write_text(result.as_table().render())
    (outdir / "table3_paper.txt").write_text(paper.as_table().render())

    for s, row in PAPER_TABLE3_GB.items():
        for depth, gb in row.items():
            assert abs(paper.value(s, depth) - gb) < max(0.03 * gb, 0.03)

    # Paper headline at 224/batch 8: R18 and R34 fit, deeper models don't.
    assert not paper.exceeds_budget(224, 18)
    assert not paper.exceeds_budget(224, 34)
    for d in (50, 101, 152):
        assert paper.exceeds_budget(224, d)
    # Ours reproduces the same frontier.
    assert not result.exceeds_budget(224, 18)
    assert not result.exceeds_budget(224, 34)
    for d in (101, 152):
        assert result.exceeds_budget(224, d)
