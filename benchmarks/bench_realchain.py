"""E25 (extension) — real block chains vs the LinearResNet idealization.

The paper homogenizes ResNets before planning.  Planning directly on the
real linearized block chain (unequal boundaries, interiors charged)
tests how much the idealization hides: the real plan's snapshot budget
must additionally reserve the worst block working set, and snapshots at
early (large) boundaries are more expensive than the homogenized model
assumes.
"""

from repro.checkpointing import plan_real_chain, working_set_bytes
from repro.graph import homogenize, linearize
from repro.memory import account
from repro.units import GB, MB
from repro.zoo import build_resnet

BATCH = 8


def _plan():
    g = build_resnet(18, image_size=224)
    chain = linearize(g)
    return g, chain, plan_real_chain(chain, budget_bytes=2 * GB, batch_size=BATCH)


def test_real_chain_planning(benchmark, outdir):
    g, chain, plan = benchmark.pedantic(_plan, rounds=3, iterations=1)

    acct = account(g)
    lin = homogenize(g, depth=18)
    report = (
        f"ResNet-18 @ batch {BATCH}, 2 GB budget\n"
        f"real chain: {chain.length} blocks, worst working set "
        f"{working_set_bytes(chain, BATCH) / MB:.0f} MB\n"
        f"fixed cost: {plan.fixed_bytes / MB:.0f} MB\n"
        f"snapshot budget: {plan.snapshot_budget / MB:.0f} MB, "
        f"used {plan.peak_snapshot_bytes / MB:.0f} MB\n"
        f"real-chain rho: {plan.rho:.4f}\n"
        f"peak (conservative): {plan.peak_bytes / MB:.0f} MB\n"
    )
    (outdir / "realchain.txt").write_text(report)

    # The plan is feasible and conservative.
    assert plan.fits
    assert plan.peak_snapshot_bytes <= plan.snapshot_budget
    # Consistency with the aggregate accounting: fixed costs agree.
    assert plan.fixed_bytes == acct.fixed_bytes
    # The homogenized total activation equals the real chain's total
    # plus the input (homogenize averages every node output, the segment
    # chain reports the input separately) — sums are preserved, only the
    # structure is idealized.
    real_total = chain.total_act_bytes + chain.input_bytes
    assert abs(lin.total_act_bytes - real_total) <= lin.length
    # At 2 GB / batch 8 ResNet-18 store-all fits; the real-chain planner
    # should agree (no recomputation needed).
    assert plan.rho == 1.0


def test_real_chain_under_pressure(benchmark, outdir):
    """Shrink the budget until recomputation is forced; rho stays modest."""
    g = build_resnet(18, image_size=224)
    chain = linearize(g)
    acct = account(g)
    floor = acct.fixed_bytes + working_set_bytes(chain, BATCH)

    def plan_tight():
        return plan_real_chain(
            chain, budget_bytes=int(floor + BATCH * 8 * MB), batch_size=BATCH
        )

    plan = benchmark.pedantic(plan_tight, rounds=3, iterations=1)
    assert plan.fits
    assert plan.extra_forward_cost > 0  # recomputation genuinely forced
    assert plan.rho < 2.0  # and still cheap — the paper's core point
