"""Shared benchmark utilities: artifact output directory + JSON emitter."""

from __future__ import annotations

import json
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def outdir() -> pathlib.Path:
    """Directory where benchmarks drop their regenerated artifacts."""
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def bench_json(outdir):
    """Emit one machine-readable ``BENCH_<name>.json`` per benchmark.

    ``bench_json("obs", payload)`` writes ``out/BENCH_obs.json`` —
    the perf-trajectory files CI uploads so runs can be compared over
    time.  Returns the written path.
    """

    def write(name: str, payload: dict) -> pathlib.Path:
        path = outdir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=1) + "\n")
        return path

    return write
