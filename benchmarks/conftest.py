"""Shared benchmark utilities: artifact output directory."""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def outdir() -> pathlib.Path:
    """Directory where benchmarks drop their regenerated artifacts."""
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR
