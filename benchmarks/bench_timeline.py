"""E21 (artifact) — live memory over execution: triangle vs sawtooth.

Produces the classic checkpointing-paper figure for LinearResNet-50:
store-all's triangular memory profile against Revolve's bounded
sawtooth at several slot counts, as ASCII art + CSV, with the peak and
shape assertions that make the figure trustworthy.
"""

from repro.checkpointing import (
    ChainSpec,
    memory_timeline,
    revolve_schedule,
    simulate,
    store_all_schedule,
    timeline_ascii,
)

L = 50


def _traces():
    spec = ChainSpec.homogeneous(L, act_bytes=1)
    schedules = {
        "store_all": store_all_schedule(L),
        "revolve_c12": revolve_schedule(L, 12),
        "revolve_c5": revolve_schedule(L, 5),
        "revolve_c2": revolve_schedule(L, 2),
    }
    return spec, schedules, {k: memory_timeline(s, spec) for k, s in schedules.items()}


def test_memory_timeline_artifact(benchmark, outdir):
    spec, schedules, traces = benchmark.pedantic(_traces, rounds=3, iterations=1)

    (outdir / "timeline.txt").write_text(timeline_ascii(schedules, spec))
    lines = ["schedule,action_index,live_bytes"]
    for name, trace in traces.items():
        for p in trace:
            lines.append(f"{name},{p.index},{p.live_bytes}")
    (outdir / "timeline.csv").write_text("\n".join(lines) + "\n")

    # Peaks ordered by slot budget; each equals the simulator's peak.
    peaks = {k: max(p.live_bytes for p in t) for k, t in traces.items()}
    assert peaks["store_all"] == L + 1
    assert peaks["revolve_c12"] <= 13
    assert peaks["revolve_c5"] <= 6
    assert peaks["revolve_c2"] <= 3
    for name, sch in schedules.items():
        assert peaks[name] == simulate(sch, spec).peak_bytes
    # Store-all's trace is unimodal (triangle); Revolve's oscillates.
    sa = [p.live_bytes for p in traces["store_all"]]
    peak_at = sa.index(max(sa))
    assert all(b <= sa[peak_at] for b in sa)
    rv = [p.live_bytes for p in traces["revolve_c5"]]
    moves = [b - a for a, b in zip(rv, rv[1:]) if b != a]
    direction_changes = sum(1 for a, b in zip(moves, moves[1:]) if a * b < 0)
    assert direction_changes > 10  # a genuine sawtooth
