"""E16 (extension) — the full in-situ campaign: crossings to adapted model.

Sections II+III operationalized: subjects cross daily, confident tracks
are harvested to the SD card, and the student trains only in idle CPU
windows.  The bench sweeps traffic levels on the ODROID model, writes the
days-to-target table, and asserts the qualitative behaviour (more
traffic → faster adaptation; wall time ≥ compute time; storage trivial).
"""

from repro.edge import CampaignConfig, ODROID_XU4, TrainingWorkload, run_campaign
from repro.units import MB

TRAFFIC = (20.0, 60.0, 200.0)


def _workload():
    return TrainingWorkload(
        model="student",
        chain_length=18,
        slot_act_bytes_per_sample=2 * MB,
        fixed_bytes=180 * MB,
        flops_per_sample=3.6e9,
        n_images=1,
        batch_size=8,
    )


def _sweep():
    out = {}
    for traffic in TRAFFIC:
        cfg = CampaignConfig(
            workload=_workload(),
            target_accuracy=0.9,
            crossings_per_day=traffic,
            seed=1,
        )
        out[traffic] = run_campaign(cfg, ODROID_XU4)
    return out


def test_campaign_sweep(benchmark, outdir):
    results = benchmark.pedantic(_sweep, rounds=3, iterations=1)

    lines = ["crossings_per_day,days_to_target,harvested,train_hours,storage_mb"]
    for traffic, res in sorted(results.items()):
        lines.append(
            f"{traffic},{res.target_day},{res.days[-1].harvested_total},"
            f"{res.total_train_hours:.1f},{res.storage_bytes / MB:.1f}"
        )
    (outdir / "campaign.txt").write_text("\n".join(lines) + "\n")

    days = [results[t].target_day for t in TRAFFIC]
    assert all(res.reached_target for res in results.values())
    assert days == sorted(days, reverse=True)  # more traffic, faster
    for res in results.values():
        assert res.storage_ok
        for day in res.days:
            assert day.train_wall_s >= day.train_compute_s
