"""Observability overhead: disabled tracing must cost ≤5% on run_schedule.

The instrumented executor pays two null checks per schedule action when
the process tracer is the default :class:`~repro.obs.NullTracer`.  This
benchmark freezes the *seed* executor loop (pre-instrumentation, copied
verbatim below) as the reference, times both on the same Revolve
schedule with min-of-repeats, and asserts the instrumented/reference
ratio stays under 1.05.  The campaign-telemetry tracer
(:class:`~repro.obs.RunlogTracer` — coarse spans only, hot paths
disabled) is held to the SAME ≤1.05x budget, since ``--telemetry``
installs it around every unit compute.  The fully enabled tracer cost
is reported alongside for context (no assertion — enabled tracing is
allowed to cost).  Results also land in ``out/BENCH_obs.json``.
"""

from __future__ import annotations

import statistics
import timeit

import numpy as np

from repro.autodiff import DenseLayer, ReLULayer, SequentialNet, run_schedule
from repro.autodiff.executor import CheckpointedResult
from repro.autodiff.loss import softmax_cross_entropy
from repro.autodiff.meter import MemoryMeter
from repro.checkpointing import revolve_schedule
from repro.checkpointing.actions import ActionKind
from repro.errors import ExecutionError
from repro.obs import RunlogTracer, set_tracer, tracing

DEPTH = 16
WIDTH = 192
BATCH = 64
SLOTS = 3
REPEATS = 15
NUMBER = 3
MAX_RATIO = 1.05


def reference_run_schedule(net, schedule, x, labels, loss_fn=softmax_cross_entropy):
    """The seed executor loop, frozen verbatim (commit 7ce2f3f)."""
    l = len(net)
    if schedule.length != l:
        raise ExecutionError(f"schedule length {schedule.length} != network depth {l}")
    meter = MemoryMeter()
    slots: dict[int, tuple[int, np.ndarray]] = {}
    cursor_idx = 0
    cursor: np.ndarray = x
    meter.hold("cursor", cursor)
    pending = l
    dy: np.ndarray | None = None
    loss_value: float | None = None
    grads = {}
    forward_steps = 0
    replay_steps = 0
    peak_slot_bytes = 0

    def _slot_bytes() -> int:
        return sum(int(a.nbytes) for _, a in slots.values())

    for pos, action in enumerate(schedule.actions):
        kind = action.kind
        if kind is ActionKind.ADVANCE:
            to = action.arg
            if not cursor_idx < to <= l:
                raise ExecutionError(f"action {pos}: ADVANCE {cursor_idx}->{to} invalid")
            for i in range(cursor_idx, to):
                cursor = net.layers[i].forward(cursor)
                meter.hold("cursor", cursor)
                forward_steps += 1
            cursor_idx = to
        elif kind is ActionKind.SNAPSHOT:
            if action.arg >= schedule.slots:
                raise ExecutionError(
                    f"action {pos}: slot {action.arg} exceeds budget {schedule.slots}"
                )
            slots[action.arg] = (cursor_idx, cursor)
            meter.hold(f"slot{action.arg}", cursor)
            peak_slot_bytes = max(peak_slot_bytes, _slot_bytes())
        elif kind is ActionKind.RESTORE:
            if action.arg not in slots:
                raise ExecutionError(f"action {pos}: RESTORE from empty slot {action.arg}")
            cursor_idx, cursor = slots[action.arg]
            meter.hold("cursor", cursor)
        elif kind is ActionKind.FREE:
            if action.arg not in slots:
                raise ExecutionError(f"action {pos}: FREE of empty slot {action.arg}")
            del slots[action.arg]
            meter.release(f"slot{action.arg}")
        elif kind is ActionKind.ADJOINT:
            step = action.arg
            if step != pending:
                raise ExecutionError(
                    f"action {pos}: ADJOINT({step}) out of order (pending {pending})"
                )
            if cursor_idx != step - 1:
                raise ExecutionError(
                    f"action {pos}: ADJOINT({step}) needs cursor at {step - 1}, "
                    f"have {cursor_idx}"
                )
            layer = net.layers[step - 1]
            if step == l:
                y = layer.forward(cursor)
                meter.hold("head", y)
                loss_value, dy = loss_fn(y, labels)
                meter.release("head")
                meter.hold("grad", dy)
            if dy is None:
                raise ExecutionError("gradient flow unseeded")
            replay_steps += 1
            dx, layer_grads = layer.backward(cursor, dy)
            dy = dx
            meter.hold("grad", dy)
            for pname, g in layer_grads.items():
                grads[(layer.name, pname)] = g
            pending -= 1
        else:
            raise ExecutionError(f"unknown action kind {kind}")

    if pending != 0:
        raise ExecutionError(f"schedule left backward steps {pending}..1 undone")
    assert loss_value is not None
    return CheckpointedResult(
        loss=loss_value,
        grads=grads,
        peak_bytes=meter.peak_bytes,
        peak_slot_bytes=peak_slot_bytes,
        forward_steps=forward_steps,
        replay_steps=replay_steps,
    )


def build():
    rng = np.random.default_rng(0)
    layers = []
    for i in range(DEPTH - 1):
        if i % 2:
            layers.append(ReLULayer(name=f"r{i}"))
        else:
            layers.append(DenseLayer(WIDTH, WIDTH, rng, name=f"fc{i}"))
    layers.append(DenseLayer(WIDTH, 10, rng, name="head"))
    net = SequentialNet(layers)
    x = rng.normal(size=(BATCH, WIDTH))
    y = rng.integers(0, 10, size=BATCH)
    return net, x, y


def best_of(fn) -> float:
    """Min-of-repeats per-call seconds: robust to scheduler noise."""
    return min(timeit.repeat(fn, number=NUMBER, repeat=REPEATS)) / NUMBER


def paired_ratio(fn_ref, fn_new) -> tuple[float, float, float]:
    """Median of per-round ``new/ref`` ratios, plus min per-call times.

    Each round times both candidates back to back (order alternating),
    so multiplicative noise — CPU-frequency drift, noisy neighbours —
    hits the pair together and cancels in the ratio; the median across
    rounds discards the spikes that straddle a pair anyway.
    """
    ref_t, new_t = timeit.Timer(fn_ref), timeit.Timer(fn_new)
    ratios = []
    best = [float("inf"), float("inf")]
    for round_no in range(REPEATS):
        pair = (ref_t, new_t) if round_no % 2 == 0 else (new_t, ref_t)
        first = pair[0].timeit(number=NUMBER) / NUMBER
        second = pair[1].timeit(number=NUMBER) / NUMBER
        t_ref, t_new = (first, second) if round_no % 2 == 0 else (second, first)
        ratios.append(t_new / t_ref)
        best[0] = min(best[0], t_ref)
        best[1] = min(best[1], t_new)
    return statistics.median(ratios), best[0], best[1]


def test_disabled_overhead_under_five_percent(outdir, bench_json):
    net, x, y = build()
    sch = revolve_schedule(DEPTH, SLOTS)

    # Identical numerics first — the instrumented loop is the same loop.
    ref = reference_run_schedule(net, sch, x, y)
    ours = run_schedule(net, sch, x, y)
    assert ours.loss == ref.loss
    assert ours.forward_steps == ref.forward_steps
    for k in ref.grads:
        assert np.array_equal(ours.grads[k], ref.grads[k])

    ratio, t_ref, t_disabled = paired_ratio(
        lambda: reference_run_schedule(net, sch, x, y),
        lambda: run_schedule(net, sch, x, y),
    )

    # The --telemetry tracer: coarse spans buffered, hot paths still on
    # their enabled=False branches.  Same budget as fully disabled.
    previous = set_tracer(RunlogTracer())
    try:
        ratio_telemetry, _, t_telemetry = paired_ratio(
            lambda: reference_run_schedule(net, sch, x, y),
            lambda: run_schedule(net, sch, x, y),
        )
    finally:
        set_tracer(previous)

    with tracing():
        t_enabled = best_of(lambda: run_schedule(net, sch, x, y))

    report = (
        f"run_schedule, l={DEPTH}, revolve c={SLOTS}, batch={BATCH}x{WIDTH}\n"
        f"reference (seed loop):  {t_ref * 1e3:.3f} ms\n"
        f"instrumented, disabled: {t_disabled * 1e3:.3f} ms  "
        f"({ratio:.3f}x, budget {MAX_RATIO:.2f}x)\n"
        f"telemetry (RunlogTracer): {t_telemetry * 1e3:.3f} ms  "
        f"({ratio_telemetry:.3f}x, budget {MAX_RATIO:.2f}x)\n"
        f"instrumented, enabled:  {t_enabled * 1e3:.3f} ms  "
        f"({t_enabled / t_ref:.3f}x)\n"
    )
    (outdir / "obs_overhead.txt").write_text(report)
    print(report)

    bench_json(
        "obs",
        {
            "workload": {
                "depth": DEPTH,
                "width": WIDTH,
                "batch": BATCH,
                "slots": SLOTS,
                "strategy": "revolve",
            },
            "reference_ms": t_ref * 1e3,
            "disabled_ms": t_disabled * 1e3,
            "disabled_ratio": ratio,
            "telemetry_ms": t_telemetry * 1e3,
            "telemetry_ratio": ratio_telemetry,
            "enabled_ms": t_enabled * 1e3,
            "enabled_ratio": t_enabled / t_ref,
            "gate": MAX_RATIO,
            "repeats": REPEATS,
            "number": NUMBER,
        },
    )

    assert ratio <= MAX_RATIO, (
        f"disabled-tracer overhead {ratio:.3f}x exceeds {MAX_RATIO:.2f}x budget"
    )
    assert ratio_telemetry <= MAX_RATIO, (
        f"telemetry-tracer overhead {ratio_telemetry:.3f}x exceeds "
        f"{MAX_RATIO:.2f}x budget"
    )
