"""E9 — Section VI claim: full binomial checkpointing beats
checkpoint_sequential (and the √l heuristic) at every equal memory budget.

Regenerates the ρ-at-equal-slots comparison for every paper chain length,
writes the table artifact, asserts dominance, and benchmarks the sweep.
"""

import math

from repro.experiments import strategy_ablation, strategy_ablation_table

LENGTHS = (18, 34, 50, 101, 152)
BUDGETS = (2, 3, 5, 8, 13, 21, 34)


def test_strategy_dominance(benchmark, outdir):
    data = benchmark.pedantic(
        lambda: strategy_ablation(LENGTHS, BUDGETS), rounds=3, iterations=1
    )
    (outdir / "ablation_strategies.txt").write_text(
        strategy_ablation_table(LENGTHS, BUDGETS).render()
    )

    for (l, c), rhos in data.items():
        # Revolve dominates both baselines wherever they are feasible.
        assert rhos["revolve"] <= rhos["uniform"] + 1e-12, (l, c)
        assert rhos["revolve"] <= rhos["sqrt"] + 1e-12, (l, c)
        # Revolve is *always* feasible down to one slot.
        assert math.isfinite(rhos["revolve"])

    # The gap is qualitative at small budgets: at 5 slots on the deepest
    # chain uniform cannot run at all while revolve pays < 2.2x.
    tight = data[(152, 5)]
    assert math.isinf(tight["uniform"])
    assert tight["revolve"] < 2.5

    # And revolve's rho at the uniform-optimal budget stays near 1.3
    # while uniform needs >= its sqrt-l memory to even start.
    comfy = data[(152, 34)]
    assert comfy["revolve"] <= comfy["uniform"] <= comfy["sqrt"]
