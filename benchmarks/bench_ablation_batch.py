"""E10 — Section VI closing remark: trading recompute for batch size.

"On typical multi-threaded vector architectures, having a larger
batch-size enables to increase the computational efficiency" — so
checkpointing (which buys memory for bigger batches at ρ > 1) can reduce
*total* epoch time.  This bench sweeps batch sizes on the ODROID model
and asserts the crossover exists.
"""

from repro.edge import ODROID_XU4, TrainingWorkload
from repro.experiments import batch_tradeoff, batch_tradeoff_table, memory_models
from repro.zoo import build_resnet

BATCHES = (1, 2, 4, 8, 16, 32)


def _workload():
    m = memory_models()[50]
    return TrainingWorkload(
        model="ResNet50",
        chain_length=50,
        slot_act_bytes_per_sample=m.account_ref.act_bytes_per_sample // 50,
        fixed_bytes=m.fixed_bytes,
        flops_per_sample=float(build_resnet(50).total_flops_per_sample()),
        n_images=10_000,
    )


def test_batch_size_tradeoff(benchmark, outdir):
    workload = _workload()
    points = benchmark.pedantic(
        lambda: batch_tradeoff(workload, ODROID_XU4, BATCHES), rounds=3, iterations=1
    )
    (outdir / "ablation_batch.txt").write_text(
        batch_tradeoff_table(workload, ODROID_XU4, BATCHES).render()
    )

    by_batch = {p.batch_size: p for p in points}
    # Large batches require checkpointing on the 2 GB node...
    assert by_batch[32].rho > 1.0
    assert by_batch[32].strategy == "revolve"
    # ...but still finish the epoch faster than store-all batch 1.
    assert by_batch[32].epoch_seconds < by_batch[1].epoch_seconds
    # Epoch time is monotone improving across this sweep on this device.
    times = [by_batch[k].epoch_seconds for k in BATCHES if k in by_batch]
    assert times == sorted(times, reverse=True)
    # Memory stays within the device everywhere.
    for p in points:
        assert p.memory_mb <= ODROID_XU4.mem_bytes / (1024 * 1024) + 1
