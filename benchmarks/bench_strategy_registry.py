"""Schedule-cache payoff: a full registry sweep re-run warm must be at
least 2x faster than its cold (empty-cache) run.

The planner, ablation, and CLI all route schedule construction through
the process-wide memo in ``repro.checkpointing.strategies``; this
benchmark pins down the property the ISSUE acceptance criteria name and
records the measured speedup as an artifact.
"""

import time

from repro.checkpointing import (
    available_strategies,
    clear_schedule_cache,
    get_strategy,
    schedule_cache_info,
)

LENGTHS = (18, 34, 50, 101, 152)
BUDGETS = (2, 3, 5, 8, 13, 21)
#: The exact-DP families cost O(l^3) per cold build; cap their chain
#: length so the cold sweep stays in benchmark territory, not minutes.
DP_MAX_LENGTH = {"hetero": 50, "budget": 50, "disk_revolve": 50}


def sweep() -> int:
    """Build + measure every feasible (strategy, l, c) cell once."""
    built = 0
    for name in available_strategies():
        strat = get_strategy(name)
        for l in LENGTHS:
            if l > DP_MAX_LENGTH.get(name, max(LENGTHS)):
                continue
            for c in BUDGETS:
                if not strat.feasible(l, c):
                    continue
                strat.schedule(l, c)
                strat.measured(l, c)
                built += 1
    return built


def timed_sweep() -> tuple[float, int]:
    start = time.perf_counter()
    cells = sweep()
    return time.perf_counter() - start, cells


def test_warm_sweep_at_least_twice_as_fast(outdir):
    clear_schedule_cache()
    cold_s, cells = timed_sweep()
    cold_info = schedule_cache_info()
    assert cold_info.misses > 0 and cold_info.schedules > 0

    warm_s, warm_cells = timed_sweep()
    warm_info = schedule_cache_info()
    assert warm_cells == cells
    # The second sweep never builds: every lookup is a hit.
    assert warm_info.schedules == cold_info.schedules
    assert warm_info.stats == cold_info.stats
    assert warm_info.hits >= cold_info.hits + cells

    speedup = cold_s / warm_s
    (outdir / "strategy_registry_cache.txt").write_text(
        f"registry sweep over {cells} feasible (strategy, l, c) cells\n"
        f"cold: {cold_s * 1e3:.1f} ms  warm: {warm_s * 1e3:.1f} ms  "
        f"speedup: {speedup:.1f}x\n"
        f"cache: {warm_info.schedules} schedules, {warm_info.stats} stats, "
        f"{warm_info.hits} hits / {warm_info.misses} misses\n"
    )
    assert speedup >= 2.0, f"warm sweep only {speedup:.2f}x faster"


def test_warm_lookup_benchmark(benchmark):
    """Steady-state cost of a memoized schedule() call."""
    strat = get_strategy("revolve")
    strat.schedule(152, 8)  # ensure present
    benchmark(lambda: strat.schedule(152, 8))
