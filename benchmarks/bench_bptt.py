"""E22 (extension) — checkpointed BPTT (the paper's reference [11]).

Gruslys et al.'s memory-efficient backprop-through-time is the same
chain problem over timesteps.  This bench unrolls an RNN over T = 64
steps and measures the live-memory/recompute frontier of Revolve-driven
BPTT against store-all BPTT, asserting exact gradient equality and the
O(c)-vs-O(T) hidden-state scaling.
"""

import numpy as np

from repro.autodiff import UnrolledRNN, run_schedule, softmax_cross_entropy
from repro.checkpointing import opt_forwards, revolve_schedule, store_all_schedule

T = 64
BATCH = 32
HIDDEN = 64


def _task():
    rng = np.random.default_rng(0)
    rnn = UnrolledRNN(8, HIDDEN, 4, rng)
    x_seq = rng.normal(size=(BATCH, T, 8))
    labels = rng.integers(0, 4, size=BATCH)
    return rnn, x_seq, labels


def _frontier(rnn, x_seq, labels):
    net = rnn.bind(x_seq)
    h0 = rnn.initial_state(BATCH)
    rows = []
    for c in (T, 16, 8, 4, 2):
        sch = revolve_schedule(len(net), c) if c < T else store_all_schedule(len(net))
        res = run_schedule(net, sch, h0, labels)
        rows.append((c, res.peak_bytes, res.forward_steps, res.loss, res.grads))
    return rows


def test_checkpointed_bptt(benchmark, outdir):
    rnn, x_seq, labels = _task()
    rows = benchmark.pedantic(lambda: _frontier(rnn, x_seq, labels), rounds=3, iterations=1)

    lines = ["slots,peak_bytes,forward_steps"]
    for c, peak, fwd, _, _ in rows:
        lines.append(f"{c},{peak},{fwd}")
    (outdir / "bptt_frontier.csv").write_text("\n".join(lines) + "\n")

    # All slot counts yield identical loss and (combined) gradients.
    base_loss, base_grads = rows[0][3], rnn.combine_grads(rows[0][4])
    for _, _, _, loss, grads in rows[1:]:
        assert loss == base_loss
        combined = rnn.combine_grads(grads)
        for k in base_grads:
            assert np.array_equal(combined[k], base_grads[k])

    # Memory falls monotonically with slots; forwards follow P(l, c)+l-ish.
    peaks = [peak for _, peak, _, _, _ in rows]
    assert peaks == sorted(peaks, reverse=True)
    # 2 slots hold ~2 hidden states + flow, versus T+1 for store-all:
    # at least an 8x live-memory reduction on this chain.
    assert peaks[-1] * 8 < peaks[0]
    c2_fwd = rows[-1][2]
    assert c2_fwd == opt_forwards(len(rnn.bind(x_seq)), 2)
