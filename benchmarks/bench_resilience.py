"""E21 (extension) — resilience: what does surviving crashes cost?

Sections III/VI put training on field nodes with intermittent power; the
:mod:`repro.resilience` subsystem makes crashes a first-class workload.
This bench prices the two halves of the story and writes their tables:

* the *planning* half — the Young/Daly interval sweep at two fault
  regimes (the measured optimum must land on τ*'s grid neighbourhood);
* the *mechanism* half — a real ``Trainer`` driven through injected
  faults by :func:`~repro.resilience.fit_with_recovery`, timing the
  snapshot/restore machinery against the uninterrupted fit.
"""

import numpy as np

from repro.autodiff import (
    DenseLayer,
    Momentum,
    ReLULayer,
    SequentialNet,
    Trainer,
    TrainerConfig,
    gaussian_blobs,
)
from repro.resilience import (
    FaultInjector,
    FixedIntervalPolicy,
    fit_with_recovery,
    sweep_intervals,
)

REGIMES = {
    "flaky_sd": dict(mtbf_seconds=2 * 3600.0, snapshot_seconds=30.0),
    "stable_emmc": dict(mtbf_seconds=12 * 3600.0, snapshot_seconds=2.0),
}


def _sweeps():
    return {
        name: sweep_intervals(
            24 * 3600.0, kw["snapshot_seconds"], 60.0, kw["mtbf_seconds"],
            trials=40, seed=0,
        )
        for name, kw in REGIMES.items()
    }


def test_young_daly_sweep(benchmark, outdir):
    results = benchmark.pedantic(_sweeps, rounds=3, iterations=1)

    lines = ["regime,interval_s,tau_ratio,predicted_h,measured_h"]
    for name, sweep in results.items():
        for row in sweep.rows:
            lines.append(
                f"{name},{row.interval_seconds:.1f},"
                f"{row.interval_seconds / sweep.tau_star_seconds:.3f},"
                f"{row.predicted_seconds / 3600:.3f},{row.measured_seconds / 3600:.3f}"
            )
    (outdir / "resilience_sweep.csv").write_text("\n".join(lines) + "\n")

    # The acceptance criterion, at both (MTBF, cost) regimes: the
    # measured optimum recovers the Young/Daly prediction.
    for name, sweep in results.items():
        assert sweep.recovers_young_daly(), name


def _make_trainer():
    rng = np.random.default_rng(7)
    net = SequentialNet(
        [
            DenseLayer(6, 24, rng, name="fc0"),
            ReLULayer(name="r0"),
            DenseLayer(24, 3, rng, name="head"),
        ]
    )
    return Trainer(
        net, Momentum(net.layers, lr=0.02), TrainerConfig(epochs=6, shuffle_seed=7)
    )


def test_recovery_machinery_overhead(benchmark, outdir):
    data = gaussian_blobs(64, 3, 6, np.random.default_rng(2), separation=6.0)
    ref = _make_trainer()
    ref.fit(data)

    def crashy_fit():
        t = _make_trainer()
        report = fit_with_recovery(
            t,
            data,
            policy=FixedIntervalPolicy(8),
            injector=FaultInjector([10, 30, 50]),
        )
        return t, report

    t, report = benchmark.pedantic(crashy_fit, rounds=3, iterations=1)

    (outdir / "resilience_recovery.csv").write_text(
        "faults,restores,snapshots,lost_steps,final_step\n"
        f"{report.faults},{report.restores},{report.snapshots},"
        f"{report.lost_steps},{report.final_step}\n"
    )

    assert report.faults == 3
    # Recovery must not change the answer, only the wall clock.
    assert [r.mean_loss for r in t.history] == [r.mean_loss for r in ref.history]
