"""E24 (extension) — memory-aware inference ordering on branchy graphs.

For edge *inference* (the nodes' day job) the memory knob is the
execution order of a branchy DAG.  This bench builds an inception-style
multi-branch block, compares the worst valid topological order against
the greedy heuristic and (where tractable) the exhaustive optimum, and
writes the comparison artifact.
"""

import itertools

from repro.errors import GraphError
from repro.graph import (
    Concat,
    Conv2d,
    Graph,
    TensorSpec,
    greedy_min_peak_order,
    optimal_order,
    peak_memory_of_order,
)


def inception_block() -> Graph:
    """input -> 4 branches (1x1 / 3x3 / 5x5 / wide-then-narrow) -> concat."""
    g = Graph("inception")
    src = g.add_input("input", TensorSpec((8, 16, 16)))
    b0 = g.add("b0", Conv2d(in_channels=8, out_channels=4, kernel_size=1), [src])
    b1a = g.add("b1a", Conv2d(in_channels=8, out_channels=24, kernel_size=1), [src])
    b1 = g.add("b1", Conv2d(in_channels=24, out_channels=4, kernel_size=3, padding=1), [b1a])
    b2a = g.add("b2a", Conv2d(in_channels=8, out_channels=16, kernel_size=1), [src])
    b2 = g.add("b2", Conv2d(in_channels=16, out_channels=4, kernel_size=5, padding=2), [b2a])
    b3 = g.add("b3", Conv2d(in_channels=8, out_channels=4, kernel_size=1), [src])
    merge = Concat()
    merge.arity = 4
    g.add("merge", merge, [b0, b1, b2, b3])
    g.infer()
    return g


def _all_topological_orders(g: Graph, limit: int = 50_000):
    names = g.topological_order()
    found = []
    for perm in itertools.permutations(names):
        try:
            peak = peak_memory_of_order(g, list(perm))
        except GraphError:
            continue
        found.append((list(perm), peak))
        if len(found) >= limit:
            break
    return found


def test_ordering_gap(benchmark, outdir):
    g = inception_block()
    order, opt_peak = benchmark.pedantic(lambda: optimal_order(g), rounds=3, iterations=1)

    greedy = greedy_min_peak_order(g)
    greedy_peak = peak_memory_of_order(g, greedy)
    all_orders = _all_topological_orders(g)
    worst_peak = max(p for _, p in all_orders)
    best_peak = min(p for _, p in all_orders)

    (outdir / "ordering.txt").write_text(
        f"inception block ({len(g)} nodes, {len(all_orders)} valid orders)\n"
        f"worst order peak : {worst_peak}\n"
        f"greedy peak      : {greedy_peak}\n"
        f"optimal peak     : {opt_peak}\n"
        f"gap worst/optimal: {worst_peak / opt_peak:.2f}x\n"
    )

    # Exhaustive enumeration confirms the branch-and-bound optimum.
    assert opt_peak == best_peak
    # The heuristic is valid and no worse than the worst order...
    assert best_peak <= greedy_peak <= worst_peak
    # ...and ordering genuinely matters on this block (> 15% spread).
    assert worst_peak > 1.15 * best_peak
