"""E17 (analysis) — convention sensitivity of the Figure 1 crossovers.

Explains the one quantitative delta from the paper (Figure 1d's ρ ≈ 1.6
claim): sweeping the backward/forward cost ratio and the in-flight slot
charge shows the paper's number emerges at bwd = 2×fwd, while our default
(bwd = fwd, the literal "2ρl" reading) gives 2.0 for ResNet-152.
"""

from repro.experiments import fit_rho, sensitivity_sweep, sensitivity_table
from repro.units import GB


def test_sensitivity_sweep(benchmark, outdir):
    points = benchmark.pedantic(sensitivity_sweep, rounds=3, iterations=1)
    (outdir / "sensitivity.txt").write_text(sensitivity_table().render())

    assert points
    # Every convention keeps the crossovers inside the paper's plotted
    # rho range [1, 3] for all models.
    assert all(p.fit_rho is not None and p.fit_rho <= 3.0 for p in points)
    # The paper's 1.6 claim is recovered under bwd=2 fwd.
    r152 = {
        (p.bwd_ratio, p.inflight_slots): p.fit_rho
        for p in points
        if p.depth == 152
    }
    assert r152[(2.0, 1)] <= 1.65
    # And the literal 2-rho-l reading gives our reported 2.0.
    assert r152[(1.0, 1)] == 2.0
    # Conventions never change model ordering.
    for ratio in (0.5, 1.0, 2.0):
        for w in (0, 1):
            rhos = [
                p.fit_rho for p in sorted(points, key=lambda q: q.depth)
                if p.bwd_ratio == ratio and p.inflight_slots == w
            ]
            assert rhos == sorted(rhos)
