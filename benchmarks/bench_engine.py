"""Engine overhead: VM-based run_schedule must cost ≤1.05x the old executor.

The refactor moved ``autodiff.run_schedule`` from its own action loop
onto the shared schedule VM (``repro.engine``): one generic dispatch
loop calling :class:`~repro.engine.tensor.TensorBackend` methods, with
step observation behind an ``on_step is None`` fast path.  The price of
that indirection is bounded here: the *pre-refactor* instrumented
executor loop is frozen verbatim below (commit e934dff) as the
reference, both run the frozen seed workload (16-layer dense/ReLU net,
Revolve c=3), and the paired per-round ratio must stay under 1.05x.
"""

from __future__ import annotations

import statistics
import timeit

import numpy as np

from repro.autodiff import DenseLayer, ReLULayer, SequentialNet, run_schedule
from repro.autodiff.executor import CheckpointedResult
from repro.autodiff.loss import softmax_cross_entropy
from repro.autodiff.meter import MemoryMeter
from repro.checkpointing import ChainSpec, revolve_schedule
from repro.checkpointing.actions import ActionKind
from repro.engine import SimBackend, compile_schedule, execute
from repro.errors import ExecutionError
from repro.obs import get_tracer

DEPTH = 16
WIDTH = 192
BATCH = 64
SLOTS = 3
REPEATS = 15
NUMBER = 3
MAX_RATIO = 1.05

# Compiled sim-path gate: a warm CompiledProgram (the common case — the
# program cache hands the same object to every ρ probe) must beat the
# interpreted action loop by at least MIN_SPEEDUP; 10x is the target.
SIM_DEPTH = 256
SIM_SLOTS = 8
MIN_SPEEDUP = 5.0
TARGET_SPEEDUP = 10.0


def reference_run_schedule(net, schedule, x, labels, loss_fn=softmax_cross_entropy):
    """The pre-refactor executor loop, frozen verbatim (commit e934dff)."""
    l = len(net)
    if schedule.length != l:
        raise ExecutionError(f"schedule length {schedule.length} != network depth {l}")
    tracer = get_tracer()
    traced = tracer.enabled
    meter = MemoryMeter()
    slots: dict[int, tuple[int, np.ndarray]] = {}
    cursor_idx = 0
    cursor: np.ndarray = x
    meter.hold("cursor", cursor)
    pending = l
    dy: np.ndarray | None = None
    loss_value: float | None = None
    grads = {}
    forward_steps = 0
    replay_steps = 0
    peak_slot_bytes = 0
    t0 = 0.0

    def _slot_bytes() -> int:
        return sum(int(a.nbytes) for _, a in slots.values())

    with tracer.span(
        "run_schedule",
        category="exec",
        strategy=schedule.strategy,
        length=l,
        slots=schedule.slots,
    ) as run_span:
        for pos, action in enumerate(schedule.actions):
            kind = action.kind
            if traced:
                t0 = tracer.now()
            if kind is ActionKind.ADVANCE:
                to = action.arg
                if not cursor_idx < to <= l:
                    raise ExecutionError(f"action {pos}: ADVANCE {cursor_idx}->{to} invalid")
                for i in range(cursor_idx, to):
                    cursor = net.layers[i].forward(cursor)
                    meter.hold("cursor", cursor)
                    forward_steps += 1
                cursor_idx = to
            elif kind is ActionKind.SNAPSHOT:
                if action.arg >= schedule.slots:
                    raise ExecutionError(
                        f"action {pos}: slot {action.arg} exceeds budget {schedule.slots}"
                    )
                slots[action.arg] = (cursor_idx, cursor)
                meter.hold(f"slot{action.arg}", cursor)
                peak_slot_bytes = max(peak_slot_bytes, _slot_bytes())
            elif kind is ActionKind.RESTORE:
                if action.arg not in slots:
                    raise ExecutionError(f"action {pos}: RESTORE from empty slot {action.arg}")
                cursor_idx, cursor = slots[action.arg]
                meter.hold("cursor", cursor)
            elif kind is ActionKind.FREE:
                if action.arg not in slots:
                    raise ExecutionError(f"action {pos}: FREE of empty slot {action.arg}")
                del slots[action.arg]
                meter.release(f"slot{action.arg}")
            elif kind is ActionKind.ADJOINT:
                step = action.arg
                if step != pending:
                    raise ExecutionError(
                        f"action {pos}: ADJOINT({step}) out of order (pending {pending})"
                    )
                if cursor_idx != step - 1:
                    raise ExecutionError(
                        f"action {pos}: ADJOINT({step}) needs cursor at {step - 1}, "
                        f"have {cursor_idx}"
                    )
                layer = net.layers[step - 1]
                if step == l:
                    y = layer.forward(cursor)
                    meter.hold("head", y)
                    loss_value, dy = loss_fn(y, labels)
                    meter.release("head")
                    meter.hold("grad", dy)
                if dy is None:
                    raise ExecutionError("gradient flow unseeded")
                replay_steps += 1
                dx, layer_grads = layer.backward(cursor, dy)
                dy = dx
                meter.hold("grad", dy)
                for pname, g in layer_grads.items():
                    grads[(layer.name, pname)] = g
                pending -= 1
            else:
                raise ExecutionError(f"unknown action kind {kind}")
            if traced:
                tracer.record(
                    kind.name,
                    "action",
                    t0,
                    arg=action.arg,
                    pos=pos,
                    live_bytes=meter.current_bytes,
                )

        if pending != 0:
            raise ExecutionError(f"schedule left backward steps {pending}..1 undone")
        assert loss_value is not None
        run_span.set_tag("peak_bytes", meter.peak_bytes)
    return CheckpointedResult(
        loss=loss_value,
        grads=grads,
        peak_bytes=meter.peak_bytes,
        peak_slot_bytes=peak_slot_bytes,
        forward_steps=forward_steps,
        replay_steps=replay_steps,
    )


def build():
    rng = np.random.default_rng(0)
    layers = []
    for i in range(DEPTH - 1):
        if i % 2:
            layers.append(ReLULayer(name=f"r{i}"))
        else:
            layers.append(DenseLayer(WIDTH, WIDTH, rng, name=f"fc{i}"))
    layers.append(DenseLayer(WIDTH, 10, rng, name="head"))
    net = SequentialNet(layers)
    x = rng.normal(size=(BATCH, WIDTH))
    y = rng.integers(0, 10, size=BATCH)
    return net, x, y


def paired_ratio(fn_ref, fn_new) -> tuple[float, float, float]:
    """Median of per-round ``new/ref`` ratios, plus min per-call times.

    Each round times both candidates back to back (order alternating),
    so multiplicative noise — CPU-frequency drift, noisy neighbours —
    hits the pair together and cancels in the ratio; the median across
    rounds discards the spikes that straddle a pair anyway.
    """
    ref_t, new_t = timeit.Timer(fn_ref), timeit.Timer(fn_new)
    ratios = []
    best = [float("inf"), float("inf")]
    for round_no in range(REPEATS):
        pair = (ref_t, new_t) if round_no % 2 == 0 else (new_t, ref_t)
        first = pair[0].timeit(number=NUMBER) / NUMBER
        second = pair[1].timeit(number=NUMBER) / NUMBER
        t_ref, t_new = (first, second) if round_no % 2 == 0 else (second, first)
        ratios.append(t_new / t_ref)
        best[0] = min(best[0], t_ref)
        best[1] = min(best[1], t_new)
    return statistics.median(ratios), best[0], best[1]


def test_vm_executor_within_five_percent(outdir):
    net, x, y = build()
    sch = revolve_schedule(DEPTH, SLOTS)

    # Identical numerics first — the VM runs the same math in the same order.
    ref = reference_run_schedule(net, sch, x, y)
    ours = run_schedule(net, sch, x, y)
    assert ours.loss == ref.loss
    assert ours.forward_steps == ref.forward_steps
    assert ours.replay_steps == ref.replay_steps
    assert ours.peak_bytes == ref.peak_bytes
    assert ours.peak_slot_bytes == ref.peak_slot_bytes
    for k in ref.grads:
        assert np.array_equal(ours.grads[k], ref.grads[k])

    ratio, t_ref, t_vm = paired_ratio(
        lambda: reference_run_schedule(net, sch, x, y),
        lambda: run_schedule(net, sch, x, y),
    )

    report = (
        f"run_schedule, l={DEPTH}, revolve c={SLOTS}, batch={BATCH}x{WIDTH}\n"
        f"pre-refactor executor: {t_ref * 1e3:.3f} ms\n"
        f"engine VM + TensorBackend: {t_vm * 1e3:.3f} ms  "
        f"({ratio:.3f}x, budget {MAX_RATIO:.2f}x)\n"
    )
    (outdir / "engine_overhead.txt").write_text(report)
    print(report)

    assert ratio <= MAX_RATIO, (
        f"VM executor overhead {ratio:.3f}x exceeds {MAX_RATIO:.2f}x budget"
    )


def test_compiled_sim_speedup(outdir, bench_json):
    sch = revolve_schedule(SIM_DEPTH, SIM_SLOTS)
    spec = ChainSpec.homogeneous(SIM_DEPTH)
    program = compile_schedule(sch)

    # Identical stats first — the vectorized path is only a speedup if it
    # is also bit-identical to the interpreted loop.
    assert execute(sch, SimBackend(spec), compiled=program) == execute(
        sch, SimBackend(spec)
    )

    ratio_warm, t_interp, t_warm = paired_ratio(
        lambda: execute(sch, SimBackend(spec)),
        lambda: execute(sch, SimBackend(spec), compiled=program),
    )
    ratio_cold, _, t_cold = paired_ratio(
        lambda: execute(sch, SimBackend(spec)),
        lambda: execute(sch, SimBackend(spec), compiled=compile_schedule(sch)),
    )
    speedup_warm = 1.0 / ratio_warm
    speedup_cold = 1.0 / ratio_cold

    payload = {
        "workload": {
            "strategy": "revolve",
            "length": SIM_DEPTH,
            "slots": SIM_SLOTS,
            "actions": len(sch.actions),
        },
        "interpreted_ms": t_interp * 1e3,
        "compiled_warm_ms": t_warm * 1e3,
        "compiled_cold_ms": t_cold * 1e3,
        "speedup_warm": speedup_warm,
        "speedup_cold": speedup_cold,
        "gate": MIN_SPEEDUP,
        "target": TARGET_SPEEDUP,
        "repeats": REPEATS,
        "number": NUMBER,
    }
    bench_json("engine", payload)

    report = (
        f"sim execute, revolve l={SIM_DEPTH} c={SIM_SLOTS} "
        f"({len(sch.actions)} actions)\n"
        f"interpreted loop: {t_interp * 1e3:.3f} ms\n"
        f"compiled (warm): {t_warm * 1e3:.3f} ms  ({speedup_warm:.1f}x)\n"
        f"compiled (cold, incl. compile): {t_cold * 1e3:.3f} ms  "
        f"({speedup_cold:.1f}x)\n"
        f"gate {MIN_SPEEDUP:.0f}x, target {TARGET_SPEEDUP:.0f}x\n"
    )
    print(report)

    assert speedup_warm >= MIN_SPEEDUP, (
        f"compiled sim path only {speedup_warm:.1f}x over interpreted "
        f"(gate {MIN_SPEEDUP:.0f}x)"
    )
