"""E11 — executable checkpointing: real training-step cost and memory.

Benchmarks one optimizer step of a 16-layer NumPy chain under store-all,
uniform and Revolve schedules, verifying gradients identical and the
peak-memory/time trade-off (revolve at c=2 uses the least live memory and
the most recompute).
"""

import numpy as np
import pytest

from repro.autodiff import DenseLayer, ReLULayer, SequentialNet, run_schedule
from repro.checkpointing import revolve_schedule, store_all_schedule, uniform_schedule

DEPTH = 16
WIDTH = 128
BATCH = 64


def build():
    rng = np.random.default_rng(0)
    layers = []
    for i in range(DEPTH - 1):
        if i % 2:
            layers.append(ReLULayer(name=f"r{i}"))
        else:
            layers.append(DenseLayer(WIDTH, WIDTH, rng, name=f"fc{i}"))
    layers.append(DenseLayer(WIDTH, 10, rng, name="head"))
    net = SequentialNet(layers)
    x = rng.normal(size=(BATCH, WIDTH))
    y = rng.integers(0, 10, size=BATCH)
    return net, x, y


SCHEDULES = {
    "store_all": lambda: store_all_schedule(DEPTH),
    "uniform_s4": lambda: uniform_schedule(DEPTH, 4),
    "revolve_c4": lambda: revolve_schedule(DEPTH, 4),
    "revolve_c2": lambda: revolve_schedule(DEPTH, 2),
}


@pytest.mark.parametrize("name", list(SCHEDULES))
def test_training_step(name, benchmark, outdir):
    net, x, y = build()
    sch = SCHEDULES[name]()
    res = benchmark(lambda: run_schedule(net, sch, x, y))

    # Gradients identical to the store-all reference.
    loss_ref, grads_ref, _ = net.train_step(x, y)
    assert res.loss == loss_ref
    for k in grads_ref:
        assert np.array_equal(res.grads[k], grads_ref[k])

    line = (
        f"{name}: peak_bytes={res.peak_bytes} forward_steps={res.forward_steps} "
        f"replays={res.replay_steps}\n"
    )
    with open(outdir / "autodiff_steps.txt", "a") as fh:
        fh.write(line)


def test_memory_vs_recompute_frontier(benchmark, outdir):
    """The executable frontier: fewer slots => less memory, more forwards."""
    net, x, y = build()

    def sweep():
        rows = []
        for c in (DEPTH - 1, 8, 4, 2, 1):
            res = run_schedule(net, revolve_schedule(DEPTH, c), x, y)
            rows.append((c, res.peak_bytes, res.forward_steps))
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    (outdir / "autodiff_frontier.csv").write_text(
        "slots,peak_bytes,forward_steps\n"
        + "\n".join(f"{c},{p},{f}" for c, p, f in rows)
        + "\n"
    )
    peaks = [p for _, p, _ in rows]
    fwds = [f for _, _, f in rows]
    assert peaks == sorted(peaks, reverse=True)
    assert fwds == sorted(fwds)
