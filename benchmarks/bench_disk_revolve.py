"""E14 (extension) — two-level checkpointing on the node's SD card.

The paper cites INRIA's disk-revolve as [1]; Waggle nodes pair 2 GB RAM
with a ≥32 GB SD card, so the natural extension is to spill checkpoints
to flash.  This bench sweeps memory-slot counts and disk-cost ratios on
LinearResNet-152, asserting that the tier strictly reduces total cost
whenever disk I/O is cheaper than the recomputation it avoids, and
benchmarks the DP + schedule generation + tiered validation.
"""

from repro.checkpointing import (
    disk_revolve_cost,
    disk_revolve_schedule,
    opt_forwards,
    simulate_tiered,
)

L = 152
SLOTS = (1, 2, 3, 5, 8)
DISK_COSTS = (0.25, 1.0, 4.0)  # write=read, in forward units


def _sweep():
    rows = []
    for c in SLOTS:
        for d in DISK_COSTS:
            sch = disk_revolve_schedule(L, c, d, d)
            st = simulate_tiered(sch)
            rows.append((c, d, st.total_cost(d, d), st.disk_writes, st.peak_memory_slots))
    return rows


def test_disk_revolve_sweep(benchmark, outdir):
    rows = benchmark.pedantic(_sweep, rounds=3, iterations=1)

    lines = ["mem_slots,disk_cost,total_cost,disk_writes,peak_mem_slots,memory_only_cost"]
    for c, d, cost, writes, peak in rows:
        lines.append(f"{c},{d},{cost},{writes},{peak},{opt_forwards(L, c)}")
    (outdir / "disk_revolve.csv").write_text("\n".join(lines) + "\n")

    for c, d, cost, writes, peak in rows:
        mem_only = opt_forwards(L, c)
        # Schedule cost equals the DP optimum...
        assert abs(cost - disk_revolve_cost(L, c, d, d)) < 1e-9
        # ...never exceeds memory-only Revolve, and never beats the
        # single-sweep floor.
        assert cost <= mem_only + 1e-9
        assert cost >= L - 1 - 1e-9
        assert peak <= c

    # Headline: at 3 memory slots with SD I/O ~1 forward-unit, the disk
    # tier cuts total reversal cost by > 2x.
    by = {(c, d): cost for c, d, cost, _, _ in rows}
    assert by[(3, 1.0)] < opt_forwards(L, 3) / 2
    # Cheap disk approaches the sweep floor (within ~1.5x of l-1,
    # versus 2.7x for memory-only at 8 slots).
    assert by[(8, 0.25)] < 1.5 * (L - 1)
    assert opt_forwards(L, 8) > 2.5 * (L - 1)
