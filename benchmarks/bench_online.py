"""E18 (extension) — online vs batch in-situ adaptation.

The batch pipeline waits for the whole episode; the streaming adapter
trains as tracks close.  This bench runs both on the same episode and
asserts the online student (a) surpasses the teacher well before the
stream ends, and (b) lands within a few points of the batch student —
the deployment-relevant result (adaptation does not need to wait).
"""

import numpy as np

from repro.studentteacher import (
    OnlineAdapter,
    OnlineConfig,
    StudentConfig,
    TeacherModel,
    ViewpointWorld,
    harvest_labels,
    track_episode,
    train_student,
)
from repro.autodiff.data import Dataset


def _setting():
    rng = np.random.default_rng(0)
    world = ViewpointWorld(num_classes=5, feature_dim=8, rng=rng)
    x_tr, y_tr = world.sample_frontal(200)
    teacher = TeacherModel.fit(x_tr, y_tr)
    episode = world.generate_episode(
        n_subjects=100, frames_per_crossing=20, camera_skew_deg=60.0
    )
    angles = np.linspace(-60, 60, 23)
    x_ev, y_ev, _ = world.sample_at_angles(100, angles)
    return world, teacher, episode, x_ev, y_ev


def _run_online(teacher, episode, x_ev, y_ev):
    adapter = OnlineAdapter(teacher, 8, 5, OnlineConfig(), seed=1)
    trajectory = []
    for i, frame in enumerate(episode.frames):
        adapter.process_frame(frame)
        if i % 50 == 0:
            trajectory.append((frame.t, adapter.accuracy(x_ev, y_ev)))
    adapter.finalize()
    trajectory.append((episode.frames[-1].t, adapter.accuracy(x_ev, y_ev)))
    return adapter, trajectory


def test_online_vs_batch(benchmark, outdir):
    world, teacher, episode, x_ev, y_ev = _setting()

    adapter, trajectory = benchmark.pedantic(
        lambda: _run_online(teacher, episode, x_ev, y_ev), rounds=3, iterations=1
    )

    # Batch baseline on the identical episode.
    assignments = track_episode(episode)
    harvest = harvest_labels(episode, assignments, teacher)
    batch_student = train_student(
        Dataset(harvest.x, harvest.y), 5, StudentConfig(epochs=20)
    )
    batch_acc = float(
        (batch_student.net.forward(x_ev).argmax(axis=1) == y_ev).mean()
    )
    online_acc = adapter.accuracy(x_ev, y_ev)
    teacher_acc = teacher.accuracy(x_ev, y_ev)

    lines = ["t,online_accuracy"]
    lines += [f"{t},{a:.4f}" for t, a in trajectory]
    lines.append(f"final_online,{online_acc:.4f}")
    lines.append(f"final_batch,{batch_acc:.4f}")
    lines.append(f"teacher,{teacher_acc:.4f}")
    (outdir / "online_adaptation.csv").write_text("\n".join(lines) + "\n")

    assert online_acc > teacher_acc + 0.1
    assert online_acc > batch_acc - 0.05  # streaming matches batch
    # Improvement is visible by the stream's midpoint.
    mid = trajectory[len(trajectory) // 2][1]
    assert mid > teacher_acc
