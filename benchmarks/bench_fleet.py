"""E20 (extension) — fleet: is cross-node model exchange worth it?

Section I cautions that shuttling model updates between nodes "might
introduce excessive communication"; Section III adds that viewpoint-
specialized knowledge transfers poorly.  This bench prices federation
for a 10-node fleet across transfer-value assumptions and writes the
accuracy-vs-radio table.
"""

from repro.edge import FleetConfig, simulate_fleet
from repro.units import GB

SCENARIOS = {
    "isolated": dict(federation_period=0),
    "fed_lowtransfer": dict(federation_period=5, transfer_value=0.15),
    "fed_hightransfer": dict(federation_period=5, transfer_value=0.6),
}


def _sweep():
    out = {}
    for name, kw in SCENARIOS.items():
        out[name] = simulate_fleet(
            FleetConfig(n_nodes=10, days=30, crossings_per_day_mean=40.0, seed=4, **kw)
        )
    return out


def test_fleet_federation_tradeoff(benchmark, outdir):
    results = benchmark.pedantic(_sweep, rounds=3, iterations=1)

    lines = ["scenario,mean_acc,worst_acc,radio_gb"]
    for name, res in results.items():
        lines.append(
            f"{name},{res.mean_final_accuracy:.4f},{res.worst_final_accuracy:.4f},"
            f"{res.radio_bytes_total / GB:.2f}"
        )
    (outdir / "fleet.csv").write_text("\n".join(lines) + "\n")

    iso = results["isolated"]
    low = results["fed_lowtransfer"]
    high = results["fed_hightransfer"]
    # Federation costs real bandwidth...
    assert iso.radio_bytes_total == 0
    assert low.radio_bytes_total > GB
    # ...helps in proportion to how transferable the knowledge is...
    assert high.mean_final_accuracy >= low.mean_final_accuracy >= iso.mean_final_accuracy
    # ...and at low (viewpoint-specific) transfer value the mean gain is
    # marginal — the paper's caution, quantified.
    gain_low = low.mean_final_accuracy - iso.mean_final_accuracy
    gain_high = high.mean_final_accuracy - iso.mean_final_accuracy
    assert gain_low < 0.5 * max(gain_high, 1e-9) or gain_low < 0.05
