"""E20 (extension) — fleet: federation trade-off + engine throughput.

Two benches share this file:

* the original 10-node federation cost/benefit sweep (accuracy vs radio
  across transfer-value assumptions, ``fleet.csv``);
* the fleet-engine throughput ladder — legacy Python-loop engine vs its
  bit-exact vectorized twin vs the native event-driven megafleet —
  reported as simulated device-days per second of wall clock in
  ``BENCH_fleet.json``.  The megafleet row is a hard gate: the ROADMAP's
  million-device north star requires ≥ 1M device-days/s.

Timings use ``time.perf_counter`` directly (not pytest-benchmark) so CI
can run this file with the plain pytest it has.
"""

import time

from repro.edge import FleetConfig, simulate_fleet
from repro.megafleet import preset_config, run_megafleet, simulate_fleet_vectorized
from repro.units import GB

#: the hard throughput gate for the native engine (device-days / s)
MEGAFLEET_GATE = 1_000_000

SCENARIOS = {
    "isolated": dict(federation_period=0),
    "fed_lowtransfer": dict(federation_period=5, transfer_value=0.15),
    "fed_hightransfer": dict(federation_period=5, transfer_value=0.6),
}


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0


def test_fleet_federation_tradeoff(outdir):
    results = {}
    for name, kw in SCENARIOS.items():
        results[name], _ = _timed(
            simulate_fleet,
            FleetConfig(n_nodes=10, days=30, crossings_per_day_mean=40.0, seed=4, **kw),
        )

    lines = ["scenario,mean_acc,worst_acc,radio_gb"]
    for name, res in results.items():
        lines.append(
            f"{name},{res.mean_final_accuracy:.4f},{res.worst_final_accuracy:.4f},"
            f"{res.radio_bytes_total / GB:.2f}"
        )
    (outdir / "fleet.csv").write_text("\n".join(lines) + "\n")

    iso = results["isolated"]
    low = results["fed_lowtransfer"]
    high = results["fed_hightransfer"]
    # Federation costs real bandwidth...
    assert iso.radio_bytes_total == 0
    assert low.radio_bytes_total > GB
    # ...helps in proportion to how transferable the knowledge is...
    assert high.mean_final_accuracy >= low.mean_final_accuracy >= iso.mean_final_accuracy
    # ...and at low (viewpoint-specific) transfer value the mean gain is
    # marginal — the paper's caution, quantified.
    gain_low = low.mean_final_accuracy - iso.mean_final_accuracy
    gain_high = high.mean_final_accuracy - iso.mean_final_accuracy
    assert gain_low < 0.5 * max(gain_high, 1e-9) or gain_low < 0.05


def test_fleet_engine_throughput(bench_json):
    """Loop vs vectorized vs megafleet, gated at 1M device-days/s."""
    # Legacy loop and its vectorized twin run the same config; the loop
    # gets a small fleet (it is the slow one being measured).
    loop_cfg = FleetConfig(
        n_nodes=500, days=30, crash_rate_per_day=0.02, federation_period=5, seed=0
    )
    loop_res, loop_s = _timed(simulate_fleet, loop_cfg)
    vec_cfg = FleetConfig(
        n_nodes=20_000, days=30, crash_rate_per_day=0.02, federation_period=5, seed=0
    )
    vec_res, vec_s = _timed(simulate_fleet_vectorized, vec_cfg)

    mega_cfg = preset_config(
        "mixed", 1_000_000, days=30, federation_period=0, report_every=0, seed=0
    )
    mega_res, mega_s = _timed(run_megafleet, mega_cfg)

    def rate(n_nodes, days, seconds):
        return n_nodes * days / seconds

    engines = {
        "loop": {
            "devices": loop_cfg.n_nodes,
            "days": loop_cfg.days,
            "wall_s": round(loop_s, 4),
            "device_days_per_s": round(rate(loop_cfg.n_nodes, loop_cfg.days, loop_s)),
        },
        "vectorized": {
            "devices": vec_cfg.n_nodes,
            "days": vec_cfg.days,
            "wall_s": round(vec_s, 4),
            "device_days_per_s": round(rate(vec_cfg.n_nodes, vec_cfg.days, vec_s)),
        },
        "megafleet": {
            "devices": mega_cfg.n_devices,
            "days": mega_cfg.days,
            "wall_s": round(mega_s, 4),
            "device_days_per_s": round(rate(mega_cfg.n_devices, mega_cfg.days, mega_s)),
        },
    }
    bench_json(
        "fleet",
        {
            "gate_device_days_per_s": MEGAFLEET_GATE,
            "engines": engines,
            "megafleet_crashes": mega_res.total_crashes,
            "megafleet_mean_final_accuracy": round(mega_res.mean_final_accuracy, 6),
        },
    )

    # Sanity: the engines simulate comparable physics (same config for
    # loop vs vectorized would be bit-equal; that is the golden test's
    # job — here we only require everyone produced a live fleet).
    assert loop_res.mean_final_accuracy > 0.5
    assert vec_res.mean_final_accuracy > 0.5
    assert mega_res.mean_final_accuracy > 0.5
    # The ladder must actually be a ladder...
    assert engines["vectorized"]["device_days_per_s"] > engines["loop"]["device_days_per_s"]
    # ...and the native engine must clear the million-device gate.
    assert engines["megafleet"]["device_days_per_s"] >= MEGAFLEET_GATE, (
        f"megafleet throughput {engines['megafleet']['device_days_per_s']:,} "
        f"device-days/s below the {MEGAFLEET_GATE:,} gate"
    )
