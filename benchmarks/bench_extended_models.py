"""E19 (extension) — the framework beyond ResNets.

Runs MobileNetV2 (edge-native) and VGG-16 (weight-heavy) through the same
account→plan pipeline as the paper's ResNets and asserts the
architecture-generic conclusions recorded in EXPERIMENTS.md.
"""

import math

from repro.experiments import extended_model_rows, extended_model_table


def test_extended_models(benchmark, outdir):
    rows = benchmark.pedantic(extended_model_rows, rounds=3, iterations=1)
    (outdir / "extended_models.txt").write_text(extended_model_table().render())

    by = {(r.model, r.batch_size): r for r in rows}
    # VGG-16 cannot train on 2 GB at all (fixed cost > budget).
    assert all(math.isinf(by[("VGG16", k)].rho) for k in (1, 8, 32, 64))
    # MobileNetV2: 3.3x fewer params than R18, >2x the activations,
    # and needs Revolve from batch 32.
    assert by[("MobileNetV2", 1)].weight_mb < by[("ResNet18", 1)].weight_mb / 3
    assert by[("MobileNetV2", 32)].strategy == "revolve"
    assert by[("MobileNetV2", 64)].rho < 1.5
    # ResNet-18 crosses into checkpointing territory at batch 64.
    assert by[("ResNet18", 64)].strategy == "revolve"
