"""E12 — Section III: the in-situ student-teacher pipeline, end to end.

Benchmarks the full pipeline (world generation, tracking, harvesting,
student training, evaluation) and asserts the motivating claims: the
viewpoint gap exists, the student closes it, labels propagate "tens of
images" per identification, and the harvested set fits the paper's 10 kB
per-image storage budget trivially.
"""

from repro.edge import ODROID_XU4, ImageStore
from repro.studentteacher import PipelineConfig, StudentConfig, run_pipeline
from repro.units import MB

CFG = PipelineConfig(
    n_subjects=100,
    camera_skew_deg=60.0,
    angle_bins=(15.0, 30.0, 45.0, 60.0),
    student=StudentConfig(epochs=20),
    seed=0,
)


def test_viewpoint_pipeline(benchmark, outdir):
    res = benchmark.pedantic(lambda: run_pipeline(CFG), rounds=3, iterations=1)

    store = ImageStore(capacity_bytes=ODROID_XU4.storage_bytes)
    report = (
        res.summary()
        + f"\nskew recovery: {res.skew_recovery:+.3f}"
        + f"\nstorage needed: {store.dataset_bytes(len(res.harvest)) / MB:.1f} MB"
        + f"\npaper 100k-image example: {store.dataset_bytes(100_000) / MB:.1f} MB\n"
    )
    (outdir / "student_teacher.txt").write_text(report)

    # The why: the teacher collapses off-frontal...
    assert res.teacher_frontal_accuracy > 0.95
    assert res.teacher_by_angle[60.0] < 0.4
    # ...and the in-situ student recovers most of it.
    assert res.student_by_angle[60.0] > 0.8
    assert res.skew_recovery > 0.4
    # Label propagation yields "tens of images" per identification.
    assert len(res.harvest) / max(1, res.harvest.tracks_labelled) >= 10
    # Storage is a non-issue at 10 kB/image (paper Section III).
    assert store.fits(len(res.harvest))
    assert store.fits(100_000)
