"""E13 — the planner itself is cheap (the paper's poly-time claim).

Revolve's closed form answers 'minimal slots for ρ' in microseconds even
for chains far deeper than any ResNet; the schedule generator stays
near-linear in the action count.  This bench pins both costs.
"""

from repro.checkpointing import (
    min_slots_for_extra,
    opt_forwards,
    revolve_schedule,
    simulate,
    slots_for_rho,
)


def test_closed_form_scaling(benchmark):
    """P(l, c) via the binomial closed form across a wide (l, c) grid."""

    def sweep():
        total = 0
        for l in (152, 1_000, 10_000, 100_000):
            for c in (1, 2, 5, 10, 20, 50):
                total += opt_forwards(l, c)
        return total

    assert benchmark(sweep) > 0


def test_slot_search_scaling(benchmark):
    """Binary search for minimal slots at many ρ targets, deep chain."""

    def sweep():
        out = []
        for l in (152, 2_000, 20_000):
            for rho in (1.05, 1.1, 1.25, 1.5, 2.0, 3.0):
                out.append(slots_for_rho(l, rho))
        return out

    slots = benchmark(sweep)
    assert all(s >= 1 for s in slots)


def test_schedule_generation_scaling(benchmark):
    """Generate + validate the full action sequence for a deep chain."""

    def gen():
        sch = revolve_schedule(500, 8)
        stats = simulate(sch)
        return stats.forward_steps

    fwd = benchmark(gen)
    assert fwd == opt_forwards(500, 8)


def test_min_slots_budget_boundaries(benchmark):
    def sweep():
        return [min_slots_for_extra(10_000, budget) for budget in (0, 10, 10_000, 10**6)]

    vals = benchmark(sweep)
    assert vals[0] == 9_999  # zero budget => store-all
    assert vals == sorted(vals, reverse=True)
