"""E15 (extension) — precision vs checkpointing as memory levers.

Half precision halves the activation slope but barely touches the
optimizer-dominated fixed cost (AMP keeps fp32 masters); checkpointing
attacks the batch-scaled slope directly at a ρ cost.  This bench writes
the three-way comparison grid (fp32 / AMP / fp16-pure × store-all /
revolve-c / both) for ResNet-50 at batch 8 and asserts the ordering.
"""

from repro.checkpointing import memory_for_slots
from repro.experiments import memory_models
from repro.memory import cast_account, mixed_precision_account
from repro.units import MB

BATCH = 8
DEPTH = 50


def _grid():
    fp32 = memory_models()[DEPTH].account_ref
    amp = mixed_precision_account(fp32)
    fp16 = cast_account(fp32)
    rows = {}
    for name, acct in (("fp32", fp32), ("amp", amp), ("fp16", fp16)):
        slot = BATCH * acct.act_bytes_per_sample / DEPTH
        rows[(name, "store_all")] = acct.total_bytes(BATCH)
        rows[(name, "revolve_c5")] = memory_for_slots(5, acct.fixed_bytes, slot)
    return rows


def test_precision_vs_checkpointing(benchmark, outdir):
    rows = benchmark.pedantic(_grid, rounds=3, iterations=1)

    lines = ["precision,strategy,memory_mb"]
    for (prec, strat), b in sorted(rows.items()):
        lines.append(f"{prec},{strat},{b / MB:.1f}")
    (outdir / "ablation_precision.csv").write_text("\n".join(lines) + "\n")

    # Precision ordering holds within each strategy.
    for strat in ("store_all", "revolve_c5"):
        assert rows[("fp16", strat)] < rows[("amp", strat)] < rows[("fp32", strat)]
    # Checkpointing ordering holds within each precision.
    for prec in ("fp32", "amp", "fp16"):
        assert rows[(prec, "revolve_c5")] < rows[(prec, "store_all")]
    # The levers compose: fp16 + revolve is the global minimum.
    assert rows[("fp16", "revolve_c5")] == min(rows.values())
    # And checkpointed fp32 beats store-all AMP where activations
    # dominate — precision alone is not a substitute for checkpointing.
    assert rows[("fp32", "revolve_c5")] < rows[("amp", "store_all")]
