"""E4 — Section V: the checkpoint_sequential formula and its 2√l bound.

Regenerates the Mem(l, s) sweep, validates every cell by executing the
uniform schedule on the virtual machine, and benchmarks that validation
(schedule generation + simulation across the whole sweep).
"""

import math

from repro.checkpointing import uniform_lower_bound, uniform_memory_slots
from repro.experiments import section5_sweep, section5_table
from repro.zoo import RESNET_DEPTHS


def _sweep():
    return section5_sweep(lengths=RESNET_DEPTHS, max_segments=16)


def test_section5_formula_vs_execution(benchmark, outdir):
    rows = benchmark.pedantic(_sweep, rounds=3, iterations=1)

    (outdir / "section5.txt").write_text(section5_table().render())

    # Formula == executed peak for every (l, s).
    assert all(r.consistent for r in rows)

    # The 2·sqrt(l) lower bound: no s gets below it (modulo integer slack).
    for l in RESNET_DEPTHS:
        best = min(uniform_memory_slots(l, s) for s in range(1, l + 1))
        assert best >= uniform_lower_bound(l) - 2.0
        assert best <= uniform_lower_bound(l) + math.sqrt(l)
