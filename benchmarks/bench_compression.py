"""Compression-aware checkpointing: frontier dominance and compile-path
overhead gates.

Two things are pinned here and gated in CI via ``BENCH_compression.json``:

* **frontier dominance margins** — executing the compressed frontier
  (:func:`~repro.checkpointing.compressed_frontier`) on Figure-1 block
  chains with the BitTrain-like sparsity model, at least one compressed
  family must strictly reduce peak bytes vs pure ``revolve`` at
  equal-or-better wall time on some depth ≥ 34 panel, with gradient
  fidelity inside the codec's declared bound.  The per-depth margins are
  emitted so CI runs can be compared over time.
* **compile-path overhead** — compiling a compressed-band schedule must
  cost ≤ 1.05x compiling its uncompressed twin.  The band is a flag in
  the ordinary ``args`` lane of the program IR, so the compiler does no
  extra work per action; this gate keeps it that way.

A lossless-collapse check rides along: under the identity codec the
compressed frontier points must land exactly on their pure families.
"""

from __future__ import annotations

import statistics
import timeit

from repro.checkpointing import compressed_frontier, compressed_variant
from repro.checkpointing.revolve import revolve_schedule
from repro.engine import compile_schedule
from repro.edge.storage import BITTRAIN_SPARSE, LOSSLESS, SD_CARD
from repro.experiments.figure1 import _joint_spec

C = 3
#: Figure-1 depths for the dominance sweep; the gate needs one >= 34.
DEPTHS = (34, 50, 101)
BATCH, IMAGE = 8, 224  # panel b
UNIT_SECONDS = 1.0 / 30e9
COMPILE_SIZES = ((60, 3), (152, 3), (152, 8))
REPEATS = 15
MAX_COMPILE_OVERHEAD = 1.05


def _median_compile_seconds(schedule) -> float:
    return statistics.median(
        timeit.repeat(lambda: compile_schedule(schedule), repeat=REPEATS, number=1)
    )


def test_frontier_dominance_and_compile_overhead(outdir, bench_json):
    margins = []
    strict = 0
    rows = []
    for depth in DEPTHS:
        spec = _joint_spec(depth, BATCH, IMAGE)
        pts = {
            p.strategy: p
            for p in compressed_frontier(
                spec, C, SD_CARD, codec=BITTRAIN_SPARSE, unit_seconds=UNIT_SECONDS
            )
        }
        base = pts["revolve"]
        dominated = False
        for name in ("revolve_zip", "joint_zip"):
            p = pts[name]
            assert 0.0 <= p.fidelity_loss <= BITTRAIN_SPARSE.fidelity_loss, (depth, name)
            if p.peak_bytes < base.peak_bytes and p.wall_seconds <= base.wall_seconds:
                dominated = True
        if dominated:
            strict += 1
        best = min(
            (pts["revolve_zip"], pts["joint_zip"]),
            key=lambda p: (p.peak_bytes, p.wall_seconds),
        )
        margins.append(
            {
                "depth": depth,
                "slots": C,
                "codec": BITTRAIN_SPARSE.name,
                "dominates": dominated,
                "peak_margin_bytes": base.peak_bytes - best.peak_bytes,
                "wall_margin_s": base.wall_seconds - best.wall_seconds,
            }
        )
        rows.extend(pts.values())
    assert strict >= 1, "no compressed family dominated revolve on any depth >= 34"

    # Lossless collapse: identity codec -> pure-family measurements.
    spec = _joint_spec(34, BATCH, IMAGE)
    pts = {
        p.strategy: p
        for p in compressed_frontier(
            spec, C, SD_CARD, codec=LOSSLESS, unit_seconds=UNIT_SECONDS
        )
    }
    assert (pts["revolve_zip"].peak_bytes, pts["revolve_zip"].wall_seconds) == (
        pts["revolve"].peak_bytes,
        pts["revolve"].wall_seconds,
    )
    assert (pts["joint_zip"].peak_bytes, pts["joint_zip"].wall_seconds) == (
        pts["joint_time"].peak_bytes,
        pts["joint_time"].wall_seconds,
    )

    # Compile-path overhead: flagged args must not slow the compiler.
    compile_overhead = {}
    for l, c in COMPILE_SIZES:
        plain = revolve_schedule(l, c)
        zipped = compressed_variant(plain, "revolve_zip")
        plain_s = _median_compile_seconds(plain)
        zip_s = _median_compile_seconds(zipped)
        ratio = zip_s / plain_s
        compile_overhead[f"l{l}_c{c}"] = {
            "plain_s": plain_s,
            "zip_s": zip_s,
            "ratio": ratio,
        }
        assert ratio <= MAX_COMPILE_OVERHEAD, (
            f"compiling revolve_zip(l={l}, c={c}) cost {ratio:.3f}x plain"
        )

    lines = [
        "depth,strategy,codec,slots,extra_forwards,peak_bytes,peak_memory_bytes,"
        "bytes_saved,fidelity_loss,transfer_s,wall_s"
    ]
    for depth, chunk in zip(DEPTHS, range(0, len(rows), 4)):
        for p in rows[chunk : chunk + 4]:
            lines.append(
                f"{depth},{p.strategy},{p.codec},{p.slots},{p.extra_forwards},"
                f"{p.peak_bytes},{p.peak_memory_bytes},{p.bytes_saved},"
                f"{p.fidelity_loss},{p.transfer_seconds:.4f},{p.wall_seconds:.4f}"
            )
    (outdir / "compression_frontier.csv").write_text("\n".join(lines) + "\n")

    bench_json(
        "compression",
        {
            "slots": C,
            "codec": BITTRAIN_SPARSE.name,
            "panel": {"batch": BATCH, "image": IMAGE},
            "margins": margins,
            "strict_dominations": strict,
            "compile_overhead": compile_overhead,
            "max_compile_overhead": MAX_COMPILE_OVERHEAD,
        },
    )
