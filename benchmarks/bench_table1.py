"""E1 — Table I: memory vs batch size at image 224.

Regenerates the table from both coefficient sources, writes ASCII + CSV
artifacts, asserts the paper's shading pattern, and benchmarks the
first-principles generation (five full ResNet graphs + accounting).
"""

from repro.experiments import compare_to_paper, table1
from repro.experiments.tables import _MODEL_CACHE  # cache reset for timing
from repro.memory import PAPER_TABLE1_MB


def _generate_ours_fresh():
    _MODEL_CACHE.clear()
    return table1("ours")


def test_table1_regeneration(benchmark, outdir):
    result = benchmark.pedantic(_generate_ours_fresh, rounds=3, iterations=1)

    paper = table1("paper")
    (outdir / "table1_ours.txt").write_text(result.as_table().render())
    (outdir / "table1_paper.txt").write_text(paper.as_table().render())
    (outdir / "table1_ours.csv").write_text(result.as_table().to_csv())
    (outdir / "table1_compare.txt").write_text(compare_to_paper("table1").render())

    # Paper-calibrated source reproduces every published number.
    for k, row in PAPER_TABLE1_MB.items():
        for depth, mb in row.items():
            assert abs(paper.value(k, depth) - mb) < 0.1

    # Shape holds for first-principles values: same shading frontier as
    # the paper at batch 1 (all fit) and per-row model ordering.
    assert not any(result.exceeds_budget(1, d) for d in result.depths)
    for k in result.rows:
        vals = [result.value(k, d) for d in result.depths]
        assert vals == sorted(vals)
