"""Joint remat+paging planner: plan-time scaling and dominance gates.

Two things are pinned here and gated in CI via ``BENCH_planner.json``:

* **plan time** — the joint DP must stay interactive for block chains
  (`l ≤ 60`), both on uniform chains (closed-form Revolve inner) and on
  heterogeneous chains (the `SlotSegmentDP` inner, the `O(l³·c)` path);
* **dominance margins** — executing the planned schedules on a tiered
  backend, `joint_time`'s wall seconds and `joint_energy`'s joules must
  weakly dominate both pure families (revolve, disk_revolve) on the SD
  card *and* eMMC profiles, with a strict improvement somewhere.  The
  margins are emitted so CI runs can be compared over time.
"""

from __future__ import annotations

import statistics
import timeit

from repro.checkpointing import (
    ChainSpec,
    TimeObjective,
    UnitCostObjective,
    disk_revolve_cost,
    joint_cost,
    joint_frontier,
    joint_plan,
)
from repro.edge.storage import EMMC, SD_CARD
from repro.experiments.figure1 import _joint_spec

C = 3
UNIFORM_L = (20, 40, 60)
HETERO_L = (20, 40, 60)
#: block-chain depths for the dominance sweep (all l <= 60)
DEPTHS = (18, 34, 50)
REPEATS = 5
#: plan-time budget per chain, seconds — far above today's numbers, the
#: gate exists to catch accidental complexity regressions.
MAX_PLAN_SECONDS = 5.0


def _hetero_spec(l: int) -> ChainSpec:
    """Deterministic non-uniform chain (forces the segment-DP inner)."""
    acts = tuple(1000 + 137 * (i % 7) for i in range(l + 1))
    fwd = tuple(float(1 + (i * 13) % 11) for i in range(l))
    return ChainSpec(name=f"hetero{l}", act_bytes=acts, fwd_cost=fwd, bwd_cost=fwd)


def _time_plan(spec: ChainSpec, objective) -> float:
    runs = timeit.repeat(
        lambda: joint_plan(spec, C, objective), repeat=REPEATS, number=1
    )
    return statistics.median(runs)


def test_joint_plan_time_and_dominance(outdir, bench_json):
    plan_seconds: dict[str, float] = {}
    for l in UNIFORM_L:
        spec = ChainSpec.homogeneous(l)
        plan_seconds[f"uniform_l{l}"] = _time_plan(
            spec, UnitCostObjective(spec, 1.0, 1.0)
        )
    for l in HETERO_L:
        spec = _hetero_spec(l)
        plan_seconds[f"hetero_l{l}"] = _time_plan(
            spec, TimeObjective(spec, disk=SD_CARD, unit_seconds=1e-9)
        )
    for key, secs in plan_seconds.items():
        assert secs < MAX_PLAN_SECONDS, f"joint plan {key} took {secs:.2f}s"

    # At disk_revolve's own unit prices the joint optimum must coincide
    # with it exactly — dominance below is then structural, not luck.
    for l in UNIFORM_L:
        spec = ChainSpec.homogeneous(l)
        assert (
            abs(joint_cost(spec, C, UnitCostObjective(spec, 1.0, 1.0)) - disk_revolve_cost(l, C))
            < 1e-9
        )

    margins = []
    strict = 0
    for storage, profile in (("sd-card", SD_CARD), ("emmc", EMMC)):
        for depth in DEPTHS:
            spec = _joint_spec(depth, batch=8, image=224)
            pts = {
                p.strategy: p
                for p in joint_frontier(spec, C, profile, unit_seconds=1.0 / 30e9)
            }
            pure_wall = min(pts["revolve"].wall_seconds, pts["disk_revolve"].wall_seconds)
            pure_energy = min(
                pts["revolve"].energy_joules, pts["disk_revolve"].energy_joules
            )
            wall_margin = pure_wall - pts["joint_time"].wall_seconds
            energy_margin = pure_energy - pts["joint_energy"].energy_joules
            assert wall_margin >= -1e-9, (storage, depth)
            assert energy_margin >= -1e-9, (storage, depth)
            if wall_margin > 1e-6 or energy_margin > 1e-6:
                strict += 1
            margins.append(
                {
                    "depth": depth,
                    "storage": storage,
                    "slots": C,
                    "wall_margin_s": wall_margin,
                    "energy_margin_j": energy_margin,
                    "joint_wall_s": pts["joint_time"].wall_seconds,
                    "pure_wall_s": pure_wall,
                }
            )
    assert strict >= 1, "joint never strictly beat a pure family"

    lines = ["depth,storage,wall_margin_s,energy_margin_j"]
    for m in margins:
        lines.append(
            f"{m['depth']},{m['storage']},{m['wall_margin_s']:.4f},{m['energy_margin_j']:.4f}"
        )
    (outdir / "planner_margins.csv").write_text("\n".join(lines) + "\n")

    bench_json(
        "planner",
        {
            "slots": C,
            "plan_seconds": plan_seconds,
            "max_plan_seconds": MAX_PLAN_SECONDS,
            "margins": margins,
            "strict_improvements": strict,
        },
    )
