"""Lab pipeline benchmark: warm-vs-cold `all` and serial-vs-parallel cold.

Two claims the cache and runner must hold:

* a warm ``all`` (everything cached, manifests valid) costs at most
  0.1x the cold run — the fast path validates manifests without
  loading, rendering or writing anything;
* on a multi-core box, a cold run with ``--jobs 4`` beats serial on a
  compute-heavy unit batch (wave-parallel over the process pool).

Writes ``benchmarks/out/lab.txt`` plus machine-readable
``out/BENCH_lab.json`` for the perf trajectory.
"""

from __future__ import annotations

import os
import time

from repro import lab

import repro.experiments  # noqa: F401  (registers the paper's specs)


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _heavy_units() -> list[lab.Unit]:
    """Independent compute-heavy ablation grids, disjoint from defaults."""
    return [
        lab.Unit("ablation", {"lengths": (length,), "slot_budgets": (3, 5, 8, 13)})
        for length in (160, 200, 240, 280)
    ]


def test_warm_all_is_near_free(tmp_path, outdir, bench_json):
    store = lab.ArtifactStore(tmp_path / "all")
    units = lab.default_units()

    cold_s, cold = _timed(lambda: lab.run_units(units, store))
    assert cold.misses == len(cold.outcomes) and cold.hits == 0

    warm_s, warm = _timed(lambda: lab.run_units(units, store))
    assert warm.misses == 0 and warm.hits == len(warm.outcomes)

    ratio = warm_s / cold_s
    assert ratio <= 0.1, f"warm all took {ratio:.1%} of cold ({warm_s:.3f}s/{cold_s:.3f}s)"

    lines = [
        f"cold all : {cold_s:8.3f} s  ({cold.summary_line()})",
        f"warm all : {warm_s:8.3f} s  ({warm.summary_line()})",
        f"warm/cold: {ratio:8.1%}  (budget: <= 10%)",
    ]

    from repro.checkpointing import clear_schedule_cache

    cores = os.cpu_count() or 1
    # untimed warmup: the first heavy run pays one-off costs (planner
    # memoization, numpy setup) that neither timed run should carry
    lab.run_units(_heavy_units())
    # clear the memoized schedule cache before each timed run: forked
    # pool workers inherit it, which would let the parallel run coast on
    # schedules the serial run already computed
    clear_schedule_cache()
    serial_s, serial = _timed(
        lambda: lab.run_units(_heavy_units(), lab.ArtifactStore(tmp_path / "s"), jobs=1)
    )
    clear_schedule_cache()
    par_s, par = _timed(
        lambda: lab.run_units(_heavy_units(), lab.ArtifactStore(tmp_path / "p"), jobs=4)
    )
    assert serial.computed == par.computed == 4
    speedup = serial_s / par_s
    lines += [
        f"heavy x4 serial : {serial_s:8.3f} s",
        f"heavy x4 jobs=4 : {par_s:8.3f} s",
        f"speedup         : {speedup:8.2f}x  ({cores} cores)",
    ]
    if cores >= 2:
        assert speedup > 1.0, f"no cold --jobs speedup on {cores} cores: {speedup:.2f}x"

    text = "\n".join(lines)
    print("\n" + text)
    (outdir / "lab.txt").write_text(text + "\n")

    bench_json(
        "lab",
        {
            "units": len(cold.outcomes),
            "cold_s": cold_s,
            "warm_s": warm_s,
            "warm_ratio": ratio,
            "warm_gate": 0.1,
            "heavy_serial_s": serial_s,
            "heavy_parallel_s": par_s,
            "parallel_speedup": speedup,
            "parallel_jobs": 4,
            "cores": cores,
        },
    )
