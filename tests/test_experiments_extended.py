"""Extended zoo experiment: architecture-generic conclusions."""

import math

import pytest

from repro.experiments import extended_model_rows, extended_model_table


@pytest.fixture(scope="module")
def rows():
    return extended_model_rows()


def by(rows, model, batch):
    return next(r for r in rows if r.model == model and r.batch_size == batch)


class TestExtendedRows:
    def test_grid_complete(self, rows):
        assert len(rows) == 3 * 4

    def test_vgg_impossible_on_2gb(self, rows):
        """VGG-16's 4-copy fixed cost alone exceeds 2 GB: no chain
        checkpointing strategy can train it at any batch size."""
        for batch in (1, 8, 32, 64):
            r = by(rows, "VGG16", batch)
            assert r.strategy == "impossible"
            assert math.isinf(r.rho)
            assert r.fixed_mb > 2048

    def test_mobilenet_params_small_activations_large(self, rows):
        m = by(rows, "MobileNetV2", 1)
        r = by(rows, "ResNet18", 1)
        assert m.weight_mb < r.weight_mb / 3
        assert m.act_mb_per_sample > 2 * r.act_mb_per_sample

    def test_mobilenet_needs_checkpointing_at_batch_32(self, rows):
        m = by(rows, "MobileNetV2", 32)
        assert m.strategy == "revolve"
        assert 1.0 < m.rho < 1.5
        assert m.planned_mb <= 2048

    def test_resnet18_crosses_at_batch_64(self, rows):
        assert by(rows, "ResNet18", 32).strategy == "store_all"
        assert by(rows, "ResNet18", 64).strategy == "revolve"

    def test_store_all_values_match_account(self, rows):
        r = by(rows, "ResNet18", 8)
        assert r.store_all_mb == pytest.approx(r.fixed_mb + 8 * r.act_mb_per_sample, rel=1e-6)

    def test_planned_never_exceeds_budget(self, rows):
        for r in rows:
            if r.strategy != "impossible":
                assert r.planned_mb <= 2048 + 1


def test_table_renders():
    text = extended_model_table().render()
    assert "MobileNetV2@32" in text
    assert "impossible" in text
