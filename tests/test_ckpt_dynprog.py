"""Heterogeneous-chain DPs: generalize Revolve, respect byte budgets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpointing import (
    ChainSpec,
    budget_schedule,
    hetero_schedule,
    opt_forwards,
    opt_forwards_budget,
    opt_forwards_hetero,
    quantize_sizes,
    simulate,
)
from repro.errors import PlanningError, ScheduleError
from repro.graph import linearize
from repro.zoo import tiny_residual


def random_spec(draw_costs, draw_sizes, l):
    return ChainSpec(
        name="rand",
        act_bytes=tuple(draw_sizes for _ in range(l + 1)) if isinstance(draw_sizes, int) else draw_sizes,
        fwd_cost=draw_costs,
        bwd_cost=draw_costs,
    )


class TestHeteroReducesToRevolve:
    @given(l=st.integers(1, 25), c=st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_homogeneous_equivalence(self, l, c):
        spec = ChainSpec.homogeneous(l)
        c_eff = min(c, max(1, l - 1))
        assert opt_forwards_hetero(spec, c) == pytest.approx(opt_forwards(l, c_eff))

    def test_cost_scaling_invariance(self):
        """Scaling all step costs scales the optimum linearly."""
        base = ChainSpec.homogeneous(12, fwd_cost=1.0)
        scaled = ChainSpec.homogeneous(12, fwd_cost=3.5)
        assert opt_forwards_hetero(scaled, 3) == pytest.approx(3.5 * opt_forwards_hetero(base, 3))

    def test_expensive_step_avoided(self):
        """The optimum re-runs cheap steps, not the expensive one."""
        costs = (1.0, 100.0, 1.0, 1.0)
        spec = ChainSpec(name="h", act_bytes=(1,) * 5, fwd_cost=costs, bwd_cost=costs)
        # opt includes the mandatory first sweep (F1..F3 = 102); beyond
        # that, checkpointing right after the expensive step keeps it out
        # of every re-advance, so the *extra* cost stays tiny.
        opt = opt_forwards_hetero(spec, 2)
        sweep = sum(costs[:-1])
        assert opt - sweep < 100.0
        assert opt - sweep == pytest.approx(1.0)

    def test_slot_validation(self):
        with pytest.raises(ScheduleError):
            opt_forwards_hetero(ChainSpec.homogeneous(3), 0)


class TestHeteroSchedule:
    @given(
        l=st.integers(1, 12),
        c=st.integers(1, 6),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_schedule_achieves_dp_cost(self, l, c, seed):
        import random

        r = random.Random(seed)
        costs = tuple(r.choice([0.5, 1.0, 2.0, 4.0]) for _ in range(l))
        spec = ChainSpec(name="h", act_bytes=(1,) * (l + 1), fwd_cost=costs, bwd_cost=costs)
        sch = hetero_schedule(spec, c)
        stats = simulate(sch, spec)
        assert stats.forward_cost == pytest.approx(opt_forwards_hetero(spec, c))
        assert stats.peak_slots <= c

    def test_on_real_resnet_block_chain(self):
        spec = ChainSpec.from_segment_chain(linearize(tiny_residual()))
        sch = hetero_schedule(spec, 2)
        stats = simulate(sch, spec)
        assert stats.forward_cost == pytest.approx(opt_forwards_hetero(spec, 2))


class TestQuantize:
    def test_ceiling_is_conservative(self):
        units, per = quantize_sizes((100, 250, 999), levels=4)
        assert all(u * per >= b for u, b in zip(units, (100, 250, 999)))

    def test_zero_sizes(self):
        units, per = quantize_sizes((0, 0), levels=4)
        assert units == (0, 0)
        assert per == 1

    def test_levels_validation(self):
        with pytest.raises(PlanningError):
            quantize_sizes((1, 2), levels=1)


class TestBudgetDP:
    def test_budget_never_exceeded(self):
        import random

        r = random.Random(3)
        for _ in range(20):
            l = r.randint(1, 10)
            sizes = tuple(r.randint(1, 5) for _ in range(l + 1))
            costs = tuple(float(r.randint(1, 3)) for _ in range(l))
            spec = ChainSpec(name="b", act_bytes=sizes, fwd_cost=costs, bwd_cost=costs)
            budget = sizes[0] + r.randint(0, sum(sizes))
            sch = budget_schedule(spec, budget, levels=16)
            stats = simulate(sch, spec)
            assert stats.peak_slot_bytes <= budget
            cost, _ = opt_forwards_budget(spec, budget, levels=16)
            assert stats.forward_cost == pytest.approx(cost)

    def test_more_budget_never_hurts(self):
        spec = ChainSpec(
            name="b",
            act_bytes=(1, 2, 3, 2, 1, 2),
            fwd_cost=(1.0,) * 5,
            bwd_cost=(1.0,) * 5,
        )
        costs = [
            opt_forwards_budget(spec, b, levels=32)[0] for b in (1, 3, 5, 8, 12)
        ]
        assert costs == sorted(costs, reverse=True)

    def test_input_must_fit(self):
        spec = ChainSpec(name="b", act_bytes=(100, 1), fwd_cost=(1.0,), bwd_cost=(1.0,))
        with pytest.raises(PlanningError):
            opt_forwards_budget(spec, budget_bytes=10, levels=8)

    def test_generous_budget_is_store_all(self):
        l = 8
        spec = ChainSpec.homogeneous(l, act_bytes=4)
        cost, _ = opt_forwards_budget(spec, budget_bytes=1000, levels=8)
        assert cost == pytest.approx(l - 1)
