"""Confusion matrices and confidence calibration."""

import numpy as np
import pytest

from repro.studentteacher import (
    TeacherModel,
    ViewpointWorld,
    calibration_curve,
    confusion_matrix,
    expected_calibration_error,
    per_class_accuracy,
)


class TestConfusion:
    def test_perfect_prediction_is_diagonal(self):
        y = np.array([0, 1, 2, 1, 0])
        m = confusion_matrix(y, y, 3)
        assert np.array_equal(m, np.diag([2, 2, 1]))

    def test_counts_off_diagonal(self):
        y_true = np.array([0, 0, 1])
        y_pred = np.array([1, 0, 1])
        m = confusion_matrix(y_true, y_pred, 2)
        assert m[0, 1] == 1 and m[0, 0] == 1 and m[1, 1] == 1

    def test_row_sums_are_class_counts(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 4, size=100)
        y_pred = rng.integers(0, 4, size=100)
        m = confusion_matrix(y_true, y_pred, 4)
        assert np.array_equal(m.sum(axis=1), np.bincount(y_true, minlength=4))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3, dtype=int), np.zeros(4, dtype=int), 2)

    def test_per_class_accuracy(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        acc = per_class_accuracy(y_true, y_pred, 3)
        assert acc[0] == pytest.approx(0.5)
        assert acc[1] == pytest.approx(1.0)
        assert acc[2] == 1.0  # absent class reports 1.0


class TestCalibration:
    def test_perfectly_calibrated(self):
        rng = np.random.default_rng(1)
        conf = rng.uniform(0.1, 1.0, size=20_000)
        correct = rng.random(20_000) < conf
        assert expected_calibration_error(conf, correct) < 0.02

    def test_overconfident_detected(self):
        conf = np.full(1000, 0.95)
        correct = np.zeros(1000, dtype=bool)
        correct[:500] = True  # 50% accuracy at 95% confidence
        assert expected_calibration_error(conf, correct) == pytest.approx(0.45, abs=0.01)

    def test_bins_partition(self):
        rng = np.random.default_rng(2)
        conf = rng.uniform(0, 1, size=500)
        correct = rng.random(500) < 0.5
        bins = calibration_curve(conf, correct, n_bins=10)
        assert sum(b.count for b in bins) == 500

    def test_empty_bins_skipped(self):
        conf = np.array([0.95, 0.96])
        bins = calibration_curve(conf, np.array([True, False]), n_bins=10)
        assert len(bins) == 1
        assert bins[0].lo == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            calibration_curve(np.zeros(3), np.zeros(2, dtype=bool))
        with pytest.raises(ValueError):
            calibration_curve(np.zeros(3), np.zeros(3, dtype=bool), n_bins=0)


class TestTeacherCalibration:
    """The world-level story the harvest threshold depends on."""

    @pytest.fixture(scope="class")
    def world_teacher(self):
        rng = np.random.default_rng(5)
        world = ViewpointWorld(num_classes=5, feature_dim=8, rng=rng)
        x, y = world.sample_frontal(300)
        return world, TeacherModel.fit(x, y)

    def test_frontal_confidence_informative(self, world_teacher):
        """Near-frontal, high confidence implies high accuracy."""
        world, teacher = world_teacher
        rng = np.random.default_rng(6)
        ys = rng.integers(0, 5, size=600)
        xs = np.stack([world.observe(int(c), float(rng.uniform(-12, 12))) for c in ys])
        pred, conf = teacher.predict(xs)
        bins = calibration_curve(conf, pred == ys, n_bins=5)
        top = bins[-1]
        assert top.accuracy > 0.95

    def test_skewed_confidence_misleading(self, world_teacher):
        """At 60 degrees, aspect confusion makes the teacher confidently
        wrong — the quantitative case for track-end labelling."""
        world, teacher = world_teacher
        rng = np.random.default_rng(7)
        ys = rng.integers(0, 5, size=600)
        xs = np.stack([world.observe(int(c), 60.0) for c in ys])
        pred, conf = teacher.predict(xs)
        ece = expected_calibration_error(conf, pred == ys)
        assert ece > 0.3
