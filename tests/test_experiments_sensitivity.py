"""Convention sensitivity of the Figure 1 fitting-ρ values."""

import pytest

from repro.experiments import fit_rho, sensitivity_sweep, sensitivity_table
from repro.units import GB


class TestFitRho:
    def test_matches_panel_headline(self):
        """Defaults reproduce the E5-E8 table: panel d, R152 -> 2.0."""
        assert fit_rho(152, batch=8, image=500, budget_bytes=2 * GB) == pytest.approx(2.0)

    def test_monotone_in_depth(self):
        rhos = [
            fit_rho(d, 8, 500, 2 * GB) for d in (18, 34, 50, 101, 152)
        ]
        assert all(r is not None for r in rhos)
        assert rhos == sorted(rhos)

    def test_heavier_backward_lowers_fit_rho(self):
        """Recompute is a smaller share of time when backward dominates."""
        r1 = fit_rho(152, 8, 500, 2 * GB, bwd_ratio=1.0)
        r2 = fit_rho(152, 8, 500, 2 * GB, bwd_ratio=2.0)
        assert r2 <= r1

    def test_inflight_slot_costs_rho(self):
        with_w = fit_rho(152, 8, 500, 2 * GB, inflight_slots=1)
        without = fit_rho(152, 8, 500, 2 * GB, inflight_slots=0)
        assert without <= with_w

    def test_paper_claim_recovered_at_bwd2(self):
        """The paper's 'all models fit with rho > 1.6' on panel d emerges
        under the bwd = 2x fwd convention."""
        for depth in (18, 34, 50, 101, 152):
            r = fit_rho(depth, 8, 500, 2 * GB, bwd_ratio=2.0)
            assert r is not None and r <= 1.65

    def test_hopeless_budget_returns_none(self):
        assert fit_rho(152, 8, 500, budget_bytes=100 * 1024 * 1024) is None


class TestSweep:
    def test_covers_grid(self):
        pts = sensitivity_sweep(depths=(18, 152), bwd_ratios=(1.0,), inflight=(0, 1))
        assert len(pts) == 4

    def test_table_renders(self):
        text = sensitivity_table().render()
        assert "ResNet152" in text
        assert "r=2.0" in text
