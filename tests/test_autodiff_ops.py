"""Numerical primitives: im2col round trips and convolution gradients."""

import numpy as np
import pytest

from repro.autodiff.ops import (
    col2im,
    conv2d_backward,
    conv2d_forward,
    im2col,
    maxpool2d_backward,
    maxpool2d_forward,
)


def numeric_grad(f, x, eps=1e-6):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        fp = f()
        x[i] = old - eps
        fm = f()
        x[i] = old
        g[i] = (fp - fm) / (2 * eps)
    return g


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestIm2Col:
    def test_shapes(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        cols, oh, ow = im2col(x, 3, 3, 1, 1)
        assert (oh, ow) == (6, 6)
        assert cols.shape == (2, 3 * 9, 36)

    def test_identity_kernel(self, rng):
        """1x1/1 im2col is just a reshape of the input."""
        x = rng.normal(size=(1, 2, 4, 4))
        cols, oh, ow = im2col(x, 1, 1, 1, 0)
        assert np.allclose(cols.reshape(1, 2, 4, 4), x)

    def test_col2im_adjointness(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — exact adjoint pair."""
        x = rng.normal(size=(2, 3, 5, 5))
        cols, _, _ = im2col(x, 3, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3, 2, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-12)


class TestConv:
    def test_against_direct_convolution(self, rng):
        """im2col conv matches a naive quadruple loop."""
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        out = conv2d_forward(x, w, None, 1, 0)
        naive = np.zeros_like(out)
        for o in range(3):
            for i in range(3):
                for j in range(3):
                    naive[0, o, i, j] = (x[0, :, i : i + 3, j : j + 3] * w[o]).sum()
        assert np.allclose(out, naive)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_gradients_match_numeric(self, rng, stride, padding):
        x = rng.normal(size=(2, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        dy = rng.normal(size=conv2d_forward(x, w, b, stride, padding).shape)

        def objective():
            return float((conv2d_forward(x, w, b, stride, padding) * dy).sum())

        dx, dw, db = conv2d_backward(x, w, dy, stride, padding, with_bias=True)
        assert np.allclose(dx, numeric_grad(objective, x), atol=1e-7)
        assert np.allclose(dw, numeric_grad(objective, w), atol=1e-7)
        assert np.allclose(db, numeric_grad(objective, b), atol=1e-7)

    def test_bias_adds_per_channel(self, rng):
        x = rng.normal(size=(1, 1, 3, 3))
        w = np.zeros((2, 1, 1, 1))
        b = np.array([1.5, -2.0])
        out = conv2d_forward(x, w, b, 1, 0)
        assert np.allclose(out[0, 0], 1.5)
        assert np.allclose(out[0, 1], -2.0)


class TestMaxPool:
    def test_forward_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, _ = maxpool2d_forward(x, 2)
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, arg = maxpool2d_forward(x, 2)
        dy = np.ones_like(out)
        dx = maxpool2d_backward(x.shape, arg, dy, 2)
        assert dx.sum() == 4
        assert dx[0, 0, 1, 1] == 1  # position of 5
        assert dx[0, 0, 3, 3] == 1  # position of 15

    def test_gradient_numeric(self, rng):
        x = rng.normal(size=(2, 2, 4, 4))
        out, arg = maxpool2d_forward(x, 2)
        dy = rng.normal(size=out.shape)

        def objective():
            o, _ = maxpool2d_forward(x, 2)
            return float((o * dy).sum())

        dx = maxpool2d_backward(x.shape, arg, dy, 2)
        assert np.allclose(dx, numeric_grad(objective, x), atol=1e-7)

    def test_non_divisible_input_cropped(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        out, _ = maxpool2d_forward(x, 2)
        assert out.shape == (1, 1, 2, 2)
