"""Checkpointed BPTT: recurrent chains under Revolve schedules."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import UnrolledRNN, run_schedule, softmax_cross_entropy
from repro.checkpointing import revolve_schedule, store_all_schedule, uniform_schedule
from repro.errors import ShapeError


def make_task(T=12, batch=5, input_size=4, hidden=8, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    rnn = UnrolledRNN(input_size, hidden, classes, rng)
    x_seq = rng.normal(size=(batch, T, input_size))
    labels = rng.integers(0, classes, size=batch)
    return rnn, x_seq, labels


def numeric_grad(f, arr, eps=1e-6):
    g = np.zeros_like(arr)
    it = np.nditer(arr, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        old = arr[i]
        arr[i] = old + eps
        fp = f()
        arr[i] = old - eps
        fm = f()
        arr[i] = old
        g[i] = (fp - fm) / (2 * eps)
    return g


class TestDirectBPTT:
    def test_gradients_match_numeric(self):
        rnn, x_seq, labels = make_task(T=5, batch=3)

        def loss_value():
            net = rnn.bind(x_seq)
            out = net.forward(rnn.initial_state(3))
            loss, _ = softmax_cross_entropy(out, labels)
            return loss

        _, grads = rnn.direct_bptt(x_seq, labels, softmax_cross_entropy)
        for pname in ("Wh", "Wx", "b"):
            gnum = numeric_grad(loss_value, rnn.shared[pname])
            assert np.allclose(grads[("rnn", pname)], gnum, atol=1e-6), pname
        gnum = numeric_grad(loss_value, rnn.readout.params["W"])
        assert np.allclose(grads[("readout", "W")], gnum, atol=1e-6)

    def test_weight_sharing_is_real(self):
        rnn, x_seq, _ = make_task()
        net = rnn.bind(x_seq)
        rnn.shared["b"][0] = 123.0
        # every step layer sees the mutation (aliased arrays)
        assert all(
            lay.params["b"][0] == 123.0 for lay in net.layers[:-1]
        )


class TestCheckpointedBPTT:
    @given(T=st.integers(2, 16), c=st.integers(1, 5), seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_revolve_equals_direct(self, T, c, seed):
        """Checkpointed BPTT == direct BPTT, bit for bit."""
        rnn, x_seq, labels = make_task(T=T, seed=seed)
        loss_ref, grads_ref = rnn.direct_bptt(x_seq, labels, softmax_cross_entropy)
        net = rnn.bind(x_seq)
        sch = revolve_schedule(len(net), c)
        res = run_schedule(net, sch, rnn.initial_state(5), labels)
        combined = rnn.combine_grads(res.grads)
        assert res.loss == loss_ref
        for k in grads_ref:
            assert np.array_equal(combined[k], grads_ref[k]), k

    def test_uniform_and_store_all_agree(self):
        rnn, x_seq, labels = make_task(T=10)
        net = rnn.bind(x_seq)
        h0 = rnn.initial_state(5)
        results = [
            rnn.combine_grads(run_schedule(net, sch, h0, labels).grads)
            for sch in (
                uniform_schedule(len(net), 3),
                store_all_schedule(len(net)),
                revolve_schedule(len(net), 2),
            )
        ]
        for other in results[1:]:
            for k in results[0]:
                assert np.array_equal(other[k], results[0][k])

    def test_memory_shrinks_with_slots(self):
        rnn, x_seq, labels = make_task(T=30, batch=16, hidden=64)
        net = rnn.bind(x_seq)
        h0 = rnn.initial_state(16)
        peaks = []
        for c in (30, 8, 2):
            res = run_schedule(net, revolve_schedule(len(net), c), h0, labels)
            peaks.append(res.peak_bytes)
        assert peaks == sorted(peaks, reverse=True)

    def test_training_learns(self):
        """A few checkpointed-BPTT steps reduce the loss on a toy task."""
        rnn, x_seq, labels = make_task(T=8, batch=32, seed=3)
        net = rnn.bind(x_seq)
        h0 = rnn.initial_state(32)
        sch = revolve_schedule(len(net), 3)
        first = last = None
        for _ in range(40):
            res = run_schedule(net, sch, h0, labels)
            rnn.apply_grads(res.grads, lr=0.1)
            first = first if first is not None else res.loss
            last = res.loss
        assert last < first * 0.5


class TestValidation:
    def test_bad_sequence_shape(self):
        rnn, _, _ = make_task()
        with pytest.raises(ShapeError):
            rnn.bind(np.zeros((3, 5)))

    def test_zero_timesteps(self):
        rnn, _, _ = make_task()
        with pytest.raises(ShapeError):
            rnn.bind(np.zeros((3, 0, 4)))

    def test_bad_hidden_state(self):
        rnn, x_seq, _ = make_task()
        net = rnn.bind(x_seq)
        with pytest.raises(ShapeError):
            net.layers[0].forward(np.zeros((5, 3)))

    def test_lr_validation(self):
        rnn, x_seq, labels = make_task(T=3)
        _, grads = rnn.direct_bptt(x_seq, labels, softmax_cross_entropy)
        with pytest.raises(ValueError):
            rnn.apply_grads(grads, lr=0.0)
