"""Topo expansion, dedup, cycle guard, serial/parallel equivalence."""

import pytest

from repro import lab, obs
from repro.errors import LabError

import repro.experiments  # noqa: F401


def _ascii(doc):
    return f"{sorted(doc.items())}\n"


def _cheap(name, deps=(), fingerprint=None):
    return lab.ExperimentSpec(
        name=name,
        title=name,
        compute=lambda params, inputs: {"n": name, "inputs": len(inputs)},
        renderers={"ascii": _ascii},
        deps=deps,
        default_units=(lab.UnitDef({}, ((f"{name}.txt", "ascii"),)),),
        code_fingerprint=fingerprint or (name.ljust(64, "0")[:64]),
    )


class TestExpand:
    def test_deps_precede_dependents(self):
        order = lab.expand_units(lab.default_units(["summary"]))
        names = [u.spec for u in order]
        assert names[-1] == "summary"
        assert set(names[:-1]) == {s for s, _ in lab.get_spec("summary").deps}

    def test_dedup_by_key(self):
        units = lab.default_units(["table1"]) + lab.default_units(["table1"])
        assert len(lab.expand_units(units)) == 2  # ours + paper, once each

    def test_explicit_outputs_win_over_dep_placeholder(self):
        # figure1(b, paper) is both a summary dep and a default unit with files
        order = lab.expand_units(lab.default_units(["figure1", "summary"]))
        fig_b = [
            u for u in order
            if u.spec == "figure1" and u.params["panel"] == "b"
        ]
        assert len(fig_b) == 1 and fig_b[0].outputs

    def test_full_default_expansion_is_stable(self):
        a = [(u.spec, lab.canonical_params(u.params)) for u in
             lab.expand_units(lab.default_units())]
        b = [(u.spec, lab.canonical_params(u.params)) for u in
             lab.expand_units(lab.default_units())]
        unique_defaults = {
            (u.spec, lab.canonical_params(u.params))
            for u in lab.default_units()
        }
        assert a == b and unique_defaults <= set(a)
        assert len(a) >= 25  # the PR-9 floor: default units only accrete

    def test_cycle_guard(self):
        lab.register(_cheap("t_cyc_a"))
        lab.register(_cheap("t_cyc_b", deps=(("t_cyc_a", {}),)))
        lab.unregister("t_cyc_a")
        lab.register(_cheap("t_cyc_a", deps=(("t_cyc_b", {}),)))
        try:
            with pytest.raises(LabError, match="cycle"):
                lab.expand_units([lab.Unit("t_cyc_a")])
        finally:
            lab.unregister("t_cyc_a")
            lab.unregister("t_cyc_b")


class TestCompute:
    def test_normalize_rejects_nan(self):
        from repro.lab.runner import normalize_payload

        assert normalize_payload({"t": (1, 2)}) == {"t": [1, 2]}
        with pytest.raises(LabError):
            normalize_payload({"x": float("inf")})

    def test_compute_payload_resolves_deps(self):
        payload = lab.compute_payload("summary")
        assert [s["spec"] for s in payload["sections"]] == [
            s for s, _ in lab.get_spec("summary").deps
        ]

    def test_compute_payload_validates_params(self):
        with pytest.raises(LabError):
            lab.compute_payload("figure1", {"panel": "z"})


class TestRunner:
    def test_outcome_order_matches_expansion(self, tmp_path):
        store = lab.ArtifactStore(tmp_path)
        units = lab.default_units()
        report = lab.run_units(units, store)
        expected = [u.spec for u in lab.expand_units(units)]
        assert [o.spec for o in report.outcomes] == expected

    def test_dep_only_units_have_no_outputs(self, tmp_path):
        report = lab.run_units(lab.default_units(["summary"]),
                               lab.ArtifactStore(tmp_path))
        assert all(not o.outputs for o in report.outcomes[:-1])
        assert report.outcomes[-1].outputs == ("summary.txt",)

    def test_metrics_counters(self, tmp_path):
        metrics = obs.get_metrics()
        units = lab.default_units(["sensitivity"])
        store = lab.ArtifactStore(tmp_path)
        h0 = metrics.counter("lab.cache.hits").value
        m0 = metrics.counter("lab.cache.misses").value
        lab.run_units(units, store)
        lab.run_units(units, store)
        assert metrics.counter("lab.cache.misses").value == m0 + 1
        assert metrics.counter("lab.cache.hits").value == h0 + 1

    def test_summary_line(self, tmp_path):
        report = lab.run_units(lab.default_units(["sensitivity"]),
                               lab.ArtifactStore(tmp_path), jobs=2)
        assert report.summary_line() == (
            "lab cache: 0 hits / 1 misses (1 computed, jobs=2); "
            "programs: 0 shared / 0 compiled"
        )

    def test_parallel_serial_byte_identical(self, tmp_path):
        serial = lab.ArtifactStore(tmp_path / "serial")
        para = lab.ArtifactStore(tmp_path / "para")
        units = lab.default_units(["table1", "figure1", "section5"])
        r1 = lab.run_units(units, serial, jobs=1)
        r2 = lab.run_units(units, para, jobs=4)
        assert [o.key for o in r1.outcomes] == [o.key for o in r2.outcomes]
        files = sorted(
            p.relative_to(serial.root)
            for p in serial.root.rglob("*")
            if p.is_file() and "manifests" not in p.parts
        )
        assert files
        for rel in files:
            assert (para.root / rel).read_bytes() == (serial.root / rel).read_bytes()

    def test_parallel_warm_run_hits(self, tmp_path):
        store = lab.ArtifactStore(tmp_path)
        units = lab.default_units(["table1", "figure1"])
        lab.run_units(units, store, jobs=4)
        report = lab.run_units(units, store, jobs=4)
        assert (report.hits, report.misses) == (len(report.outcomes), 0)

    def test_default_jobs_positive(self):
        assert lab.default_jobs() >= 1
