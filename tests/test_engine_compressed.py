"""Compression-aware checkpointing: the compressed slot band, the codec
model, the CompressedBackend, the program IR, and the frontier claims.

The acceptance properties: compressed schedules compile -> decompile
exactly, compiled dispatch is byte-identical to the interpreter on the
Sim/Tiered/Compressed backends across every registered family x random
(l, slots, seed), lossless (ratio 1, zero-cost) settings collapse
exactly onto the pure families, and on a deep Figure-1 panel at least
one compressed family strictly reduces peak bytes vs revolve at
equal-or-better wall time within the codec's declared fidelity bound.
"""

import random

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.checkpointing import (
    COMPRESS_SLOT_BASE,
    ChainSpec,
    TIER_SLOT_STRIDE,
    TimeObjective,
    UnitCostObjective,
    compressed_frontier,
    compressed_slot,
    compressed_variant,
    is_compressed_slot,
    joint_cost,
    joint_schedule,
    local_slot,
    storage_slot,
    tier_of_slot,
    tier_slot,
    validate,
)
from repro.checkpointing.actions import ActionKind
from repro.checkpointing.revolve import revolve_schedule
from repro.checkpointing.strategies import available_strategies, get_strategy
from repro.edge.storage import (
    BITTRAIN_SPARSE,
    FP16_CAST,
    LOSSLESS,
    SD_CARD,
    CompressionModel,
    compression_models,
)
from repro.engine import (
    CompressedBackend,
    SimBackend,
    TieredBackend,
    compile_schedule,
    decompile,
    execute,
)

FAMILIES = available_strategies()


def _random_spec(l: int, seed: int) -> ChainSpec:
    rng = random.Random(seed)
    return ChainSpec(
        name=f"z{seed}",
        act_bytes=tuple(rng.randint(1, 4096) for _ in range(l + 1)),
        fwd_cost=tuple(rng.uniform(0.1, 3.0) for _ in range(l)),
        bwd_cost=tuple(rng.uniform(0.1, 3.0) for _ in range(l)),
    )


class TestCompressedBand:
    def test_flag_roundtrip(self):
        for slot in (0, 1, 7, tier_slot(1, 3), COMPRESS_SLOT_BASE - 1):
            flagged = compressed_slot(slot)
            assert flagged == COMPRESS_SLOT_BASE + slot
            assert is_compressed_slot(flagged)
            assert not is_compressed_slot(slot)
            assert storage_slot(flagged) == slot
            assert storage_slot(slot) == slot

    def test_tier_helpers_strip_the_flag(self):
        flagged = compressed_slot(tier_slot(1, 5))
        assert tier_of_slot(flagged) == 1
        assert local_slot(flagged) == 5
        assert tier_of_slot(compressed_slot(2)) == 0
        assert local_slot(compressed_slot(2)) == 2

    def test_compressed_slot_rejects_out_of_band(self):
        from repro.errors import ScheduleError

        with pytest.raises(ScheduleError):
            compressed_slot(-1)
        with pytest.raises(ScheduleError):
            compressed_slot(COMPRESS_SLOT_BASE)

    def test_band_is_above_every_tier_band(self):
        assert COMPRESS_SLOT_BASE >= 2 * TIER_SLOT_STRIDE
        # Flagged tier-banded ids still fit comfortably in int32 space
        assert compressed_slot(tier_slot(1, TIER_SLOT_STRIDE - 1)) < 2**31


class TestCompressionModel:
    def test_identity_default_is_lossless_and_free(self):
        assert LOSSLESS.lossless
        assert LOSSLESS.compressed_bytes(1234) == 1234
        assert LOSSLESS.compress_seconds(10**9) == 0.0
        assert LOSSLESS.decompress_seconds(10**9) == 0.0

    def test_ratio_bounds_enforced(self):
        with pytest.raises(ValueError):
            CompressionModel(ratio=0.0)
        with pytest.raises(ValueError):
            CompressionModel(ratio=1.5)
        with pytest.raises(ValueError):
            CompressionModel(fidelity_loss=-0.1)

    def test_compressed_bytes_floor(self):
        m = CompressionModel(name="tiny", ratio=0.001)
        assert m.compressed_bytes(0) == 0
        assert m.compressed_bytes(10) == 1  # never rounds a payload to nothing
        assert m.compressed_bytes(10**6) == 1000

    def test_seconds_are_bandwidth_plus_latency(self):
        m = CompressionModel(
            name="m",
            ratio=0.5,
            compress_bytes_per_s=1e6,
            decompress_bytes_per_s=2e6,
            compress_latency_s=0.01,
            decompress_latency_s=0.02,
        )
        assert m.compress_seconds(1_000_000) == pytest.approx(1.01)
        assert m.decompress_seconds(1_000_000) == pytest.approx(0.52)

    def test_registry_presets(self):
        models = compression_models()
        assert set(models) == {"lossless", "bittrain", "fp16"}
        assert models["bittrain"] is BITTRAIN_SPARSE and BITTRAIN_SPARSE.lossless
        assert models["fp16"] is FP16_CAST and FP16_CAST.fidelity_loss > 0


class TestCompressedDifferential:
    """Compiled dispatch must be byte-identical to the interpreter on
    every backend for every registered family, zip ones included."""

    @settings(max_examples=60, deadline=None)
    @given(
        family=st.sampled_from(FAMILIES),
        l=st.integers(min_value=2, max_value=10),
        slots=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_compiled_matches_interpreter_on_every_backend(
        self, family, l, slots, seed
    ):
        strat = get_strategy(family)
        assume(strat.feasible(l, slots))
        sch = strat.build_schedule(l, slots)
        assert decompile(compile_schedule(sch)) == sch
        program = compile_schedule(sch)
        for spec in (ChainSpec.homogeneous(l), _random_spec(l, seed)):
            backends = (
                lambda: SimBackend(spec),
                lambda: TieredBackend(spec, disk=SD_CARD),
                lambda: CompressedBackend(spec, BITTRAIN_SPARSE, disk=SD_CARD),
            )
            for make in backends:
                interpreted = execute(sch, make())
                compiled = execute(sch, make(), compiled=program)
                assert compiled == interpreted
                assert compiled.tiers == interpreted.tiers
                assert compiled.compression == interpreted.compression

    def test_zip_families_report_compression(self):
        spec = ChainSpec.homogeneous(13, act_bytes=1 << 20)
        sch = get_strategy("revolve_zip").build_schedule(13, 3)
        run = execute(sch, CompressedBackend(spec, BITTRAIN_SPARSE, disk=SD_CARD))
        z = run.compression
        assert z is not None and z.codec == "bittrain-sparse"
        assert z.compress_calls == run.snapshots_taken
        assert z.decompress_calls == run.restores
        assert z.bytes_saved > 0
        assert run.transfer_seconds >= z.codec_seconds

    def test_plain_backend_executes_zip_schedules(self):
        """The flag travels in the plan: backends without a codec treat
        compressed-band slots as ordinary tier-0 storage."""
        sch = get_strategy("revolve_zip").build_schedule(13, 3)
        spec = ChainSpec.homogeneous(13)
        plain = execute(revolve_schedule(13, 3), SimBackend(spec))
        zipped = execute(sch, SimBackend(spec))
        assert zipped.forward_steps == plain.forward_steps
        assert zipped.peak_bytes == plain.peak_bytes


class TestLosslessCollapse:
    """ratio = 1 with zero codec cost must collapse exactly onto the
    existing pure families — measurements and plans alike."""

    def test_revolve_zip_measures_exactly_revolve(self):
        spec = _random_spec(13, 5)
        raw = execute(revolve_schedule(13, 3), TieredBackend(spec, disk=SD_CARD))
        zipped = execute(
            compressed_variant(revolve_schedule(13, 3), "revolve_zip"),
            CompressedBackend(spec, LOSSLESS, disk=SD_CARD),
        )
        assert zipped.peak_bytes == raw.peak_bytes
        assert zipped.transfer_seconds == raw.transfer_seconds
        assert zipped.forward_cost == raw.forward_cost
        assert [t.peak_bytes for t in zipped.tiers] == [
            t.peak_bytes for t in raw.tiers
        ]
        assert zipped.compression.bytes_saved == 0
        assert zipped.compression.codec_seconds == 0.0
        assert zipped.compression.fidelity_loss == 0.0

    @given(l=st.integers(1, 30), c=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_joint_zip_plan_collapses_to_plain_joint(self, l, c):
        """With the identity codec the compress option never strictly
        improves on plain paging, so the DP's tie-break keeps the pure
        plan — action-for-action."""
        spec = ChainSpec.homogeneous(l)
        plain = joint_schedule(spec, c, UnitCostObjective(spec, 1.0, 1.0))
        zipped = joint_schedule(
            spec, c, UnitCostObjective(spec, 1.0, 1.0, codec=LOSSLESS)
        )
        assert zipped.actions == plain.actions
        assert joint_cost(
            spec, c, UnitCostObjective(spec, 1.0, 1.0, codec=LOSSLESS)
        ) == joint_cost(spec, c, UnitCostObjective(spec, 1.0, 1.0))

    def test_frontier_collapses_pointwise(self):
        spec = _random_spec(21, 9)
        pts = {
            p.strategy: p
            for p in compressed_frontier(spec, 3, codec=LOSSLESS, unit_seconds=1e-6)
        }
        r, z = pts["revolve"], pts["revolve_zip"]
        assert (z.slots, z.extra_forwards, z.peak_bytes, z.wall_seconds) == (
            r.slots,
            r.extra_forwards,
            r.peak_bytes,
            r.wall_seconds,
        )
        jt, jz = pts["joint_time"], pts["joint_zip"]
        assert (jz.extra_forwards, jz.peak_bytes, jz.wall_seconds) == (
            jt.extra_forwards,
            jt.peak_bytes,
            jt.wall_seconds,
        )


class TestPlannedEqualsMeasured:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize(
        "codec", (BITTRAIN_SPARSE, FP16_CAST), ids=lambda c: c.name
    )
    def test_time_objective_with_codec(self, seed, codec):
        """The DP's priced cost for a compressed plan equals executing
        that plan on a CompressedBackend, codec seconds included."""
        rng = random.Random(seed)
        l = rng.randint(2, 18)
        spec = _random_spec(l, 1000 + seed)
        c = rng.randint(1, 4)
        unit_s = 1e-9
        obj = TimeObjective(spec, disk=SD_CARD, unit_seconds=unit_s, codec=codec)
        sched = joint_schedule(spec, c, obj, family="joint_zip")
        assert validate(sched)
        run = execute(sched, CompressedBackend(spec, codec, disk=SD_CARD))
        measured = (run.forward_cost + run.replay_cost) * unit_s + run.transfer_seconds
        planned = joint_cost(spec, c, obj) + run.replay_cost * unit_s
        assert measured == pytest.approx(planned, rel=1e-6)
        assert run.tier("memory").peak_slots <= c


class TestProgramCompressionIR:
    def test_zip_program_reports_usage(self):
        sch = get_strategy("revolve_zip").build_schedule(13, 3)
        program = compile_schedule(sch)
        assert program.compressed
        snaps = sum(1 for a in sch.actions if a.kind is ActionKind.SNAPSHOT)
        restores = sum(1 for a in sch.actions if a.kind is ActionKind.RESTORE)
        assert program.compression_usage == (snaps, restores)

    def test_plain_program_reports_none(self):
        program = compile_schedule(get_strategy("revolve").build_schedule(13, 3))
        assert not program.compressed
        assert program.compression_usage == (0, 0)


class TestFrontierDominance:
    """The figure1_compressed acceptance claim, checked at its cheapest
    qualifying point: depth 34, batch 8, image 224."""

    @pytest.fixture(scope="class")
    def panel_points(self):
        from repro.edge.device import ODROID_XU4
        from repro.experiments.figure1 import _joint_spec

        spec = _joint_spec(34, 8, 224)
        return {
            p.strategy: p
            for p in compressed_frontier(
                spec, 3, codec=BITTRAIN_SPARSE, unit_seconds=1.0 / ODROID_XU4.flops_per_s
            )
        }

    def test_a_compressed_family_strictly_dominates_revolve(self, panel_points):
        base = panel_points["revolve"]
        dominating = [
            p
            for name, p in panel_points.items()
            if name in ("revolve_zip", "joint_zip")
            and p.peak_bytes < base.peak_bytes
            and p.wall_seconds <= base.wall_seconds
        ]
        assert dominating, panel_points

    def test_fidelity_within_declared_bound(self, panel_points):
        for p in panel_points.values():
            assert 0.0 <= p.fidelity_loss <= BITTRAIN_SPARSE.fidelity_loss

    def test_fp16_lever_carries_its_fidelity_cost(self):
        from repro.experiments.figure1 import figure1_compressed_panel

        rows = figure1_compressed_panel("b", codec="fp16", depths=(34,))
        (row,) = rows
        zipped = row["strategies"]["revolve_zip"]
        assert zipped["fidelity_loss"] == FP16_CAST.fidelity_loss
        assert row["strategies"]["revolve"]["fidelity_loss"] == 0.0
