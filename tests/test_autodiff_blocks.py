"""Residual blocks, avg-pool and deterministic dropout under schedules."""

import numpy as np
import pytest

from repro.autodiff import (
    AvgPoolLayer,
    ConvLayer,
    DenseLayer,
    DropoutLayer,
    Momentum,
    ReLULayer,
    ResidualBlockLayer,
    SequentialNet,
    run_schedule,
)
from repro.checkpointing import revolve_schedule, uniform_schedule
from repro.errors import ShapeError


def numeric_grad(f, x, eps=1e-6):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        fp = f()
        x[i] = old - eps
        fm = f()
        x[i] = old
        g[i] = (fp - fm) / (2 * eps)
    return g


@pytest.fixture
def rng():
    return np.random.default_rng(9)


def make_block(rng, width=6, with_proj=False):
    body = [
        DenseLayer(width, width, rng, name="fc1"),
        ReLULayer("r"),
        DenseLayer(width, width, rng, name="fc2"),
    ]
    proj = DenseLayer(width, width, rng, name="proj") if with_proj else None
    return ResidualBlockLayer(body, proj=proj, name="blk")


class TestResidualBlock:
    @pytest.mark.parametrize("with_proj", [False, True])
    def test_gradients_numeric(self, rng, with_proj):
        blk = make_block(rng, with_proj=with_proj)
        x = rng.normal(size=(4, 6))
        dy = rng.normal(size=(4, 6))

        def objective():
            return float((blk.forward(x) * dy).sum())

        dx, grads = blk.backward(x, dy)
        assert np.allclose(dx, numeric_grad(objective, x), atol=1e-6)
        for key, g in grads.items():
            gnum = numeric_grad(objective, blk.params[key])
            assert np.allclose(g, gnum, atol=1e-6), key

    def test_identity_skip_contribution(self, rng):
        """With a zeroed body, the block is the identity."""
        blk = make_block(rng)
        for key in blk.params:
            blk.params[key][:] = 0.0
        x = rng.normal(size=(3, 6))
        assert np.allclose(blk.forward(x), x)

    def test_params_are_shared_arrays(self, rng):
        blk = make_block(rng)
        blk.params["fc1.W"][0, 0] = 123.0
        assert blk.body[0].params["W"][0, 0] == 123.0

    def test_shape_mismatch_without_proj(self, rng):
        body = [DenseLayer(6, 4, rng, name="shrink")]
        blk = ResidualBlockLayer(body, name="bad")
        with pytest.raises(ShapeError):
            blk.forward(rng.normal(size=(2, 6)))

    def test_duplicate_subnames_rejected(self, rng):
        with pytest.raises(ShapeError):
            ResidualBlockLayer(
                [DenseLayer(4, 4, rng, name="a"), DenseLayer(4, 4, rng, name="a")]
            )

    def test_empty_body_rejected(self):
        with pytest.raises(ShapeError):
            ResidualBlockLayer([])

    def test_checkpointed_resnet_training(self, rng):
        """A chain of residual blocks trains identically under Revolve."""
        blocks = [make_block(rng) for _ in range(1)]
        blocks = []
        for b in range(4):
            body = [
                DenseLayer(6, 6, rng, name=f"b{b}f1"),
                ReLULayer(f"b{b}r"),
                DenseLayer(6, 6, rng, name=f"b{b}f2"),
            ]
            blocks.append(ResidualBlockLayer(body, name=f"block{b}"))
        net = SequentialNet(blocks + [DenseLayer(6, 3, rng, name="head")])
        x = rng.normal(size=(5, 6))
        y = rng.integers(0, 3, size=5)
        loss_ref, grads_ref, _ = net.train_step(x, y)
        for sch in (revolve_schedule(len(net), 2), uniform_schedule(len(net), 2)):
            res = run_schedule(net, sch, x, y)
            assert res.loss == loss_ref
            for k in grads_ref:
                assert np.array_equal(res.grads[k], grads_ref[k]), (sch.strategy, k)

    def test_optimizer_updates_subparams(self, rng):
        blk = make_block(rng)
        net = SequentialNet([blk, DenseLayer(6, 2, rng, name="head")])
        opt = Momentum(net.layers, lr=0.1)
        x = rng.normal(size=(8, 6))
        y = rng.integers(0, 2, size=8)
        before = blk.params["fc1.W"].copy()
        _, grads, _ = net.train_step(x, y)
        opt.step(grads)
        assert not np.array_equal(before, blk.params["fc1.W"])


class TestAvgPool:
    def test_forward_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = AvgPoolLayer(2).forward(x)
        assert np.allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_gradient_numeric(self, rng):
        layer = AvgPoolLayer(2)
        x = rng.normal(size=(2, 3, 4, 4))
        dy = rng.normal(size=(2, 3, 2, 2))

        def objective():
            return float((layer.forward(x) * dy).sum())

        dx, _ = layer.backward(x, dy)
        assert np.allclose(dx, numeric_grad(objective, x), atol=1e-7)

    def test_crop_on_non_divisible(self, rng):
        out = AvgPoolLayer(2).forward(rng.normal(size=(1, 1, 5, 5)))
        assert out.shape == (1, 1, 2, 2)

    def test_validation(self):
        with pytest.raises(ShapeError):
            AvgPoolLayer(0)
        with pytest.raises(ShapeError):
            AvgPoolLayer(2).forward(np.zeros((2, 3)))


class TestDropout:
    def test_mask_deterministic_within_step(self, rng):
        d = DropoutLayer(0.5, seed=1)
        d.set_step(3)
        x = rng.normal(size=(4, 8))
        assert np.array_equal(d.forward(x), d.forward(x))

    def test_mask_changes_across_steps(self, rng):
        d = DropoutLayer(0.5, seed=1)
        x = rng.normal(size=(16, 16)) + 10.0
        d.set_step(0)
        a = d.forward(x)
        d.set_step(1)
        b = d.forward(x)
        assert not np.array_equal(a, b)

    def test_inverted_scaling_preserves_expectation(self, rng):
        d = DropoutLayer(0.3, seed=0)
        x = np.ones((200, 200))
        d.set_step(0)
        y = d.forward(x)
        assert y.mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_uses_same_mask(self, rng):
        d = DropoutLayer(0.5, seed=2)
        d.set_step(7)
        x = rng.normal(size=(5, 5))
        y = d.forward(x)
        dy = np.ones_like(x)
        dx, _ = d.backward(x, dy)
        # gradient is nonzero exactly where the forward kept values
        assert np.array_equal(dx != 0, y != 0)

    def test_eval_mode_passthrough(self, rng):
        d = DropoutLayer(0.9, seed=0)
        d.training = False
        x = rng.normal(size=(3, 3))
        assert np.array_equal(d.forward(x), x)

    def test_checkpointed_equivalence_with_dropout(self, rng):
        """Replay determinism => identical gradients under schedules."""
        layers = [
            DenseLayer(6, 6, rng, name="fc1"),
            DropoutLayer(0.4, seed=5, name="drop"),
            ReLULayer("r"),
            DenseLayer(6, 3, rng, name="head"),
        ]
        net = SequentialNet(layers)
        for layer in layers:
            if isinstance(layer, DropoutLayer):
                layer.set_step(11)
        x = rng.normal(size=(4, 6))
        y = rng.integers(0, 3, size=4)
        loss_ref, grads_ref, _ = net.train_step(x, y)
        res = run_schedule(net, revolve_schedule(4, 1), x, y)
        assert res.loss == loss_ref
        for k in grads_ref:
            assert np.array_equal(res.grads[k], grads_ref[k])

    def test_validation(self):
        with pytest.raises(ShapeError):
            DropoutLayer(1.0)
        with pytest.raises(ValueError):
            DropoutLayer(0.5).set_step(-1)
