"""The planner: ρ ↔ slots ↔ bytes round trips and strategy choices."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpointing import (
    compare_strategies,
    extra_forwards,
    max_slots_in_budget,
    memory_curve,
    memory_for_slots,
    plan_training,
    rho_for_budget,
    rho_for_slots,
    slots_for_rho,
)
from repro.errors import MemoryBudgetError, PlanningError
from repro.memory import calibrated_models
from repro.units import GB, MB


class TestRhoSlots:
    def test_rho_one_needs_store_all(self):
        assert slots_for_rho(50, 1.0) == 49

    def test_rho_formula(self):
        l, c = 50, 5
        expected = 1.0 + extra_forwards(l, c) / (2 * l)
        assert rho_for_slots(l, c) == pytest.approx(expected)

    def test_bwd_ratio_dilutes_overhead(self):
        # With backward 2x forward, recompute is a smaller share of time.
        assert rho_for_slots(50, 5, bwd_ratio=2.0) < rho_for_slots(50, 5, bwd_ratio=1.0)

    @given(l=st.integers(2, 152), rho=st.floats(1.0, 4.0))
    @settings(max_examples=150, deadline=None)
    def test_round_trip_rho(self, rho, l):
        """slots_for_rho gives the minimal c achieving rho (up to float
        rounding when rho lands exactly on the achievable lattice)."""
        c = slots_for_rho(l, rho)
        assert rho_for_slots(l, c) <= rho + 1e-12
        if c > 1:
            assert rho_for_slots(l, c - 1) > rho - 1e-9

    def test_rho_below_one_rejected(self):
        with pytest.raises(PlanningError):
            slots_for_rho(10, 0.99)

    def test_bad_bwd_ratio(self):
        with pytest.raises(PlanningError):
            rho_for_slots(10, 2, bwd_ratio=-1)


class TestMemoryMaps:
    def test_memory_for_slots_formula(self):
        assert memory_for_slots(5, fixed_bytes=100.0, slot_bytes=10.0) == 160.0

    def test_store_all_consistency(self):
        """c = l-1 recovers the full Tables footprint: fixed + l slots."""
        l, fixed, slot = 50, 1000.0, 10.0
        assert memory_for_slots(l - 1, fixed, slot) == fixed + l * slot

    def test_max_slots_boundary(self):
        c = max_slots_in_budget(200.0, fixed_bytes=100.0, slot_bytes=10.0)
        assert memory_for_slots(c, 100.0, 10.0) <= 200.0
        assert memory_for_slots(c + 1, 100.0, 10.0) > 200.0

    def test_max_slots_raises_when_hopeless(self):
        with pytest.raises(MemoryBudgetError):
            max_slots_in_budget(100.0, fixed_bytes=95.0, slot_bytes=10.0)

    def test_negative_slots_rejected(self):
        with pytest.raises(PlanningError):
            memory_for_slots(-1, 0.0, 1.0)


class TestCurves:
    def test_monotone_nonincreasing_in_rho(self):
        pts = memory_curve(152, 1e9, 1e7, [1.0, 1.2, 1.5, 2.0, 3.0])
        mems = [p.memory_bytes for p in pts]
        assert mems == sorted(mems, reverse=True)

    def test_rho_one_point_is_store_all(self):
        l, fixed, slot = 101, 5e8, 2e7
        pts = memory_curve(l, fixed, slot, [1.0])
        assert pts[0].memory_bytes == fixed + l * slot
        assert pts[0].extra_forwards == 0

    def test_paper_figure1b_shape(self):
        """Figure 1b headline: at rho=1 ResNet-50+ exceed 2 GB at batch 8;
        by rho=1.6 every model fits."""
        cal = calibrated_models()
        for depth, must_fit_at_1 in ((18, True), (34, True), (50, False), (101, False), (152, False)):
            m = cal[depth]
            slot = 8 * m.act224_bytes / depth
            at1 = memory_curve(depth, m.fixed_bytes, slot, [1.0])[0].memory_bytes
            assert (at1 <= 2 * GB) == must_fit_at_1
            at16 = memory_curve(depth, m.fixed_bytes, slot, [1.6])[0].memory_bytes
            assert at16 <= 2 * GB

    def test_rho_for_budget_inverse(self):
        l, fixed, slot = 152, 9e8, 3e7
        point = rho_for_budget(l, fixed, slot, budget_bytes=2 * GB)
        assert point.memory_bytes <= 2 * GB
        assert point.rho >= 1.0


class TestPlanTraining:
    def test_store_all_when_it_fits(self):
        plan = plan_training(l=18, fixed_bytes=100 * MB, slot_bytes=MB, budget_bytes=GB)
        assert plan.strategy == "store_all"
        assert plan.rho == 1.0
        assert plan.fits

    def test_revolve_when_tight(self):
        plan = plan_training(l=152, fixed_bytes=GB, slot_bytes=30 * MB, budget_bytes=2 * GB)
        assert plan.strategy == "revolve"
        assert plan.rho > 1.0
        assert plan.fits
        assert plan.memory_bytes < plan.store_all_bytes

    def test_uniform_never_beats_revolve(self):
        plan = plan_training(l=152, fixed_bytes=GB, slot_bytes=30 * MB, budget_bytes=2 * GB)
        assert plan.uniform_rho is None or plan.uniform_rho >= plan.rho

    def test_savings_fraction(self):
        plan = plan_training(l=152, fixed_bytes=GB, slot_bytes=30 * MB, budget_bytes=2 * GB)
        assert 0.0 < plan.savings_fraction < 1.0

    def test_impossible_budget_raises(self):
        with pytest.raises(MemoryBudgetError):
            plan_training(l=50, fixed_bytes=3 * GB, slot_bytes=MB, budget_bytes=2 * GB)


class TestCompareStrategies:
    def test_revolve_dominates(self):
        """Section VI: optimal binomial <= uniform <= sqrt at equal memory."""
        for l in (18, 50, 152):
            for c in (5, 8, 13, 21, 34):
                rhos = compare_strategies(l, c)
                assert rhos["revolve"] <= rhos["uniform"] + 1e-12
                if math.isfinite(rhos["sqrt"]) and math.isfinite(rhos["uniform"]):
                    assert rhos["uniform"] <= rhos["sqrt"] + 1e-12

    def test_small_budget_infeasible_for_uniform(self):
        rhos = compare_strategies(152, 3)
        assert math.isinf(rhos["uniform"])
        assert math.isfinite(rhos["revolve"])  # revolve always works at c>=1

    def test_store_all_flag(self):
        assert compare_strategies(10, 9)["store_all"] == 1.0
        assert math.isinf(compare_strategies(10, 8)["store_all"])

    def test_budget_validation(self):
        with pytest.raises(PlanningError):
            compare_strategies(10, 0)
