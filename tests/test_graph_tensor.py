"""TensorSpec and convolution/pooling shape arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ShapeError
from repro.graph import TensorSpec, conv2d_output_hw, pool2d_output_hw


class TestTensorSpec:
    def test_numel_and_nbytes(self):
        spec = TensorSpec((3, 224, 224))
        assert spec.numel == 3 * 224 * 224
        assert spec.nbytes == spec.numel * 4

    def test_float16_halves_bytes(self):
        a = TensorSpec((8, 8), dtype="float32")
        b = TensorSpec((8, 8), dtype="float16")
        assert b.nbytes * 2 == a.nbytes

    def test_rank(self):
        assert TensorSpec((10,)).rank == 1
        assert TensorSpec((3, 4, 5)).rank == 3

    def test_with_shape_keeps_dtype(self):
        spec = TensorSpec((4,), dtype="float64")
        assert spec.with_shape((2, 2)).dtype == "float64"

    @pytest.mark.parametrize("bad", [(), (0,), (-1, 3), (3, 0, 5)])
    def test_invalid_shapes_rejected(self, bad):
        with pytest.raises(ShapeError):
            TensorSpec(bad)

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ShapeError):
            TensorSpec((3,), dtype="complex128")

    def test_frozen(self):
        spec = TensorSpec((3,))
        with pytest.raises(AttributeError):
            spec.shape = (4,)  # type: ignore[misc]


class TestConvArithmetic:
    def test_resnet_stem(self):
        # 7x7/2 pad 3 on 224 -> 112 (the ResNet stem conv).
        assert conv2d_output_hw(224, 224, (7, 7), (2, 2), (3, 3)) == (112, 112)

    def test_same_padding_3x3(self):
        assert conv2d_output_hw(56, 56, (3, 3), (1, 1), (1, 1)) == (56, 56)

    def test_stride_two_halves(self):
        assert conv2d_output_hw(56, 56, (3, 3), (2, 2), (1, 1)) == (28, 28)

    def test_1x1(self):
        assert conv2d_output_hw(14, 14, (1, 1), (1, 1), (0, 0)) == (14, 14)

    def test_dilation(self):
        # effective kernel 5 with dilation 2 on k=3.
        assert conv2d_output_hw(10, 10, (3, 3), (1, 1), (0, 0), (2, 2)) == (6, 6)

    def test_too_small_raises(self):
        with pytest.raises(ShapeError):
            conv2d_output_hw(2, 2, (5, 5), (1, 1), (0, 0))

    @given(
        h=st.integers(8, 64),
        k=st.integers(1, 5),
        s=st.integers(1, 3),
        p=st.integers(0, 2),
    )
    def test_output_positive_and_bounded(self, h, k, s, p):
        """Output never exceeds input+2p and is positive when valid."""
        if h + 2 * p < k:
            return
        oh, ow = conv2d_output_hw(h, h, (k, k), (s, s), (p, p))
        assert 1 <= oh <= h + 2 * p
        assert oh == ow


class TestPoolArithmetic:
    def test_resnet_maxpool(self):
        # 3x3/2 pad 1 on 112 -> 56.
        assert pool2d_output_hw(112, 112, (3, 3), (2, 2), (1, 1)) == (56, 56)

    def test_ceil_mode_rounds_up(self):
        floor = pool2d_output_hw(7, 7, (2, 2), (2, 2), (0, 0), ceil_mode=False)
        ceil = pool2d_output_hw(7, 7, (2, 2), (2, 2), (0, 0), ceil_mode=True)
        assert floor == (3, 3)
        assert ceil == (4, 4)

    def test_ceil_mode_clamps_to_input(self):
        # Window starting in pure padding must be dropped (PyTorch rule).
        out = pool2d_output_hw(4, 4, (2, 2), (2, 2), (1, 1), ceil_mode=True)
        assert out == (3, 3)

    def test_invalid_raises(self):
        with pytest.raises(ShapeError):
            pool2d_output_hw(2, 2, (4, 4), (1, 1), (0, 0))
